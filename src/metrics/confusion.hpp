// Confusion matrix for classifier evaluation (model selection, E6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace semcache::metrics {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t truth, std::size_t predicted);

  std::size_t num_classes() const { return k_; }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t truth, std::size_t predicted) const;

  double accuracy() const;
  /// Per-class precision / recall / F1 (0 when undefined).
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f1(std::size_t cls) const;
  double macro_f1() const;

  /// Human-readable grid with optional class labels.
  std::string to_string(const std::vector<std::string>& labels = {}) const;

 private:
  std::size_t k_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row = truth, col = predicted
};

}  // namespace semcache::metrics
