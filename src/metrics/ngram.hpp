// Text-fidelity metrics for semantic communication: token accuracy and a
// BLEU-style n-gram overlap score between original and reconstructed
// token sequences.
#pragma once

#include <cstdint>
#include <span>

namespace semcache::metrics {

/// Fraction of positions where reference and hypothesis agree, over the
/// length of the longer sequence (missing positions count as errors).
double token_accuracy(std::span<const std::int32_t> reference,
                      std::span<const std::int32_t> hypothesis);

/// Modified n-gram precision for a single order.
double ngram_precision(std::span<const std::int32_t> reference,
                       std::span<const std::int32_t> hypothesis, int order);

/// BLEU-style score: geometric mean of 1..max_order modified precisions with
/// a brevity penalty. Returns a value in [0, 1].
double bleu(std::span<const std::int32_t> reference,
            std::span<const std::int32_t> hypothesis, int max_order = 4);

}  // namespace semcache::metrics
