#include "metrics/ngram.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/check.hpp"

namespace semcache::metrics {

double token_accuracy(std::span<const std::int32_t> reference,
                      std::span<const std::int32_t> hypothesis) {
  const std::size_t n = std::max(reference.size(), hypothesis.size());
  if (n == 0) return 1.0;
  std::size_t correct = 0;
  const std::size_t overlap = std::min(reference.size(), hypothesis.size());
  for (std::size_t i = 0; i < overlap; ++i) {
    if (reference[i] == hypothesis[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

namespace {
using Gram = std::vector<std::int32_t>;

std::map<Gram, std::size_t> count_ngrams(std::span<const std::int32_t> seq,
                                         int order) {
  std::map<Gram, std::size_t> counts;
  if (static_cast<int>(seq.size()) < order) return counts;
  for (std::size_t i = 0; i + static_cast<std::size_t>(order) <= seq.size(); ++i) {
    Gram g(seq.begin() + static_cast<std::ptrdiff_t>(i),
           seq.begin() + static_cast<std::ptrdiff_t>(i) + order);
    ++counts[g];
  }
  return counts;
}
}  // namespace

double ngram_precision(std::span<const std::int32_t> reference,
                       std::span<const std::int32_t> hypothesis, int order) {
  SEMCACHE_CHECK(order >= 1, "ngram_precision: order must be >= 1");
  const auto ref = count_ngrams(reference, order);
  const auto hyp = count_ngrams(hypothesis, order);
  std::size_t total = 0;
  std::size_t matched = 0;
  for (const auto& [gram, count] : hyp) {
    total += count;
    const auto it = ref.find(gram);
    if (it != ref.end()) matched += std::min(count, it->second);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(matched) / static_cast<double>(total);
}

double bleu(std::span<const std::int32_t> reference,
            std::span<const std::int32_t> hypothesis, int max_order) {
  SEMCACHE_CHECK(max_order >= 1, "bleu: max_order must be >= 1");
  if (hypothesis.empty()) return reference.empty() ? 1.0 : 0.0;

  double log_sum = 0.0;
  int orders = 0;
  for (int order = 1; order <= max_order; ++order) {
    if (static_cast<int>(hypothesis.size()) < order ||
        static_cast<int>(reference.size()) < order) {
      break;
    }
    const double p = ngram_precision(reference, hypothesis, order);
    if (p == 0.0) return 0.0;
    log_sum += std::log(p);
    ++orders;
  }
  if (orders == 0) return 0.0;
  const double geo_mean = std::exp(log_sum / orders);

  const auto r = static_cast<double>(reference.size());
  const auto h = static_cast<double>(hypothesis.size());
  const double brevity = h >= r ? 1.0 : std::exp(1.0 - r / h);
  return geo_mean * brevity;
}

}  // namespace semcache::metrics
