// Paper-style result tables. Every bench binary builds one of these and
// prints it, so the "rows/series the paper reports" have a uniform format
// (markdown for humans, CSV for downstream plotting, JSON for the
// BENCH_* perf trajectory collected by bench/run_all.sh).
#pragma once

#include <string>
#include <vector>

namespace semcache::metrics {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Append a row; must match the column count.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  std::string to_markdown() const;
  std::string to_csv() const;
  /// {"title": ..., "columns": [...], "rows": [[...], ...]} with cells as
  /// JSON strings (escaped), one self-contained object per table.
  std::string to_json() const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace semcache::metrics
