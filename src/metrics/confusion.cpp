#include "metrics/confusion.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace semcache::metrics {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : k_(num_classes), cells_(num_classes * num_classes, 0) {
  SEMCACHE_CHECK(num_classes > 0, "ConfusionMatrix needs >= 1 class");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  SEMCACHE_CHECK(truth < k_ && predicted < k_,
                 "ConfusionMatrix::add: class index out of range");
  ++cells_[truth * k_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  SEMCACHE_CHECK(truth < k_ && predicted < k_,
                 "ConfusionMatrix::count: class index out of range");
  return cells_[truth * k_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < k_; ++i) correct += cells_[i * k_ + i];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::size_t tp = cells_[cls * k_ + cls];
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < k_; ++t) predicted += cells_[t * k_ + cls];
  return predicted == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::size_t tp = cells_[cls * k_ + cls];
  std::size_t actual = 0;
  for (std::size_t p = 0; p < k_; ++p) actual += cells_[cls * k_ + p];
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < k_; ++c) sum += f1(c);
  return sum / static_cast<double>(k_);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& labels) const {
  // Build the default label via += rather than "c" + to_string(): GCC 12's
  // -O3 -Werror=restrict misfires on const char* + std::string&& (PR105329).
  const auto label_or_default = [&labels](std::size_t i) {
    if (i < labels.size()) return labels[i];
    std::string fallback = "c";
    fallback += std::to_string(i);
    return fallback;
  };
  std::ostringstream os;
  os << "truth\\pred";
  for (std::size_t c = 0; c < k_; ++c) {
    os << '\t' << label_or_default(c);
  }
  os << '\n';
  for (std::size_t t = 0; t < k_; ++t) {
    os << label_or_default(t);
    for (std::size_t p = 0; p < k_; ++p) os << '\t' << cells_[t * k_ + p];
    os << '\n';
  }
  return os.str();
}

}  // namespace semcache::metrics
