#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::metrics {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }
double OnlineStats::min() const { return n_ == 0 ? 0.0 : min_; }
double OnlineStats::max() const { return n_ == 0 ? 0.0 : max_; }
double OnlineStats::sum() const { return mean_ * static_cast<double>(n_); }

void PercentileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double PercentileTracker::percentile(double q) const {
  SEMCACHE_CHECK(q >= 0.0 && q <= 1.0, "percentile: q must be in [0, 1]");
  SEMCACHE_CHECK(!samples_.empty(), "percentile: no samples recorded");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace semcache::metrics
