#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace semcache::metrics {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SEMCACHE_CHECK(!columns_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SEMCACHE_CHECK(cells.size() == columns_.size(),
                 "Table row has " + std::to_string(cells.size()) +
                     " cells, expected " + std::to_string(columns_.size()));
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_markdown() const {
  // Column widths for alignment.
  std::vector<std::size_t> w(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) w[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());
  }

  std::ostringstream os;
  os << "### " << title_ << "\n\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(w[c])) << columns_[c] << " |";
  }
  os << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(w[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(w[c])) << row[c] << " |";
    }
    os << '\n';
  }
  return os.str();
}

namespace {
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(ch) << std::dec << std::setfill(' ');
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void append_json_row(std::ostringstream& os,
                     const std::vector<std::string>& cells) {
  os << '[';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) os << ',';
    append_json_string(os, cells[c]);
  }
  os << ']';
}
}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "{\"title\":";
  append_json_string(os, title_);
  os << ",\"columns\":";
  append_json_row(os, columns_);
  os << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ',';
    append_json_row(os, rows_[r]);
  }
  os << "]}";
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 == columns_.size() ? '\n' : ',');
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? '\n' : ',');
    }
  }
  return os.str();
}

}  // namespace semcache::metrics
