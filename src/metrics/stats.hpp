// Online statistics used by the simulator, benches, and experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace semcache::metrics {

/// Welford single-pass mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel-safe Chan et al. combine).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile tracker: stores all samples, sorts on demand.
/// Suited to experiment-scale sample counts (<= millions).
class PercentileTracker {
 public:
  void add(double x);
  /// q in [0, 1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  std::size_t count() const { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace semcache::metrics
