#include "edge/node.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace semcache::edge {

std::string node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDevice: return "device";
    case NodeKind::kEdgeServer: return "edge";
    case NodeKind::kCloud: return "cloud";
  }
  return "?";
}

Node::Node(NodeId id, std::string name, NodeKind kind, double flops_per_second)
    : id_(id), name_(std::move(name)), kind_(kind), flops_(flops_per_second) {
  SEMCACHE_CHECK(flops_ > 0.0, "Node: capacity must be positive");
}

double Node::service_time(double flops) const {
  SEMCACHE_CHECK(flops >= 0.0, "Node: negative flops");
  return flops / flops_;
}

SimTime Node::submit_compute(Simulator& sim, double flops,
                             Simulator::Handler on_done) {
  const double service = service_time(flops);
  const SimTime start = std::max(sim.now(), busy_until_);
  const SimTime finish = start + service;
  busy_until_ = finish;
  busy_seconds_ += service;
  ++jobs_;
  sim.schedule_at(finish, std::move(on_done));
  return finish;
}

}  // namespace semcache::edge
