// Compute nodes: mobile devices, edge servers, and the cloud differ only in
// their compute capacity and where they sit in the topology. A node's
// processor is a FIFO queue — submitted jobs serialize, which is what makes
// under-provisioned placements back up in E7.
#pragma once

#include <string>

#include "edge/sim.hpp"

namespace semcache::edge {

using NodeId = std::size_t;

enum class NodeKind { kDevice, kEdgeServer, kCloud };

std::string node_kind_name(NodeKind kind);

class Node {
 public:
  Node(NodeId id, std::string name, NodeKind kind, double flops_per_second);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  NodeKind kind() const { return kind_; }
  double capacity() const { return flops_; }

  /// Submit a compute job; `on_done` fires when it finishes. Jobs queue
  /// FIFO behind whatever the node is already running. Returns the
  /// completion time.
  SimTime submit_compute(Simulator& sim, double flops,
                         Simulator::Handler on_done);

  /// Time a fresh job of `flops` would take with an idle processor.
  double service_time(double flops) const;

  double busy_seconds() const { return busy_seconds_; }
  std::size_t jobs_completed() const { return jobs_; }

 private:
  NodeId id_;
  std::string name_;
  NodeKind kind_;
  double flops_;
  SimTime busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
  std::size_t jobs_ = 0;
};

}  // namespace semcache::edge
