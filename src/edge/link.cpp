#include "edge/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::edge {

Link::Link(LinkId id, NodeId from, NodeId to, double bandwidth_bps,
           double propagation_s)
    : id_(id),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      propagation_(propagation_s) {
  SEMCACHE_CHECK(bandwidth_bps > 0.0, "Link: bandwidth must be positive");
  SEMCACHE_CHECK(propagation_s >= 0.0, "Link: negative propagation delay");
}

double Link::transfer_time(std::size_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / bandwidth_ + propagation_;
}

void Link::set_flap_schedule(double period_s, double down_s, double phase_s) {
  if (period_s <= 0.0 || down_s <= 0.0) {
    flap_period_ = flap_down_ = flap_phase_ = 0.0;
    return;
  }
  SEMCACHE_CHECK(down_s <= period_s,
                 "Link: flap down time must not exceed the period");
  flap_period_ = period_s;
  flap_down_ = down_s;
  flap_phase_ = phase_s;
}

void Link::add_outage(SimTime start, SimTime end) {
  SEMCACHE_CHECK(start >= 0.0 && end > start,
                 "Link: outage window must satisfy 0 <= start < end");
  outages_.push_back({start, end});
}

bool Link::is_down(SimTime t) const {
  for (const auto& [start, end] : outages_) {
    if (t >= start && t < end) return true;
  }
  if (flap_period_ > 0.0) {
    double pos = std::fmod(t - flap_phase_, flap_period_);
    if (pos < 0.0) pos += flap_period_;
    if (pos < flap_down_) return true;
  }
  return false;
}

SimTime Link::next_up(SimTime t) const {
  // Each iteration jumps to the end of one outage window; windows are
  // finite and non-overlapping in practice, so this terminates fast. The
  // iteration cap guards a pathological explicit-window pile-up.
  for (int iter = 0; iter < 1000; ++iter) {
    if (!is_down(t)) return t;
    SimTime up = t;
    for (const auto& [start, end] : outages_) {
      if (t >= start && t < end) up = std::max(up, end);
    }
    if (up == t && flap_period_ > 0.0) {
      double pos = std::fmod(t - flap_phase_, flap_period_);
      if (pos < 0.0) pos += flap_period_;
      if (pos < flap_down_) up = t + (flap_down_ - pos);
    }
    // When t sits within one ulp of a window's end, the remaining down
    // time underflows and up rounds back onto t. The link is up for any
    // practical purpose — returning t keeps the walk terminating and the
    // result a pure function of t.
    if (up <= t) return t;
    t = up;
  }
  SEMCACHE_CHECK(false, "Link::next_up: unbounded outage schedule");
  return t;
}

SimTime Link::send(Simulator& sim, std::size_t bytes,
                   Simulator::Handler on_delivered) {
  const double serialization = static_cast<double>(bytes) * 8.0 / bandwidth_;
  SimTime start = std::max(sim.now(), busy_until_);
  if (is_down(start)) {
    if (outage_policy_ == OutagePolicy::kDrop) {
      ++outage_drops_;
      if (drop_sink_ != nullptr) ++*drop_sink_;
      return kDropped;
    }
    start = next_up(start);
    ++outage_queued_;
    if (queue_sink_ != nullptr) ++*queue_sink_;
  }
  busy_until_ = start + serialization;
  const SimTime delivered = start + serialization + propagation_;
  bytes_carried_ += bytes;
  ++transfers_;
  sim.schedule_at(delivered, std::move(on_delivered));
  return delivered;
}

}  // namespace semcache::edge
