#include "edge/link.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace semcache::edge {

Link::Link(LinkId id, NodeId from, NodeId to, double bandwidth_bps,
           double propagation_s)
    : id_(id),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      propagation_(propagation_s) {
  SEMCACHE_CHECK(bandwidth_bps > 0.0, "Link: bandwidth must be positive");
  SEMCACHE_CHECK(propagation_s >= 0.0, "Link: negative propagation delay");
}

double Link::transfer_time(std::size_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / bandwidth_ + propagation_;
}

SimTime Link::send(Simulator& sim, std::size_t bytes,
                   Simulator::Handler on_delivered) {
  const double serialization = static_cast<double>(bytes) * 8.0 / bandwidth_;
  const SimTime start = std::max(sim.now(), busy_until_);
  busy_until_ = start + serialization;
  const SimTime delivered = start + serialization + propagation_;
  bytes_carried_ += bytes;
  ++transfers_;
  sim.schedule_at(delivered, std::move(on_delivered));
  return delivered;
}

}  // namespace semcache::edge
