#include "edge/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace semcache::edge {

Link::Link(LinkId id, NodeId from, NodeId to, double bandwidth_bps,
           double propagation_s)
    : id_(id),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      propagation_(propagation_s) {
  SEMCACHE_CHECK(bandwidth_bps > 0.0, "Link: bandwidth must be positive");
  SEMCACHE_CHECK(propagation_s >= 0.0, "Link: negative propagation delay");
  std::uint64_t seed = static_cast<std::uint64_t>(id_);
  lane_key_ = semcache::splitmix64(seed);
}

double Link::transfer_time(std::size_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / bandwidth_ + propagation_;
}

void Link::set_flap_schedule(double period_s, double down_s, double phase_s) {
  if (period_s <= 0.0 || down_s <= 0.0) {
    flap_period_ = flap_down_ = flap_phase_ = 0.0;
    return;
  }
  SEMCACHE_CHECK(down_s <= period_s,
                 "Link: flap down time must not exceed the period");
  flap_period_ = period_s;
  flap_down_ = down_s;
  flap_phase_ = phase_s;
}

void Link::add_outage(SimTime start, SimTime end) {
  SEMCACHE_CHECK(start >= 0.0 && end > start,
                 "Link: outage window must satisfy 0 <= start < end");
  // Merge into the sorted, disjoint list. Every window whose end reaches
  // the new start and whose start doesn't pass the new end overlaps or
  // abuts [start, end) — absorb the whole contiguous run into one window
  // (adjacent windows coalesce too: the union is the same set of
  // instants, and one window per run is what keeps queries logarithmic).
  const auto lo = std::lower_bound(
      outages_.begin(), outages_.end(), start,
      [](const std::pair<SimTime, SimTime>& w, SimTime s) {
        return w.second < s;
      });
  auto hi = lo;
  while (hi != outages_.end() && hi->first <= end) {
    start = std::min(start, hi->first);
    end = std::max(end, hi->second);
    ++hi;
  }
  if (lo == hi) {
    outages_.insert(lo, {start, end});
  } else {
    lo->first = start;
    lo->second = end;
    outages_.erase(lo + 1, hi);
  }
}

std::vector<std::pair<SimTime, SimTime>>::const_iterator
Link::window_covering(SimTime t) const {
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](SimTime tt, const std::pair<SimTime, SimTime>& w) {
        return tt < w.first;
      });
  if (it == outages_.begin()) return outages_.end();
  --it;
  return t < it->second ? it : outages_.end();
}

bool Link::is_down(SimTime t) const {
  if (window_covering(t) != outages_.end()) return true;
  if (flap_period_ > 0.0) {
    double pos = std::fmod(t - flap_phase_, flap_period_);
    if (pos < 0.0) pos += flap_period_;
    if (pos < flap_down_) return true;
  }
  return false;
}

SimTime Link::next_up(SimTime t) const {
  // A flap that never comes up (down == period) has no next-up time; the
  // explicit windows can't be unbounded — they're finitely many, sorted
  // and disjoint, so each window is jumped at most once and a flap
  // down-phase can't cover the instant it just jumped past, which bounds
  // the walk without an iteration cap.
  SEMCACHE_CHECK(flap_period_ <= 0.0 || flap_down_ < flap_period_,
                 "Link::next_up: flap schedule is never up");
  for (;;) {
    SimTime up = t;
    const auto w = window_covering(t);
    if (w != outages_.end()) {
      up = w->second;
    } else if (flap_period_ > 0.0) {
      double pos = std::fmod(t - flap_phase_, flap_period_);
      if (pos < 0.0) pos += flap_period_;
      if (pos < flap_down_) up = t + (flap_down_ - pos);
    }
    // When t sits within one ulp of a window's end, the remaining down
    // time underflows and up rounds back onto t. The link is up for any
    // practical purpose — returning t keeps the walk terminating and the
    // result a pure function of t.
    if (up <= t) return t;
    t = up;
  }
}

SimTime Link::send(Simulator& sim, std::size_t bytes,
                   Simulator::Handler on_delivered) {
  const double serialization = static_cast<double>(bytes) * 8.0 / bandwidth_;
  SimTime start = std::max(sim.now(), busy_until_);
  if (is_down(start)) {
    if (outage_policy_ == OutagePolicy::kDrop) {
      ++outage_drops_;
      if (drop_sink_ != nullptr) ++*drop_sink_;
      return kDropped;
    }
    start = next_up(start);
    ++outage_queued_;
    if (queue_sink_ != nullptr) ++*queue_sink_;
  }
  busy_until_ = start + serialization;
  const SimTime delivered = start + serialization + propagation_;
  bytes_carried_ += bytes;
  ++transfers_;
  sim.schedule_at(delivered, std::move(on_delivered));
  return delivered;
}

void Link::send_concurrent(Simulator& sim, std::size_t bytes,
                           Simulator::Handler on_delivered) {
  struct Outcome {
    SimTime delivered = 0.0;
    bool dropped = false;
    bool queued = false;
  };
  // `at` and the outage policy are captured at the schedule site, where
  // send() would have read them: the compute phase must not touch the
  // Simulator, and a policy toggled between this call and the wave must
  // not retroactively change this send's fate. (now() at wave time
  // equals now() here anyway — the event runs at its own timestamp.)
  const SimTime at = sim.now();
  const OutagePolicy policy = outage_policy_;
  // The delivery event's insertion seq is reserved HERE, where send()
  // would have allocated it, and the commit schedules with it — so a
  // same-timestamp event the caller schedules between this call and the
  // wave breaks the tie exactly as under send(). A kDrop refusal simply
  // leaves the reservation unused (seq gaps are harmless).
  const std::uint64_t delivery_seq = sim.reserve_seq();
  auto outcome = std::make_shared<Outcome>();
  sim.schedule_concurrent_at(
      at, lane_key_, /*prepare=*/nullptr,
      // Compute: the full serialization/outage math, writing only this
      // link's own state. Same-link sends share the lane and therefore
      // run in scheduling order — the same FIFO send() enforces — while
      // different links' computes fan out in parallel.
      [this, at, bytes, policy, outcome] {
        const double serialization =
            static_cast<double>(bytes) * 8.0 / bandwidth_;
        SimTime start = std::max(at, busy_until_);
        if (is_down(start)) {
          if (policy == OutagePolicy::kDrop) {
            ++outage_drops_;
            outcome->dropped = true;
            return;
          }
          start = next_up(start);
          ++outage_queued_;
          outcome->queued = true;
        }
        busy_until_ = start + serialization;
        outcome->delivered = start + serialization + propagation_;
        bytes_carried_ += bytes;
        ++transfers_;
      },
      // Commit: shared sinks and simulator scheduling, ordered.
      [this, &sim, outcome, delivery_seq,
       fn = std::move(on_delivered)]() mutable {
        if (outcome->dropped) {
          if (drop_sink_ != nullptr) ++*drop_sink_;
          return;
        }
        if (outcome->queued && queue_sink_ != nullptr) ++*queue_sink_;
        sim.schedule_at_reserved(outcome->delivered, delivery_seq,
                                 std::move(fn));
      });
}

}  // namespace semcache::edge
