// Deterministic discrete-event simulation core.
//
// Events are ordered by (time, insertion sequence), so two events at the
// same timestamp execute in scheduling order — simulations are bit-for-bit
// reproducible run to run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace semcache::edge {

/// Simulated seconds.
using SimTime = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule a handler at an absolute time >= now.
  void schedule_at(SimTime t, Handler fn);
  /// Schedule a handler `dt >= 0` seconds from now.
  void schedule_after(SimTime dt, Handler fn);

  /// Run until the event queue drains.
  void run();
  /// Run events with time <= t, then set now to t.
  void run_until(SimTime t);
  /// Execute only the next event (test hook); returns false when empty.
  bool step();

  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace semcache::edge
