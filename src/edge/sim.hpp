// Deterministic discrete-event simulation core.
//
// Events are ordered by (time, insertion sequence), so two events at the
// same timestamp execute in scheduling order — simulations are bit-for-bit
// reproducible run to run.
//
// Concurrent phase: schedule_concurrent_at() registers THREE-PHASE events
// for the deterministic parallel phase. When the queue head is a
// concurrent event, the maximal run of consecutive (by queue order)
// concurrent events at the same timestamp forms one WAVE:
//
//   1. every `prepare` runs on the calling thread in scheduling order —
//      this is where order-sensitive shared state (selectors, caches,
//      shared RNG streams) is touched;
//   2. the `compute` handlers are partitioned into lanes by `lane` key
//      (first-appearance order; scheduling order within a lane) and the
//      lanes fan out over the attached ThreadPool — compute bodies in
//      DIFFERENT lanes must not share mutable state and must not touch
//      this Simulator (the disjoint-writes contract of
//      common::ThreadPool), which is what makes the result independent of
//      the worker count;
//   3. every `commit` runs on the calling thread in scheduling order —
//      stats merges, event scheduling, link sends.
//
// With no pool attached (or worker_count 0) the lanes run inline in lane
// order, which is bit-identical to any pooled execution by the contract
// above. An ordinary event interleaved (by scheduling order) between two
// concurrent events at the same timestamp splits the wave — the ordinary
// handler observes exactly the prefix's committed state, as it would have
// sequentially.
//
// Error path: a phase that throws fails only ITS event (later phases
// skipped) and later events in the SAME lane (they share state by
// contract); sibling lanes still compute and commit, and the
// earliest-scheduled captured exception rethrows from step()/run() after
// the wave — mirroring ThreadPool's lowest-index discipline, so a bad
// pair cannot silently discard its siblings' already-popped events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/thread_pool.hpp"

namespace semcache::edge {

/// Simulated seconds.
using SimTime = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule a handler at an absolute time >= now.
  void schedule_at(SimTime t, Handler fn);
  /// Schedule a handler `dt >= 0` seconds from now.
  void schedule_after(SimTime dt, Handler fn);

  /// Schedule a three-phase concurrent event (see file comment). Events
  /// sharing a `lane` key never run their compute phases concurrently
  /// with each other (serving layers key lanes by the state they own,
  /// e.g. the sending user). `prepare` and `commit` may be null;
  /// `compute` must not be.
  void schedule_concurrent_at(SimTime t, std::uint64_t lane, Handler prepare,
                              Handler compute, Handler commit);

  /// Worker pool for the concurrent waves (non-owning; nullptr restores
  /// inline execution). Affects wall clock only, never results.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Run until the event queue drains.
  void run();
  /// Run events with time <= t, then advance now to t. A target in the
  /// past is clamped: time never moves backwards and no event is lost.
  void run_until(SimTime t);
  /// Execute only the next event (test hook); returns false when empty.
  /// A concurrent wave counts as one step (all its events execute).
  bool step();

  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  /// Concurrent-phase extras, boxed so ordinary events — the event
  /// loop's hot path — stay one pointer wider than before the feature
  /// (a fat Event doubles the queue's sift cost; BM_SimulatorEventLoop
  /// guards it).
  struct ConcurrentParts {
    Handler prepare;
    Handler compute;
    std::uint64_t lane = 0;
  };
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;  ///< ordinary handler, or the concurrent event's commit
    std::shared_ptr<ConcurrentParts> conc;  ///< null for ordinary events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void run_wave(std::vector<Event>& wave);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  common::ThreadPool* pool_ = nullptr;
};

}  // namespace semcache::edge
