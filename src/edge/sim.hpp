// Deterministic discrete-event simulation core.
//
// Events are ordered by (time, insertion sequence), so two events at the
// same timestamp execute in scheduling order — simulations are bit-for-bit
// reproducible run to run.
//
// Queue structure: a hierarchical timing wheel (kLevels levels of kSlots
// slots over a kTickSeconds quantum), the classic O(1)-amortized timer
// structure (osmocom's sched_gsmtime frame scheduler is the shape), chosen
// over a binary heap because city-scale topologies carry millions of
// concurrent timers — delivery chains, sync backoff ladders, flap
// schedules — and the heap's O(log n) sift (which COPIES std::function
// closures on every pop; priority_queue has no destructive top) dominated
// the serving profile (BM_SimulatorEventLoop/{1000,100000} pins the
// near-flat per-event cost).
//
//  * schedule: the event's quantized tick is radix-bucketed against the
//    wheel cursor — level = highest differing kSlotBits group, O(1).
//  * pop: per-level occupancy bitmaps skip empty slots with bit scans;
//    entering a higher-level slot cascades its events one level down
//    (each event cascades at most kLevels times — O(1) amortized). A
//    drained level-0 slot becomes the sorted READY RUN; events are MOVED
//    out, never copied.
//  * determinism: one level-0 slot holds exactly one tick; sorting the
//    ready run by (time, seq) reproduces the heap's total order exactly.
//    Quantization is a bucketing choice only — it never reorders events,
//    so wave formation (below) is unchanged.
//  * horizon: events beyond the top level's reach (and times too large to
//    tick at all) wait in an overflow far list; when the wheels drain,
//    the cursor jumps to the far list's earliest tick and the newly
//    in-horizon events migrate in.
//
// Concurrent phase: schedule_concurrent_at() registers THREE-PHASE events
// for the deterministic parallel phase. When the queue head is a
// concurrent event, the maximal run of consecutive (by queue order)
// concurrent events at the same timestamp forms one WAVE:
//
//   1. every `prepare` runs on the calling thread in scheduling order —
//      this is where order-sensitive shared state (selectors, caches,
//      shared RNG streams) is touched;
//   2. the `compute` handlers are partitioned into lanes by `lane` key
//      (first-appearance order; scheduling order within a lane) and the
//      lanes fan out over the attached ThreadPool — compute bodies in
//      DIFFERENT lanes must not share mutable state and must not touch
//      this Simulator (the disjoint-writes contract of
//      common::ThreadPool), which is what makes the result independent of
//      the worker count;
//   3. every `commit` runs on the calling thread in scheduling order —
//      stats merges, event scheduling, link sends.
//
// With no pool attached (or worker_count 0) the lanes run inline in lane
// order, which is bit-identical to any pooled execution by the contract
// above. An ordinary event interleaved (by scheduling order) between two
// concurrent events at the same timestamp splits the wave — the ordinary
// handler observes exactly the prefix's committed state, as it would have
// sequentially.
//
// Error path: a phase that throws fails only ITS event (later phases
// skipped) and later events in the SAME lane (they share state by
// contract); sibling lanes still compute and commit, and the
// earliest-scheduled captured exception rethrows from step()/run() after
// the wave — mirroring ThreadPool's lowest-index discipline, so a bad
// pair cannot silently discard its siblings' already-popped events.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"

namespace semcache::edge {

/// Simulated seconds.
using SimTime = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Timing-wheel quantum in simulated seconds. A bucketing granularity
  /// only: event ORDER is always the exact (time, seq) contract, whatever
  /// the quantum; it merely sets how far apart two timers must be to land
  /// in different wheel slots.
  static constexpr SimTime kTickSeconds = 1e-6;

  SimTime now() const { return now_; }

  /// Schedule a handler at an absolute time >= now.
  void schedule_at(SimTime t, Handler fn);
  /// Schedule a handler `dt >= 0` seconds from now.
  void schedule_after(SimTime dt, Handler fn);

  /// Reserve the insertion-sequence slot the next scheduled event would
  /// get, for a later schedule_at_reserved(). Lets a deferred commit
  /// (e.g. Link::send_concurrent's delivery) keep the same-timestamp
  /// ordering of its reservation site, exactly as if scheduled here. An
  /// unused reservation is harmless — seq gaps never affect ordering.
  std::uint64_t reserve_seq() { return next_seq_++; }
  /// schedule_at() with a sequence from reserve_seq(). `t` must still be
  /// >= now; the reserved seq orders same-timestamp ties, it cannot
  /// reorder against events that already executed.
  void schedule_at_reserved(SimTime t, std::uint64_t seq, Handler fn);

  /// Schedule a three-phase concurrent event (see file comment). Events
  /// sharing a `lane` key never run their compute phases concurrently
  /// with each other (serving layers key lanes by the state they own,
  /// e.g. the sending user; links key them by link id). `prepare` and
  /// `commit` may be null; `compute` must not be.
  void schedule_concurrent_at(SimTime t, std::uint64_t lane, Handler prepare,
                              Handler compute, Handler commit);

  /// Worker pool for the concurrent waves (non-owning; nullptr restores
  /// inline execution). Affects wall clock only, never results.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Run until the event queue drains.
  void run();
  /// Run events with time <= t, then advance now to t. A target in the
  /// past is clamped: time never moves backwards and no event is lost.
  void run_until(SimTime t);
  /// Execute only the next event (test hook); returns false when empty.
  /// A concurrent wave counts as one step (all its events execute).
  bool step();

  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return size_; }

 private:
  /// Concurrent-phase extras, boxed so ordinary events — the event
  /// loop's hot path — stay one pointer wide. Owned by the event and
  /// moved with it (the old shared_ptr existed only because
  /// priority_queue::top() forced a copy on every pop).
  struct ConcurrentParts {
    Handler prepare;
    Handler compute;
    std::uint64_t lane = 0;
  };
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;  ///< ordinary handler, or the concurrent event's commit
    std::unique_ptr<ConcurrentParts> conc;  ///< null for ordinary events
  };

  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 64;  // 1u << kSlotBits
  static constexpr int kLevels = 8;
  /// Ticks at/above 2^62 (and times whose tick overflows the double ->
  /// uint64 conversion) clamp into one far bucket; the exact (t, seq)
  /// sort on drain keeps even those ordered correctly.
  static constexpr std::uint64_t kClampTick = std::uint64_t{1} << 62;

  static bool earlier(const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::uint64_t tick_of(SimTime t) const;
  void push_event(Event ev);
  void wheel_insert(Event ev, std::uint64_t tk);
  /// Ensure the ready run holds the next pending tick's events (sorted by
  /// (t, seq)); false when no events remain anywhere.
  bool fill_ready();
  void run_wave(std::vector<Event>& wave);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t size_ = 0;  ///< pending events, wherever they live

  /// Next tick the wheel scan has not yet swept. Every pending event with
  /// tick < cursor_ lives in ready_; everything else in wheel_ or far_.
  std::uint64_t cursor_ = 0;
  std::array<std::array<std::vector<Event>, kSlots>, kLevels> wheel_;
  std::array<std::uint64_t, kLevels> occupied_{};  ///< per-level slot bitmaps
  std::vector<Event> far_;  ///< out-of-horizon overflow, unordered
  /// Minimum tick on the far list (~0 when empty). Invariant: strictly
  /// greater than every wheel tick — push_event routes anything at/after
  /// it to far_, so a horizon reseed can never move the cursor backwards.
  std::uint64_t far_min_tick_ = ~std::uint64_t{0};

  /// The drained current tick, sorted by (t, seq), consumed from
  /// ready_head_. Re-entrant scheduling into an already-swept tick
  /// splices here, keeping the exact global order.
  std::vector<Event> ready_;
  std::size_t ready_head_ = 0;

  common::ThreadPool* pool_ = nullptr;
};

}  // namespace semcache::edge
