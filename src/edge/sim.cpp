#include "edge/sim.hpp"

#include <exception>

#include "common/check.hpp"
#include "common/grouping.hpp"

namespace semcache::edge {

void Simulator::schedule_at(SimTime t, Handler fn) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(fn != nullptr, "Simulator: null handler");
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
}

void Simulator::schedule_after(SimTime dt, Handler fn) {
  SEMCACHE_CHECK(dt >= 0.0, "Simulator: negative delay");
  schedule_at(now_ + dt, std::move(fn));
}

void Simulator::schedule_concurrent_at(SimTime t, std::uint64_t lane,
                                       Handler prepare, Handler compute,
                                       Handler commit) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(compute != nullptr, "Simulator: null compute handler");
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.fn = std::move(commit);
  ev.conc = std::make_shared<ConcurrentParts>();
  ev.conc->prepare = std::move(prepare);
  ev.conc->compute = std::move(compute);
  ev.conc->lane = lane;
  queue_.push(std::move(ev));
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  // Clamp semantics: a target earlier than now is a no-op — time never
  // moves backwards and pending events stay queued. (Previously a hard
  // error; drivers that poll "advance to max(t, now)" shouldn't have to
  // pre-clamp themselves. Pinned in test_edge.)
  while (!queue_.empty() && queue_.top().t <= t) step();
  if (t > now_) now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the handler out before popping so re-entrant scheduling is safe.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  if (ev.conc == nullptr) {
    ++processed_;
    ev.fn();
    return true;
  }
  // Concurrent wave: the maximal run of consecutive (by queue order)
  // concurrent events at this timestamp. An ordinary event interleaved by
  // scheduling order surfaces as the queue top and ends the wave.
  std::vector<Event> wave;
  wave.push_back(std::move(ev));
  while (!queue_.empty() && queue_.top().conc != nullptr &&
         queue_.top().t == wave.front().t) {
    wave.push_back(queue_.top());
    queue_.pop();
  }
  run_wave(wave);
  return true;
}

void Simulator::run_wave(std::vector<Event>& wave) {
  processed_ += wave.size();
  // Per-event failure isolation: the wave's events are already popped,
  // so an uncaught throw from one handler would silently discard every
  // sibling's remaining phases. Instead a throwing phase fails only ITS
  // event (skipping its later phases) plus later events in the SAME lane
  // (they share state by contract, so running them against a
  // half-mutated lane would be worse); sibling lanes and their commits
  // still run, and the earliest-scheduled exception rethrows afterwards
  // — mirroring ThreadPool's lowest-index discipline.
  std::vector<std::exception_ptr> errors(wave.size());
  std::vector<std::uint8_t> failed(wave.size(), 0);

  // Phase 1: prepares, scheduling order, calling thread. May touch any
  // shared state and may schedule (>= now) — new same-time concurrent
  // events join a LATER wave, deterministically.
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (!wave[i].conc->prepare) continue;
    try {
      wave[i].conc->prepare();
    } catch (...) {
      errors[i] = std::current_exception();
      failed[i] = 1;
    }
  }
  // Phase 2: computes, partitioned into lanes by key (first-appearance
  // order, scheduling order within a lane), fanned out over the pool.
  // The lane bodies catch everything themselves, so the fan-out never
  // short-circuits.
  const auto lanes = common::group_by_first_appearance(
      wave.size(), [&](std::size_t i) { return wave[i].conc->lane; });
  common::parallel_for_or_inline(
      pool_, lanes.groups.size(), [&](std::size_t lane, std::size_t) {
        bool lane_failed = false;
        for (const std::size_t i : lanes.groups[lane]) {
          lane_failed = lane_failed || failed[i] != 0;
          if (lane_failed) {
            failed[i] = 1;
            continue;
          }
          try {
            wave[i].conc->compute();
          } catch (...) {
            errors[i] = std::current_exception();
            failed[i] = 1;
            lane_failed = true;
          }
        }
      });
  // Phase 3: commits, scheduling order, calling thread (skipping events
  // whose earlier phases failed — their state was never computed).
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (failed[i] || !wave[i].fn) continue;
    try {
      wave[i].fn();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace semcache::edge
