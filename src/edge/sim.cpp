#include "edge/sim.hpp"

#include "common/check.hpp"

namespace semcache::edge {

void Simulator::schedule_at(SimTime t, Handler fn) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(fn != nullptr, "Simulator: null handler");
  queue_.push({t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(SimTime dt, Handler fn) {
  SEMCACHE_CHECK(dt >= 0.0, "Simulator: negative delay");
  schedule_at(now_ + dt, std::move(fn));
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  SEMCACHE_CHECK(t >= now_, "Simulator: run_until target is in the past");
  while (!queue_.empty() && queue_.top().t <= t) step();
  now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the handler out before popping so re-entrant scheduling is safe.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

}  // namespace semcache::edge
