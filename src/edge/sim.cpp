#include "edge/sim.hpp"

#include <algorithm>
#include <bit>
#include <exception>

#include "common/check.hpp"
#include "common/grouping.hpp"

namespace semcache::edge {

namespace {

// Highest differing kSlotBits-group between a tick and the cursor — the
// wheel level the tick belongs to. 0 when equal; may be >= kLevels (out
// of horizon), callers decide.
int level_of(std::uint64_t tick, std::uint64_t cursor) {
  const std::uint64_t x = tick ^ cursor;
  if (x == 0) return 0;
  return (63 - std::countl_zero(x)) / 6;
}

}  // namespace

void Simulator::schedule_at(SimTime t, Handler fn) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(fn != nullptr, "Simulator: null handler");
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  push_event(std::move(ev));
}

void Simulator::schedule_after(SimTime dt, Handler fn) {
  SEMCACHE_CHECK(dt >= 0.0, "Simulator: negative delay");
  schedule_at(now_ + dt, std::move(fn));
}

void Simulator::schedule_at_reserved(SimTime t, std::uint64_t seq,
                                     Handler fn) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(fn != nullptr, "Simulator: null handler");
  Event ev;
  ev.t = t;
  ev.seq = seq;
  ev.fn = std::move(fn);
  push_event(std::move(ev));
}

void Simulator::schedule_concurrent_at(SimTime t, std::uint64_t lane,
                                       Handler prepare, Handler compute,
                                       Handler commit) {
  SEMCACHE_CHECK(t >= now_, "Simulator: cannot schedule in the past");
  SEMCACHE_CHECK(compute != nullptr, "Simulator: null compute handler");
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.fn = std::move(commit);
  ev.conc = std::make_unique<ConcurrentParts>();
  ev.conc->prepare = std::move(prepare);
  ev.conc->compute = std::move(compute);
  ev.conc->lane = lane;
  push_event(std::move(ev));
}

std::uint64_t Simulator::tick_of(SimTime t) const {
  // t >= 0 by the schedule checks; !(x < y) also routes inf (and any
  // value the uint64 conversion couldn't represent) into the clamp.
  const double ticks = t / kTickSeconds;
  if (!(ticks < static_cast<double>(kClampTick))) return kClampTick;
  return static_cast<std::uint64_t>(ticks);
}

void Simulator::push_event(Event ev) {
  ++size_;
  const std::uint64_t tk = tick_of(ev.t);
  if (tk < cursor_) {
    // The event's tick is already swept (re-entrant same-tick scheduling,
    // or run_until peeked past it): splice into the ready run at the
    // exact (t, seq) position. Consumed slots before ready_head_ hold
    // moved-out husks and are never compared.
    const auto it = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_),
        ready_.end(), ev,
        [](const Event& a, const Event& b) { return earlier(a, b); });
    ready_.insert(it, std::move(ev));
    return;
  }
  // Far-list invariant: every far tick is strictly greater than every
  // wheel tick, so a tick at/after the far minimum must join the far
  // list even when it would fit the wheel horizon.
  if (tk >= far_min_tick_) {
    far_.push_back(std::move(ev));
    return;
  }
  if (level_of(tk, cursor_) >= kLevels) {
    far_min_tick_ = tk;  // tk < far_min_tick_ here, see above
    far_.push_back(std::move(ev));
    return;
  }
  wheel_insert(std::move(ev), tk);
}

void Simulator::wheel_insert(Event ev, std::uint64_t tk) {
  const int level = level_of(tk, cursor_);  // callers guarantee < kLevels
  const std::size_t s = (tk >> (level * kSlotBits)) & (kSlots - 1);
  wheel_[static_cast<std::size_t>(level)][s].push_back(std::move(ev));
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << s;
}

bool Simulator::fill_ready() {
  if (ready_head_ < ready_.size()) return true;
  ready_.clear();
  ready_head_ = 0;
  if (size_ == 0) return false;
  for (;;) {
    // A level-0 drain's `cursor_ = tick + 1` can CARRY into a new
    // higher-level slot (…63 -> …64 flips a higher digit) without passing
    // through the cascade below, leaving events for the just-entered
    // window parked above level 0. Re-bucket the cursor's OWN slot at
    // those levels before trusting the scan — otherwise a later event
    // pushed into level 0 (e.g. re-entrantly from the carrying tick's
    // handler) would drain ahead of the earlier parked ones. A carry
    // into level l zeroes every digit below l, so level l needs checking
    // only while the cursor's lower digits are all zero — one test on
    // the hot path — and a re-bucketed event differs from the cursor in
    // its new level's digit, so it can never land in a cursor-own slot
    // and one pass suffices.
    for (int l = 1; l < kLevels; ++l) {
      if ((cursor_ & ((std::uint64_t{1} << (l * kSlotBits)) - 1)) != 0) break;
      const std::size_t cs = (cursor_ >> (l * kSlotBits)) & (kSlots - 1);
      if ((occupied_[static_cast<std::size_t>(l)] >> cs & 1) == 0) continue;
      std::vector<Event> batch;
      batch.swap(wheel_[static_cast<std::size_t>(l)][cs]);
      occupied_[static_cast<std::size_t>(l)] &= ~(std::uint64_t{1} << cs);
      for (Event& ev : batch) wheel_insert(std::move(ev), tick_of(ev.t));
    }
    // Lowest occupied slot at/after the cursor on the lowest level wins:
    // lower levels hold nearer ticks by construction.
    int level = -1;
    int s = 0;
    for (int l = 0; l < kLevels; ++l) {
      const int shift = l * kSlotBits;
      const std::uint64_t cslot = (cursor_ >> shift) & (kSlots - 1);
      const std::uint64_t mask =
          occupied_[static_cast<std::size_t>(l)] & (~std::uint64_t{0} << cslot);
      if (mask != 0) {
        level = l;
        s = std::countr_zero(mask);
        break;
      }
    }
    if (level < 0) {
      // Wheels empty; reseed the horizon from the far list. Jump the
      // cursor to the far minimum and migrate whatever now fits.
      SEMCACHE_CHECK(!far_.empty(), "Simulator: pending count out of sync");
      cursor_ = far_min_tick_;
      std::vector<Event> keep;
      std::uint64_t keep_min = ~std::uint64_t{0};
      for (Event& ev : far_) {
        const std::uint64_t tk = tick_of(ev.t);
        if (level_of(tk, cursor_) < kLevels) {
          wheel_insert(std::move(ev), tk);
        } else {
          keep_min = std::min(keep_min, tk);
          keep.push_back(std::move(ev));
        }
      }
      far_ = std::move(keep);
      far_min_tick_ = keep_min;
      continue;
    }
    const int shift = level * kSlotBits;
    if (level == 0) {
      // One level-0 slot is one exact tick: take its events (storage
      // swap, no copies), restore the (t, seq) total order, advance.
      auto& slot = wheel_[0][static_cast<std::size_t>(s)];
      ready_.swap(slot);
      occupied_[0] &= ~(std::uint64_t{1} << s);
      std::sort(ready_.begin(), ready_.end(),
                [](const Event& a, const Event& b) { return earlier(a, b); });
      const std::uint64_t tick =
          ((cursor_ >> kSlotBits) << kSlotBits) | static_cast<std::uint64_t>(s);
      cursor_ = tick + 1;
      return true;
    }
    // Cascade: enter the higher-level slot (s > the cursor's own slot —
    // the pre-pass above already emptied that one), zeroing the cursor's
    // lower digits, and re-bucket its events one or more levels down.
    // Each event cascades at most kLevels times.
    std::vector<Event> batch;
    batch.swap(wheel_[static_cast<std::size_t>(level)][static_cast<std::size_t>(s)]);
    occupied_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << s);
    const std::uint64_t slot_start =
        ((cursor_ >> (shift + kSlotBits)) << (shift + kSlotBits)) |
        (static_cast<std::uint64_t>(s) << shift);
    if (slot_start > cursor_) cursor_ = slot_start;
    for (Event& ev : batch) wheel_insert(std::move(ev), tick_of(ev.t));
  }
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  // Clamp semantics: a target earlier than now is a no-op — time never
  // moves backwards and pending events stay queued. (Previously a hard
  // error; drivers that poll "advance to max(t, now)" shouldn't have to
  // pre-clamp themselves. Pinned in test_edge.)
  while (fill_ready() && ready_[ready_head_].t <= t) step();
  if (t > now_) now_ = t;
}

bool Simulator::step() {
  if (!fill_ready()) return false;
  Event ev = std::move(ready_[ready_head_++]);
  --size_;
  now_ = ev.t;
  if (ev.conc == nullptr) {
    ++processed_;
    ev.fn();
    return true;
  }
  // Concurrent wave: the maximal run of consecutive (by queue order)
  // concurrent events at this timestamp. An ordinary event interleaved by
  // scheduling order sits next in the ready run and ends the wave; events
  // at the same time always share a tick, so the whole wave is already in
  // the ready run — no refill can be needed mid-collection.
  std::vector<Event> wave;
  wave.push_back(std::move(ev));
  while (ready_head_ < ready_.size() &&
         ready_[ready_head_].conc != nullptr &&
         ready_[ready_head_].t == wave.front().t) {
    wave.push_back(std::move(ready_[ready_head_++]));
    --size_;
  }
  run_wave(wave);
  return true;
}

void Simulator::run_wave(std::vector<Event>& wave) {
  processed_ += wave.size();
  // Per-event failure isolation: the wave's events are already popped,
  // so an uncaught throw from one handler would silently discard every
  // sibling's remaining phases. Instead a throwing phase fails only ITS
  // event (skipping its later phases) plus later events in the SAME lane
  // (they share state by contract, so running them against a
  // half-mutated lane would be worse); sibling lanes and their commits
  // still run, and the earliest-scheduled exception rethrows afterwards
  // — mirroring ThreadPool's lowest-index discipline.
  std::vector<std::exception_ptr> errors(wave.size());
  std::vector<std::uint8_t> failed(wave.size(), 0);

  // Phase 1: prepares, scheduling order, calling thread. May touch any
  // shared state and may schedule (>= now) — new same-time concurrent
  // events join a LATER wave, deterministically.
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (!wave[i].conc->prepare) continue;
    try {
      wave[i].conc->prepare();
    } catch (...) {
      errors[i] = std::current_exception();
      failed[i] = 1;
    }
  }
  // Phase 2: computes, partitioned into lanes by key (first-appearance
  // order, scheduling order within a lane), fanned out over the pool.
  // The lane bodies catch everything themselves, so the fan-out never
  // short-circuits.
  const auto lanes = common::group_by_first_appearance(
      wave.size(), [&](std::size_t i) { return wave[i].conc->lane; });
  common::parallel_for_or_inline(
      pool_, lanes.groups.size(), [&](std::size_t lane, std::size_t) {
        bool lane_failed = false;
        for (const std::size_t i : lanes.groups[lane]) {
          lane_failed = lane_failed || failed[i] != 0;
          if (lane_failed) {
            failed[i] = 1;
            continue;
          }
          try {
            wave[i].conc->compute();
          } catch (...) {
            errors[i] = std::current_exception();
            failed[i] = 1;
            lane_failed = true;
          }
        }
      });
  // Phase 3: commits, scheduling order, calling thread (skipping events
  // whose earlier phases failed — their state was never computed).
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (failed[i] || !wave[i].fn) continue;
    try {
      wave[i].fn();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace semcache::edge
