// Point-to-point links with finite bandwidth and propagation delay.
// Transfers serialize FIFO on the link, so large model fetches delay the
// small feature messages queued behind them — the contention that makes
// caching pay off (E5).
//
// Outage model (the fault plane's link layer): a link can be DOWN during
// explicit [start, end) windows and/or on a periodic flap schedule (down
// for `down_s` at the start of every `period_s` window, phase-shifted per
// link). Admission is checked at the moment a transfer WOULD start (after
// FIFO queueing): kQueue shifts the start to the end of the outage and
// counts it queued; kDrop refuses the send — the handler is never
// scheduled, nothing is charged, and kDropped is returned.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "edge/node.hpp"
#include "edge/sim.hpp"

namespace semcache::edge {

using LinkId = std::size_t;

/// What a link does with a transfer that starts inside an outage window.
enum class OutagePolicy {
  kQueue,  ///< hold it; it starts (FIFO order preserved) when the link is up
  kDrop,   ///< refuse it; the delivery handler never fires
};

class Link {
 public:
  /// send() return value for a transfer refused under OutagePolicy::kDrop.
  static constexpr SimTime kDropped = std::numeric_limits<SimTime>::infinity();

  Link(LinkId id, NodeId from, NodeId to, double bandwidth_bps,
       double propagation_s);

  LinkId id() const { return id_; }
  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_; }
  double propagation_s() const { return propagation_; }

  /// Queue `bytes` on the link; `on_delivered` fires at arrival. Returns the
  /// delivery time — or kDropped (handler NOT scheduled, nothing charged)
  /// when the transfer would start inside an outage under kDrop policy.
  SimTime send(Simulator& sim, std::size_t bytes,
               Simulator::Handler on_delivered);

  /// send() for the parallel timing plane: registers the serialization
  /// math as a three-phase concurrent event at sim.now() on this link's
  /// lane, so a wave of sends across many links fans out over the pool
  /// while each link's FIFO (`busy_until_`) stays serialized in
  /// scheduling order. The compute phase touches only this link's own
  /// state; shared sinks and the delivery scheduling happen in the
  /// commit. Bit-identical timing/accounting to the same sends issued
  /// through send() at the same timestamps in the same order — including
  /// same-timestamp ordering against other events the caller schedules
  /// after this call (the delivery's insertion seq is reserved at call
  /// time, where send() would have allocated it, not at the wave's
  /// commit); a kDrop refusal simply never schedules `on_delivered`
  /// (there is no return value to observe — callers that need the
  /// delivery time use send()).
  void send_concurrent(Simulator& sim, std::size_t bytes,
                       Simulator::Handler on_delivered);

  /// Lane key for send_concurrent waves (splitmix64 of the link id, so
  /// small sequential link ids don't collide with other lane keyspaces).
  std::uint64_t lane_key() const { return lane_key_; }

  /// Idle-link transfer latency for `bytes` (serialization + propagation).
  double transfer_time(std::size_t bytes) const;

  // --- outage schedule -------------------------------------------------
  /// Periodic flap: down for `down_s` at the start of every `period_s`
  /// window, the whole schedule shifted by `phase_s`. period_s <= 0 or
  /// down_s <= 0 clears the schedule.
  void set_flap_schedule(double period_s, double down_s, double phase_s);
  /// Explicit outage window [start, end) (tests and scripted scenarios).
  /// Windows are kept sorted and coalesced (overlapping or adjacent
  /// windows merge into one), so queries binary-search a disjoint list.
  void add_outage(SimTime start, SimTime end);
  void set_outage_policy(OutagePolicy policy) { outage_policy_ = policy; }
  OutagePolicy outage_policy() const { return outage_policy_; }
  bool is_down(SimTime t) const;
  /// Earliest time >= t at which the link is up.
  SimTime next_up(SimTime t) const;
  /// Stored (coalesced) explicit outage windows — memory audits.
  std::size_t outage_window_count() const { return outages_.size(); }

  /// Mirror the outage counters into external sinks (the system wires
  /// SystemStats here; edge:: must not depend on core::). Null clears.
  void set_outage_sinks(std::size_t* drops, std::size_t* queued) {
    drop_sink_ = drops;
    queue_sink_ = queued;
  }

  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::size_t transfers() const { return transfers_; }
  std::size_t outage_drops() const { return outage_drops_; }
  std::size_t outage_queued() const { return outage_queued_; }

 private:
  /// Covering outage window for t, or outages_.end(). outages_ is sorted
  /// and disjoint, so at most one window can cover any instant.
  std::vector<std::pair<SimTime, SimTime>>::const_iterator window_covering(
      SimTime t) const;

  LinkId id_;
  NodeId from_;
  NodeId to_;
  double bandwidth_;
  double propagation_;
  std::uint64_t lane_key_;
  SimTime busy_until_ = 0.0;
  std::uint64_t bytes_carried_ = 0;
  std::size_t transfers_ = 0;

  double flap_period_ = 0.0;
  double flap_down_ = 0.0;
  double flap_phase_ = 0.0;
  std::vector<std::pair<SimTime, SimTime>> outages_;  ///< sorted, disjoint
  OutagePolicy outage_policy_ = OutagePolicy::kQueue;
  std::size_t outage_drops_ = 0;
  std::size_t outage_queued_ = 0;
  std::size_t* drop_sink_ = nullptr;
  std::size_t* queue_sink_ = nullptr;
};

}  // namespace semcache::edge
