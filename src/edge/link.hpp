// Point-to-point links with finite bandwidth and propagation delay.
// Transfers serialize FIFO on the link, so large model fetches delay the
// small feature messages queued behind them — the contention that makes
// caching pay off (E5).
#pragma once

#include "edge/node.hpp"
#include "edge/sim.hpp"

namespace semcache::edge {

using LinkId = std::size_t;

class Link {
 public:
  Link(LinkId id, NodeId from, NodeId to, double bandwidth_bps,
       double propagation_s);

  LinkId id() const { return id_; }
  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_; }
  double propagation_s() const { return propagation_; }

  /// Queue `bytes` on the link; `on_delivered` fires at arrival. Returns the
  /// delivery time.
  SimTime send(Simulator& sim, std::size_t bytes,
               Simulator::Handler on_delivered);

  /// Idle-link transfer latency for `bytes` (serialization + propagation).
  double transfer_time(std::size_t bytes) const;

  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::size_t transfers() const { return transfers_; }

 private:
  LinkId id_;
  NodeId from_;
  NodeId to_;
  double bandwidth_;
  double propagation_;
  SimTime busy_until_ = 0.0;
  std::uint64_t bytes_carried_ = 0;
  std::size_t transfers_ = 0;
};

}  // namespace semcache::edge
