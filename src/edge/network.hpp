// Network topology container: owns nodes and links, provides routing between
// directly connected nodes, and builds the standard experiment topology
// (devices -- edge servers -- cloud backbone).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "edge/link.hpp"
#include "edge/node.hpp"

namespace semcache::edge {

struct TopologyConfig {
  // Capacities in FLOP/s. Defaults: a phone, a beefy edge box, a datacenter.
  double device_flops = 5e9;
  double edge_flops = 2e11;
  double cloud_flops = 5e12;
  // Device <-> edge: a wireless access link.
  double access_bandwidth_bps = 20e6;
  double access_propagation_s = 0.004;
  // Edge <-> edge: metro fiber.
  double backbone_bandwidth_bps = 1e9;
  double backbone_propagation_s = 0.010;
  // Edge <-> cloud: wide-area path.
  double cloud_bandwidth_bps = 200e6;
  double cloud_propagation_s = 0.060;
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(std::string name, NodeKind kind, double flops);
  /// Adds a bidirectional pair of links; returns the forward link id.
  LinkId connect(NodeId a, NodeId b, double bandwidth_bps,
                 double propagation_s);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  /// Directed link a -> b; throws if the nodes are not adjacent.
  Link& link(NodeId a, NodeId b);
  /// Link by id (the fault plane walks every link to wire flap schedules).
  Link& link_at(LinkId id);
  std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  std::uint64_t total_bytes_carried() const;

  /// Approximate resident bytes of the topology itself (nodes, links,
  /// adjacency map). Feeds the system memory audit: at city scale each
  /// registered device is a node plus two links, so topology is a real,
  /// measurable per-user cost rather than a rounding error.
  std::size_t approx_byte_size() const;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::uint64_t, LinkId> adjacency_;  // (a<<32|b) -> link
};

/// The standard two-edge-server topology of Fig. 1 plus a cloud model
/// repository: users' devices attach to their local edge server; edge
/// servers interconnect and reach the cloud.
struct StandardTopology {
  std::unique_ptr<Network> net;
  NodeId cloud;
  std::vector<NodeId> edges;                 // edge servers
  std::vector<std::vector<NodeId>> devices;  // devices per edge server
};

StandardTopology build_standard_topology(std::size_t num_edges,
                                         std::size_t devices_per_edge,
                                         const TopologyConfig& config = {});

}  // namespace semcache::edge
