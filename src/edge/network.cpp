#include "edge/network.hpp"

#include "common/check.hpp"

namespace semcache::edge {

namespace {
std::uint64_t key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}
}  // namespace

NodeId Network::add_node(std::string name, NodeKind kind, double flops) {
  const NodeId id = nodes_.size();
  nodes_.push_back(std::make_unique<Node>(id, std::move(name), kind, flops));
  return id;
}

LinkId Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                        double propagation_s) {
  SEMCACHE_CHECK(a < nodes_.size() && b < nodes_.size(),
                 "Network::connect: unknown node");
  SEMCACHE_CHECK(a != b, "Network::connect: self-link");
  SEMCACHE_CHECK(!adjacency_.contains(key(a, b)),
                 "Network::connect: duplicate link");
  const LinkId forward = links_.size();
  links_.push_back(
      std::make_unique<Link>(forward, a, b, bandwidth_bps, propagation_s));
  adjacency_.emplace(key(a, b), forward);
  const LinkId reverse = links_.size();
  links_.push_back(
      std::make_unique<Link>(reverse, b, a, bandwidth_bps, propagation_s));
  adjacency_.emplace(key(b, a), reverse);
  return forward;
}

Node& Network::node(NodeId id) {
  SEMCACHE_CHECK(id < nodes_.size(), "Network::node: unknown id");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  SEMCACHE_CHECK(id < nodes_.size(), "Network::node: unknown id");
  return *nodes_[id];
}

Link& Network::link(NodeId a, NodeId b) {
  const auto it = adjacency_.find(key(a, b));
  SEMCACHE_CHECK(it != adjacency_.end(),
                 "Network::link: nodes are not adjacent");
  return *links_[it->second];
}

Link& Network::link_at(LinkId id) {
  SEMCACHE_CHECK(id < links_.size(), "Network::link_at: unknown id");
  return *links_[id];
}

std::optional<LinkId> Network::find_link(NodeId a, NodeId b) const {
  const auto it = adjacency_.find(key(a, b));
  if (it == adjacency_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Network::total_bytes_carried() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->bytes_carried();
  return total;
}

std::size_t Network::approx_byte_size() const {
  std::size_t total = nodes_.capacity() * sizeof(nodes_[0]) +
                      links_.capacity() * sizeof(links_[0]);
  for (const auto& n : nodes_) total += sizeof(Node) + n->name().capacity();
  total += links_.size() * sizeof(Link);
  // Scripted outage schedules hang off the links (fault-plane scenarios
  // can carry thousands of windows per link before coalescing).
  for (const auto& l : links_) {
    total += l->outage_window_count() * sizeof(std::pair<SimTime, SimTime>);
  }
  // Hash map entry: key + value + a node pointer / bucket slot of overhead.
  total += adjacency_.size() *
           (sizeof(std::uint64_t) + sizeof(LinkId) + 2 * sizeof(void*));
  return total;
}

StandardTopology build_standard_topology(std::size_t num_edges,
                                         std::size_t devices_per_edge,
                                         const TopologyConfig& config) {
  SEMCACHE_CHECK(num_edges >= 1, "topology: need at least one edge server");
  StandardTopology topo;
  topo.net = std::make_unique<Network>();
  topo.cloud =
      topo.net->add_node("cloud", NodeKind::kCloud, config.cloud_flops);
  for (std::size_t e = 0; e < num_edges; ++e) {
    const NodeId edge = topo.net->add_node("edge" + std::to_string(e),
                                           NodeKind::kEdgeServer,
                                           config.edge_flops);
    topo.edges.push_back(edge);
    topo.net->connect(edge, topo.cloud, config.cloud_bandwidth_bps,
                      config.cloud_propagation_s);
    for (std::size_t prev = 0; prev < e; ++prev) {
      topo.net->connect(edge, topo.edges[prev], config.backbone_bandwidth_bps,
                        config.backbone_propagation_s);
    }
    topo.devices.emplace_back();
    for (std::size_t d = 0; d < devices_per_edge; ++d) {
      const NodeId dev = topo.net->add_node(
          "dev" + std::to_string(e) + "_" + std::to_string(d),
          NodeKind::kDevice, config.device_flops);
      topo.net->connect(dev, edge, config.access_bandwidth_bps,
                        config.access_propagation_s);
      topo.devices.back().push_back(dev);
    }
  }
  return topo;
}

}  // namespace semcache::edge
