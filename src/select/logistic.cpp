#include "select/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::select {

LogisticSelector::LogisticSelector(std::size_t vocab_size,
                                   std::size_t num_domains, Rng& rng,
                                   double lr)
    : vocab_(vocab_size),
      domains_(num_domains),
      linear_(vocab_size, num_domains, rng, "logit"),
      opt_(lr) {
  SEMCACHE_CHECK(vocab_size >= 1 && num_domains >= 1,
                 "logistic: bad dimensions");
}

tensor::Tensor LogisticSelector::featurize(
    std::span<const std::int32_t> surface) const {
  tensor::Tensor x({1, vocab_});
  if (surface.empty()) return x;
  const float w = 1.0f / static_cast<float>(surface.size());
  for (const auto id : surface) {
    SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < vocab_,
                   "logistic: word id out of range");
    x.at(0, static_cast<std::size_t>(id)) += w;
  }
  return x;
}

void LogisticSelector::observe(std::span<const std::int32_t> surface,
                               std::size_t domain) {
  SEMCACHE_CHECK(domain < domains_, "logistic: domain out of range");
  const tensor::Tensor x = featurize(surface);
  const tensor::Tensor logits = linear_.forward(x);
  const std::int32_t target = static_cast<std::int32_t>(domain);
  loss_.forward(logits, std::span<const std::int32_t>(&target, 1));
  auto params = linear_.parameters();
  nn::Optimizer::zero_grad(params);
  linear_.backward(loss_.backward());
  opt_.step(params);
}

std::vector<double> LogisticSelector::log_posterior(
    std::span<const std::int32_t> surface) {
  const tensor::Tensor logits = linear_.forward(featurize(surface));
  // log-softmax over the single row.
  double mx = logits.at(0, 0);
  for (std::size_t d = 1; d < domains_; ++d) {
    mx = std::max(mx, static_cast<double>(logits.at(0, d)));
  }
  double sum = 0.0;
  for (std::size_t d = 0; d < domains_; ++d) {
    sum += std::exp(static_cast<double>(logits.at(0, d)) - mx);
  }
  const double lse = mx + std::log(sum);
  std::vector<double> out(domains_);
  for (std::size_t d = 0; d < domains_; ++d) {
    out[d] = static_cast<double>(logits.at(0, d)) - lse;
  }
  return out;
}

std::size_t LogisticSelector::select(std::span<const std::int32_t> surface) {
  const auto scores = log_posterior(surface);
  return static_cast<std::size_t>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

}  // namespace semcache::select
