// GRU sequence classifier over conversations — the learned context-aware
// selector (§III-A suggests "LSTM-based classification networks"; we use a
// GRU, see DESIGN.md substitutions).
//
// Message embedding = mean of trainable word embeddings; a GRU consumes the
// message-embedding sequence; a linear head maps each hidden state to
// domain logits. Trained with BPTT over full conversations.
#pragma once

#include "nn/gru.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "select/selector.hpp"

namespace semcache::select {

struct GruClassifierConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 32;
  double lr = 5e-3;
  double grad_clip = 5.0;
};

class GruClassifier final : public DomainSelector {
 public:
  GruClassifier(std::size_t vocab_size, std::size_t num_domains, Rng& rng,
                const GruClassifierConfig& config = {});

  /// One BPTT step over a labeled conversation; returns the mean loss.
  double train_conversation(const Conversation& conversation);

  /// Online prediction: appends the message to the current conversation
  /// context and re-runs the prefix (conversations are short).
  std::size_t select(std::span<const std::int32_t> surface) override;
  /// Single-message supervised example (treated as a length-1 conversation).
  void observe(std::span<const std::int32_t> surface,
               std::size_t domain) override;
  void reset_context() override;
  std::string name() const override { return "gru"; }

 private:
  /// Mean word embedding of a message -> (1 x embed_dim).
  tensor::Tensor embed_message(std::span<const std::int32_t> surface) const;
  /// Forward a whole conversation; returns (T x domains) logits.
  tensor::Tensor forward_sequence(
      const std::vector<std::vector<std::int32_t>>& messages);
  std::vector<nn::Parameter*> all_params();

  std::size_t vocab_;
  std::size_t domains_;
  GruClassifierConfig config_;
  nn::Parameter embed_;
  nn::Gru gru_;
  nn::Linear head_;
  nn::Adam opt_;
  std::vector<std::vector<std::int32_t>> context_;  // current conversation
};

}  // namespace semcache::select
