// Multinomial naive Bayes over surface words — the "traditional
// classification neural network" strawman of §III-A (we use NB as the
// classic stateless baseline; the logistic selector is its trained-NN twin).
#pragma once

#include "select/selector.hpp"

namespace semcache::select {

class NaiveBayesSelector final : public ProbabilisticSelector {
 public:
  NaiveBayesSelector(std::size_t vocab_size, std::size_t num_domains,
                     double smoothing = 1.0);

  std::size_t select(std::span<const std::int32_t> surface) override;
  void observe(std::span<const std::int32_t> surface,
               std::size_t domain) override;
  std::vector<double> log_posterior(
      std::span<const std::int32_t> surface) override;
  std::string name() const override { return "naive_bayes"; }

 private:
  std::size_t vocab_;
  std::size_t domains_;
  double smoothing_;
  std::vector<std::vector<std::uint64_t>> word_counts_;  // [domain][word]
  std::vector<std::uint64_t> domain_totals_;             // words per domain
  std::vector<std::uint64_t> domain_docs_;               // docs per domain
  std::uint64_t total_docs_ = 0;
};

}  // namespace semcache::select
