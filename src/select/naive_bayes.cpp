#include "select/naive_bayes.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::select {

NaiveBayesSelector::NaiveBayesSelector(std::size_t vocab_size,
                                       std::size_t num_domains,
                                       double smoothing)
    : vocab_(vocab_size),
      domains_(num_domains),
      smoothing_(smoothing),
      word_counts_(num_domains, std::vector<std::uint64_t>(vocab_size, 0)),
      domain_totals_(num_domains, 0),
      domain_docs_(num_domains, 0) {
  SEMCACHE_CHECK(vocab_size >= 1 && num_domains >= 1,
                 "naive_bayes: bad dimensions");
  SEMCACHE_CHECK(smoothing > 0.0, "naive_bayes: smoothing must be positive");
}

void NaiveBayesSelector::observe(std::span<const std::int32_t> surface,
                                 std::size_t domain) {
  SEMCACHE_CHECK(domain < domains_, "naive_bayes: domain out of range");
  for (const auto w : surface) {
    SEMCACHE_CHECK(w >= 0 && static_cast<std::size_t>(w) < vocab_,
                   "naive_bayes: word id out of range");
    ++word_counts_[domain][static_cast<std::size_t>(w)];
    ++domain_totals_[domain];
  }
  ++domain_docs_[domain];
  ++total_docs_;
}

std::vector<double> NaiveBayesSelector::log_posterior(
    std::span<const std::int32_t> surface) {
  std::vector<double> scores(domains_);
  for (std::size_t d = 0; d < domains_; ++d) {
    // Smoothed class prior.
    double s = std::log(
        (static_cast<double>(domain_docs_[d]) + 1.0) /
        (static_cast<double>(total_docs_) + static_cast<double>(domains_)));
    const double denom = static_cast<double>(domain_totals_[d]) +
                         smoothing_ * static_cast<double>(vocab_);
    for (const auto w : surface) {
      const double count = static_cast<double>(
          word_counts_[d][static_cast<std::size_t>(w)]);
      s += std::log((count + smoothing_) / denom);
    }
    scores[d] = s;
  }
  // Normalize to log-probabilities (log-sum-exp).
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (const double s : scores) sum += std::exp(s - mx);
  const double lse = mx + std::log(sum);
  for (double& s : scores) s -= lse;
  return scores;
}

std::size_t NaiveBayesSelector::select(
    std::span<const std::int32_t> surface) {
  const auto scores = log_posterior(surface);
  return static_cast<std::size_t>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

}  // namespace semcache::select
