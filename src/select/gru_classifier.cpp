#include "select/gru_classifier.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::select {

using tensor::Tensor;

GruClassifier::GruClassifier(std::size_t vocab_size, std::size_t num_domains,
                             Rng& rng, const GruClassifierConfig& config)
    : vocab_(vocab_size),
      domains_(num_domains),
      config_(config),
      embed_("gruc.embed",
             Tensor::uniform({vocab_size, config.embed_dim}, 0.1f, rng)),
      gru_(config.embed_dim, config.hidden_dim, rng, "gruc.gru"),
      head_(config.hidden_dim, num_domains, rng, "gruc.head"),
      opt_(config.lr) {
  SEMCACHE_CHECK(vocab_size >= 1 && num_domains >= 1,
                 "gru_classifier: bad dimensions");
}

Tensor GruClassifier::embed_message(
    std::span<const std::int32_t> surface) const {
  Tensor x({1, config_.embed_dim});
  if (surface.empty()) return x;
  const float w = 1.0f / static_cast<float>(surface.size());
  for (const auto id : surface) {
    SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < vocab_,
                   "gru_classifier: word id out of range");
    for (std::size_t j = 0; j < config_.embed_dim; ++j) {
      x.at(0, j) += embed_.value.at(static_cast<std::size_t>(id), j) * w;
    }
  }
  return x;
}

Tensor GruClassifier::forward_sequence(
    const std::vector<std::vector<std::int32_t>>& messages) {
  const std::size_t t_steps = messages.size();
  Tensor xs({t_steps, config_.embed_dim});
  for (std::size_t t = 0; t < t_steps; ++t) {
    const Tensor e = embed_message(messages[t]);
    for (std::size_t j = 0; j < config_.embed_dim; ++j) {
      xs.at(t, j) = e.at(0, j);
    }
  }
  const Tensor hs = gru_.forward(xs);
  return head_.forward(hs);  // (T x domains)
}

std::vector<nn::Parameter*> GruClassifier::all_params() {
  std::vector<nn::Parameter*> out{&embed_};
  for (nn::Parameter* p : gru_.parameters()) out.push_back(p);
  for (nn::Parameter* p : head_.parameters()) out.push_back(p);
  return out;
}

double GruClassifier::train_conversation(const Conversation& conversation) {
  SEMCACHE_CHECK(!conversation.messages.empty(),
                 "gru_classifier: empty conversation");
  std::vector<std::vector<std::int32_t>> msgs;
  std::vector<std::int32_t> labels;
  msgs.reserve(conversation.messages.size());
  for (const auto& m : conversation.messages) {
    msgs.push_back(m.surface);
    labels.push_back(static_cast<std::int32_t>(m.domain));
  }

  auto params = all_params();
  nn::Optimizer::zero_grad(params);

  const Tensor logits = forward_sequence(msgs);
  nn::SoftmaxCrossEntropy loss;
  const double value = loss.forward(logits, labels);

  const Tensor dlogits = loss.backward();
  const Tensor dhs = head_.backward(dlogits);
  const Tensor dxs = gru_.backward(dhs);
  // Spread message-embedding gradients back to the word embedding rows.
  for (std::size_t t = 0; t < msgs.size(); ++t) {
    if (msgs[t].empty()) continue;
    const float w = 1.0f / static_cast<float>(msgs[t].size());
    for (const auto id : msgs[t]) {
      for (std::size_t j = 0; j < config_.embed_dim; ++j) {
        embed_.grad.at(static_cast<std::size_t>(id), j) += dxs.at(t, j) * w;
      }
    }
  }

  nn::Optimizer::clip_grad_norm(params, config_.grad_clip);
  opt_.step(params);
  return value;
}

std::size_t GruClassifier::select(std::span<const std::int32_t> surface) {
  context_.emplace_back(surface.begin(), surface.end());
  const Tensor logits = forward_sequence(context_);
  const std::size_t last = context_.size() - 1;
  std::size_t best = 0;
  for (std::size_t d = 1; d < domains_; ++d) {
    if (logits.at(last, d) > logits.at(last, best)) best = d;
  }
  return best;
}

void GruClassifier::observe(std::span<const std::int32_t> surface,
                            std::size_t domain) {
  Conversation conv;
  text::Sentence s;
  s.domain = domain;
  s.surface.assign(surface.begin(), surface.end());
  conv.messages.push_back(std::move(s));
  train_conversation(conv);
}

void GruClassifier::reset_context() { context_.clear(); }

}  // namespace semcache::select
