// Logistic-regression selector: a single trained linear layer over
// normalized bag-of-words counts — the stateless neural classifier of
// §III-A, trained online with cross-entropy.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "select/selector.hpp"

namespace semcache::select {

class LogisticSelector final : public ProbabilisticSelector {
 public:
  LogisticSelector(std::size_t vocab_size, std::size_t num_domains, Rng& rng,
                   double lr = 0.1);

  std::size_t select(std::span<const std::int32_t> surface) override;
  void observe(std::span<const std::int32_t> surface,
               std::size_t domain) override;
  std::vector<double> log_posterior(
      std::span<const std::int32_t> surface) override;
  std::string name() const override { return "logistic"; }

 private:
  tensor::Tensor featurize(std::span<const std::int32_t> surface) const;

  std::size_t vocab_;
  std::size_t domains_;
  nn::Linear linear_;
  nn::SoftmaxCrossEntropy loss_;
  nn::Sgd opt_;
};

}  // namespace semcache::select
