// Model-selection interface (§III-A): given an incoming message (surface
// ids), choose the domain-specialized KB model to encode/decode it with.
//
// Stateless selectors classify each message in isolation; context-aware
// selectors carry conversation state ("the user's preferences and habits")
// across messages — the comparison E6 quantifies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "text/corpus.hpp"

namespace semcache::select {

class DomainSelector {
 public:
  virtual ~DomainSelector() = default;
  DomainSelector() = default;
  DomainSelector(const DomainSelector&) = delete;
  DomainSelector& operator=(const DomainSelector&) = delete;

  /// Predict the domain of a message.
  virtual std::size_t select(std::span<const std::int32_t> surface) = 0;
  /// Supervised training example (offline phase).
  virtual void observe(std::span<const std::int32_t> surface,
                       std::size_t domain) = 0;
  /// Conversation boundary: drop any accumulated context.
  virtual void reset_context() {}
  virtual std::string name() const = 0;
};

/// Selectors that can expose per-class log-probabilities (needed by the
/// context decorators).
class ProbabilisticSelector : public DomainSelector {
 public:
  virtual std::vector<double> log_posterior(
      std::span<const std::int32_t> surface) = 0;
};

/// A synthetic conversation: messages with sticky topics (the domain
/// switches with probability `switch_prob` between messages).
struct Conversation {
  std::vector<text::Sentence> messages;
};

Conversation generate_conversation(const text::World& world,
                                   std::size_t length, double switch_prob,
                                   Rng& rng);

}  // namespace semcache::select
