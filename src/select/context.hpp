// Context-aware selection (§III-A): "as context is often critical in
// selecting the appropriate model". Two pieces:
//
//  * ContextSelector — decorates any ProbabilisticSelector with an EWMA
//    over per-message posteriors plus a sticky Markov topic prior. This is
//    the cheap, training-free way to exploit conversation context.
//  * generate_conversation — sticky-topic conversation workload (shared
//    with the GRU classifier and E6).
#pragma once

#include <memory>

#include "select/selector.hpp"

namespace semcache::select {

struct ContextConfig {
  double ewma = 0.6;       ///< weight on accumulated context (0 = stateless)
  double stay_prob = 0.85; ///< Markov prior: P(topic stays between messages)
};

class ContextSelector final : public DomainSelector {
 public:
  ContextSelector(std::unique_ptr<ProbabilisticSelector> base,
                  std::size_t num_domains, const ContextConfig& config = {});

  std::size_t select(std::span<const std::int32_t> surface) override;
  void observe(std::span<const std::int32_t> surface,
               std::size_t domain) override;
  void reset_context() override;
  std::string name() const override;

 private:
  std::unique_ptr<ProbabilisticSelector> base_;
  std::size_t domains_;
  ContextConfig config_;
  std::vector<double> belief_;  ///< accumulated log-belief per domain
  bool has_context_ = false;
};

}  // namespace semcache::select
