#include "select/context.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::select {

Conversation generate_conversation(const text::World& world,
                                   std::size_t length, double switch_prob,
                                   Rng& rng) {
  SEMCACHE_CHECK(switch_prob >= 0.0 && switch_prob <= 1.0,
                 "conversation: switch_prob must be in [0, 1]");
  Conversation conv;
  conv.messages.reserve(length);
  auto domain = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(world.num_domains()) - 1));
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0 && world.num_domains() > 1 && rng.bernoulli(switch_prob)) {
      // Switch to a different domain uniformly.
      const auto offset = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(world.num_domains()) - 1));
      domain = (domain + offset) % world.num_domains();
    }
    conv.messages.push_back(world.sample_sentence(domain, rng));
  }
  return conv;
}

ContextSelector::ContextSelector(std::unique_ptr<ProbabilisticSelector> base,
                                 std::size_t num_domains,
                                 const ContextConfig& config)
    : base_(std::move(base)),
      domains_(num_domains),
      config_(config),
      belief_(num_domains, 0.0) {
  SEMCACHE_CHECK(base_ != nullptr, "context: null base selector");
  SEMCACHE_CHECK(config.ewma >= 0.0 && config.ewma < 1.0,
                 "context: ewma must be in [0, 1)");
  SEMCACHE_CHECK(config.stay_prob > 0.0 && config.stay_prob < 1.0,
                 "context: stay_prob must be in (0, 1)");
}

std::size_t ContextSelector::select(std::span<const std::int32_t> surface) {
  const std::vector<double> msg = base_->log_posterior(surface);
  std::vector<double> combined(domains_);
  if (!has_context_) {
    combined = msg;
  } else {
    // Markov transition applied to the prior belief, then EWMA-blend with
    // the per-message evidence.
    const double stay = std::log(config_.stay_prob);
    const double move = std::log((1.0 - config_.stay_prob) /
                                 std::max<double>(1, domains_ - 1));
    // Prior after transition: for each target d, logsumexp over sources.
    std::vector<double> prior(domains_);
    for (std::size_t d = 0; d < domains_; ++d) {
      double mx = -1e300;
      for (std::size_t s = 0; s < domains_; ++s) {
        const double t = belief_[s] + (s == d ? stay : move);
        mx = std::max(mx, t);
      }
      double sum = 0.0;
      for (std::size_t s = 0; s < domains_; ++s) {
        sum += std::exp(belief_[s] + (s == d ? stay : move) - mx);
      }
      prior[d] = mx + std::log(sum);
    }
    for (std::size_t d = 0; d < domains_; ++d) {
      combined[d] = config_.ewma * prior[d] + (1.0 - config_.ewma) * msg[d];
    }
  }
  // Renormalize and store as the new belief.
  const double mx = *std::max_element(combined.begin(), combined.end());
  double sum = 0.0;
  for (const double c : combined) sum += std::exp(c - mx);
  const double lse = mx + std::log(sum);
  for (double& c : combined) c -= lse;
  belief_ = combined;
  has_context_ = true;
  return static_cast<std::size_t>(std::distance(
      combined.begin(), std::max_element(combined.begin(), combined.end())));
}

void ContextSelector::observe(std::span<const std::int32_t> surface,
                              std::size_t domain) {
  base_->observe(surface, domain);
}

void ContextSelector::reset_context() {
  std::fill(belief_.begin(), belief_.end(), 0.0);
  has_context_ = false;
  base_->reset_context();
}

std::string ContextSelector::name() const {
  return "context(" + base_->name() + ")";
}

}  // namespace semcache::select
