#include "cache/registry.hpp"

#include "common/check.hpp"

namespace semcache::cache {

void ModelRegistry::register_model(const std::string& key,
                                   std::size_t size_bytes) {
  SEMCACHE_CHECK(size_bytes > 0, "registry: zero-size model");
  SEMCACHE_CHECK(!sizes_.contains(key),
                 "registry: duplicate model key " + key);
  sizes_.emplace(key, size_bytes);
}

std::size_t ModelRegistry::model_size(const std::string& key) const {
  const auto it = sizes_.find(key);
  SEMCACHE_CHECK(it != sizes_.end(), "registry: unknown model " + key);
  return it->second;
}

edge::SimTime ModelRegistry::fetch(edge::Simulator& sim,
                                   edge::Link& cloud_link,
                                   const std::string& key,
                                   edge::Simulator::Handler on_done) {
  const std::size_t size = model_size(key);
  ++fetches_;
  bytes_fetched_ += size;
  return cloud_link.send(sim, size, std::move(on_done));
}

double ModelRegistry::fetch_latency(const edge::Link& cloud_link,
                                    const std::string& key) const {
  return cloud_link.transfer_time(model_size(key));
}

}  // namespace semcache::cache
