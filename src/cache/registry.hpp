// Cloud model registry: the authoritative store every KB model can be
// re-fetched from. A cache miss on an edge server turns into a simulated
// transfer over the edge-cloud link — the "time and resources required to
// establish individual KBs" that caching is supposed to save (E5).
#pragma once

#include <string>
#include <unordered_map>

#include "edge/network.hpp"
#include "edge/sim.hpp"

namespace semcache::cache {

class ModelRegistry {
 public:
  void register_model(const std::string& key, std::size_t size_bytes);
  bool contains(const std::string& key) const { return sizes_.contains(key); }
  std::size_t model_size(const std::string& key) const;
  std::size_t model_count() const { return sizes_.size(); }

  /// Simulate fetching a model from the cloud over `cloud_link` (the
  /// directed cloud -> edge link); `on_done` fires at delivery. Returns the
  /// scheduled delivery time.
  edge::SimTime fetch(edge::Simulator& sim, edge::Link& cloud_link,
                      const std::string& key,
                      edge::Simulator::Handler on_done);

  /// Idle-network fetch latency for a model.
  double fetch_latency(const edge::Link& cloud_link,
                       const std::string& key) const;

  std::size_t fetches() const { return fetches_; }
  std::uint64_t bytes_fetched() const { return bytes_fetched_; }

 private:
  std::unordered_map<std::string, std::size_t> sizes_;
  std::size_t fetches_ = 0;
  std::uint64_t bytes_fetched_ = 0;
};

}  // namespace semcache::cache
