// Eviction policies for the model caches on edge servers.
//
// The paper's abstract claims caching "reduce[s] the time and resources
// required to establish individual KBs"; which policy the edge runs decides
// how often a needed KB model is resident. Five policies sit behind one
// interface so E5 can ablate them: FIFO, LRU, LFU, GDSF (cost/size aware),
// and SemanticPopularity (GDSF with exponential recency decay — tuned for
// topic drift in conversation workloads).
#pragma once

#include <memory>
#include <string>

namespace semcache::cache {

struct EntryInfo {
  std::size_t size_bytes = 0;
  double fetch_cost = 1.0;  ///< seconds to re-fetch on a miss
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  EvictionPolicy() = default;
  EvictionPolicy(const EvictionPolicy&) = delete;
  EvictionPolicy& operator=(const EvictionPolicy&) = delete;

  virtual void on_insert(const std::string& key, const EntryInfo& info) = 0;
  virtual void on_access(const std::string& key) = 0;
  virtual void on_erase(const std::string& key) = 0;
  /// Key to evict next; the cache guarantees it is non-empty.
  virtual std::string choose_victim() = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<EvictionPolicy> make_fifo_policy();
std::unique_ptr<EvictionPolicy> make_lru_policy();
std::unique_ptr<EvictionPolicy> make_lfu_policy();
std::unique_ptr<EvictionPolicy> make_gdsf_policy();
/// `decay` in (0, 1]: per-access multiplicative decay of all popularities.
std::unique_ptr<EvictionPolicy> make_sempop_policy(double decay = 0.98);

/// Factory by name ("fifo" | "lru" | "lfu" | "gdsf" | "sempop").
std::unique_ptr<EvictionPolicy> make_policy(const std::string& name);

}  // namespace semcache::cache
