#include "cache/cache.hpp"

#include <sstream>

namespace semcache::cache {

std::string CacheStats::to_string() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=" << hit_rate()
     << " evictions=" << evictions << " rejected=" << rejected;
  return os.str();
}

}  // namespace semcache::cache
