// Byte-capacity cache with pluggable eviction. Values are owned via
// shared_ptr so callers can keep using an entry that gets evicted mid-use
// (models are large; copying them on every access would defeat the point).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "common/check.hpp"

namespace semcache::cache {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t rejected = 0;  ///< items larger than total capacity
  std::uint64_t bytes_evicted = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  std::string to_string() const;
};

template <typename Value>
class Cache {
 public:
  Cache(std::size_t capacity_bytes, std::unique_ptr<EvictionPolicy> policy)
      : capacity_(capacity_bytes), policy_(std::move(policy)) {
    SEMCACHE_CHECK(policy_ != nullptr, "Cache: null policy");
  }

  /// Lookup; counts a hit or miss and notifies the policy.
  std::shared_ptr<Value> get(const std::string& key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    policy_->on_access(key);
    return it->second.value;
  }

  /// Lookup without touching statistics or recency (for inspection).
  std::shared_ptr<Value> peek(const std::string& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.value;
  }

  struct PutResult {
    bool inserted = false;
    std::vector<std::string> evicted;
  };

  /// Insert or replace; evicts until the entry fits. Entries larger than
  /// the whole cache are rejected.
  PutResult put(const std::string& key, std::shared_ptr<Value> value,
                const EntryInfo& info) {
    SEMCACHE_CHECK(value != nullptr, "Cache::put: null value");
    PutResult result;
    if (info.size_bytes > capacity_) {
      ++stats_.rejected;
      return result;
    }
    erase(key);  // replace semantics
    while (used_ + info.size_bytes > capacity_) {
      const std::string victim = policy_->choose_victim();
      SEMCACHE_CHECK(victim != key, "Cache: policy evicted the new key");
      evict(victim);
      result.evicted.push_back(victim);
    }
    entries_[key] = {std::move(value), info};
    used_ += info.size_bytes;
    policy_->on_insert(key, info);
    ++stats_.insertions;
    result.inserted = true;
    return result;
  }

  bool contains(const std::string& key) const { return entries_.contains(key); }

  /// Remove an entry if present (not counted as an eviction).
  bool erase(const std::string& key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    used_ -= it->second.info.size_bytes;
    policy_->on_erase(key);
    entries_.erase(it);
    return true;
  }

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t entry_count() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }
  const std::string policy_name() const { return policy_->name(); }

 private:
  struct Entry {
    std::shared_ptr<Value> value;
    EntryInfo info;
  };

  void evict(const std::string& key) {
    const auto it = entries_.find(key);
    SEMCACHE_CHECK(it != entries_.end(), "Cache: policy chose unknown victim");
    used_ -= it->second.info.size_bytes;
    stats_.bytes_evicted += it->second.info.size_bytes;
    ++stats_.evictions;
    policy_->on_erase(key);
    entries_.erase(it);
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unordered_map<std::string, Entry> entries_;
  CacheStats stats_;
};

}  // namespace semcache::cache
