#include "cache/policy.hpp"

#include <algorithm>
#include <list>
#include <map>
#include <unordered_map>

#include "common/check.hpp"

namespace semcache::cache {

namespace {

class FifoPolicy final : public EvictionPolicy {
 public:
  void on_insert(const std::string& key, const EntryInfo&) override {
    order_.push_back(key);
  }
  void on_access(const std::string&) override {}
  void on_erase(const std::string& key) override {
    order_.remove(key);
  }
  std::string choose_victim() override {
    SEMCACHE_CHECK(!order_.empty(), "fifo: empty");
    return order_.front();
  }
  std::string name() const override { return "fifo"; }

 private:
  std::list<std::string> order_;
};

class LruPolicy final : public EvictionPolicy {
 public:
  void on_insert(const std::string& key, const EntryInfo&) override {
    touch(key);
  }
  void on_access(const std::string& key) override { touch(key); }
  void on_erase(const std::string& key) override {
    const auto it = pos_.find(key);
    if (it != pos_.end()) {
      order_.erase(it->second);
      pos_.erase(it);
    }
  }
  std::string choose_victim() override {
    SEMCACHE_CHECK(!order_.empty(), "lru: empty");
    return order_.back();
  }
  std::string name() const override { return "lru"; }

 private:
  void touch(const std::string& key) {
    const auto it = pos_.find(key);
    if (it != pos_.end()) order_.erase(it->second);
    order_.push_front(key);
    pos_[key] = order_.begin();
  }
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> pos_;
};

class LfuPolicy final : public EvictionPolicy {
 public:
  void on_insert(const std::string& key, const EntryInfo&) override {
    entries_[key] = {1, seq_++};
  }
  void on_access(const std::string& key) override {
    const auto it = entries_.find(key);
    if (it != entries_.end()) ++it->second.count;
  }
  void on_erase(const std::string& key) override { entries_.erase(key); }
  std::string choose_victim() override {
    SEMCACHE_CHECK(!entries_.empty(), "lfu: empty");
    // Min frequency; ties broken by earliest insertion.
    auto best = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.count < best->second.count ||
          (it->second.count == best->second.count &&
           it->second.seq < best->second.seq)) {
        best = it;
      }
    }
    return best->first;
  }
  std::string name() const override { return "lfu"; }

 private:
  struct State {
    std::uint64_t count;
    std::uint64_t seq;
  };
  std::unordered_map<std::string, State> entries_;
  std::uint64_t seq_ = 0;
};

// Greedy-Dual-Size-Frequency: priority = clock + freq * cost / size.
class GdsfPolicy final : public EvictionPolicy {
 public:
  void on_insert(const std::string& key, const EntryInfo& info) override {
    State s;
    s.info = info;
    s.freq = 1;
    s.priority = priority(s);
    entries_[key] = s;
  }
  void on_access(const std::string& key) override {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    ++it->second.freq;
    it->second.priority = priority(it->second);
  }
  void on_erase(const std::string& key) override { entries_.erase(key); }
  std::string choose_victim() override {
    SEMCACHE_CHECK(!entries_.empty(), "gdsf: empty");
    auto best = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.priority < best->second.priority) best = it;
    }
    clock_ = best->second.priority;  // inflation keeps old entries evictable
    return best->first;
  }
  std::string name() const override { return "gdsf"; }

 private:
  struct State {
    EntryInfo info;
    std::uint64_t freq = 0;
    double priority = 0.0;
  };
  double priority(const State& s) const {
    const double size = std::max<double>(1.0, static_cast<double>(s.info.size_bytes));
    return clock_ + static_cast<double>(s.freq) * s.info.fetch_cost / size;
  }
  std::unordered_map<std::string, State> entries_;
  double clock_ = 0.0;
};

// GDSF variant whose frequency term decays exponentially with every access
// anywhere in the cache — recently-hot models win over historically-hot
// ones, which matters under conversation topic drift.
class SemPopPolicy final : public EvictionPolicy {
 public:
  explicit SemPopPolicy(double decay) : decay_(decay) {
    SEMCACHE_CHECK(decay > 0.0 && decay <= 1.0,
                   "sempop: decay must be in (0, 1]");
  }
  void on_insert(const std::string& key, const EntryInfo& info) override {
    decay_all();
    State s;
    s.info = info;
    s.pop = 1.0;
    entries_[key] = s;
  }
  void on_access(const std::string& key) override {
    decay_all();
    const auto it = entries_.find(key);
    if (it != entries_.end()) it->second.pop += 1.0;
  }
  void on_erase(const std::string& key) override { entries_.erase(key); }
  std::string choose_victim() override {
    SEMCACHE_CHECK(!entries_.empty(), "sempop: empty");
    auto score = [](const State& s) {
      const double size =
          std::max<double>(1.0, static_cast<double>(s.info.size_bytes));
      return s.pop * s.info.fetch_cost / size;
    };
    auto best = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (score(it->second) < score(best->second)) best = it;
    }
    return best->first;
  }
  std::string name() const override { return "sempop"; }

 private:
  struct State {
    EntryInfo info;
    double pop = 0.0;
  };
  void decay_all() {
    for (auto& [k, s] : entries_) s.pop *= decay_;
  }
  std::unordered_map<std::string, State> entries_;
  double decay_;
};

}  // namespace

std::unique_ptr<EvictionPolicy> make_fifo_policy() {
  return std::make_unique<FifoPolicy>();
}
std::unique_ptr<EvictionPolicy> make_lru_policy() {
  return std::make_unique<LruPolicy>();
}
std::unique_ptr<EvictionPolicy> make_lfu_policy() {
  return std::make_unique<LfuPolicy>();
}
std::unique_ptr<EvictionPolicy> make_gdsf_policy() {
  return std::make_unique<GdsfPolicy>();
}
std::unique_ptr<EvictionPolicy> make_sempop_policy(double decay) {
  return std::make_unique<SemPopPolicy>(decay);
}

std::unique_ptr<EvictionPolicy> make_policy(const std::string& name) {
  if (name == "fifo") return make_fifo_policy();
  if (name == "lru") return make_lru_policy();
  if (name == "lfu") return make_lfu_policy();
  if (name == "gdsf") return make_gdsf_policy();
  if (name == "sempop") return make_sempop_policy();
  SEMCACHE_CHECK(false, "unknown cache policy: " + name);
  return nullptr;
}

}  // namespace semcache::cache
