// Channel-code interface ("Channel encoding / Channel decoding" boxes of the
// paper's workflow). Codes operate on BitVecs; padding to the code's block
// size is the code's responsibility, so decode(encode(x)) returns x followed
// by zero padding — callers trim to the payload length they transmitted.
#pragma once

#include <memory>
#include <string>

#include "common/bits.hpp"

namespace semcache::channel {

class ChannelCode {
 public:
  virtual ~ChannelCode() = default;
  ChannelCode() = default;
  ChannelCode(const ChannelCode&) = delete;
  ChannelCode& operator=(const ChannelCode&) = delete;

  virtual BitVec encode(const BitVec& info) const = 0;
  /// Hard-decision decode; output length is the padded info length.
  virtual BitVec decode(const BitVec& coded) const = 0;
  /// Soft-decision decode from per-bit LLRs (sign convention: llr >= 0
  /// means bit 1, so hard-slicing an LLR vector reproduces the hard demap).
  /// Default: slice and run the hard decoder — codes with a true soft
  /// metric (the convolutional family) override.
  virtual BitVec decode_soft(const std::vector<float>& llrs) const {
    BitVec hard(llrs.size());
    for (std::size_t i = 0; i < llrs.size(); ++i) {
      hard[i] = llrs[i] >= 0.0f ? 1 : 0;
    }
    return decode(hard);
  }
  /// Coded bits produced for `info_bits` information bits.
  virtual std::size_t encoded_length(std::size_t info_bits) const = 0;
  /// Information rate (info bits / coded bits), asymptotic.
  virtual double rate() const = 0;
  virtual std::string name() const = 0;
};

/// Pass-through "code" — the uncoded baseline.
class IdentityCode final : public ChannelCode {
 public:
  BitVec encode(const BitVec& info) const override { return info; }
  BitVec decode(const BitVec& coded) const override { return coded; }
  std::size_t encoded_length(std::size_t info_bits) const override {
    return info_bits;
  }
  double rate() const override { return 1.0; }
  std::string name() const override { return "uncoded"; }
};

}  // namespace semcache::channel
