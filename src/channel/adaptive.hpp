// Per-link adaptive code-rate selection: an EWMA of the receiver's
// decision-directed SNR estimates drives a three-rung rate ladder
// (conv 1/2 -> punctured 2/3 -> punctured 3/4) with hysteresis, trading
// coding gain for airtime when the Gilbert–Elliott weather allows it.
// Everything here is deterministic: the controller state is a pure
// function of the observation sequence, the observations are a pure
// function of (seed, slot), so the recorded ChannelStats are byte-identical
// across thread counts and shard layouts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "channel/pipeline.hpp"

namespace semcache::channel {

enum class CodeRate : std::uint8_t {
  kR12 = 0,  ///< conv_k3_r12 — most robust, most airtime
  kR23 = 1,  ///< conv_k3_r23
  kR34 = 2,  ///< conv_k3_r34 — leanest, least protected
};

constexpr std::size_t kCodeRateCount = 3;

const char* code_rate_name(CodeRate rate);

struct AdaptiveRateConfig {
  double up_r23_db = 6.0;   ///< EWMA threshold separating r12 and r23
  double up_r34_db = 10.0;  ///< EWMA threshold separating r23 and r34
  /// Dead band around each threshold: step up only above threshold +
  /// hysteresis, step down only below threshold - hysteresis, one rung
  /// per observation. Kills rate flapping at a boundary SNR.
  double hysteresis_db = 1.0;
  double ewma_alpha = 0.25;  ///< weight of the newest SNR estimate
  CodeRate initial = CodeRate::kR12;
};

/// Deterministic per-link accounting, byte-comparable across runs.
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t switches = 0;  ///< rate transitions taken
  std::array<std::uint64_t, kCodeRateCount> rate_messages{};
  std::uint64_t payload_bits = 0;
  std::uint64_t airtime_bits = 0;
  double ewma_snr_db = 0.0;  ///< controller EWMA after the last message
};

class AdaptiveRateController {
 public:
  explicit AdaptiveRateController(const AdaptiveRateConfig& cfg);

  /// Fold one SNR estimate into the EWMA and move at most one rung.
  /// Returns the rate the NEXT message should use.
  CodeRate observe(double snr_est_db);

  CodeRate current() const { return rate_; }
  double ewma_snr_db() const { return ewma_; }

 private:
  AdaptiveRateConfig cfg_;
  CodeRate rate_;
  double ewma_ = 0.0;
  bool seeded_ = false;
};

/// A link that re-selects its code rate per message: three soft-decision
/// pipelines over one shared Gilbert–Elliott configuration, steered by an
/// AdaptiveRateController. The rate for message N is decided from
/// observations of messages < N (causal — the transmitter cannot see the
/// channel it is about to hit). Sequential by design: the controller is a
/// genuine serial dependency, so there is no batched entry point.
class AdaptiveRatePipeline {
 public:
  AdaptiveRatePipeline(Modulation mod, const GilbertElliottConfig& burst,
                       const AdaptiveRateConfig& cfg,
                       std::size_t interleave_depth = 1, bool soft = true);

  BitVec transmit_at(const BitVec& payload, Rng& rng, std::uint64_t slot);

  const ChannelStats& stats() const { return stats_; }
  CodeRate current_rate() const { return controller_.current(); }
  std::string description() const;

 private:
  AdaptiveRateController controller_;
  std::array<std::unique_ptr<ChannelPipeline>, kCodeRateCount> pipelines_;
  ChannelStats stats_;
};

}  // namespace semcache::channel
