// Internal seam between the channel plane's dispatching call sites
// (modulation.cpp, physical.cpp, convolutional.cpp, repetition.cpp) and the
// AVX2 translation unit (simd_avx2.cpp), mirroring tensor/simd_kernels.hpp.
//
// Unlike the matmul family, none of these kernels carries a multiply-add
// accumulation chain — they are comparisons, table lookups, independent
// elementwise adds, one IEEE division, and integer arithmetic — so there is
// no contraction ambiguity, no flavor pair, and no probe: a single vector
// implementation is bit-identical to the scalar reference on every input
// (including NaN and signed zero; twin tests pin this). The soft demaps
// keep that property: each LLR is a short chain of individually-exact ops
// (compare/select, subtract, multiply by 2, double->float round), with no
// expression shape a contraction could alter.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cpu.hpp"
#include "common/log.hpp"

namespace semcache::channel::detail {

/// Precomputed add-compare-select tables for the K=3 rate-1/2 Viterbi
/// trellis, indexed by the received dibit rx = r0 | (r1 << 1). Next-state
/// ns has two predecessors: A = kPredA[ns] (the lower state, which the
/// reference decoder's ascending-s loop visits first and which therefore
/// wins metric ties) and B = kPredB[ns], both consuming input bit ns >> 1.
struct ViterbiTables {
  std::uint32_t bm_a[4][4];  ///< [rx][ns] branch metric via predecessor A
  std::uint32_t bm_b[4][4];  ///< [rx][ns] branch metric via predecessor B
  std::uint8_t surv_a[4];    ///< [ns] packed (input << 4) | predecessor A
  std::uint8_t surv_b[4];    ///< [ns] packed (input << 4) | predecessor B
  /// Expected encoder outputs per next-state (0/1, stored wide for the SSE
  /// soft kernel): exp0/exp1 are the G1/G2 bits of the branch into ns via
  /// predecessor A and B. The weighted (soft/erasure) ACS rebuilds branch
  /// metrics per step from these instead of the precomputed bm tables.
  std::uint32_t exp0_a[4];
  std::uint32_t exp1_a[4];
  std::uint32_t exp0_b[4];
  std::uint32_t exp1_b[4];
};

inline constexpr std::uint8_t kViterbiPredA[4] = {0, 2, 0, 2};
inline constexpr std::uint8_t kViterbiPredB[4] = {1, 3, 1, 3};

/// Saturation ceiling for path metrics. Well below INT32_MAX so the SSE
/// signed compares are exact, far above any reachable metric (2 per step):
/// metrics cap here instead of wrapping on pathologically long frames.
inline constexpr std::uint32_t kViterbiInf = 1u << 30;

/// Run the add-compare-select recursion for the information steps
/// [0, info_steps): metric[4] is updated in place and survivor bytes are
/// written to survivor[t * 4 + ns]. Tail steps stay with the caller (they
/// admit only input 0 and are at most K-1 = 2 steps).
using ViterbiAcsFn = void (*)(const ViterbiTables& tables,
                              const std::uint8_t* rx, std::size_t info_steps,
                              std::uint32_t* metric, std::uint8_t* survivor);

/// Weighted ACS for the soft-decision / depunctured path: step t pays
/// weights[2t] (G1 bit) and weights[2t+1] (G2 bit) for a mismatch against
/// the hard decisions in rx. Weight 1 everywhere reproduces the hard
/// branch metrics exactly; weight 0 is an erasure (depunctured position).
/// Tie-break contract matches ViterbiAcsFn: predecessor A keeps ties.
using ViterbiAcsSoftFn = void (*)(const ViterbiTables& tables,
                                  const std::uint8_t* rx,
                                  const std::uint8_t* weights,
                                  std::size_t info_steps,
                                  std::uint32_t* metric,
                                  std::uint8_t* survivor);

struct Avx2ChannelKernels {
  /// Hard-decision demaps over the raw (re, im) double pairs of a symbol
  /// array; bits out one byte per bit, exactly as the scalar demap writes.
  void (*demod_bpsk)(const double* sym, std::size_t nsym, std::uint8_t* bits);
  void (*demod_qpsk)(const double* sym, std::size_t nsym, std::uint8_t* bits);
  void (*demod_qam16)(const double* sym, std::size_t nsym, double scale,
                      std::uint8_t* bits);
  /// Soft demaps: per-bit max-log LLRs (sign convention: llr >= 0 means
  /// bit 1, matching the hard slicers), one float per output bit. The
  /// expressions are IEEE-exact per operation (compares, selects, one
  /// division, multiply-then-add kept un-contracted), so scalar and AVX2
  /// twin bit-for-bit like the hard demaps.
  void (*demod_soft_bpsk)(const double* sym, std::size_t nsym, float* llrs);
  void (*demod_soft_qpsk)(const double* sym, std::size_t nsym, float* llrs);
  void (*demod_soft_qam16)(const double* sym, std::size_t nsym, double scale,
                           float* llrs);
  /// data[i] += noise[i] over n doubles (the AWGN apply after the gaussian
  /// draws are buffered in their original order).
  void (*add_noise)(double* data, const double* noise, std::size_t n);
  ViterbiAcsFn viterbi_acs;
  ViterbiAcsSoftFn viterbi_acs_soft;
  /// out[i] = majority(coded[3i], coded[3i+1], coded[3i+2]) for the
  /// repetition-3 decoder (bytes are 0/1).
  void (*repetition_vote3)(const std::uint8_t* coded, std::size_t out_n,
                           std::uint8_t* out);
};

/// The AVX2 kernel table, or nullptr when this build carries no AVX2 code.
const Avx2ChannelKernels* avx2_channel_kernels();

/// The table when the AVX2 kernels are built AND the active SIMD tier
/// admits them; nullptr means run the scalar path. Logs once on first
/// engagement.
inline const Avx2ChannelKernels* engaged_channel_kernels() {
  const Avx2ChannelKernels* k = avx2_channel_kernels();
  if (k == nullptr ||
      common::active_simd_tier() != common::SimdTier::kAvx2) {
    return nullptr;
  }
  static const bool logged =
      common::log_once("simd.channel", "channel kernels: avx2",
                       common::LogLevel::kInfo);
  (void)logged;
  return k;
}

}  // namespace semcache::channel::detail
