#include "channel/arq.hpp"

#include "common/check.hpp"

namespace semcache::channel {

ArqPipeline::ArqPipeline(std::unique_ptr<ChannelPipeline> pipeline,
                         std::size_t max_attempts)
    : pipeline_(std::move(pipeline)), max_attempts_(max_attempts) {
  SEMCACHE_CHECK(pipeline_ != nullptr, "arq: null pipeline");
  SEMCACHE_CHECK(max_attempts >= 1, "arq: need at least one attempt");
}

ArqResult ArqPipeline::transmit(const BitVec& payload, Rng& rng) {
  const BitVec framed = crc_append(payload);
  ArqResult result;
  for (std::size_t attempt = 0; attempt < max_attempts_; ++attempt) {
    ++result.attempts;
    const BitVec received = pipeline_->transmit(framed, rng);
    result.airtime_bits += pipeline_->code().encoded_length(framed.size());
    CrcCheckResult check = crc_verify(received);
    if (check.ok) {
      result.payload = std::move(check.payload);
      result.delivered = true;
      return result;
    }
    result.payload = std::move(check.payload);  // keep the last corrupt view
  }
  return result;
}

}  // namespace semcache::channel
