#include "channel/pipeline.hpp"

#include <cstdlib>

#include "channel/convolutional.hpp"
#include "channel/hamming.hpp"
#include "channel/puncture.hpp"
#include "channel/repetition.hpp"
#include "common/check.hpp"

namespace semcache::channel {

ChannelPipeline::ChannelPipeline(std::unique_ptr<ChannelCode> code,
                                 std::unique_ptr<BitChannel> channel,
                                 std::size_t interleave_depth)
    : code_(std::move(code)),
      channel_(std::move(channel)),
      interleaver_(interleave_depth) {
  SEMCACHE_CHECK(code_ != nullptr, "pipeline: null code");
  SEMCACHE_CHECK(channel_ != nullptr, "pipeline: null channel");
}

BitVec ChannelPipeline::transmit(const BitVec& payload, Rng& rng) {
  return transmit_at(payload, rng, 0, nullptr);
}

BitVec ChannelPipeline::transmit_at(const BitVec& payload, Rng& rng,
                                    std::uint64_t slot,
                                    ChannelObservation* obs) {
  std::size_t airtime_bits = 0;
  BitVec decoded = transmit_one(payload, rng, airtime_bits, slot, obs);
  stats_.payload_bits += payload.size();
  stats_.airtime_bits += airtime_bits;
  stats_.messages += 1;
  return decoded;
}

std::vector<BitVec> ChannelPipeline::transmit_batch(
    const std::vector<BitVec>& payloads, std::span<Rng> rngs) {
  return transmit_batch_collect(payloads, rngs, {}, stats_, pool_);
}

std::vector<BitVec> ChannelPipeline::transmit_batch(
    const std::vector<BitVec>& payloads, std::span<Rng> rngs,
    std::span<const std::uint64_t> slots) {
  return transmit_batch_collect(payloads, rngs, slots, stats_, pool_);
}

std::vector<BitVec> ChannelPipeline::transmit_batch_collect(
    const std::vector<BitVec>& payloads, std::span<Rng> rngs,
    PipelineStats& sink, common::ThreadPool* pool) const {
  return transmit_batch_collect(payloads, rngs, {}, sink, pool);
}

std::vector<BitVec> ChannelPipeline::transmit_batch_collect(
    const std::vector<BitVec>& payloads, std::span<Rng> rngs,
    std::span<const std::uint64_t> slots, PipelineStats& sink,
    common::ThreadPool* pool) const {
  SEMCACHE_CHECK(slots.empty() || slots.size() == payloads.size(),
                 "pipeline: transmit_batch slots span must be empty or match "
                 "the payload count");
  SEMCACHE_CHECK(payloads.size() == rngs.size(),
                 "pipeline: transmit_batch needs one rng per payload (" +
                     std::to_string(payloads.size()) + " payloads, " +
                     std::to_string(rngs.size()) + " rngs)");
  const std::size_t n = payloads.size();
  std::vector<BitVec> received(n);
  std::vector<std::size_t> airtime(n, 0);
  std::vector<std::exception_ptr> errors(n);
  // Per-message noise streams stay independent: message i consumes only
  // rngs[i], so bits match N sequential transmit() calls exactly whether
  // the passes run inline or on the pool. Exceptions are captured per
  // index instead of letting the fan-out rethrow: the stats commit below
  // must replay the sequential order (messages before the first throwing
  // index count, the rest do not).
  common::parallel_for_or_inline(pool, n, [&](std::size_t i, std::size_t) {
    try {
      const std::uint64_t slot = slots.empty() ? 0 : slots[i];
      received[i] =
          transmit_one(payloads[i], rngs[i], airtime[i], slot, nullptr);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
    sink.payload_bits += payloads[i].size();
    sink.airtime_bits += airtime[i];
    sink.messages += 1;
  }
  return received;
}

void ChannelPipeline::fold_stats(const PipelineStats& delta) {
  stats_.payload_bits += delta.payload_bits;
  stats_.airtime_bits += delta.airtime_bits;
  stats_.messages += delta.messages;
}

BitVec ChannelPipeline::transmit_one(const BitVec& payload, Rng& rng,
                                     std::size_t& airtime_bits,
                                     std::uint64_t slot,
                                     ChannelObservation* obs) const {
  const BitVec coded = code_->encode(payload);
  const BitVec sent = interleaver_.interleave(coded);
  if (soft_) {
    // LLRs ride the same deinterleave permutation the hard bits would, so
    // the trellis sees confidences in coded order. Channels without a soft
    // output decline and drop through to the hard path.
    std::vector<float> llrs;
    if (channel_->transmit_soft(sent, rng, slot, llrs, obs)) {
      std::vector<float> deinterleaved = interleaver_.deinterleave(llrs);
      deinterleaved.resize(coded.size());  // drop interleaver padding
      BitVec decoded = code_->decode_soft(deinterleaved);
      SEMCACHE_CHECK(decoded.size() >= payload.size(),
                     "pipeline: decoder returned too few bits");
      decoded.resize(payload.size());
      airtime_bits = sent.size();
      return decoded;
    }
  }
  const BitVec received = channel_->transmit_slot(sent, rng, slot);
  BitVec deinterleaved = interleaver_.deinterleave(received);
  deinterleaved.resize(coded.size());  // drop interleaver padding
  BitVec decoded = code_->decode(deinterleaved);
  SEMCACHE_CHECK(decoded.size() >= payload.size(),
                 "pipeline: decoder returned too few bits");
  decoded.resize(payload.size());
  airtime_bits = sent.size();
  return decoded;
}

std::string ChannelPipeline::description() const {
  return code_->name() + "+" + channel_->name();
}

std::unique_ptr<ChannelCode> make_code(const std::string& name) {
  if (name == "uncoded") return std::make_unique<IdentityCode>();
  if (name == "rep3") return std::make_unique<RepetitionCode>(3);
  if (name == "rep5") return std::make_unique<RepetitionCode>(5);
  if (name == "hamming74") return std::make_unique<HammingCode>();
  if (name == "conv_k3_r12") return std::make_unique<ConvolutionalCode>();
  if (name == "conv_k3_r23") {
    return std::make_unique<PuncturedConvolutionalCode>(PunctureRate::kR23);
  }
  if (name == "conv_k3_r34") {
    return std::make_unique<PuncturedConvolutionalCode>(PunctureRate::kR34);
  }
  SEMCACHE_CHECK(false, "unknown channel code: " + name);
  return nullptr;
}

std::unique_ptr<ChannelPipeline> make_awgn_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t interleave_depth) {
  auto channel = std::make_unique<ModulatedChannel>(
      mod, std::make_unique<AwgnChannel>(snr_db));
  return std::make_unique<ChannelPipeline>(std::move(code), std::move(channel),
                                           interleave_depth);
}

std::unique_ptr<ChannelPipeline> make_bsc_pipeline(
    std::unique_ptr<ChannelCode> code, double flip_probability) {
  return std::make_unique<ChannelPipeline>(
      std::move(code), std::make_unique<BscChannel>(flip_probability), 1);
}

std::unique_ptr<ChannelPipeline> make_rayleigh_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t fade_block_len, std::size_t interleave_depth) {
  auto channel = std::make_unique<ModulatedChannel>(
      mod, std::make_unique<RayleighChannel>(snr_db, fade_block_len));
  return std::make_unique<ChannelPipeline>(std::move(code), std::move(channel),
                                           interleave_depth);
}

std::unique_ptr<ChannelPipeline> make_burst_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod,
    const GilbertElliottConfig& burst, std::size_t interleave_depth) {
  auto channel = std::make_unique<ModulatedChannel>(
      mod, std::make_unique<GilbertElliottChannel>(burst));
  return std::make_unique<ChannelPipeline>(std::move(code), std::move(channel),
                                           interleave_depth);
}

bool resolve_soft_decision(bool configured) {
  if (soft_forced_off()) return false;
  const char* env = std::getenv("SEMCACHE_SOFT");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "on" || v == "1") return true;
  }
  return configured;
}

bool soft_forced_off() {
  const char* env = std::getenv("SEMCACHE_SOFT");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "off" || v == "0";
}

}  // namespace semcache::channel
