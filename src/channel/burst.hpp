// Gilbert–Elliott burst channel: a two-state Markov noise process (good /
// bad SNR) layered over AWGN. Two timescales of memory, both keyed by the
// fault-plane identity-hash discipline so every wave of outcomes is a pure
// function of (seed, slot) — byte-identical across thread counts and shard
// layouts, never a function of RNG draw order:
//  * slow "weather": each dwell of `dwell_messages` consecutive slots keys
//    an epoch coin that picks the state the chain starts in;
//  * fast intra-message chain: per-symbol state transitions are keyed by
//    (slot, symbol index), so the burst structure inside a message is
//    deterministic too.
// Gaussian noise samples still come from the caller's per-message RNG in
// symbol order (exactly like AwgnChannel), only the per-symbol sigma is
// driven by the chain.
#pragma once

#include <cstdint>

#include "channel/physical.hpp"

namespace semcache::channel {

struct GilbertElliottConfig {
  double snr_good_db = 12.0;  ///< Es/N0 in the good state
  double snr_bad_db = 0.0;    ///< Es/N0 inside a burst
  double p_good_to_bad = 0.02;  ///< per-symbol transition probability
  double p_bad_to_good = 0.10;
  /// Probability that a weather epoch starts in the bad state.
  double bad_weather_prob = 0.3;
  /// Number of consecutive slots sharing one weather epoch.
  std::uint64_t dwell_messages = 16;
  std::uint64_t seed = 0;
};

class GilbertElliottChannel final : public SymbolChannel {
 public:
  explicit GilbertElliottChannel(const GilbertElliottConfig& cfg);

  void apply(std::vector<Symbol>& symbols, Rng& rng) override;
  void apply_slot(std::vector<Symbol>& symbols, Rng& rng,
                  std::uint64_t slot) override;
  std::string name() const override;

  const GilbertElliottConfig& config() const { return cfg_; }
  /// State the chain starts in at `slot` (the epoch weather coin). Exposed
  /// for tests and the adaptive bench to label scenarios.
  bool starts_bad(std::uint64_t slot) const;

 private:
  GilbertElliottConfig cfg_;
  double sigma_good_;
  double sigma_bad_;
};

}  // namespace semcache::channel
