#include "channel/puncture.hpp"

#include "common/check.hpp"

namespace semcache::channel {

namespace {
// Keep masks per trellis step (bit 0 = G1 output, bit 1 = G2 output),
// cycling through the zero tail as well — the classic continuous puncturing
// discipline (osmocom's punctured GSM tables work the same way).
const std::vector<std::uint8_t>& pattern_for(PunctureRate rate) {
  static const std::vector<std::uint8_t> kR23 = {0b11, 0b01};
  static const std::vector<std::uint8_t> kR34 = {0b11, 0b01, 0b10};
  return rate == PunctureRate::kR23 ? kR23 : kR34;
}
}  // namespace

PuncturedConvolutionalCode::PuncturedConvolutionalCode(PunctureRate rate)
    : rate_(rate), pattern_(pattern_for(rate)) {}

std::size_t PuncturedConvolutionalCode::steps_for(
    std::size_t info_bits) const {
  return info_bits + ConvolutionalCode::kConstraint - 1;
}

std::size_t PuncturedConvolutionalCode::kept_bits(std::size_t steps) const {
  std::size_t per_period = 0;
  for (const std::uint8_t mask : pattern_) {
    per_period += (mask & 1u) + ((mask >> 1) & 1u);
  }
  std::size_t kept = (steps / period()) * per_period;
  for (std::size_t t = 0; t < steps % period(); ++t) {
    kept += (pattern_[t] & 1u) + ((pattern_[t] >> 1) & 1u);
  }
  return kept;
}

std::size_t PuncturedConvolutionalCode::encoded_length(
    std::size_t info_bits) const {
  return kept_bits(steps_for(info_bits));
}

double PuncturedConvolutionalCode::rate() const {
  return rate_ == PunctureRate::kR23 ? 2.0 / 3.0 : 3.0 / 4.0;
}

std::string PuncturedConvolutionalCode::name() const {
  return rate_ == PunctureRate::kR23 ? "conv_k3_r23" : "conv_k3_r34";
}

BitVec PuncturedConvolutionalCode::encode(const BitVec& info) const {
  const BitVec mother = mother_.encode(info);
  const std::size_t steps = mother.size() / 2;
  BitVec out;
  out.reserve(kept_bits(steps));
  for (std::size_t t = 0; t < steps; ++t) {
    const std::uint8_t mask = pattern_[t % period()];
    if ((mask & 1u) != 0) out.push_back(mother[2 * t]);
    if ((mask & 2u) != 0) out.push_back(mother[2 * t + 1]);
  }
  return out;
}

BitVec PuncturedConvolutionalCode::decode(const BitVec& coded) const {
  // Depuncture into (hard bit, weight) pairs: present positions vote with
  // weight 1, deleted positions are weight-0 erasures the trellis skips.
  std::size_t steps = 0;
  while (kept_bits(steps) < coded.size()) ++steps;
  SEMCACHE_CHECK(kept_bits(steps) == coded.size(),
                 "puncture: coded length does not align with the pattern");
  SEMCACHE_CHECK(steps >= ConvolutionalCode::kConstraint - 1,
                 "puncture: coded stream shorter than the termination tail");
  BitVec hard(2 * steps, 0);
  std::vector<std::uint8_t> weights(2 * steps, 0);
  std::size_t pos = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    const std::uint8_t mask = pattern_[t % period()];
    if ((mask & 1u) != 0) {
      hard[2 * t] = coded[pos++] & 1;
      weights[2 * t] = 1;
    }
    if ((mask & 2u) != 0) {
      hard[2 * t + 1] = coded[pos++] & 1;
      weights[2 * t + 1] = 1;
    }
  }
  return ConvolutionalCode::decode_weighted(hard, weights);
}

BitVec PuncturedConvolutionalCode::decode_soft(
    const std::vector<float>& llrs) const {
  std::size_t steps = 0;
  while (kept_bits(steps) < llrs.size()) ++steps;
  SEMCACHE_CHECK(kept_bits(steps) == llrs.size(),
                 "puncture: LLR length does not align with the pattern");
  SEMCACHE_CHECK(steps >= ConvolutionalCode::kConstraint - 1,
                 "puncture: LLR stream shorter than the termination tail");
  BitVec hard(2 * steps, 0);
  std::vector<std::uint8_t> weights(2 * steps, 0);
  std::size_t pos = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    const std::uint8_t mask = pattern_[t % period()];
    for (int c = 0; c < 2; ++c) {
      if ((mask & (1u << c)) == 0) continue;
      const float llr = llrs[pos++];
      hard[2 * t + c] = llr >= 0.0f ? 1 : 0;
      weights[2 * t + c] = ConvolutionalCode::llr_weight(llr);
    }
  }
  return ConvolutionalCode::decode_weighted(hard, weights);
}

}  // namespace semcache::channel
