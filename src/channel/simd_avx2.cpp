// AVX2/SSE kernels for the channel plane, compiled with -mavx2 -mfma
// -ffp-contract=off (see CMakeLists.txt) and reached through the table in
// channel/simd.hpp. Every kernel is bit-identical to its scalar reference
// by construction — the only floating-point operations are IEEE-exact
// (compares, one division, independent elementwise adds), the rest is
// integer work — so no equivalence probe is needed (contrast tensor ops).
//
// Demap layout note: a std::complex<double> array is layout-compatible
// with a flat double array [re0, im0, re1, im1, ...]; one 256-bit load
// covers two symbols, and _mm256_movemask_pd yields the compare results in
// exactly that element order.
#include "channel/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace semcache::channel::detail {
namespace {

void demod_bpsk_avx2(const double* sym, std::size_t nsym, std::uint8_t* bits) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= nsym; i += 2) {
    const __m256d v = _mm256_loadu_pd(sym + 2 * i);
    // mask bits: re0, im0, re1, im1; BPSK slices the real lanes only.
    // _CMP_GE_OQ, like the scalar `>= 0.0`, is false on NaN.
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_GE_OQ));
    bits[i] = static_cast<std::uint8_t>(m & 1);
    bits[i + 1] = static_cast<std::uint8_t>((m >> 2) & 1);
  }
  for (; i < nsym; ++i) bits[i] = sym[2 * i] >= 0.0 ? 1 : 0;
}

void demod_qpsk_avx2(const double* sym, std::size_t nsym, std::uint8_t* bits) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= nsym; i += 2) {
    const __m256d v = _mm256_loadu_pd(sym + 2 * i);
    // QPSK emits (re >= 0, im >= 0) per symbol — the movemask bit order IS
    // the output bit order.
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_GE_OQ));
    std::uint8_t* o = bits + 2 * i;
    o[0] = static_cast<std::uint8_t>(m & 1);
    o[1] = static_cast<std::uint8_t>((m >> 1) & 1);
    o[2] = static_cast<std::uint8_t>((m >> 2) & 1);
    o[3] = static_cast<std::uint8_t>((m >> 3) & 1);
  }
  for (; i < nsym; ++i) {
    bits[2 * i] = sym[2 * i] >= 0.0 ? 1 : 0;
    bits[2 * i + 1] = sym[2 * i + 1] >= 0.0 ? 1 : 0;
  }
}

// Branchless Gray demap of one PAM coordinate v (already divided by the
// constellation scale): slicing at the decision boundaries -2/0/2 gives
// index i = (v>-2)+(v>0)+(v>2); the Gray bits of {00,01,11,10}[i] reduce to
// b0 = v > 0 and b1 = (v > -2) && !(v > 2). All three compares are false on
// NaN, matching the reference scan's tie/NaN behavior (first level wins).
void demod_qam16_avx2(const double* sym, std::size_t nsym, double scale,
                      std::uint8_t* bits) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d lo = _mm256_set1_pd(-2.0);
  const __m256d hi = _mm256_set1_pd(2.0);
  const __m256d sc = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= nsym; i += 2) {
    // The scalar demap divides by the scale; _mm256_div_pd rounds each
    // lane identically, keeping the slicing inputs bit-equal.
    const __m256d v = _mm256_div_pd(_mm256_loadu_pd(sym + 2 * i), sc);
    const int gt0 = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_GT_OQ));
    const int gtlo = _mm256_movemask_pd(_mm256_cmp_pd(v, lo, _CMP_GT_OQ));
    const int gthi = _mm256_movemask_pd(_mm256_cmp_pd(v, hi, _CMP_GT_OQ));
    const int b1m = gtlo & ~gthi;
    std::uint8_t* o = bits + 4 * i;  // 4 bits per symbol, 2 per coordinate
    o[0] = static_cast<std::uint8_t>(gt0 & 1);
    o[1] = static_cast<std::uint8_t>(b1m & 1);
    o[2] = static_cast<std::uint8_t>((gt0 >> 1) & 1);
    o[3] = static_cast<std::uint8_t>((b1m >> 1) & 1);
    o[4] = static_cast<std::uint8_t>((gt0 >> 2) & 1);
    o[5] = static_cast<std::uint8_t>((b1m >> 2) & 1);
    o[6] = static_cast<std::uint8_t>((gt0 >> 3) & 1);
    o[7] = static_cast<std::uint8_t>((b1m >> 3) & 1);
  }
  for (; i < nsym; ++i) {
    std::uint8_t* o = bits + 4 * i;
    for (int c = 0; c < 2; ++c) {
      const double v = sym[2 * i + c] / scale;
      o[2 * c] = v > 0.0 ? 1 : 0;
      o[2 * c + 1] = (v > -2.0 && !(v > 2.0)) ? 1 : 0;
    }
  }
}

// Soft demaps — per-bit max-log LLRs as floats. Every step is IEEE-exact
// and mirrored by the scalar reference in modulation.cpp expression for
// expression (the double->float rounding of _mm256_cvtpd_ps is the same
// static_cast<float> the scalar path performs), so the tiers twin exactly.

void demod_soft_bpsk_avx2(const double* sym, std::size_t nsym, float* llrs) {
  std::size_t i = 0;
  for (; i + 2 <= nsym; i += 2) {
    const __m128 f = _mm256_cvtpd_ps(_mm256_loadu_pd(sym + 2 * i));
    // Lanes are [re0, im0, re1, im1]; BPSK keeps the real lanes.
    const __m128 re = _mm_shuffle_ps(f, f, _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storel_pi(reinterpret_cast<__m64*>(llrs + i), re);
  }
  for (; i < nsym; ++i) llrs[i] = static_cast<float>(sym[2 * i]);
}

void demod_soft_qpsk_avx2(const double* sym, std::size_t nsym, float* llrs) {
  std::size_t i = 0;
  // QPSK LLR order per symbol is (re, im) — exactly the lane order.
  for (; i + 2 <= nsym; i += 2) {
    _mm_storeu_ps(llrs + 2 * i,
                  _mm256_cvtpd_ps(_mm256_loadu_pd(sym + 2 * i)));
  }
  for (; i < nsym; ++i) {
    llrs[2 * i] = static_cast<float>(sym[2 * i]);
    llrs[2 * i + 1] = static_cast<float>(sym[2 * i + 1]);
  }
}

// Per-PAM-coordinate piecewise max-log LLRs: l0 = v inside |v| <= 2 and
// 2(v -+ 1) outside, l1 = 2 - |v|. mul(2, sub(v, 1)) and sub(2, abs(v))
// match the scalar expression shapes; there is no a*b+c pattern, so
// contraction cannot split the tiers.
void demod_soft_qam16_avx2(const double* sym, std::size_t nsym, double scale,
                           float* llrs) {
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d ntwo = _mm256_set1_pd(-2.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sc = _mm256_set1_pd(scale);
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  std::size_t i = 0;
  for (; i + 2 <= nsym; i += 2) {
    const __m256d v = _mm256_div_pd(_mm256_loadu_pd(sym + 2 * i), sc);
    const __m256d gt2 = _mm256_cmp_pd(v, two, _CMP_GT_OQ);
    const __m256d ltm2 = _mm256_cmp_pd(v, ntwo, _CMP_LT_OQ);
    const __m256d hi = _mm256_mul_pd(two, _mm256_sub_pd(v, one));
    const __m256d lo = _mm256_mul_pd(two, _mm256_add_pd(v, one));
    __m256d l0 = _mm256_blendv_pd(v, hi, gt2);
    l0 = _mm256_blendv_pd(l0, lo, ltm2);
    const __m256d l1 = _mm256_sub_pd(two, _mm256_and_pd(v, absmask));
    const __m128 f0 = _mm256_cvtpd_ps(l0);
    const __m128 f1 = _mm256_cvtpd_ps(l1);
    // Interleave (l0, l1) per coordinate: output order is
    // l0(re), l1(re), l0(im), l1(im) for each of the two symbols.
    _mm_storeu_ps(llrs + 4 * i, _mm_unpacklo_ps(f0, f1));
    _mm_storeu_ps(llrs + 4 * i + 4, _mm_unpackhi_ps(f0, f1));
  }
  for (; i < nsym; ++i) {
    for (int c = 0; c < 2; ++c) {
      const double v = sym[2 * i + c] / scale;
      double a = v;
      if (v > 2.0) a = 2.0 * (v - 1.0);
      if (v < -2.0) a = 2.0 * (v + 1.0);
      llrs[4 * i + 2 * c] = static_cast<float>(a);
      llrs[4 * i + 2 * c + 1] = static_cast<float>(2.0 - std::fabs(v));
    }
  }
}

void add_noise_avx2(double* data, const double* noise, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(data + i, _mm256_add_pd(_mm256_loadu_pd(data + i),
                                             _mm256_loadu_pd(noise + i)));
  }
  for (; i < n; ++i) data[i] += noise[i];
}

// Add-compare-select over all four trellis states at once: lane ns holds
// the metric of next-state ns. Metrics stay <= kViterbiInf + 2 < 2^31, so
// the signed 32-bit compare is exact; B wins only on strictly smaller
// metric, matching the reference decoder's ascending-s first-writer rule.
void viterbi_acs_avx2(const ViterbiTables& tb, const std::uint8_t* rx,
                      std::size_t info_steps, std::uint32_t* metric,
                      std::uint8_t* survivor) {
  const __m128i inf = _mm_set1_epi32(static_cast<int>(kViterbiInf));
  __m128i bma[4], bmb[4];
  for (int r = 0; r < 4; ++r) {
    bma[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.bm_a[r]));
    bmb[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.bm_b[r]));
  }
  __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(metric));
  for (std::size_t t = 0; t < info_steps; ++t) {
    const unsigned r = rx[t];
    // Predecessors per next-state lane: A = (0,2,0,2), B = (1,3,1,3).
    const __m128i ma = _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i mb = _mm_shuffle_epi32(m, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128i ca = _mm_min_epu32(_mm_add_epi32(ma, bma[r]), inf);
    const __m128i cb = _mm_min_epu32(_mm_add_epi32(mb, bmb[r]), inf);
    const __m128i bwins = _mm_cmpgt_epi32(ca, cb);  // cb strictly smaller
    m = _mm_blendv_epi8(ca, cb, bwins);
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(bwins));
    std::uint8_t* sv = survivor + 4 * t;
    sv[0] = (mask & 1) != 0 ? tb.surv_b[0] : tb.surv_a[0];
    sv[1] = (mask & 2) != 0 ? tb.surv_b[1] : tb.surv_a[1];
    sv[2] = (mask & 4) != 0 ? tb.surv_b[2] : tb.surv_a[2];
    sv[3] = (mask & 8) != 0 ? tb.surv_b[3] : tb.surv_a[3];
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(metric), m);
}

// Weighted ACS: branch metrics rebuilt per step from the expected-output
// tables — cost = w0 where the G1 bit mismatches plus w1 where the G2 bit
// mismatches, via cmpeq/andnot masking (pure integer, bit-identical to the
// scalar form). Survivor selection is the hard kernel's strict-B-wins rule.
void viterbi_acs_soft_avx2(const ViterbiTables& tb, const std::uint8_t* rx,
                           const std::uint8_t* weights,
                           std::size_t info_steps, std::uint32_t* metric,
                           std::uint8_t* survivor) {
  const __m128i inf = _mm_set1_epi32(static_cast<int>(kViterbiInf));
  const __m128i e0a =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.exp0_a));
  const __m128i e1a =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.exp1_a));
  const __m128i e0b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.exp0_b));
  const __m128i e1b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tb.exp1_b));
  __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(metric));
  for (std::size_t t = 0; t < info_steps; ++t) {
    const __m128i r0 = _mm_set1_epi32(rx[t] & 1);
    const __m128i r1 = _mm_set1_epi32((rx[t] >> 1) & 1);
    const __m128i w0 = _mm_set1_epi32(weights[2 * t]);
    const __m128i w1 = _mm_set1_epi32(weights[2 * t + 1]);
    // andnot(cmpeq(exp, r), w) = w where the bits differ, 0 where equal.
    const __m128i bma =
        _mm_add_epi32(_mm_andnot_si128(_mm_cmpeq_epi32(e0a, r0), w0),
                      _mm_andnot_si128(_mm_cmpeq_epi32(e1a, r1), w1));
    const __m128i bmb =
        _mm_add_epi32(_mm_andnot_si128(_mm_cmpeq_epi32(e0b, r0), w0),
                      _mm_andnot_si128(_mm_cmpeq_epi32(e1b, r1), w1));
    const __m128i ma = _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i mb = _mm_shuffle_epi32(m, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128i ca = _mm_min_epu32(_mm_add_epi32(ma, bma), inf);
    const __m128i cb = _mm_min_epu32(_mm_add_epi32(mb, bmb), inf);
    const __m128i bwins = _mm_cmpgt_epi32(ca, cb);
    m = _mm_blendv_epi8(ca, cb, bwins);
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(bwins));
    std::uint8_t* sv = survivor + 4 * t;
    sv[0] = (mask & 1) != 0 ? tb.surv_b[0] : tb.surv_a[0];
    sv[1] = (mask & 2) != 0 ? tb.surv_b[1] : tb.surv_a[1];
    sv[2] = (mask & 4) != 0 ? tb.surv_b[2] : tb.surv_a[2];
    sv[3] = (mask & 8) != 0 ? tb.surv_b[3] : tb.surv_a[3];
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(metric), m);
}

// Majority vote over byte triples: unaligned loads at offsets 0/1/2 make
// t[j] = in[j] + in[j+1] + in[j+2]; the sums we want sit at j = 0,3,6,9,12
// and one pshufb packs them. Five outputs per iteration; the window reads
// 18 input bytes, so the loop stops 6 outputs early and the scalar tail
// finishes.
void repetition_vote3_avx2(const std::uint8_t* coded, std::size_t out_n,
                           std::uint8_t* out) {
  const __m128i one = _mm_set1_epi8(1);
  const __m128i pick = _mm_setr_epi8(0, 3, 6, 9, 12, -1, -1, -1, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 6 <= out_n; i += 5) {
    const std::uint8_t* p = coded + 3 * i;
    const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
    const __m128i s2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 2));
    const __m128i t = _mm_add_epi8(_mm_add_epi8(s0, s1), s2);
    const __m128i maj = _mm_and_si128(_mm_cmpgt_epi8(t, one), one);
    const __m128i packed = _mm_shuffle_epi8(maj, pick);
    const std::uint32_t lo =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(packed));
    std::memcpy(out + i, &lo, 4);
    out[i + 4] = static_cast<std::uint8_t>(_mm_extract_epi8(packed, 4));
  }
  for (; i < out_n; ++i) {
    const std::uint8_t* p = coded + 3 * i;
    const unsigned ones = (p[0] & 1u) + (p[1] & 1u) + (p[2] & 1u);
    out[i] = ones >= 2 ? 1 : 0;
  }
}

constexpr Avx2ChannelKernels kKernels = {
    /*demod_bpsk=*/demod_bpsk_avx2,
    /*demod_qpsk=*/demod_qpsk_avx2,
    /*demod_qam16=*/demod_qam16_avx2,
    /*demod_soft_bpsk=*/demod_soft_bpsk_avx2,
    /*demod_soft_qpsk=*/demod_soft_qpsk_avx2,
    /*demod_soft_qam16=*/demod_soft_qam16_avx2,
    /*add_noise=*/add_noise_avx2,
    /*viterbi_acs=*/viterbi_acs_avx2,
    /*viterbi_acs_soft=*/viterbi_acs_soft_avx2,
    /*repetition_vote3=*/repetition_vote3_avx2,
};

}  // namespace

const Avx2ChannelKernels* avx2_channel_kernels() { return &kKernels; }

}  // namespace semcache::channel::detail

#else  // no AVX2 in this build: the dispatch sites see an empty table

namespace semcache::channel::detail {
const Avx2ChannelKernels* avx2_channel_kernels() { return nullptr; }
}  // namespace semcache::channel::detail

#endif
