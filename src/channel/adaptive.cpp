#include "channel/adaptive.hpp"

#include "common/check.hpp"

namespace semcache::channel {

const char* code_rate_name(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12:
      return "conv_k3_r12";
    case CodeRate::kR23:
      return "conv_k3_r23";
    case CodeRate::kR34:
      return "conv_k3_r34";
  }
  return "conv_k3_r12";
}

AdaptiveRateController::AdaptiveRateController(const AdaptiveRateConfig& cfg)
    : cfg_(cfg), rate_(cfg.initial) {
  SEMCACHE_CHECK(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                 "adaptive: ewma_alpha must be in (0, 1]");
  SEMCACHE_CHECK(cfg_.hysteresis_db >= 0.0,
                 "adaptive: hysteresis must be non-negative");
  SEMCACHE_CHECK(cfg_.up_r23_db <= cfg_.up_r34_db,
                 "adaptive: thresholds must be ordered r23 <= r34");
}

CodeRate AdaptiveRateController::observe(double snr_est_db) {
  ewma_ = seeded_
              ? cfg_.ewma_alpha * snr_est_db + (1.0 - cfg_.ewma_alpha) * ewma_
              : snr_est_db;
  seeded_ = true;
  switch (rate_) {
    case CodeRate::kR12:
      if (ewma_ > cfg_.up_r23_db + cfg_.hysteresis_db) rate_ = CodeRate::kR23;
      break;
    case CodeRate::kR23:
      if (ewma_ > cfg_.up_r34_db + cfg_.hysteresis_db) {
        rate_ = CodeRate::kR34;
      } else if (ewma_ < cfg_.up_r23_db - cfg_.hysteresis_db) {
        rate_ = CodeRate::kR12;
      }
      break;
    case CodeRate::kR34:
      if (ewma_ < cfg_.up_r34_db - cfg_.hysteresis_db) rate_ = CodeRate::kR23;
      break;
  }
  return rate_;
}

AdaptiveRatePipeline::AdaptiveRatePipeline(Modulation mod,
                                           const GilbertElliottConfig& burst,
                                           const AdaptiveRateConfig& cfg,
                                           std::size_t interleave_depth,
                                           bool soft)
    : controller_(cfg) {
  // SEMCACHE_SOFT=off degrades the whole link to hard decisions (the CI
  // floor leg); the controller then never observes and holds its rate.
  const bool effective_soft = resolve_soft_decision(soft);
  for (std::size_t r = 0; r < kCodeRateCount; ++r) {
    pipelines_[r] = make_burst_pipeline(
        make_code(code_rate_name(static_cast<CodeRate>(r))), mod, burst,
        interleave_depth);
    pipelines_[r]->set_soft_decision(effective_soft);
  }
}

BitVec AdaptiveRatePipeline::transmit_at(const BitVec& payload, Rng& rng,
                                         std::uint64_t slot) {
  const CodeRate rate = controller_.current();
  ChannelPipeline& pipe = *pipelines_[static_cast<std::size_t>(rate)];
  const std::size_t airtime_before = pipe.stats().airtime_bits;
  ChannelObservation obs;
  BitVec decoded = pipe.transmit_at(payload, rng, slot, &obs);
  stats_.messages += 1;
  stats_.rate_messages[static_cast<std::size_t>(rate)] += 1;
  stats_.payload_bits += payload.size();
  stats_.airtime_bits += pipe.stats().airtime_bits - airtime_before;
  // Hard-decision fallback (SEMCACHE_SOFT=off or a slicer-only channel)
  // yields no observation; the controller then simply holds its rate.
  if (pipe.soft_decision()) {
    const CodeRate next = controller_.observe(obs.snr_est_db);
    if (next != rate) stats_.switches += 1;
  }
  stats_.ewma_snr_db = controller_.ewma_snr_db();
  return decoded;
}

std::string AdaptiveRatePipeline::description() const {
  return "adaptive(" + pipelines_[0]->description() + " .. " +
         pipelines_[kCodeRateCount - 1]->description() + ")";
}

}  // namespace semcache::channel
