#include "channel/hamming.hpp"

#include "common/check.hpp"

namespace semcache::channel {

// Codeword layout (1-indexed positions): p1 p2 d1 p3 d2 d3 d4, with parity
// bits at power-of-two positions covering the standard index sets.

std::uint8_t HammingCode::encode_nibble(std::uint8_t nibble) {
  const std::uint8_t d1 = (nibble >> 0) & 1;
  const std::uint8_t d2 = (nibble >> 1) & 1;
  const std::uint8_t d3 = (nibble >> 2) & 1;
  const std::uint8_t d4 = (nibble >> 3) & 1;
  const std::uint8_t p1 = d1 ^ d2 ^ d4;
  const std::uint8_t p2 = d1 ^ d3 ^ d4;
  const std::uint8_t p3 = d2 ^ d3 ^ d4;
  // Bit i of the return value holds position i+1 of the codeword.
  return static_cast<std::uint8_t>(p1 | (p2 << 1) | (d1 << 2) | (p3 << 3) |
                                   (d2 << 4) | (d3 << 5) | (d4 << 6));
}

std::uint8_t HammingCode::decode_block(std::uint8_t block) {
  auto bit = [&](int pos) -> std::uint8_t {  // 1-indexed position
    return (block >> (pos - 1)) & 1;
  };
  const std::uint8_t s1 = bit(1) ^ bit(3) ^ bit(5) ^ bit(7);
  const std::uint8_t s2 = bit(2) ^ bit(3) ^ bit(6) ^ bit(7);
  const std::uint8_t s3 = bit(4) ^ bit(5) ^ bit(6) ^ bit(7);
  const int syndrome = s1 | (s2 << 1) | (s3 << 2);
  if (syndrome != 0) {
    block ^= static_cast<std::uint8_t>(1u << (syndrome - 1));
  }
  const std::uint8_t d1 = (block >> 2) & 1;
  const std::uint8_t d2 = (block >> 4) & 1;
  const std::uint8_t d3 = (block >> 5) & 1;
  const std::uint8_t d4 = (block >> 6) & 1;
  return static_cast<std::uint8_t>(d1 | (d2 << 1) | (d3 << 2) | (d4 << 3));
}

BitVec HammingCode::encode(const BitVec& info) const {
  BitVec padded = info;
  while (padded.size() % 4 != 0) padded.push_back(0);
  BitVec out;
  out.reserve(padded.size() / 4 * 7);
  for (std::size_t i = 0; i < padded.size(); i += 4) {
    std::uint8_t nibble = 0;
    for (int b = 0; b < 4; ++b) {
      nibble |= static_cast<std::uint8_t>((padded[i + static_cast<std::size_t>(b)] & 1)
                                          << b);
    }
    append_bits(out, encode_nibble(nibble), 7);
  }
  return out;
}

BitVec HammingCode::decode(const BitVec& coded) const {
  SEMCACHE_CHECK(coded.size() % 7 == 0,
                 "hamming74: coded length must be a multiple of 7");
  BitVec out;
  out.reserve(coded.size() / 7 * 4);
  std::size_t pos = 0;
  while (pos < coded.size()) {
    const auto block = static_cast<std::uint8_t>(read_bits(coded, pos, 7));
    append_bits(out, decode_block(block), 4);
  }
  return out;
}

std::size_t HammingCode::encoded_length(std::size_t info_bits) const {
  return (info_bits + 3) / 4 * 7;
}

}  // namespace semcache::channel
