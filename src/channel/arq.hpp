// Stop-and-wait ARQ on top of the channel pipeline (§III-C: "other
// communication problems such as ... reliability can also be studied").
//
// Each attempt carries the payload plus a CRC-32 trailer; the receiver
// NACKs on checksum failure and the sender retransmits, up to a retry
// budget. This is the classic reliability mechanism TRADITIONAL systems
// need at low SNR — and an ablation axis for semantic features, which can
// often tolerate residual errors instead of paying retransmission airtime.
#pragma once

#include "channel/crc.hpp"
#include "channel/pipeline.hpp"

namespace semcache::channel {

struct ArqResult {
  BitVec payload;             ///< receiver's view after the final attempt
  bool delivered = false;     ///< CRC clean within the retry budget
  std::size_t attempts = 0;   ///< total transmissions (1 = no retry)
  std::size_t airtime_bits = 0;  ///< coded bits across all attempts
};

class ArqPipeline {
 public:
  /// `max_attempts` >= 1 total transmissions (1 disables retransmission).
  ArqPipeline(std::unique_ptr<ChannelPipeline> pipeline,
              std::size_t max_attempts);

  /// Send until the CRC verifies or the budget is exhausted. On failure the
  /// last (corrupt) payload is returned with delivered=false, matching a
  /// receiver that must surface *something* after giving up.
  ArqResult transmit(const BitVec& payload, Rng& rng);

  const ChannelPipeline& pipeline() const { return *pipeline_; }
  std::size_t max_attempts() const { return max_attempts_; }

 private:
  std::unique_ptr<ChannelPipeline> pipeline_;
  std::size_t max_attempts_;
};

}  // namespace semcache::channel
