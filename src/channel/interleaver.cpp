#include "channel/interleaver.hpp"

#include "common/check.hpp"

namespace semcache::channel {

BlockInterleaver::BlockInterleaver(std::size_t depth) : depth_(depth) {
  SEMCACHE_CHECK(depth >= 1, "interleaver: depth must be >= 1");
}

BitVec BlockInterleaver::interleave(const BitVec& bits) const {
  if (depth_ == 1) return bits;
  BitVec padded = bits;
  while (padded.size() % depth_ != 0) padded.push_back(0);
  const std::size_t width = padded.size() / depth_;
  BitVec out;
  out.reserve(padded.size());
  for (std::size_t col = 0; col < width; ++col) {
    for (std::size_t row = 0; row < depth_; ++row) {
      out.push_back(padded[row * width + col]);
    }
  }
  return out;
}

namespace {
template <typename Vec>
Vec deinterleave_impl(const Vec& in, std::size_t depth) {
  if (depth == 1) return in;
  SEMCACHE_CHECK(in.size() % depth == 0,
                 "deinterleave: length must be a multiple of depth");
  const std::size_t width = in.size() / depth;
  Vec out(in.size());
  std::size_t idx = 0;
  for (std::size_t col = 0; col < width; ++col) {
    for (std::size_t row = 0; row < depth; ++row) {
      out[row * width + col] = in[idx++];
    }
  }
  return out;
}
}  // namespace

BitVec BlockInterleaver::deinterleave(const BitVec& bits) const {
  return deinterleave_impl(bits, depth_);
}

std::vector<float> BlockInterleaver::deinterleave(
    const std::vector<float>& llrs) const {
  return deinterleave_impl(llrs, depth_);
}

}  // namespace semcache::channel
