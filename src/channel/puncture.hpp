// Punctured rate matching over the K=3 (7,5) convolutional mother code, in
// the osmocom style: a fixed periodic puncture matrix deletes mother-code
// bits on the transmit side, and the receiver re-inserts them as erasures
// (weight 0 / LLR 0) before the weighted Viterbi trellis. Raising the rate
// costs coding gain but buys airtime — exactly the trade the per-link
// adaptive controller (adaptive.hpp) plays against measured SNR.
#pragma once

#include <vector>

#include "channel/code.hpp"
#include "channel/convolutional.hpp"

namespace semcache::channel {

/// Supported punctured rates of the rate-1/2 mother code.
enum class PunctureRate {
  kR23,  ///< period-2 matrix [1 1; 1 0]: keep 3 of every 4 mother bits
  kR34,  ///< period-3 matrix [1 1; 1 0; 0 1]: keep 4 of every 6
};

class PuncturedConvolutionalCode final : public ChannelCode {
 public:
  explicit PuncturedConvolutionalCode(PunctureRate rate);

  BitVec encode(const BitVec& info) const override;
  /// Hard-decision decode: depunctures the received bits with weight-0
  /// erasures at the deleted positions and runs the weighted Viterbi
  /// trellis (present bits carry weight 1, so away from erasures the
  /// metric is the plain Hamming one).
  BitVec decode(const BitVec& coded) const override;
  /// Soft decode: deleted positions re-enter as LLR 0 (no information),
  /// present positions carry their quantized confidence.
  BitVec decode_soft(const std::vector<float>& llrs) const override;
  std::size_t encoded_length(std::size_t info_bits) const override;
  double rate() const override;
  std::string name() const override;

  /// The puncture pattern: pattern()[t % period()] is a 2-bit keep mask for
  /// trellis step t — bit 0 keeps the G1 output, bit 1 keeps the G2 output.
  const std::vector<std::uint8_t>& pattern() const { return pattern_; }
  std::size_t period() const { return pattern_.size(); }

 private:
  /// Number of trellis steps for `info_bits` information bits (zero tail
  /// included) and the punctured bit count over those steps.
  std::size_t steps_for(std::size_t info_bits) const;
  std::size_t kept_bits(std::size_t steps) const;

  PunctureRate rate_;
  ConvolutionalCode mother_;
  std::vector<std::uint8_t> pattern_;
};

}  // namespace semcache::channel
