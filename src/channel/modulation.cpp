#include "channel/modulation.hpp"

#include <array>
#include <cmath>

#include "channel/simd.hpp"
#include "common/check.hpp"

namespace semcache::channel {

namespace {
// Gray-coded 4-PAM levels for 16-QAM, normalized below. Index = 2 bits.
constexpr std::array<double, 4> kPam4 = {-3.0, -1.0, 1.0, 3.0};

// Map 2 bits (Gray) -> PAM index: 00->-3, 01->-1, 11->+1, 10->+3.
std::size_t gray_to_index(std::uint8_t b0, std::uint8_t b1) {
  const std::uint8_t g = static_cast<std::uint8_t>((b0 << 1) | b1);
  switch (g) {
    case 0b00: return 0;
    case 0b01: return 1;
    case 0b11: return 2;
    default: return 3;  // 0b10
  }
}

void index_to_gray(std::size_t idx, std::uint8_t& b0, std::uint8_t& b1) {
  static constexpr std::array<std::uint8_t, 4> kGray = {0b00, 0b01, 0b11,
                                                        0b10};
  b0 = static_cast<std::uint8_t>((kGray[idx] >> 1) & 1);
  b1 = static_cast<std::uint8_t>(kGray[idx] & 1);
}

// 16-QAM normalization: E[|s|^2] for +-1,+-3 square grid is 10.
const double kQam16Scale = 1.0 / std::sqrt(10.0);
const double kQpskScale = 1.0 / std::sqrt(2.0);

// Bit-group -> symbol tables, built once from the same expressions the old
// per-symbol switch evaluated (so the symbols are bit-identical): the map
// becomes one table load per symbol, no branching in the loop.
const std::array<Symbol, 4>& qpsk_table() {
  static const std::array<Symbol, 4> table = [] {
    std::array<Symbol, 4> t;
    for (std::size_t b0 = 0; b0 < 2; ++b0) {
      for (std::size_t b1 = 0; b1 < 2; ++b1) {
        t[(b0 << 1) | b1] = Symbol((b0 ? 1.0 : -1.0) * kQpskScale,
                                   (b1 ? 1.0 : -1.0) * kQpskScale);
      }
    }
    return t;
  }();
  return table;
}

const std::array<Symbol, 16>& qam16_table() {
  static const std::array<Symbol, 16> table = [] {
    std::array<Symbol, 16> t;
    for (std::size_t g = 0; g < 16; ++g) {
      const std::size_t ii = gray_to_index((g >> 3) & 1, (g >> 2) & 1);
      const std::size_t qi = gray_to_index((g >> 1) & 1, g & 1);
      t[g] = Symbol(kPam4[ii] * kQam16Scale, kPam4[qi] * kQam16Scale);
    }
    return t;
  }();
  return table;
}

std::uint8_t bit_or_pad(const BitVec& bits, std::size_t i) {
  return i < bits.size() ? static_cast<std::uint8_t>(bits[i] & 1) : 0;
}
}  // namespace

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
  }
  SEMCACHE_CHECK(false, "unknown modulation");
  return 0;
}

std::string modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "bpsk";
    case Modulation::kQpsk: return "qpsk";
    case Modulation::kQam16: return "16qam";
  }
  return "?";
}

std::vector<Symbol> modulate(const BitVec& bits, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  const std::size_t nsym = (bits.size() + bps - 1) / bps;
  std::vector<Symbol> out(nsym);
  // Full symbols index `bits` directly; only the final symbol (if partial)
  // zero-pads — the old code copied the whole BitVec to pad it.
  const std::size_t full = bits.size() / bps;
  switch (m) {
    case Modulation::kBpsk:
      for (std::size_t i = 0; i < full; ++i) {
        out[i] = Symbol(bits[i] ? 1.0 : -1.0, 0.0);
      }
      break;
    case Modulation::kQpsk: {
      const auto& table = qpsk_table();
      for (std::size_t i = 0; i < full; ++i) {
        const std::size_t b = 2 * i;
        out[i] = table[((bits[b] & 1u) << 1) | (bits[b + 1] & 1u)];
      }
      break;
    }
    case Modulation::kQam16: {
      const auto& table = qam16_table();
      for (std::size_t i = 0; i < full; ++i) {
        const std::size_t b = 4 * i;
        out[i] = table[((bits[b] & 1u) << 3) | ((bits[b + 1] & 1u) << 2) |
                       ((bits[b + 2] & 1u) << 1) | (bits[b + 3] & 1u)];
      }
      break;
    }
  }
  if (full < nsym) {
    const std::size_t b = full * bps;
    switch (m) {
      case Modulation::kBpsk:
        out[full] = Symbol(bit_or_pad(bits, b) ? 1.0 : -1.0, 0.0);
        break;
      case Modulation::kQpsk:
        out[full] = qpsk_table()[(bit_or_pad(bits, b) << 1) |
                                 bit_or_pad(bits, b + 1)];
        break;
      case Modulation::kQam16:
        out[full] = qam16_table()[(bit_or_pad(bits, b) << 3) |
                                  (bit_or_pad(bits, b + 1) << 2) |
                                  (bit_or_pad(bits, b + 2) << 1) |
                                  bit_or_pad(bits, b + 3)];
        break;
    }
  }
  return out;
}

namespace {
// Nearest 4-PAM index by branchless threshold slicing at the decision
// boundaries -2/0/2. Semantics relative to the old linear distance scan:
// a value exactly ON a boundary keeps the lower index (the scan's strict
// `<` tie rule, reproduced by `>` not `>=`), and NaN fails every compare
// and lands on index 0, as it did when every distance compare was false.
// Within half an ulp ABOVE a boundary the scan's ROUNDED distances also
// tied (fl(1+v) == fl(1-v) for 0 < v < ~2^-53) and it kept the lower
// level; the threshold form resolves those by true magnitude and picks
// the upper one. That band is ~1e-16 relative — no physical symbol or
// golden vector lands there, and the scalar/AVX2 pair still twin exactly.
std::size_t nearest_pam(double v) {
  return static_cast<std::size_t>(v > -2.0) + static_cast<std::size_t>(v > 0.0) +
         static_cast<std::size_t>(v > 2.0);
}
}  // namespace

void demap_into(BitVec& out, const Symbol* symbols, std::size_t count,
                Modulation m) {
  out.resize(count * bits_per_symbol(m));
  if (count == 0) return;
  // std::complex<double> is layout-compatible with double[2]; the kernels
  // (scalar and AVX2 alike) run over the flat (re, im) array.
  const double* sym = reinterpret_cast<const double*>(symbols);
  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  switch (m) {
    case Modulation::kBpsk:
      if (k != nullptr) {
        k->demod_bpsk(sym, count, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          out[i] = sym[2 * i] >= 0.0 ? 1 : 0;
        }
      }
      break;
    case Modulation::kQpsk:
      if (k != nullptr) {
        k->demod_qpsk(sym, count, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          out[2 * i] = sym[2 * i] >= 0.0 ? 1 : 0;
          out[2 * i + 1] = sym[2 * i + 1] >= 0.0 ? 1 : 0;
        }
      }
      break;
    case Modulation::kQam16:
      if (k != nullptr) {
        k->demod_qam16(sym, count, kQam16Scale, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          std::uint8_t b0, b1;
          index_to_gray(nearest_pam(sym[2 * i] / kQam16Scale), b0, b1);
          out[4 * i] = b0;
          out[4 * i + 1] = b1;
          index_to_gray(nearest_pam(sym[2 * i + 1] / kQam16Scale), b0, b1);
          out[4 * i + 2] = b0;
          out[4 * i + 3] = b1;
        }
      }
      break;
  }
}

namespace {
// Scalar 16-QAM per-coordinate max-log LLR pair. The expression shapes are
// mirrored exactly by the AVX2 kernel (mul and sub kept as separate ops, no
// a*b+c pattern a contraction could fuse), so both tiers round identically.
void qam16_soft_pair(double v, float& l0, float& l1) {
  double a = v;
  if (v > 2.0) a = 2.0 * (v - 1.0);
  if (v < -2.0) a = 2.0 * (v + 1.0);
  l0 = static_cast<float>(a);
  l1 = static_cast<float>(2.0 - std::fabs(v));
}
}  // namespace

void demap_soft_into(std::vector<float>& out, const Symbol* symbols,
                     std::size_t count, Modulation m) {
  out.resize(count * bits_per_symbol(m));
  if (count == 0) return;
  const double* sym = reinterpret_cast<const double*>(symbols);
  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  switch (m) {
    case Modulation::kBpsk:
      if (k != nullptr) {
        k->demod_soft_bpsk(sym, count, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          out[i] = static_cast<float>(sym[2 * i]);
        }
      }
      break;
    case Modulation::kQpsk:
      if (k != nullptr) {
        k->demod_soft_qpsk(sym, count, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          out[2 * i] = static_cast<float>(sym[2 * i]);
          out[2 * i + 1] = static_cast<float>(sym[2 * i + 1]);
        }
      }
      break;
    case Modulation::kQam16:
      if (k != nullptr) {
        k->demod_soft_qam16(sym, count, kQam16Scale, out.data());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          for (int c = 0; c < 2; ++c) {
            const double v = sym[2 * i + c] / kQam16Scale;
            qam16_soft_pair(v, out[4 * i + 2 * c], out[4 * i + 2 * c + 1]);
          }
        }
      }
      break;
  }
}

BitVec demodulate(const std::vector<Symbol>& symbols, Modulation m,
                  std::size_t bit_count) {
  BitVec out;
  demap_into(out, symbols.data(), symbols.size(), m);
  SEMCACHE_CHECK(out.size() >= bit_count,
                 "demodulate: fewer symbols than expected bits");
  out.resize(bit_count);
  return out;
}

}  // namespace semcache::channel
