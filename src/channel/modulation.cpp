#include "channel/modulation.hpp"

#include <array>
#include <cmath>

#include "common/check.hpp"

namespace semcache::channel {

namespace {
// Gray-coded 4-PAM levels for 16-QAM, normalized below. Index = 2 bits.
constexpr std::array<double, 4> kPam4 = {-3.0, -1.0, 1.0, 3.0};

// Map 2 bits (Gray) -> PAM index: 00->-3, 01->-1, 11->+1, 10->+3.
std::size_t gray_to_index(std::uint8_t b0, std::uint8_t b1) {
  const std::uint8_t g = static_cast<std::uint8_t>((b0 << 1) | b1);
  switch (g) {
    case 0b00: return 0;
    case 0b01: return 1;
    case 0b11: return 2;
    default: return 3;  // 0b10
  }
}

void index_to_gray(std::size_t idx, std::uint8_t& b0, std::uint8_t& b1) {
  static constexpr std::array<std::uint8_t, 4> kGray = {0b00, 0b01, 0b11,
                                                        0b10};
  b0 = static_cast<std::uint8_t>((kGray[idx] >> 1) & 1);
  b1 = static_cast<std::uint8_t>(kGray[idx] & 1);
}

// 16-QAM normalization: E[|s|^2] for +-1,+-3 square grid is 10.
const double kQam16Scale = 1.0 / std::sqrt(10.0);
const double kQpskScale = 1.0 / std::sqrt(2.0);
}  // namespace

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
  }
  SEMCACHE_CHECK(false, "unknown modulation");
  return 0;
}

std::string modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "bpsk";
    case Modulation::kQpsk: return "qpsk";
    case Modulation::kQam16: return "16qam";
  }
  return "?";
}

std::vector<Symbol> modulate(const BitVec& bits, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  BitVec padded = bits;
  while (padded.size() % bps != 0) padded.push_back(0);
  std::vector<Symbol> out;
  out.reserve(padded.size() / bps);
  for (std::size_t i = 0; i < padded.size(); i += bps) {
    switch (m) {
      case Modulation::kBpsk:
        out.emplace_back(padded[i] ? 1.0 : -1.0, 0.0);
        break;
      case Modulation::kQpsk:
        out.emplace_back((padded[i] ? 1.0 : -1.0) * kQpskScale,
                         (padded[i + 1] ? 1.0 : -1.0) * kQpskScale);
        break;
      case Modulation::kQam16: {
        const std::size_t ii = gray_to_index(padded[i], padded[i + 1]);
        const std::size_t qi = gray_to_index(padded[i + 2], padded[i + 3]);
        out.emplace_back(kPam4[ii] * kQam16Scale, kPam4[qi] * kQam16Scale);
        break;
      }
    }
  }
  return out;
}

namespace {
std::size_t nearest_pam(double v) {
  std::size_t best = 0;
  double best_d = std::abs(v - kPam4[0]);
  for (std::size_t i = 1; i < kPam4.size(); ++i) {
    const double d = std::abs(v - kPam4[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}
}  // namespace

BitVec demodulate(const std::vector<Symbol>& symbols, Modulation m,
                  std::size_t bit_count) {
  BitVec out;
  out.reserve(symbols.size() * bits_per_symbol(m));
  for (const Symbol& s : symbols) {
    switch (m) {
      case Modulation::kBpsk:
        out.push_back(s.real() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQpsk:
        out.push_back(s.real() >= 0.0 ? 1 : 0);
        out.push_back(s.imag() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQam16: {
        std::uint8_t b0, b1;
        index_to_gray(nearest_pam(s.real() / kQam16Scale), b0, b1);
        out.push_back(b0);
        out.push_back(b1);
        index_to_gray(nearest_pam(s.imag() / kQam16Scale), b0, b1);
        out.push_back(b0);
        out.push_back(b1);
        break;
      }
    }
  }
  SEMCACHE_CHECK(out.size() >= bit_count,
                 "demodulate: fewer symbols than expected bits");
  out.resize(bit_count);
  return out;
}

}  // namespace semcache::channel
