// End-to-end bit transport: channel code + interleaver + physical channel.
// This is the "Channel encoding -> Physical channel -> Channel decoding"
// segment of the paper's workflow; both semantic payloads (quantized
// features) and traditional payloads (compressed text bits) ride on it.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "channel/burst.hpp"
#include "channel/code.hpp"
#include "channel/interleaver.hpp"
#include "channel/physical.hpp"
#include "common/thread_pool.hpp"

namespace semcache::channel {

struct PipelineStats {
  std::size_t payload_bits = 0;   ///< information bits handed in
  std::size_t airtime_bits = 0;   ///< coded bits actually on the channel
  std::size_t messages = 0;
};

class ChannelPipeline {
 public:
  ChannelPipeline(std::unique_ptr<ChannelCode> code,
                  std::unique_ptr<BitChannel> channel,
                  std::size_t interleave_depth = 1);

  /// Transmit payload bits; returns the receiver's reconstruction, trimmed
  /// to the payload length.
  BitVec transmit(const BitVec& payload, Rng& rng);

  /// Slot-aware transmit: `slot` is the global message ordinal (the same
  /// index that keys the caller's RNG fork), forwarded to channels with
  /// memory (Gilbert–Elliott). When `obs` is non-null and the pipeline is
  /// in soft-decision mode, it receives the decision-directed channel
  /// observation of this message.
  BitVec transmit_at(const BitVec& payload, Rng& rng, std::uint64_t slot,
                     ChannelObservation* obs = nullptr);

  /// Batched transmit: payload i rides the channel with its own RNG stream
  /// `rngs[i]`, so result i is bit-identical to `transmit(payloads[i],
  /// rngs[i])` and the caller's per-message fork discipline is preserved.
  /// Stats account per message: `messages` grows by payloads.size() and the
  /// payload/airtime bit sums equal N sequential transmits.
  ///
  /// With a thread pool attached, the per-message modulate/noise/
  /// demodulate/decode passes run in parallel — each message consumes only
  /// its own rngs[i], so the received bits are bit-identical to the
  /// sequential path regardless of worker count — and the per-message
  /// stats are committed in ascending index order after the join.
  std::vector<BitVec> transmit_batch(const std::vector<BitVec>& payloads,
                                     std::span<Rng> rngs);
  /// Slot-aware batch booking into the pipeline's own stats.
  std::vector<BitVec> transmit_batch(const std::vector<BitVec>& payloads,
                                     std::span<Rng> rngs,
                                     std::span<const std::uint64_t> slots);

  /// transmit_batch with the accounting redirected into `sink` instead of
  /// the pipeline's own stats, leaving the pipeline const — the form the
  /// cross-pair serving tasks use: several pairs share one pipeline, each
  /// collects into a pair-local sink on its worker, and the caller folds
  /// the sinks back in pair order after the join (fold_stats). Bits and
  /// accounting are identical to transmit_batch; on an error, `sink`
  /// holds the pre-throw prefix exactly as member stats would.
  std::vector<BitVec> transmit_batch_collect(
      const std::vector<BitVec>& payloads, std::span<Rng> rngs,
      PipelineStats& sink, common::ThreadPool* pool) const;

  /// Slot-aware batch: `slots[i]` is forwarded as message i's slot (empty
  /// span = all slot 0, the legacy behavior). Bits stay identical to N
  /// sequential transmit_at calls under any pool.
  std::vector<BitVec> transmit_batch_collect(
      const std::vector<BitVec>& payloads, std::span<Rng> rngs,
      std::span<const std::uint64_t> slots, PipelineStats& sink,
      common::ThreadPool* pool) const;

  /// Switch the receive side between hard-decision slicing (default; the
  /// pre-existing bit-exact path) and soft-decision LLR decoding. Soft
  /// mode silently falls back to hard for channels without a soft output
  /// (BSC). Not thread-safe against in-flight batches.
  void set_soft_decision(bool on) { soft_ = on; }
  bool soft_decision() const { return soft_; }

  /// Attach a worker pool for transmit_batch (non-owning; nullptr detaches
  /// and restores the pure sequential loop). The pool only affects wall
  /// clock, never bits or stats.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Merge a collected sink into the pipeline's own stats (the commit
  /// half of transmit_batch_collect).
  void fold_stats(const PipelineStats& delta);
  const ChannelCode& code() const { return *code_; }
  std::string description() const;

 private:
  /// One payload through code/interleave/channel/deinterleave/decode; the
  /// shared body of transmit() and transmit_batch(). Pure with respect to
  /// pipeline state (safe to run concurrently for distinct messages):
  /// the coded on-air bit count is reported through `airtime_bits` and
  /// folded into stats_ by the caller.
  BitVec transmit_one(const BitVec& payload, Rng& rng,
                      std::size_t& airtime_bits, std::uint64_t slot,
                      ChannelObservation* obs) const;

  std::unique_ptr<ChannelCode> code_;
  std::unique_ptr<BitChannel> channel_;
  BlockInterleaver interleaver_;
  PipelineStats stats_;
  common::ThreadPool* pool_ = nullptr;
  bool soft_ = false;
};

/// Channel-code factory: "uncoded" | "rep3" | "rep5" | "hamming74" |
/// "conv_k3_r12" | "conv_k3_r23" | "conv_k3_r34".
std::unique_ptr<ChannelCode> make_code(const std::string& name);

/// Convenience factories for the standard experiment configurations.
std::unique_ptr<ChannelPipeline> make_awgn_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t interleave_depth = 1);
std::unique_ptr<ChannelPipeline> make_bsc_pipeline(
    std::unique_ptr<ChannelCode> code, double flip_probability);
std::unique_ptr<ChannelPipeline> make_rayleigh_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t fade_block_len, std::size_t interleave_depth);
std::unique_ptr<ChannelPipeline> make_burst_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod,
    const GilbertElliottConfig& burst, std::size_t interleave_depth = 1);

/// Resolve the effective soft-decision flag against SEMCACHE_SOFT:
/// "off"/"0" forces hard decisions even over an explicit configuration
/// (the CI floor leg, mirroring SEMCACHE_SIMD=scalar), "on"/"1" forces
/// soft, anything else (including unset) keeps `configured`.
bool resolve_soft_decision(bool configured);
/// True when SEMCACHE_SOFT force-disables soft decisions — soft-asserting
/// tests skip themselves under the floor leg.
bool soft_forced_off();

}  // namespace semcache::channel
