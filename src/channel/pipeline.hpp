// End-to-end bit transport: channel code + interleaver + physical channel.
// This is the "Channel encoding -> Physical channel -> Channel decoding"
// segment of the paper's workflow; both semantic payloads (quantized
// features) and traditional payloads (compressed text bits) ride on it.
#pragma once

#include <memory>

#include "channel/code.hpp"
#include "channel/interleaver.hpp"
#include "channel/physical.hpp"

namespace semcache::channel {

struct PipelineStats {
  std::size_t payload_bits = 0;   ///< information bits handed in
  std::size_t airtime_bits = 0;   ///< coded bits actually on the channel
  std::size_t messages = 0;
};

class ChannelPipeline {
 public:
  ChannelPipeline(std::unique_ptr<ChannelCode> code,
                  std::unique_ptr<BitChannel> channel,
                  std::size_t interleave_depth = 1);

  /// Transmit payload bits; returns the receiver's reconstruction, trimmed
  /// to the payload length.
  BitVec transmit(const BitVec& payload, Rng& rng);

  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const ChannelCode& code() const { return *code_; }
  std::string description() const;

 private:
  std::unique_ptr<ChannelCode> code_;
  std::unique_ptr<BitChannel> channel_;
  BlockInterleaver interleaver_;
  PipelineStats stats_;
};

/// Channel-code factory: "uncoded" | "rep3" | "rep5" | "hamming74" |
/// "conv_k3_r12".
std::unique_ptr<ChannelCode> make_code(const std::string& name);

/// Convenience factories for the standard experiment configurations.
std::unique_ptr<ChannelPipeline> make_awgn_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t interleave_depth = 1);
std::unique_ptr<ChannelPipeline> make_bsc_pipeline(
    std::unique_ptr<ChannelCode> code, double flip_probability);
std::unique_ptr<ChannelPipeline> make_rayleigh_pipeline(
    std::unique_ptr<ChannelCode> code, Modulation mod, double snr_db,
    std::size_t fade_block_len, std::size_t interleave_depth);

}  // namespace semcache::channel
