#include "channel/repetition.hpp"

#include "common/check.hpp"

namespace semcache::channel {

RepetitionCode::RepetitionCode(std::size_t repeats) : repeats_(repeats) {
  SEMCACHE_CHECK(repeats >= 1 && repeats % 2 == 1,
                 "repetition: repeats must be odd");
}

BitVec RepetitionCode::encode(const BitVec& info) const {
  BitVec out;
  out.reserve(info.size() * repeats_);
  for (const std::uint8_t b : info) {
    for (std::size_t r = 0; r < repeats_; ++r) out.push_back(b);
  }
  return out;
}

BitVec RepetitionCode::decode(const BitVec& coded) const {
  SEMCACHE_CHECK(coded.size() % repeats_ == 0,
                 "repetition: coded length must be a multiple of repeats");
  BitVec out;
  out.reserve(coded.size() / repeats_);
  for (std::size_t i = 0; i < coded.size(); i += repeats_) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < repeats_; ++r) ones += coded[i + r] & 1;
    out.push_back(ones * 2 > repeats_ ? 1 : 0);
  }
  return out;
}

std::size_t RepetitionCode::encoded_length(std::size_t info_bits) const {
  return info_bits * repeats_;
}

}  // namespace semcache::channel
