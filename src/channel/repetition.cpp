#include "channel/repetition.hpp"

#include "channel/simd.hpp"
#include "common/check.hpp"

namespace semcache::channel {

RepetitionCode::RepetitionCode(std::size_t repeats) : repeats_(repeats) {
  SEMCACHE_CHECK(repeats >= 1 && repeats % 2 == 1,
                 "repetition: repeats must be odd");
}

BitVec RepetitionCode::encode(const BitVec& info) const {
  BitVec out;
  out.reserve(info.size() * repeats_);
  for (const std::uint8_t b : info) {
    for (std::size_t r = 0; r < repeats_; ++r) out.push_back(b);
  }
  return out;
}

BitVec RepetitionCode::decode(const BitVec& coded) const {
  SEMCACHE_CHECK(coded.size() % repeats_ == 0,
                 "repetition: coded length must be a multiple of repeats");
  const std::size_t n = coded.size() / repeats_;
  BitVec out(n, 0);
  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  if (repeats_ == 3 && k != nullptr) {
    // The common rate-1/3 configuration has a vectorized vote; the vote is
    // pure integer counting, so the bits match the generic loop exactly.
    k->repetition_vote3(coded.data(), n, out.data());
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < repeats_; ++r) {
      ones += coded[i * repeats_ + r] & 1;
    }
    out[i] = ones * 2 > repeats_ ? 1 : 0;
  }
  return out;
}

std::size_t RepetitionCode::encoded_length(std::size_t info_bits) const {
  return info_bits * repeats_;
}

}  // namespace semcache::channel
