#include "channel/burst.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/hashing.hpp"

namespace semcache::channel {

namespace {
// Kind tags for the identity-hash coins, same discipline as fault_plane.cpp:
// distinct constants so the weather stream and the transition stream never
// collide even under equal (slot, symbol) words.
constexpr std::uint64_t kWeatherTag = 0x6E11B;  // epoch start-state coin
constexpr std::uint64_t kChainTag = 0x6E77;     // per-symbol transition coin

double noise_sigma(double snr_db) {
  return std::sqrt(1.0 / (2.0 * std::pow(10.0, snr_db / 10.0)));
}

bool valid_prob(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

GilbertElliottChannel::GilbertElliottChannel(const GilbertElliottConfig& cfg)
    : cfg_(cfg),
      sigma_good_(noise_sigma(cfg.snr_good_db)),
      sigma_bad_(noise_sigma(cfg.snr_bad_db)) {
  SEMCACHE_CHECK(valid_prob(cfg_.p_good_to_bad) &&
                     valid_prob(cfg_.p_bad_to_good) &&
                     valid_prob(cfg_.bad_weather_prob),
                 "gilbert-elliott: probabilities must be in [0, 1]");
  SEMCACHE_CHECK(cfg_.dwell_messages >= 1,
                 "gilbert-elliott: dwell_messages must be >= 1");
}

bool GilbertElliottChannel::starts_bad(std::uint64_t slot) const {
  const std::uint64_t epoch = slot / cfg_.dwell_messages;
  const std::uint64_t h =
      common::identity_mix(cfg_.seed, kWeatherTag, epoch, 0, 0);
  return common::to_unit_interval(h) < cfg_.bad_weather_prob;
}

void GilbertElliottChannel::apply(std::vector<Symbol>& symbols, Rng& rng) {
  apply_slot(symbols, rng, 0);
}

void GilbertElliottChannel::apply_slot(std::vector<Symbol>& symbols, Rng& rng,
                                       std::uint64_t slot) {
  bool bad = starts_bad(slot);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const double sigma = bad ? sigma_bad_ : sigma_good_;
    symbols[s] += Symbol(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma));
    // Transition AFTER the symbol so the epoch weather governs symbol 0.
    // The coin is keyed, not drawn from `rng`: the chain path is a pure
    // function of (seed, slot, s), and the message RNG spends exactly two
    // gaussians per symbol regardless of the path taken.
    const double u = common::to_unit_interval(
        common::identity_mix(cfg_.seed, kChainTag, slot, s, bad ? 1 : 0));
    if (bad) {
      if (u < cfg_.p_bad_to_good) bad = false;
    } else {
      if (u < cfg_.p_good_to_bad) bad = true;
    }
  }
}

std::string GilbertElliottChannel::name() const {
  std::ostringstream os;
  os << "gilbert_elliott(" << cfg_.snr_good_db << "/" << cfg_.snr_bad_db
     << "dB,dwell" << cfg_.dwell_messages << ")";
  return os.str();
}

}  // namespace semcache::channel
