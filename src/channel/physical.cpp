#include "channel/physical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "channel/simd.hpp"
#include "common/check.hpp"

namespace semcache::channel {

namespace {
double snr_db_to_linear(double snr_db) { return std::pow(10.0, snr_db / 10.0); }

/// Per-dimension noise stddev for unit-energy symbols at Es/N0 = snr.
double noise_sigma(double snr_db) {
  return std::sqrt(1.0 / (2.0 * snr_db_to_linear(snr_db)));
}
}  // namespace

AwgnChannel::AwgnChannel(double snr_db)
    : snr_db_(snr_db), sigma_(noise_sigma(snr_db)) {}

void AwgnChannel::apply(std::vector<Symbol>& symbols, Rng& rng) {
  // Draw the gaussian pairs into a buffer in the original per-symbol order
  // (the RNG stream is byte-identical to the old fused loop), then add.
  // Complex addition is elementwise over (re, im), so the buffered add —
  // scalar or vectorized — changes no bits. The buffer is thread-local:
  // batched transmit drives one AwgnChannel per worker.
  static thread_local std::vector<double> noise;
  noise.resize(2 * symbols.size());
  for (double& v : noise) v = rng.gaussian(0.0, sigma_);
  double* data = reinterpret_cast<double*>(symbols.data());
  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  if (k != nullptr) {
    k->add_noise(data, noise.data(), noise.size());
  } else {
    for (std::size_t i = 0; i < noise.size(); ++i) data[i] += noise[i];
  }
}

std::string AwgnChannel::name() const {
  std::ostringstream os;
  os << "awgn(" << snr_db_ << "dB)";
  return os.str();
}

RayleighChannel::RayleighChannel(double snr_db, std::size_t block_len)
    : snr_db_(snr_db), sigma_(noise_sigma(snr_db)), block_len_(block_len) {
  SEMCACHE_CHECK(block_len >= 1, "rayleigh: block_len must be >= 1");
}

void RayleighChannel::apply(std::vector<Symbol>& symbols, Rng& rng) {
  for (std::size_t start = 0; start < symbols.size(); start += block_len_) {
    // h ~ CN(0, 1): real/imag each N(0, 1/2).
    const Symbol h(rng.gaussian(0.0, std::sqrt(0.5)),
                   rng.gaussian(0.0, std::sqrt(0.5)));
    // Guard against pathological zero fades (equalizer would blow up).
    const Symbol h_safe = std::abs(h) < 1e-6 ? Symbol(1e-6, 0.0) : h;
    const std::size_t end = std::min(start + block_len_, symbols.size());
    for (std::size_t i = start; i < end; ++i) {
      Symbol y = h_safe * symbols[i];
      y += Symbol(rng.gaussian(0.0, sigma_), rng.gaussian(0.0, sigma_));
      symbols[i] = y / h_safe;  // perfect-CSI zero-forcing equalizer
    }
  }
}

std::string RayleighChannel::name() const {
  std::ostringstream os;
  os << "rayleigh(" << snr_db_ << "dB,b" << block_len_ << ")";
  return os.str();
}

BscChannel::BscChannel(double flip_probability) : p_(flip_probability) {
  SEMCACHE_CHECK(p_ >= 0.0 && p_ <= 0.5,
                 "bsc: flip probability must be in [0, 0.5]");
}

BitVec BscChannel::transmit(const BitVec& bits, Rng& rng) {
  BitVec out = bits;
  for (std::uint8_t& b : out) {
    if (rng.bernoulli(p_)) b ^= 1;
  }
  return out;
}

std::string BscChannel::name() const {
  std::ostringstream os;
  os << "bsc(" << p_ << ")";
  return os.str();
}

ModulatedChannel::ModulatedChannel(Modulation m,
                                   std::unique_ptr<SymbolChannel> channel)
    : mod_(m), channel_(std::move(channel)) {
  SEMCACHE_CHECK(channel_ != nullptr, "modulated channel: null symbol channel");
}

BitVec ModulatedChannel::transmit(const BitVec& bits, Rng& rng) {
  return transmit_slot(bits, rng, 0);
}

BitVec ModulatedChannel::transmit_slot(const BitVec& bits, Rng& rng,
                                       std::uint64_t slot) {
  std::vector<Symbol> symbols = modulate(bits, mod_);
  channel_->apply_slot(symbols, rng, slot);
  return demodulate(symbols, mod_, bits.size());
}

bool ModulatedChannel::transmit_soft(const BitVec& bits, Rng& rng,
                                     std::uint64_t slot,
                                     std::vector<float>& llrs,
                                     ChannelObservation* obs) {
  std::vector<Symbol> symbols = modulate(bits, mod_);
  channel_->apply_slot(symbols, rng, slot);
  demap_soft_into(llrs, symbols.data(), symbols.size(), mod_);
  llrs.resize(bits.size());  // drop LLRs of modulation pad bits
  if (obs != nullptr) *obs = observe_symbols(symbols, mod_);
  return true;
}

ChannelObservation observe_symbols(const std::vector<Symbol>& received,
                                   Modulation m) {
  ChannelObservation obs;
  if (received.empty()) return obs;
  // Slice each received symbol to the nearest constellation point and
  // measure the residual power — decision-directed, no genie SNR.
  const std::size_t bit_count = received.size() * bits_per_symbol(m);
  const BitVec sliced = demodulate(received, m, bit_count);
  const std::vector<Symbol> nearest = modulate(sliced, m);
  double err = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    err += std::norm(received[i] - nearest[i]);
  }
  obs.noise_power = err / static_cast<double>(received.size());
  obs.snr_est_db = 10.0 * std::log10(1.0 / std::max(obs.noise_power, 1e-9));
  return obs;
}

std::string ModulatedChannel::name() const {
  return modulation_name(mod_) + "/" + channel_->name();
}

double bpsk_awgn_ber(double snr_db) {
  const double snr = snr_db_to_linear(snr_db);
  return 0.5 * std::erfc(std::sqrt(snr));  // Q(sqrt(2x)) = erfc(sqrt(x))/2
}

}  // namespace semcache::channel
