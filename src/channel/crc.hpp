// CRC-32 (IEEE 802.3 polynomial) for payload integrity checks.
#pragma once

#include <cstdint>
#include <span>

#include "common/bits.hpp"

namespace semcache::channel {

/// CRC-32 of a byte span (reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append the 32-bit CRC (LSB-first) to a bit payload.
BitVec crc_append(const BitVec& payload);

/// Split and verify; returns {payload, ok}. A short input yields ok=false.
struct CrcCheckResult {
  BitVec payload;
  bool ok = false;
};
CrcCheckResult crc_verify(const BitVec& with_crc);

}  // namespace semcache::channel
