// Digital modulation: bits -> unit-average-energy complex symbols and hard-
// decision demodulation. BPSK and QPSK use antipodal/Gray mapping; 16-QAM
// uses a Gray-coded square constellation.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "common/bits.hpp"

namespace semcache::channel {

using Symbol = std::complex<double>;

enum class Modulation { kBpsk, kQpsk, kQam16 };

/// Bits carried per symbol (1, 2, 4).
std::size_t bits_per_symbol(Modulation m);
std::string modulation_name(Modulation m);

/// Map bits to symbols; pads with zero bits to a full symbol.
std::vector<Symbol> modulate(const BitVec& bits, Modulation m);

/// Array-at-a-time hard-decision demap: overwrites `out` with
/// count * bits_per_symbol(m) bits. Shared entry point for every
/// demodulation consumer; dispatches to the vectorized slicers when the
/// active SIMD tier admits them (bit-identical either way).
void demap_into(BitVec& out, const Symbol* symbols, std::size_t count,
                Modulation m);

/// Hard-decision demap; returns exactly `bit_count` bits.
BitVec demodulate(const std::vector<Symbol>& symbols, Modulation m,
                  std::size_t bit_count);

}  // namespace semcache::channel
