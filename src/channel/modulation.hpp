// Digital modulation: bits -> unit-average-energy complex symbols and hard-
// decision demodulation. BPSK and QPSK use antipodal/Gray mapping; 16-QAM
// uses a Gray-coded square constellation.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "common/bits.hpp"

namespace semcache::channel {

using Symbol = std::complex<double>;

enum class Modulation { kBpsk, kQpsk, kQam16 };

/// Bits carried per symbol (1, 2, 4).
std::size_t bits_per_symbol(Modulation m);
std::string modulation_name(Modulation m);

/// Map bits to symbols; pads with zero bits to a full symbol.
std::vector<Symbol> modulate(const BitVec& bits, Modulation m);

/// Array-at-a-time hard-decision demap: overwrites `out` with
/// count * bits_per_symbol(m) bits. Shared entry point for every
/// demodulation consumer; dispatches to the vectorized slicers when the
/// active SIMD tier admits them (bit-identical either way).
void demap_into(BitVec& out, const Symbol* symbols, std::size_t count,
                Modulation m);

/// Soft demap: per-bit max-log LLRs, one float per output bit, overwriting
/// `out` with count * bits_per_symbol(m) values. Sign convention: llr >= 0
/// means bit 1, so slicing the LLRs reproduces demap_into away from the
/// measure-zero decision boundaries. BPSK/QPSK LLRs are the raw received
/// coordinates; 16-QAM uses the standard piecewise max-log per-PAM forms
/// (LLR(b0) = v inside |v| <= 2, 2(v -+ 1) outside; LLR(b1) = 2 - |v|).
/// Dispatches to the AVX2 kernels when engaged, bit-identical either way.
void demap_soft_into(std::vector<float>& out, const Symbol* symbols,
                     std::size_t count, Modulation m);

/// Hard-decision demap; returns exactly `bit_count` bits.
BitVec demodulate(const std::vector<Symbol>& symbols, Modulation m,
                  std::size_t bit_count);

}  // namespace semcache::channel
