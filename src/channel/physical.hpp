// Physical channel models. Two abstraction levels:
//  * SymbolChannel distorts complex symbols (AWGN, Rayleigh block fading);
//  * BitChannel maps bits to bits — either directly (BSC) or by wrapping a
//    modulation + SymbolChannel pair (ModulatedChannel).
// The channel pipeline (pipeline.hpp) only talks to BitChannel.
#pragma once

#include <memory>

#include "channel/modulation.hpp"
#include "common/rng.hpp"

namespace semcache::channel {

class SymbolChannel {
 public:
  virtual ~SymbolChannel() = default;
  SymbolChannel() = default;
  SymbolChannel(const SymbolChannel&) = delete;
  SymbolChannel& operator=(const SymbolChannel&) = delete;

  /// Distort symbols in place.
  virtual void apply(std::vector<Symbol>& symbols, Rng& rng) = 0;
  /// Slot-aware apply: `slot` is the caller's global message index (the
  /// same ordinal that keys the per-message RNG forks), which lets a
  /// channel with memory — the Gilbert–Elliott burst model — evolve its
  /// state across messages deterministically under any thread or shard
  /// count. Memoryless channels ignore the slot.
  virtual void apply_slot(std::vector<Symbol>& symbols, Rng& rng,
                          std::uint64_t slot) {
    (void)slot;
    apply(symbols, rng);
  }
  virtual std::string name() const = 0;
};

/// Receiver-side channel-quality measurement, filled by the soft transmit
/// path: `noise_power` is the decision-directed error power (mean squared
/// distance from each received symbol to the nearest constellation point),
/// an honest estimate that needs no genie knowledge of the true SNR.
struct ChannelObservation {
  double noise_power = 0.0;
  double snr_est_db = 0.0;  ///< 10 log10(Es / noise_power), Es = 1
};

/// Decision-directed observation over received symbols.
ChannelObservation observe_symbols(const std::vector<Symbol>& received,
                                   Modulation m);

/// Complex additive white Gaussian noise at a given Es/N0.
class AwgnChannel final : public SymbolChannel {
 public:
  explicit AwgnChannel(double snr_db);
  void apply(std::vector<Symbol>& symbols, Rng& rng) override;
  std::string name() const override;
  double snr_db() const { return snr_db_; }

 private:
  double snr_db_;
  double sigma_;  // per-dimension noise stddev
};

/// Block Rayleigh fading with perfect channel state information at the
/// receiver: per block of `block_len` symbols, y = h x + n, equalized by
/// 1/h (noise enhancement during deep fades is what the interleaver + code
/// must fight — E8).
class RayleighChannel final : public SymbolChannel {
 public:
  RayleighChannel(double snr_db, std::size_t block_len = 32);
  void apply(std::vector<Symbol>& symbols, Rng& rng) override;
  std::string name() const override;

 private:
  double snr_db_;
  double sigma_;
  std::size_t block_len_;
};

class BitChannel {
 public:
  virtual ~BitChannel() = default;
  BitChannel() = default;
  BitChannel(const BitChannel&) = delete;
  BitChannel& operator=(const BitChannel&) = delete;

  /// Implementations must be safe for concurrent transmit() calls with
  /// DISTINCT rngs (read-only channel parameters, all working state local
  /// or in the rng): ChannelPipeline::transmit_batch runs per-message
  /// passes on a worker pool. All in-tree channels qualify.
  virtual BitVec transmit(const BitVec& bits, Rng& rng) = 0;
  /// Slot-aware transmit (see SymbolChannel::apply_slot). The default
  /// drops the slot, so memoryless channels behave exactly as before.
  virtual BitVec transmit_slot(const BitVec& bits, Rng& rng,
                               std::uint64_t slot) {
    (void)slot;
    return transmit(bits, rng);
  }
  /// Soft-output transmit: on success fills `llrs` with one LLR per input
  /// bit (sign convention: llr >= 0 decodes to 1, matching the hard
  /// slicers) and, when `obs` is non-null, a decision-directed channel
  /// observation. Returns false when the channel has no soft output (BSC),
  /// in which case the caller falls back to the hard path.
  virtual bool transmit_soft(const BitVec& bits, Rng& rng, std::uint64_t slot,
                             std::vector<float>& llrs,
                             ChannelObservation* obs) {
    (void)bits;
    (void)rng;
    (void)slot;
    (void)llrs;
    (void)obs;
    return false;
  }
  virtual std::string name() const = 0;
};

/// Binary symmetric channel: each bit flips independently with probability p.
class BscChannel final : public BitChannel {
 public:
  explicit BscChannel(double flip_probability);
  BitVec transmit(const BitVec& bits, Rng& rng) override;
  std::string name() const override;
  double flip_probability() const { return p_; }

 private:
  double p_;
};

/// Modulate -> symbol channel -> demodulate.
class ModulatedChannel final : public BitChannel {
 public:
  ModulatedChannel(Modulation m, std::unique_ptr<SymbolChannel> channel);
  BitVec transmit(const BitVec& bits, Rng& rng) override;
  BitVec transmit_slot(const BitVec& bits, Rng& rng,
                       std::uint64_t slot) override;
  bool transmit_soft(const BitVec& bits, Rng& rng, std::uint64_t slot,
                     std::vector<float>& llrs,
                     ChannelObservation* obs) override;
  std::string name() const override;
  Modulation modulation() const { return mod_; }

 private:
  Modulation mod_;
  std::unique_ptr<SymbolChannel> channel_;
};

/// Theoretical BPSK-over-AWGN bit error rate, Q(sqrt(2*Es/N0)). Used by the
/// property tests to validate the noise model.
double bpsk_awgn_ber(double snr_db);

}  // namespace semcache::channel
