// Physical channel models. Two abstraction levels:
//  * SymbolChannel distorts complex symbols (AWGN, Rayleigh block fading);
//  * BitChannel maps bits to bits — either directly (BSC) or by wrapping a
//    modulation + SymbolChannel pair (ModulatedChannel).
// The channel pipeline (pipeline.hpp) only talks to BitChannel.
#pragma once

#include <memory>

#include "channel/modulation.hpp"
#include "common/rng.hpp"

namespace semcache::channel {

class SymbolChannel {
 public:
  virtual ~SymbolChannel() = default;
  SymbolChannel() = default;
  SymbolChannel(const SymbolChannel&) = delete;
  SymbolChannel& operator=(const SymbolChannel&) = delete;

  /// Distort symbols in place.
  virtual void apply(std::vector<Symbol>& symbols, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Complex additive white Gaussian noise at a given Es/N0.
class AwgnChannel final : public SymbolChannel {
 public:
  explicit AwgnChannel(double snr_db);
  void apply(std::vector<Symbol>& symbols, Rng& rng) override;
  std::string name() const override;
  double snr_db() const { return snr_db_; }

 private:
  double snr_db_;
  double sigma_;  // per-dimension noise stddev
};

/// Block Rayleigh fading with perfect channel state information at the
/// receiver: per block of `block_len` symbols, y = h x + n, equalized by
/// 1/h (noise enhancement during deep fades is what the interleaver + code
/// must fight — E8).
class RayleighChannel final : public SymbolChannel {
 public:
  RayleighChannel(double snr_db, std::size_t block_len = 32);
  void apply(std::vector<Symbol>& symbols, Rng& rng) override;
  std::string name() const override;

 private:
  double snr_db_;
  double sigma_;
  std::size_t block_len_;
};

class BitChannel {
 public:
  virtual ~BitChannel() = default;
  BitChannel() = default;
  BitChannel(const BitChannel&) = delete;
  BitChannel& operator=(const BitChannel&) = delete;

  /// Implementations must be safe for concurrent transmit() calls with
  /// DISTINCT rngs (read-only channel parameters, all working state local
  /// or in the rng): ChannelPipeline::transmit_batch runs per-message
  /// passes on a worker pool. All in-tree channels qualify.
  virtual BitVec transmit(const BitVec& bits, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Binary symmetric channel: each bit flips independently with probability p.
class BscChannel final : public BitChannel {
 public:
  explicit BscChannel(double flip_probability);
  BitVec transmit(const BitVec& bits, Rng& rng) override;
  std::string name() const override;
  double flip_probability() const { return p_; }

 private:
  double p_;
};

/// Modulate -> symbol channel -> demodulate.
class ModulatedChannel final : public BitChannel {
 public:
  ModulatedChannel(Modulation m, std::unique_ptr<SymbolChannel> channel);
  BitVec transmit(const BitVec& bits, Rng& rng) override;
  std::string name() const override;

 private:
  Modulation mod_;
  std::unique_ptr<SymbolChannel> channel_;
};

/// Theoretical BPSK-over-AWGN bit error rate, Q(sqrt(2*Es/N0)). Used by the
/// property tests to validate the noise model.
double bpsk_awgn_ber(double snr_db);

}  // namespace semcache::channel
