#include "channel/crc.hpp"

#include <array>

namespace semcache::channel {

namespace {
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table()[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

BitVec crc_append(const BitVec& payload) {
  const auto bytes = bits_to_bytes(payload);
  const std::uint32_t crc = crc32(bytes);
  BitVec out = payload;
  append_bits(out, crc, 32);
  return out;
}

CrcCheckResult crc_verify(const BitVec& with_crc) {
  CrcCheckResult result;
  if (with_crc.size() < 32) return result;
  result.payload.assign(with_crc.begin(),
                        with_crc.end() - 32);
  std::size_t pos = with_crc.size() - 32;
  const auto received =
      static_cast<std::uint32_t>(read_bits(with_crc, pos, 32));
  const auto bytes = bits_to_bytes(result.payload);
  result.ok = crc32(bytes) == received;
  return result;
}

}  // namespace semcache::channel
