#include "channel/convolutional.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "channel/simd.hpp"
#include "common/check.hpp"

namespace semcache::channel {

namespace {
// Output pair for (state, input bit). State holds the last K-1 input bits,
// most-recent bit in the LSB.
struct Transition {
  std::uint8_t out0;  // from generator G1
  std::uint8_t out1;  // from generator G2
  std::uint8_t next_state;
};

Transition transition(std::uint8_t state, std::uint8_t input) {
  // Shift register contents: [input, state bits] = K bits total.
  const std::uint8_t reg =
      static_cast<std::uint8_t>((input << (ConvolutionalCode::kConstraint - 1)) | state);
  auto parity = [](std::uint8_t v) -> std::uint8_t {
    v ^= static_cast<std::uint8_t>(v >> 4);
    v ^= static_cast<std::uint8_t>(v >> 2);
    v ^= static_cast<std::uint8_t>(v >> 1);
    return v & 1;
  };
  Transition t;
  t.out0 = parity(reg & ConvolutionalCode::kG1);
  t.out1 = parity(reg & ConvolutionalCode::kG2);
  t.next_state = static_cast<std::uint8_t>(reg >> 1);
  return t;
}

// Build the add-compare-select tables once: for every received dibit and
// next-state, the branch metric through each of the two predecessors plus
// the packed survivor bytes. Indexing by NEXT state (not by source state)
// is what lets one pass update all four metrics with no transition scan.
detail::ViterbiTables build_viterbi_tables() {
  detail::ViterbiTables tb{};
  for (std::uint8_t ns = 0; ns < 4; ++ns) {
    const std::uint8_t in = ns >> 1;  // input bit that reaches ns
    const std::uint8_t pa = detail::kViterbiPredA[ns];
    const std::uint8_t pb = detail::kViterbiPredB[ns];
    const Transition ta = transition(pa, in);
    const Transition tb_ = transition(pb, in);
    SEMCACHE_CHECK(ta.next_state == ns && tb_.next_state == ns,
                   "conv: predecessor table inconsistent");
    tb.surv_a[ns] = static_cast<std::uint8_t>((in << 4) | pa);
    tb.surv_b[ns] = static_cast<std::uint8_t>((in << 4) | pb);
    tb.exp0_a[ns] = ta.out0;
    tb.exp1_a[ns] = ta.out1;
    tb.exp0_b[ns] = tb_.out0;
    tb.exp1_b[ns] = tb_.out1;
    for (std::uint8_t rx = 0; rx < 4; ++rx) {
      const std::uint8_t r0 = rx & 1;
      const std::uint8_t r1 = (rx >> 1) & 1;
      tb.bm_a[rx][ns] = static_cast<std::uint32_t>((ta.out0 != r0) + (ta.out1 != r1));
      tb.bm_b[rx][ns] = static_cast<std::uint32_t>((tb_.out0 != r0) + (tb_.out1 != r1));
    }
  }
  return tb;
}

// Metric + branch with the sentinel as a saturation ceiling: a metric can
// never exceed kViterbiInf, so the old size_t arithmetic's latent wrap on
// pathologically long frames (sentinel + branch overflowing and beating a
// real path) is structurally impossible. Reachable metrics (<= 2 per
// step) are far below the ceiling, so results are unchanged.
std::uint32_t sat_add(std::uint32_t metric, std::uint32_t branch) {
  const std::uint32_t cand = metric + branch;
  return cand < detail::kViterbiInf ? cand : detail::kViterbiInf;
}

// Scalar ACS over the information steps; same contract as the SSE kernel
// (channel/simd.hpp). Predecessor A is the lower source state — the one
// the old ascending-s scan visited first — so ties keep A, and B wins only
// strictly, preserving the survivor choice bit-for-bit.
void viterbi_acs_scalar(const detail::ViterbiTables& tb,
                        const std::uint8_t* rx, std::size_t info_steps,
                        std::uint32_t* metric, std::uint8_t* survivor) {
  for (std::size_t t = 0; t < info_steps; ++t) {
    const std::uint8_t r = rx[t];
    std::uint32_t next[4];
    std::uint8_t* sv = survivor + 4 * t;
    for (std::size_t ns = 0; ns < 4; ++ns) {
      const std::uint32_t ca =
          sat_add(metric[detail::kViterbiPredA[ns]], tb.bm_a[r][ns]);
      const std::uint32_t cb =
          sat_add(metric[detail::kViterbiPredB[ns]], tb.bm_b[r][ns]);
      if (cb < ca) {
        next[ns] = cb;
        sv[ns] = tb.surv_b[ns];
      } else {
        next[ns] = ca;
        sv[ns] = tb.surv_a[ns];
      }
    }
    for (std::size_t ns = 0; ns < 4; ++ns) metric[ns] = next[ns];
  }
}

// Weighted ACS (soft / erasure path): branch metrics are rebuilt per step
// from the expected-output tables and the two per-step weights instead of
// the precomputed unit-weight bm tables. Same tie-break as the hard path
// (A keeps ties, B wins strictly), same saturation ceiling.
void viterbi_acs_soft_scalar(const detail::ViterbiTables& tb,
                             const std::uint8_t* rx,
                             const std::uint8_t* weights,
                             std::size_t info_steps, std::uint32_t* metric,
                             std::uint8_t* survivor) {
  for (std::size_t t = 0; t < info_steps; ++t) {
    const std::uint32_t r0 = rx[t] & 1u;
    const std::uint32_t r1 = (rx[t] >> 1) & 1u;
    const std::uint32_t w0 = weights[2 * t];
    const std::uint32_t w1 = weights[2 * t + 1];
    std::uint32_t next[4];
    std::uint8_t* sv = survivor + 4 * t;
    for (std::size_t ns = 0; ns < 4; ++ns) {
      const std::uint32_t bma = (tb.exp0_a[ns] != r0 ? w0 : 0u) +
                                (tb.exp1_a[ns] != r1 ? w1 : 0u);
      const std::uint32_t bmb = (tb.exp0_b[ns] != r0 ? w0 : 0u) +
                                (tb.exp1_b[ns] != r1 ? w1 : 0u);
      const std::uint32_t ca = sat_add(metric[detail::kViterbiPredA[ns]], bma);
      const std::uint32_t cb = sat_add(metric[detail::kViterbiPredB[ns]], bmb);
      if (cb < ca) {
        next[ns] = cb;
        sv[ns] = tb.surv_b[ns];
      } else {
        next[ns] = ca;
        sv[ns] = tb.surv_a[ns];
      }
    }
    for (std::size_t ns = 0; ns < 4; ++ns) metric[ns] = next[ns];
  }
}

const detail::ViterbiTables& viterbi_tables() {
  static const detail::ViterbiTables kTables = build_viterbi_tables();
  return kTables;
}
}  // namespace

BitVec ConvolutionalCode::encode(const BitVec& info) const {
  BitVec out;
  out.reserve(encoded_length(info.size()));
  std::uint8_t state = 0;
  auto push = [&](std::uint8_t bit) {
    const Transition t = transition(state, bit);
    out.push_back(t.out0);
    out.push_back(t.out1);
    state = t.next_state;
  };
  for (const std::uint8_t b : info) push(b & 1);
  for (std::size_t i = 0; i < kConstraint - 1; ++i) push(0);  // zero tail
  return out;
}

BitVec ConvolutionalCode::decode(const BitVec& coded) const {
  SEMCACHE_CHECK(coded.size() % 2 == 0,
                 "conv: coded length must be even");
  const std::size_t steps = coded.size() / 2;
  SEMCACHE_CHECK(steps >= kConstraint - 1,
                 "conv: coded stream shorter than the termination tail");
  const std::size_t info_len = steps - (kConstraint - 1);

  const detail::ViterbiTables& kTables = viterbi_tables();

  // Received dibits, packed once so the ACS inner loop does one table
  // index per step instead of re-deriving branch metrics per transition.
  std::vector<std::uint8_t> rx(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    rx[t] = static_cast<std::uint8_t>((coded[2 * t] & 1) |
                                      ((coded[2 * t + 1] & 1) << 1));
  }

  std::array<std::uint32_t, kStates> metric;
  metric.fill(detail::kViterbiInf);
  metric[0] = 0;  // encoder starts in the zero state

  // survivor[4 * t + s] = (input << 4) | previous state. Dead next-states
  // keep a saturated metric; the zero-tail traceback never visits them.
  std::vector<std::uint8_t> survivor(4 * steps, 0);

  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  if (k != nullptr) {
    k->viterbi_acs(kTables, rx.data(), info_len, metric.data(),
                   survivor.data());
  } else {
    viterbi_acs_scalar(kTables, rx.data(), info_len, metric.data(),
                       survivor.data());
  }

  // Tail steps admit only input 0 (next-states 0 and 1); states 2 and 3
  // become unreachable and keep survivor byte 0, like the old decoder.
  for (std::size_t t = info_len; t < steps; ++t) {
    const std::uint8_t r = rx[t];
    std::uint32_t next[2];
    std::uint8_t* sv = survivor.data() + 4 * t;
    for (std::size_t ns = 0; ns < 2; ++ns) {
      const std::uint32_t ca =
          sat_add(metric[detail::kViterbiPredA[ns]], kTables.bm_a[r][ns]);
      const std::uint32_t cb =
          sat_add(metric[detail::kViterbiPredB[ns]], kTables.bm_b[r][ns]);
      if (cb < ca) {
        next[ns] = cb;
        sv[ns] = kTables.surv_b[ns];
      } else {
        next[ns] = ca;
        sv[ns] = kTables.surv_a[ns];
      }
    }
    metric[0] = next[0];
    metric[1] = next[1];
    metric[2] = detail::kViterbiInf;
    metric[3] = detail::kViterbiInf;
  }

  // Traceback from state 0 (guaranteed by the zero tail).
  BitVec decoded(steps, 0);
  std::uint8_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t packed = survivor[4 * t + state];
    decoded[t] = static_cast<std::uint8_t>((packed >> 4) & 1);
    state = packed & 0x0F;
  }
  decoded.resize(info_len);  // drop the tail bits
  return decoded;
}

std::uint8_t ConvolutionalCode::llr_weight(float llr) {
  const float v = std::fabs(llr) * 32.0f;
  if (!(v >= 0.0f)) return 0;  // NaN: no information, treat as erasure
  return v >= 255.0f ? 255 : static_cast<std::uint8_t>(v);
}

BitVec ConvolutionalCode::decode_soft(const std::vector<float>& llrs) const {
  BitVec hard(llrs.size());
  std::vector<std::uint8_t> weights(llrs.size());
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    hard[i] = llrs[i] >= 0.0f ? 1 : 0;
    weights[i] = llr_weight(llrs[i]);
  }
  return decode_weighted(hard, weights);
}

BitVec ConvolutionalCode::decode_weighted(
    const BitVec& hard, const std::vector<std::uint8_t>& weights) {
  SEMCACHE_CHECK(hard.size() % 2 == 0, "conv: coded length must be even");
  SEMCACHE_CHECK(weights.size() == hard.size(),
                 "conv: need one weight per coded bit");
  const std::size_t steps = hard.size() / 2;
  SEMCACHE_CHECK(steps >= kConstraint - 1,
                 "conv: coded stream shorter than the termination tail");
  const std::size_t info_len = steps - (kConstraint - 1);

  const detail::ViterbiTables& kTables = viterbi_tables();

  std::vector<std::uint8_t> rx(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    rx[t] = static_cast<std::uint8_t>((hard[2 * t] & 1) |
                                      ((hard[2 * t + 1] & 1) << 1));
  }

  std::array<std::uint32_t, kStates> metric;
  metric.fill(detail::kViterbiInf);
  metric[0] = 0;

  std::vector<std::uint8_t> survivor(4 * steps, 0);

  const detail::Avx2ChannelKernels* k = detail::engaged_channel_kernels();
  if (k != nullptr) {
    k->viterbi_acs_soft(kTables, rx.data(), weights.data(), info_len,
                        metric.data(), survivor.data());
  } else {
    viterbi_acs_soft_scalar(kTables, rx.data(), weights.data(), info_len,
                            metric.data(), survivor.data());
  }

  // Weighted tail steps: input 0 only, next-states 0 and 1, like the hard
  // decoder's tail.
  for (std::size_t t = info_len; t < steps; ++t) {
    const std::uint32_t r0 = rx[t] & 1u;
    const std::uint32_t r1 = (rx[t] >> 1) & 1u;
    const std::uint32_t w0 = weights[2 * t];
    const std::uint32_t w1 = weights[2 * t + 1];
    std::uint32_t next[2];
    std::uint8_t* sv = survivor.data() + 4 * t;
    for (std::size_t ns = 0; ns < 2; ++ns) {
      const std::uint32_t bma = (kTables.exp0_a[ns] != r0 ? w0 : 0u) +
                                (kTables.exp1_a[ns] != r1 ? w1 : 0u);
      const std::uint32_t bmb = (kTables.exp0_b[ns] != r0 ? w0 : 0u) +
                                (kTables.exp1_b[ns] != r1 ? w1 : 0u);
      const std::uint32_t ca = sat_add(metric[detail::kViterbiPredA[ns]], bma);
      const std::uint32_t cb = sat_add(metric[detail::kViterbiPredB[ns]], bmb);
      if (cb < ca) {
        next[ns] = cb;
        sv[ns] = kTables.surv_b[ns];
      } else {
        next[ns] = ca;
        sv[ns] = kTables.surv_a[ns];
      }
    }
    metric[0] = next[0];
    metric[1] = next[1];
    metric[2] = detail::kViterbiInf;
    metric[3] = detail::kViterbiInf;
  }

  BitVec decoded(steps, 0);
  std::uint8_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t packed = survivor[4 * t + state];
    decoded[t] = static_cast<std::uint8_t>((packed >> 4) & 1);
    state = packed & 0x0F;
  }
  decoded.resize(info_len);
  return decoded;
}

}  // namespace semcache::channel
