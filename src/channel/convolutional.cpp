#include "channel/convolutional.hpp"

#include <array>
#include <limits>

#include "common/check.hpp"

namespace semcache::channel {

namespace {
// Output pair for (state, input bit). State holds the last K-1 input bits,
// most-recent bit in the LSB.
struct Transition {
  std::uint8_t out0;  // from generator G1
  std::uint8_t out1;  // from generator G2
  std::uint8_t next_state;
};

Transition transition(std::uint8_t state, std::uint8_t input) {
  // Shift register contents: [input, state bits] = K bits total.
  const std::uint8_t reg =
      static_cast<std::uint8_t>((input << (ConvolutionalCode::kConstraint - 1)) | state);
  auto parity = [](std::uint8_t v) -> std::uint8_t {
    v ^= static_cast<std::uint8_t>(v >> 4);
    v ^= static_cast<std::uint8_t>(v >> 2);
    v ^= static_cast<std::uint8_t>(v >> 1);
    return v & 1;
  };
  Transition t;
  t.out0 = parity(reg & ConvolutionalCode::kG1);
  t.out1 = parity(reg & ConvolutionalCode::kG2);
  t.next_state = static_cast<std::uint8_t>(reg >> 1);
  return t;
}
}  // namespace

BitVec ConvolutionalCode::encode(const BitVec& info) const {
  BitVec out;
  out.reserve(encoded_length(info.size()));
  std::uint8_t state = 0;
  auto push = [&](std::uint8_t bit) {
    const Transition t = transition(state, bit);
    out.push_back(t.out0);
    out.push_back(t.out1);
    state = t.next_state;
  };
  for (const std::uint8_t b : info) push(b & 1);
  for (std::size_t i = 0; i < kConstraint - 1; ++i) push(0);  // zero tail
  return out;
}

BitVec ConvolutionalCode::decode(const BitVec& coded) const {
  SEMCACHE_CHECK(coded.size() % 2 == 0,
                 "conv: coded length must be even");
  const std::size_t steps = coded.size() / 2;
  SEMCACHE_CHECK(steps >= kConstraint - 1,
                 "conv: coded stream shorter than the termination tail");
  const std::size_t info_len = steps - (kConstraint - 1);

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::array<std::size_t, kStates> metric;
  metric.fill(kInf);
  metric[0] = 0;  // encoder starts in the zero state

  // survivor[t][s] = (previous state, input bit) packed into one byte.
  std::vector<std::array<std::uint8_t, kStates>> survivor(
      steps, std::array<std::uint8_t, kStates>{});

  for (std::size_t t = 0; t < steps; ++t) {
    const std::uint8_t r0 = coded[2 * t] & 1;
    const std::uint8_t r1 = coded[2 * t + 1] & 1;
    std::array<std::size_t, kStates> next;
    next.fill(kInf);
    std::array<std::uint8_t, kStates> surv{};
    for (std::uint8_t s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      // During the tail, only input 0 is possible.
      const int max_input = (t >= info_len) ? 0 : 1;
      for (int in = 0; in <= max_input; ++in) {
        const Transition tr = transition(s, static_cast<std::uint8_t>(in));
        const std::size_t branch =
            static_cast<std::size_t>((tr.out0 != r0) + (tr.out1 != r1));
        const std::size_t cand = metric[s] + branch;
        if (cand < next[tr.next_state]) {
          next[tr.next_state] = cand;
          surv[tr.next_state] =
              static_cast<std::uint8_t>((in << 4) | s);  // pack (input, prev)
        }
      }
    }
    metric = next;
    survivor[t] = surv;
  }

  // Traceback from state 0 (guaranteed by the zero tail).
  BitVec decoded(steps, 0);
  std::uint8_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t packed = survivor[t][state];
    decoded[t] = static_cast<std::uint8_t>((packed >> 4) & 1);
    state = packed & 0x0F;
  }
  decoded.resize(info_len);  // drop the tail bits
  return decoded;
}

}  // namespace semcache::channel
