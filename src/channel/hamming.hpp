// Hamming(7,4): corrects any single bit error per 7-bit block.
#pragma once

#include "channel/code.hpp"

namespace semcache::channel {

class HammingCode final : public ChannelCode {
 public:
  BitVec encode(const BitVec& info) const override;
  BitVec decode(const BitVec& coded) const override;
  std::size_t encoded_length(std::size_t info_bits) const override;
  double rate() const override { return 4.0 / 7.0; }
  std::string name() const override { return "hamming74"; }

  /// Encode a single 4-bit nibble into a 7-bit codeword (d1..d4 -> 7 bits).
  static std::uint8_t encode_nibble(std::uint8_t nibble);
  /// Decode a 7-bit codeword, correcting up to one flipped bit.
  static std::uint8_t decode_block(std::uint8_t block);
};

}  // namespace semcache::channel
