// Block interleaver: write row-wise into a (depth x width) grid, read
// column-wise. Spreads burst errors (e.g. Rayleigh fades) across codewords
// so that block codes see at most one error each.
#pragma once

#include "common/bits.hpp"

namespace semcache::channel {

class BlockInterleaver {
 public:
  explicit BlockInterleaver(std::size_t depth);

  /// Permute; pads to a multiple of depth internally and remembers nothing —
  /// deinterleave() must be called with the same length.
  BitVec interleave(const BitVec& bits) const;
  BitVec deinterleave(const BitVec& bits) const;
  /// Same permutation over per-bit LLRs (the soft-decision receive path
  /// un-permutes confidences, not sliced bits).
  std::vector<float> deinterleave(const std::vector<float>& llrs) const;
  std::size_t depth() const { return depth_; }

 private:
  std::size_t depth_;
};

}  // namespace semcache::channel
