// Repetition code with majority-vote decoding.
#pragma once

#include "channel/code.hpp"

namespace semcache::channel {

class RepetitionCode final : public ChannelCode {
 public:
  /// `repeats` must be odd so majority vote is unambiguous.
  explicit RepetitionCode(std::size_t repeats);

  BitVec encode(const BitVec& info) const override;
  BitVec decode(const BitVec& coded) const override;
  std::size_t encoded_length(std::size_t info_bits) const override;
  double rate() const override { return 1.0 / static_cast<double>(repeats_); }
  std::string name() const override {
    return "repetition" + std::to_string(repeats_);
  }

 private:
  std::size_t repeats_;
};

}  // namespace semcache::channel
