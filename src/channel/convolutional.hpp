// Rate-1/2 convolutional code, constraint length K=3, generators (7, 5)
// octal, zero-tail terminated, with hard-decision Viterbi decoding.
#pragma once

#include "channel/code.hpp"

namespace semcache::channel {

class ConvolutionalCode final : public ChannelCode {
 public:
  static constexpr std::size_t kConstraint = 3;       // K
  static constexpr std::size_t kStates = 1u << (kConstraint - 1);
  static constexpr std::uint8_t kG1 = 0b111;          // octal 7
  static constexpr std::uint8_t kG2 = 0b101;          // octal 5

  BitVec encode(const BitVec& info) const override;
  /// Viterbi decode with traceback from the zero state (the encoder is
  /// zero-terminated); returns exactly the original info bits.
  BitVec decode(const BitVec& coded) const override;
  std::size_t encoded_length(std::size_t info_bits) const override {
    return 2 * (info_bits + kConstraint - 1);
  }
  double rate() const override { return 0.5; }
  std::string name() const override { return "conv_k3_r12"; }
};

}  // namespace semcache::channel
