// Rate-1/2 convolutional code, constraint length K=3, generators (7, 5)
// octal, zero-tail terminated, with hard-decision Viterbi decoding plus a
// weighted (soft-decision / erasure) Viterbi path shared with the punctured
// variants (puncture.hpp).
#pragma once

#include <vector>

#include "channel/code.hpp"

namespace semcache::channel {

class ConvolutionalCode final : public ChannelCode {
 public:
  static constexpr std::size_t kConstraint = 3;       // K
  static constexpr std::size_t kStates = 1u << (kConstraint - 1);
  static constexpr std::uint8_t kG1 = 0b111;          // octal 7
  static constexpr std::uint8_t kG2 = 0b101;          // octal 5

  BitVec encode(const BitVec& info) const override;
  /// Viterbi decode with traceback from the zero state (the encoder is
  /// zero-terminated); returns exactly the original info bits.
  BitVec decode(const BitVec& coded) const override;
  /// LLR-metric Viterbi: quantizes each LLR to (hard bit, confidence
  /// weight) and runs the weighted ACS. With uniform weights this is the
  /// hard decoder exactly; in noise, strong bits outvote weak ones.
  BitVec decode_soft(const std::vector<float>& llrs) const override;
  std::size_t encoded_length(std::size_t info_bits) const override {
    return 2 * (info_bits + kConstraint - 1);
  }
  double rate() const override { return 0.5; }
  std::string name() const override { return "conv_k3_r12"; }

  /// Weighted-Hamming Viterbi over pre-sliced hard decisions plus per-bit
  /// mismatch weights (weights.size() == hard.size(), two per trellis
  /// step). Weight 0 is an erasure — the branch metric ignores that bit —
  /// which is how the punctured codes feed depunctured positions through
  /// the same trellis. Returns the information bits (zero tail dropped).
  static BitVec decode_weighted(const BitVec& hard,
                                const std::vector<std::uint8_t>& weights);

  /// LLR magnitude -> branch weight: clamp(|llr| * 32, 0, 255); a NaN LLR
  /// quantizes to 0 (erasure). Scale is arbitrary (only relative weights
  /// matter inside one frame); 32 keeps sub-dB confidence differences
  /// distinguishable after integer truncation.
  static std::uint8_t llr_weight(float llr);
};

}  // namespace semcache::channel
