#include "compress/lz77.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace semcache::compress {

Lz77::Lz77(const Lz77Config& config) : config_(config) {
  SEMCACHE_CHECK(config.window_bits >= 1 && config.window_bits <= 16,
                 "lz77: window_bits must be in [1, 16]");
  SEMCACHE_CHECK(config.length_bits >= 1 && config.length_bits <= 8,
                 "lz77: length_bits must be in [1, 8]");
  SEMCACHE_CHECK(config.min_match >= 2, "lz77: min_match must be >= 2");
}

BitVec Lz77::compress(std::span<const std::uint8_t> data) const {
  const std::size_t window = 1u << config_.window_bits;
  const std::size_t max_len =
      config_.min_match + (1u << config_.length_bits) - 1;
  BitVec out;
  // Header: original size (32 bits).
  append_bits(out, data.size(), 32);

  std::size_t pos = 0;
  while (pos < data.size()) {
    // Greedy longest match in the window before pos.
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    const std::size_t start = pos > window ? pos - window : 0;
    for (std::size_t cand = start; cand < pos; ++cand) {
      std::size_t len = 0;
      while (len < max_len && pos + len < data.size() &&
             data[cand + len] == data[pos + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_off = pos - cand;
      }
    }
    if (best_len >= config_.min_match) {
      out.push_back(1);
      append_bits(out, best_off, config_.window_bits);
      append_bits(out, best_len - config_.min_match, config_.length_bits);
      pos += best_len;
    } else {
      out.push_back(0);
      append_bits(out, data[pos], 8);
      ++pos;
    }
  }
  return out;
}

std::vector<std::uint8_t> Lz77::decompress(const BitVec& bits) const {
  std::size_t pos = 0;
  SEMCACHE_CHECK(bits.size() >= 32, "lz77: truncated header");
  const auto size = static_cast<std::size_t>(read_bits(bits, pos, 32));
  std::vector<std::uint8_t> out;
  out.reserve(size);
  while (out.size() < size && pos < bits.size()) {
    const bool is_match = bits[pos++] != 0;
    if (is_match) {
      if (pos + config_.window_bits + config_.length_bits > bits.size()) break;
      const auto off = static_cast<std::size_t>(
          read_bits(bits, pos, config_.window_bits));
      const auto len = static_cast<std::size_t>(
                           read_bits(bits, pos, config_.length_bits)) +
                       config_.min_match;
      if (off == 0 || off > out.size()) break;  // corrupt stream
      for (std::size_t i = 0; i < len && out.size() < size; ++i) {
        out.push_back(out[out.size() - off]);
      }
    } else {
      if (pos + 8 > bits.size()) break;
      out.push_back(static_cast<std::uint8_t>(read_bits(bits, pos, 8)));
    }
  }
  out.resize(size, 0);  // corrupted tail padding, as with Huffman
  return out;
}

}  // namespace semcache::compress
