#include "compress/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"

namespace semcache::compress {

ByteHistogram histogram(std::span<const std::uint8_t> data) {
  ByteHistogram h{};
  for (const std::uint8_t b : data) ++h[b];
  return h;
}

namespace {
struct Node {
  std::uint64_t weight;
  std::int32_t symbol;  // -1 for internal
  std::int32_t left = -1, right = -1;
};
}  // namespace

HuffmanCode HuffmanCode::build(const ByteHistogram& hist) {
  // Laplace-smooth so every symbol is encodable.
  std::vector<Node> nodes;
  nodes.reserve(512);
  using Item = std::pair<std::uint64_t, std::int32_t>;  // (weight, node idx)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (int s = 0; s < 256; ++s) {
    nodes.push_back({hist[static_cast<std::size_t>(s)] + 1, s});
    heap.emplace(nodes.back().weight, static_cast<std::int32_t>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, -1, a, b});
    heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size()) - 1);
  }

  // Walk the tree to assign code lengths, then build canonical codes.
  HuffmanCode hc;
  std::vector<std::pair<std::int32_t, std::uint8_t>> stack;  // (node, depth)
  stack.emplace_back(static_cast<std::int32_t>(nodes.size()) - 1, 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      hc.length_[static_cast<std::size_t>(n.symbol)] =
          std::max<std::uint8_t>(depth, 1);
      continue;
    }
    stack.emplace_back(n.left, static_cast<std::uint8_t>(depth + 1));
    stack.emplace_back(n.right, static_cast<std::uint8_t>(depth + 1));
  }

  // Canonical assignment: sort by (length, symbol).
  std::vector<int> order(256);
  for (int s = 0; s < 256; ++s) order[static_cast<std::size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = hc.length_[static_cast<std::size_t>(a)];
    const auto lb = hc.length_[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (const int s : order) {
    const std::uint8_t len = hc.length_[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    hc.code_[static_cast<std::size_t>(s)] = code;
    prev_len = len;
    ++code;
  }

  // Build the decode trie. Codes are transmitted MSB-first: canonical codes
  // are prefix-free in that orientation only (a reversed prefix-free code
  // is generally NOT prefix-free).
  hc.trie_.push_back({-1, -1});
  for (int s = 0; s < 256; ++s) {
    const std::uint8_t len = hc.length_[static_cast<std::size_t>(s)];
    const std::uint32_t bits = hc.code_[static_cast<std::size_t>(s)];
    std::int32_t node = 0;
    for (std::uint8_t i = 0; i < len; ++i) {
      const std::size_t branch = (bits >> (len - 1 - i)) & 1u;
      if (i + 1 == len) {
        // Final bit: the edge carries the symbol itself.
        hc.trie_[static_cast<std::size_t>(node)][branch] = s | kLeafFlag;
        break;
      }
      std::int32_t next = hc.trie_[static_cast<std::size_t>(node)][branch];
      if (next == -1) {
        hc.trie_.push_back({-1, -1});
        next = static_cast<std::int32_t>(hc.trie_.size()) - 1;
        hc.trie_[static_cast<std::size_t>(node)][branch] = next;
      }
      node = next;
    }
  }
  return hc;
}

BitVec HuffmanCode::encode(std::span<const std::uint8_t> data) const {
  BitVec out;
  for (const std::uint8_t b : data) {
    const std::uint8_t len = length_[b];
    const std::uint32_t code = code_[b];
    for (std::uint8_t i = 0; i < len; ++i) {  // MSB-first
      out.push_back(static_cast<std::uint8_t>((code >> (len - 1 - i)) & 1u));
    }
  }
  return out;
}

std::vector<std::uint8_t> HuffmanCode::decode(const BitVec& bits,
                                              std::size_t symbol_count) const {
  std::vector<std::uint8_t> out;
  out.reserve(symbol_count);
  std::size_t pos = 0;
  std::int32_t node = 0;
  while (out.size() < symbol_count && pos < bits.size()) {
    node = trie_[static_cast<std::size_t>(node)][bits[pos] & 1];
    ++pos;
    SEMCACHE_CHECK(node != -1, "huffman: invalid bit stream");
    if (node & kLeafFlag) {
      out.push_back(static_cast<std::uint8_t>(node & 0xFF));
      node = 0;
    }
  }
  // On a noisy channel the stream may end mid-code or run short; pad so the
  // caller always gets symbol_count bytes (corrupted tail, like real life).
  out.resize(symbol_count, 0);
  return out;
}

double HuffmanCode::expected_length(const ByteHistogram& hist) const {
  std::uint64_t total = 0;
  for (const auto c : hist) total += c;
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (int s = 0; s < 256; ++s) {
    bits += static_cast<double>(hist[static_cast<std::size_t>(s)]) *
            length_[static_cast<std::size_t>(s)];
  }
  return bits / static_cast<double>(total);
}

std::size_t HuffmanCode::code_length(std::uint8_t symbol) const {
  return length_[symbol];
}

double entropy_bits(const ByteHistogram& hist) {
  std::uint64_t total = 0;
  for (const auto c : hist) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace semcache::compress
