// Canonical Huffman coding over bytes. This is the source coder of the
// TRADITIONAL communication baseline (E1): text is serialized to bytes,
// Huffman-compressed, and the resulting bits ride the same channel stack as
// the semantic features. The code table is transmitted once out of band
// (both ends share the corpus statistics), mirroring how the semantic
// system's KB models are shared out of band.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"

namespace semcache::compress {

/// Byte-frequency histogram used to build a code.
using ByteHistogram = std::array<std::uint64_t, 256>;

ByteHistogram histogram(std::span<const std::uint8_t> data);

class HuffmanCode {
 public:
  /// Build from a histogram; symbols with zero count still get codes (depth
  /// capped implicitly by the canonical construction) so any byte stream is
  /// encodable.
  static HuffmanCode build(const ByteHistogram& hist);

  BitVec encode(std::span<const std::uint8_t> data) const;
  std::vector<std::uint8_t> decode(const BitVec& bits,
                                   std::size_t symbol_count) const;

  /// Expected bits/symbol under a distribution (for tests vs. entropy).
  double expected_length(const ByteHistogram& hist) const;
  std::size_t code_length(std::uint8_t symbol) const;

 private:
  std::array<std::uint32_t, 256> code_{};   // canonical code, MSB-first
  std::array<std::uint8_t, 256> length_{};  // code lengths
  // Decode via a flat trie: node pairs (left, right), -1 = absent,
  // leaves store symbol | kLeafFlag.
  static constexpr std::int32_t kLeafFlag = 1 << 30;
  std::vector<std::array<std::int32_t, 2>> trie_;
};

/// Shannon entropy in bits/symbol of a histogram.
double entropy_bits(const ByteHistogram& hist);

}  // namespace semcache::compress
