// Tiny LZ77 with a sliding window, for the traditional baseline's
// dictionary-compression variant. Token stream: (flag, literal) or
// (flag, offset, length) triples, bit-packed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"

namespace semcache::compress {

struct Lz77Config {
  std::size_t window_bits = 11;  ///< offset field width (window = 2^bits)
  std::size_t length_bits = 4;   ///< match length field width
  std::size_t min_match = 3;     ///< shorter matches emit literals
};

class Lz77 {
 public:
  explicit Lz77(const Lz77Config& config = {});

  BitVec compress(std::span<const std::uint8_t> data) const;
  std::vector<std::uint8_t> decompress(const BitVec& bits) const;

 private:
  Lz77Config config_;
};

}  // namespace semcache::compress
