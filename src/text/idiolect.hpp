// User idiolects: systematic, user-specific surface-word substitutions.
//
// §II-B argues a general model "may not accurately capture the nuances and
// context-specific language usage of individual users". We model an
// idiolect as a deterministic map meaning -> alternative surface word: the
// user utters some concepts with private slang (drawn from the world's
// pre-generated slang pool) or repurposes an existing word. A general
// encoder has never seen these surfaces used for those meanings, so its
// reconstructions fail exactly on idiolect positions until the user-specific
// model adapts (E3).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "text/corpus.hpp"

namespace semcache::text {

struct IdiolectConfig {
  /// Fraction of a domain's exclusive concepts the user renames.
  double substitution_rate = 0.25;
  /// Probability a substitution uses fresh slang (vs. repurposing another
  /// existing in-domain surface word).
  double slang_prob = 0.7;
};

class Idiolect {
 public:
  /// Build a user's idiolect over all domains of the world. Draws slang
  /// surfaces from world's pool (mutates the pool cursor only).
  static Idiolect generate(World& world, const IdiolectConfig& config,
                           Rng& rng);

  /// Rewrite the sentence's surface forms in place; meanings are untouched
  /// (the user means the same thing, they just say it differently).
  void apply(Sentence& sentence) const;

  /// Number of remapped meanings.
  std::size_t size() const { return map_.size(); }
  bool remaps(std::int32_t meaning_id) const { return map_.contains(meaning_id); }

 private:
  std::unordered_map<std::int32_t, std::int32_t> map_;  // meaning -> surface
};

}  // namespace semcache::text
