#include "text/idiolect.hpp"

#include "common/check.hpp"

namespace semcache::text {

Idiolect Idiolect::generate(World& world, const IdiolectConfig& config,
                            Rng& rng) {
  SEMCACHE_CHECK(config.substitution_rate >= 0.0 &&
                     config.substitution_rate <= 1.0,
                 "Idiolect: substitution_rate must be in [0, 1]");
  Idiolect idio;
  for (std::size_t d = 0; d < world.num_domains(); ++d) {
    const auto& concepts = world.domain_meanings(d);
    for (const std::int32_t mid : concepts) {
      if (!rng.bernoulli(config.substitution_rate)) continue;
      std::int32_t surface;
      if (rng.bernoulli(config.slang_prob) && world.slang_remaining() > 0) {
        surface = world.take_slang_surface();
      } else {
        // Repurpose another concept's surface from the same domain.
        const std::int32_t other = concepts[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(concepts.size()) - 1))];
        surface = world.meaning(other).surface;
        if (surface == world.meaning(mid).surface) continue;
      }
      idio.map_[mid] = surface;
    }
  }
  return idio;
}

void Idiolect::apply(Sentence& sentence) const {
  SEMCACHE_CHECK(sentence.surface.size() == sentence.meanings.size(),
                 "Idiolect::apply: malformed sentence");
  for (std::size_t i = 0; i < sentence.meanings.size(); ++i) {
    const auto it = map_.find(sentence.meanings[i]);
    if (it != map_.end()) sentence.surface[i] = it->second;
  }
}

}  // namespace semcache::text
