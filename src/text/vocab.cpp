#include "text/vocab.hpp"

#include "common/check.hpp"

namespace semcache::text {

Vocab::Vocab() {
  add("<pad>");
  add("<unk>");
}

std::int32_t Vocab::add(const std::string& word) {
  SEMCACHE_CHECK(!word.empty(), "Vocab::add: empty word");
  const auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(words_.size());
  words_.push_back(word);
  index_.emplace(word, id);
  return id;
}

std::int32_t Vocab::id(const std::string& word) const {
  const auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

bool Vocab::contains(const std::string& word) const {
  return index_.contains(word);
}

const std::string& Vocab::word(std::int32_t id) const {
  SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < words_.size(),
                 "Vocab::word: id out of range");
  return words_[static_cast<std::size_t>(id)];
}

}  // namespace semcache::text
