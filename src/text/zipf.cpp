#include "text/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::text {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  SEMCACHE_CHECK(n > 0, "ZipfSampler: n must be positive");
  SEMCACHE_CHECK(alpha >= 0.0, "ZipfSampler: alpha must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t rank) const {
  SEMCACHE_CHECK(rank < cdf_.size(), "ZipfSampler::pmf: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace semcache::text
