#include "text/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::text {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  SEMCACHE_CHECK(n > 0, "ZipfSampler: n must be positive");
  SEMCACHE_CHECK(alpha >= 0.0, "ZipfSampler: alpha must be non-negative");
  cdf_.resize(n);
  pmf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    pmf_[r] = 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    total += pmf_[r];
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding (sampling only, see pmf)
  // pmf comes from the raw weights, NOT from cdf differences: the
  // cancellation in cdf_[r] - cdf_[r-1] loses precision at deep ranks,
  // and the back() rounding clamp above would silently dump the whole
  // normalization error into pmf(n-1). weight/total keeps every rank's
  // mass exact (monotone by construction, sums to 1 up to rounding).
  for (double& p : pmf_) p /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t rank) const {
  SEMCACHE_CHECK(rank < pmf_.size(), "ZipfSampler::pmf: rank out of range");
  return pmf_[rank];
}

}  // namespace semcache::text
