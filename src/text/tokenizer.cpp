#include "text/tokenizer.hpp"

#include <cctype>
#include <sstream>

namespace semcache::text {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::string current;
  for (const char ch : line) {
    const auto c = static_cast<unsigned char>(ch);
    if (std::isalnum(c) || ch == '_' || ch == '#') {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

std::vector<std::int32_t> tokenize(const Vocab& vocab,
                                   const std::string& line) {
  std::vector<std::int32_t> ids;
  for (const auto& w : split_words(line)) ids.push_back(vocab.id(w));
  return ids;
}

std::string detokenize(const Vocab& vocab,
                       std::span<const std::int32_t> ids) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ' ';
    os << vocab.word(ids[i]);
  }
  return os.str();
}

std::vector<std::int32_t> pad_to(std::vector<std::int32_t> ids,
                                 std::size_t length) {
  ids.resize(length, Vocab::kPad);
  return ids;
}

}  // namespace semcache::text
