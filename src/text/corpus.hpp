// Synthetic language world: the data substrate for every semantic-
// communication experiment.
//
// The paper motivates domain-specialized KBs with lexical polysemy: the
// word "bus" means a vehicle in daily life and an interconnect in computer
// architecture (§II-A). We make that measurable by construction:
//
//  * A global table of MEANINGS (sense-level tokens). Each meaning belongs
//    to one domain (or to the shared function-word domain) and has a SURFACE
//    word used to utter it.
//  * Polysemous surfaces: one surface word maps to distinct meanings in
//    several domains ("bus" -> bus#transport, bus#it).
//  * A sentence is sampled in a domain: meanings are drawn Zipf-style from
//    that domain's lexicon; what is transmitted are the SURFACE ids; what a
//    semantic decoder must recover are the MEANING ids. Recovering the
//    meaning behind the word is exactly the paper's notion of semantic
//    communication.
//
// A pooled "general" model must resolve polysemy with no domain signal;
// per-domain KB models resolve it by construction — which is the claim E2
// quantifies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "text/vocab.hpp"
#include "text/zipf.hpp"

namespace semcache::text {

/// A sense-level token in the global meaning table.
struct Meaning {
  std::string gloss;      ///< human-readable, e.g. "bus#it"
  std::size_t domain;     ///< owning domain, or World::kSharedDomain
  std::int32_t surface;   ///< surface-word id in the shared Vocab
};

/// One sampled utterance.
struct Sentence {
  std::size_t domain = 0;
  std::vector<std::int32_t> surface;   ///< what is typed/transmitted
  std::vector<std::int32_t> meanings;  ///< what must be understood
};

struct WorldConfig {
  std::size_t num_domains = 4;
  std::size_t concepts_per_domain = 40;
  std::size_t num_polysemous = 12;   ///< shared surfaces with per-domain senses
  std::size_t num_function_words = 16;
  std::size_t sentence_length = 8;
  double zipf_alpha = 1.0;           ///< concept frequency skew inside a domain
  double function_word_prob = 0.25;  ///< per-position probability
  double polysemous_prob = 0.20;     ///< per-position probability
  std::size_t slang_pool_size = 64;  ///< pre-created surfaces for idiolects
};

/// The generated world: vocabularies, meaning table, per-domain samplers.
class World {
 public:
  static constexpr std::size_t kSharedDomain =
      static_cast<std::size_t>(-1);  ///< function words belong to no domain

  static World generate(const WorldConfig& config, Rng& rng);

  const WorldConfig& config() const { return config_; }
  std::size_t num_domains() const { return config_.num_domains; }
  const std::string& domain_name(std::size_t d) const;

  const Vocab& surface_vocab() const { return surface_vocab_; }
  std::size_t surface_count() const { return surface_vocab_.size(); }
  std::size_t meaning_count() const { return meanings_.size(); }
  const Meaning& meaning(std::int32_t id) const;
  const std::vector<Meaning>& meanings() const { return meanings_; }

  /// Meaning ids owned by a domain (excluding shared function meanings).
  const std::vector<std::int32_t>& domain_meanings(std::size_t d) const;
  /// Meaning ids of this domain that share their surface with another
  /// domain (the "bus" words).
  const std::vector<std::int32_t>& polysemous_meanings(std::size_t d) const;
  /// Shared function-word meaning ids.
  const std::vector<std::int32_t>& function_meanings() const {
    return function_meanings_;
  }

  /// Draw one sentence from a domain's distribution.
  Sentence sample_sentence(std::size_t domain, Rng& rng) const;

  /// Take an unused slang surface id from the pre-generated pool; throws
  /// when the pool (config.slang_pool_size) is exhausted.
  std::int32_t take_slang_surface();
  std::size_t slang_remaining() const {
    return slang_pool_.size() - slang_taken_;
  }

  /// Render surface ids as words (for examples / debugging).
  std::string surface_to_string(std::span<const std::int32_t> ids) const;
  /// Render meaning ids as concept strings.
  std::string meanings_to_string(std::span<const std::int32_t> ids) const;

 private:
  WorldConfig config_;
  std::vector<std::string> domain_names_;
  Vocab surface_vocab_;
  std::vector<Meaning> meanings_;
  std::vector<std::vector<std::int32_t>> per_domain_;       // concept meanings
  std::vector<std::vector<std::int32_t>> per_domain_poly_;  // polysemous senses
  std::vector<std::int32_t> function_meanings_;
  std::vector<std::int32_t> slang_pool_;
  std::size_t slang_taken_ = 0;
  std::vector<ZipfSampler> concept_sampler_;  // one per domain
};

/// Deterministically generate a pronounceable pseudo-word from an rng.
std::string pseudo_word(Rng& rng, std::size_t min_syllables = 2,
                        std::size_t max_syllables = 3);

}  // namespace semcache::text
