#include "text/corpus.hpp"

#include <array>
#include <sstream>

#include "common/check.hpp"

namespace semcache::text {

namespace {

// Real-ish inventory so examples read naturally. Domains beyond the list
// fall back to generated names.
constexpr std::array<const char*, 6> kDomainNames = {
    "it", "medical", "news", "entertainment", "transport", "finance"};

constexpr std::array<const char*, 20> kFunctionWords = {
    "the", "a",  "is",  "to",  "of",   "in",   "we",   "it",   "and", "on",
    "for", "at", "this", "that", "with", "from", "will", "can", "now", "so"};

// Canonical polysemous surfaces (the paper's "bus" example and friends).
constexpr std::array<const char*, 16> kPolysemousWords = {
    "bus",   "virus", "cell",  "driver", "stream", "net",    "crash", "mouse",
    "cloud", "server", "chip", "port",   "bug",    "windows", "web",  "file"};

}  // namespace

std::string pseudo_word(Rng& rng, std::size_t min_syllables,
                        std::size_t max_syllables) {
  static constexpr std::array<const char*, 20> kOnsets = {
      "b", "d", "f", "g", "k", "l", "m", "n", "p", "r",
      "s", "t", "v", "z", "br", "st", "tr", "kl", "pr", "sh"};
  static constexpr std::array<const char*, 6> kNuclei = {"a", "e", "i",
                                                         "o", "u", "ia"};
  const auto syllables = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(min_syllables),
      static_cast<std::int64_t>(max_syllables)));
  std::string w;
  for (std::size_t s = 0; s < syllables; ++s) {
    w += kOnsets[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kOnsets.size()) - 1))];
    w += kNuclei[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kNuclei.size()) - 1))];
  }
  return w;
}

World World::generate(const WorldConfig& config, Rng& rng) {
  SEMCACHE_CHECK(config.num_domains >= 1, "World: need at least one domain");
  SEMCACHE_CHECK(config.concepts_per_domain >= 2,
                 "World: need >= 2 concepts per domain");
  SEMCACHE_CHECK(config.num_function_words <= kFunctionWords.size(),
                 "World: at most " + std::to_string(kFunctionWords.size()) +
                     " function words available");
  SEMCACHE_CHECK(config.function_word_prob + config.polysemous_prob < 1.0,
                 "World: function + polysemous probability must leave room "
                 "for domain concepts");

  World w;
  w.config_ = config;

  for (std::size_t d = 0; d < config.num_domains; ++d) {
    w.domain_names_.push_back(d < kDomainNames.size()
                                  ? kDomainNames[d]
                                  : "domain" + std::to_string(d));
  }

  // Shared function words: one meaning each, surface = the word itself.
  for (std::size_t i = 0; i < config.num_function_words; ++i) {
    const std::int32_t surf = w.surface_vocab_.add(kFunctionWords[i]);
    w.function_meanings_.push_back(static_cast<std::int32_t>(w.meanings_.size()));
    w.meanings_.push_back({kFunctionWords[i], kSharedDomain, surf});
  }

  // Polysemous surfaces: each gets one sense per domain from a random pair
  // (or triple) of domains. With a single domain, polysemy is impossible,
  // so senses collapse to that domain only.
  w.per_domain_poly_.resize(config.num_domains);
  for (std::size_t p = 0; p < config.num_polysemous; ++p) {
    const std::string word = p < kPolysemousWords.size()
                                 ? kPolysemousWords[p]
                                 : pseudo_word(rng) + std::to_string(p);
    const std::int32_t surf = w.surface_vocab_.add(word);
    std::size_t senses = config.num_domains >= 3 && rng.bernoulli(0.3) ? 3 : 2;
    senses = std::min(senses, config.num_domains);
    // Choose `senses` distinct domains.
    std::vector<std::size_t> domains(config.num_domains);
    for (std::size_t d = 0; d < config.num_domains; ++d) domains[d] = d;
    rng.shuffle(domains);
    for (std::size_t s = 0; s < senses; ++s) {
      const std::size_t d = domains[s];
      const auto mid = static_cast<std::int32_t>(w.meanings_.size());
      w.meanings_.push_back({word + "#" + w.domain_names_[d], d, surf});
      w.per_domain_poly_[d].push_back(mid);
    }
  }

  // Domain-exclusive concepts with unique pseudo-word surfaces.
  w.per_domain_.resize(config.num_domains);
  for (std::size_t d = 0; d < config.num_domains; ++d) {
    for (std::size_t c = 0; c < config.concepts_per_domain; ++c) {
      std::string word;
      do {
        word = pseudo_word(rng);
      } while (w.surface_vocab_.contains(word));
      const std::int32_t surf = w.surface_vocab_.add(word);
      const auto mid = static_cast<std::int32_t>(w.meanings_.size());
      w.meanings_.push_back({word + "#" + w.domain_names_[d], d, surf});
      w.per_domain_[d].push_back(mid);
    }
    w.concept_sampler_.emplace_back(config.concepts_per_domain,
                                    config.zipf_alpha);
  }

  // Pre-create the slang surface pool so the vocabulary is frozen after
  // generation (codecs size their embeddings from it).
  for (std::size_t s = 0; s < config.slang_pool_size; ++s) {
    std::string word;
    do {
      word = pseudo_word(rng, 2, 4);
    } while (w.surface_vocab_.contains(word));
    w.slang_pool_.push_back(w.surface_vocab_.add(word));
  }
  return w;
}

const std::string& World::domain_name(std::size_t d) const {
  SEMCACHE_CHECK(d < domain_names_.size(), "domain_name: index out of range");
  return domain_names_[d];
}

const Meaning& World::meaning(std::int32_t id) const {
  SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < meanings_.size(),
                 "meaning: id out of range");
  return meanings_[static_cast<std::size_t>(id)];
}

const std::vector<std::int32_t>& World::domain_meanings(std::size_t d) const {
  SEMCACHE_CHECK(d < per_domain_.size(), "domain_meanings: out of range");
  return per_domain_[d];
}

const std::vector<std::int32_t>& World::polysemous_meanings(
    std::size_t d) const {
  SEMCACHE_CHECK(d < per_domain_poly_.size(),
                 "polysemous_meanings: out of range");
  return per_domain_poly_[d];
}

Sentence World::sample_sentence(std::size_t domain, Rng& rng) const {
  SEMCACHE_CHECK(domain < config_.num_domains,
                 "sample_sentence: domain out of range");
  Sentence s;
  s.domain = domain;
  s.surface.reserve(config_.sentence_length);
  s.meanings.reserve(config_.sentence_length);
  const auto& poly = per_domain_poly_[domain];
  for (std::size_t pos = 0; pos < config_.sentence_length; ++pos) {
    const double u = rng.uniform();
    std::int32_t mid;
    if (u < config_.function_word_prob || function_meanings_.empty()) {
      mid = function_meanings_[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(function_meanings_.size()) - 1))];
    } else if (u < config_.function_word_prob + config_.polysemous_prob &&
               !poly.empty()) {
      mid = poly[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(poly.size()) - 1))];
    } else {
      const std::size_t rank = concept_sampler_[domain].sample(rng);
      mid = per_domain_[domain][rank];
    }
    s.meanings.push_back(mid);
    s.surface.push_back(meanings_[static_cast<std::size_t>(mid)].surface);
  }
  return s;
}

std::int32_t World::take_slang_surface() {
  SEMCACHE_CHECK(slang_taken_ < slang_pool_.size(),
                 "slang pool exhausted; raise WorldConfig::slang_pool_size");
  return slang_pool_[slang_taken_++];
}

std::string World::surface_to_string(
    std::span<const std::int32_t> ids) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ' ';
    os << surface_vocab_.word(ids[i]);
  }
  return os.str();
}

std::string World::meanings_to_string(
    std::span<const std::int32_t> ids) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ' ';
    os << meaning(ids[i]).gloss;
  }
  return os.str();
}

}  // namespace semcache::text
