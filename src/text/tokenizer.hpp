// Whitespace tokenizer for turning human-typed strings into surface-id
// sequences (used by the interactive examples; experiments sample directly
// from World).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "text/vocab.hpp"

namespace semcache::text {

/// Lowercase, strip punctuation, split on whitespace.
std::vector<std::string> split_words(const std::string& line);

/// Tokenize against a fixed vocabulary; unknown words map to Vocab::kUnk.
std::vector<std::int32_t> tokenize(const Vocab& vocab, const std::string& line);

/// Join ids back into a space-separated string.
std::string detokenize(const Vocab& vocab, std::span<const std::int32_t> ids);

/// Pad or truncate a token sequence to exactly `length` (pads with kPad).
std::vector<std::int32_t> pad_to(std::vector<std::int32_t> ids,
                                 std::size_t length);

}  // namespace semcache::text
