// Zipf-distributed sampling, used for word frequencies inside a domain and
// for domain popularity in the caching experiments (E5).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace semcache::text {

/// Samples rank r in {0..n-1} with probability proportional to 1/(r+1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const;
  double pmf(std::size_t rank) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  double alpha_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
  std::vector<double> pmf_;  // weight_r / total, exact per rank
};

}  // namespace semcache::text
