// Surface-word vocabulary: bidirectional word <-> id mapping with reserved
// <pad>/<unk> entries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace semcache::text {

class Vocab {
 public:
  static constexpr std::int32_t kPad = 0;
  static constexpr std::int32_t kUnk = 1;

  Vocab();

  /// Insert a word if absent; returns its id either way.
  std::int32_t add(const std::string& word);
  /// Id of a word, or kUnk if the word is unknown.
  std::int32_t id(const std::string& word) const;
  bool contains(const std::string& word) const;
  const std::string& word(std::int32_t id) const;
  std::size_t size() const { return words_.size(); }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, std::int32_t> index_;
};

}  // namespace semcache::text
