// Layer-based neural network with explicit forward/backward passes.
//
// We use explicit per-layer backward rather than a tape autograd: the model
// zoo here is small (MLPs, embeddings, one GRU), and explicit gradients are
// straightforward to verify with the numerical gradcheck harness
// (nn/gradcheck.hpp), which every layer is tested against.
//
// Convention: inputs/activations are rank-2 tensors (batch x features).
// forward() caches whatever backward() needs; backward() receives dL/dy,
// accumulates dL/dparam into each Parameter::grad, and returns dL/dx.
//
// Hot-path discipline: forward() and backward() return references to
// per-layer output buffers that are resized in place (capacity reused), so a
// warmed-up layer performs no heap allocation per call. The reference stays
// valid until the layer's next forward()/backward(); callers that need the
// value past that point copy it (Tensor has value semantics).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace semcache::nn {

using tensor::Tensor;

/// A named trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.zero(); }
};

/// Abstract differentiable module.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual const Tensor& forward(const Tensor& x) = 0;
  virtual const Tensor& backward(const Tensor& grad_out) = 0;
  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::string name() const = 0;

  /// Attach a worker pool (non-owning; nullptr detaches) for layers whose
  /// forward kernels row-partition — results are bit-identical with or
  /// without it (the pooled tensor kernels guarantee this), so attaching a
  /// pool is purely a throughput decision. Default: no-op; containers
  /// propagate to children.
  virtual void set_thread_pool(common::ThreadPool* /*pool*/) {}
};

/// y = x W + b.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         std::string name = "linear");

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  std::string name() const override { return name_; }
  void set_thread_pool(common::ThreadPool* pool) override { pool_ = pool; }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  std::string name_;
  Parameter w_;
  Parameter b_;
  Tensor last_input_;
  Tensor out_;
  Tensor dx_;
  common::ThreadPool* pool_ = nullptr;  ///< row-partitions the forward affine
};

/// y = relu(x W + b), the affine and the clamp fused into one kernel pass
/// (tensor::affine_relu_into). Drop-in for a Linear immediately followed by
/// a ReLU: parameters carry the same names and order, so checkpoints and
/// pretrained-fixture caches recorded against the unfused pair reload
/// unchanged, and the forward/backward bits match the pair exactly.
class LinearReLU : public Layer {
 public:
  LinearReLU(std::size_t in_features, std::size_t out_features, Rng& rng,
             std::string name = "linear");

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  std::string name() const override { return name_; }
  void set_thread_pool(common::ThreadPool* pool) override { pool_ = pool; }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  std::string name_;
  Parameter w_;
  Parameter b_;
  Tensor last_input_;
  Tensor out_;  // doubles as the ReLU mask: y == 0 exactly when pre <= 0
  Tensor masked_grad_;
  Tensor dx_;
  common::ThreadPool* pool_ = nullptr;
};

/// y = max(x, 0).
class ReLU : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  // out_ doubles as the backward mask: y == 0 exactly when x <= 0.
  Tensor out_;
  Tensor dx_;
};

/// y = tanh(x).
class Tanh : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  Tensor out_;  // cached for backward: dtanh = 1 - y^2
  Tensor dx_;
};

/// y = 1 / (1 + exp(-x)).
class Sigmoid : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "sigmoid"; }

 private:
  Tensor out_;  // cached for backward: dsig = y (1 - y)
  Tensor dx_;
};

/// Per-row layer normalization with learned gain/bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t features, std::string name = "layernorm");

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gain_, &bias_}; }
  std::string name() const override { return name_; }

 private:
  static constexpr float kEps = 1e-5f;
  std::string name_;
  Parameter gain_;
  Parameter bias_;
  Tensor normalized_;  // (x - mean) / std, cached for backward
  Tensor inv_std_;     // rank-1, one per row
  Tensor out_;
  Tensor dx_;
};

/// Composition of layers applied in order.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "sequential"; }
  void set_thread_pool(common::ThreadPool* pool) override {
    for (auto& layer : layers_) layer->set_thread_pool(pool);
  }

  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Token-id -> dense vector lookup table. Not a Layer (its input is a
/// sequence of ids, not a tensor), but exposes the same train surface.
class Embedding {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim, Rng& rng,
            std::string name = "embedding");

  /// Returns an (ids.size() x dim) tensor of rows (internal buffer; valid
  /// until the next forward).
  const Tensor& forward(std::span<const std::int32_t> ids);
  /// Accumulates into the weight gradient for the ids of the last forward.
  void backward(const Tensor& grad_out);

  std::vector<Parameter*> parameters() { return {&w_}; }
  std::size_t vocab_size() const { return w_.value.dim(0); }
  std::size_t dim() const { return w_.value.dim(1); }
  Parameter& weight() { return w_; }

 private:
  Parameter w_;
  std::vector<std::int32_t> last_ids_;
  Tensor out_;
};

}  // namespace semcache::nn
