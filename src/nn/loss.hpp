// Loss functions. Each caches its forward inputs and produces dL/dlogits
// on backward; losses are means over the batch dimension.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace semcache::nn {

using tensor::Tensor;

/// Fused softmax + cross-entropy over rows of a logits matrix.
class SoftmaxCrossEntropy {
 public:
  /// logits: (N x C); targets: N class indices. Returns mean CE in nats.
  double forward(const Tensor& logits, std::span<const std::int32_t> targets);
  /// Returns dL/dlogits = (softmax - onehot) / N.
  Tensor backward() const;

  /// Softmax probabilities from the last forward (N x C).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<std::int32_t> targets_;
};

/// Mean squared error between predictions and targets of equal shape.
class MeanSquaredError {
 public:
  double forward(const Tensor& prediction, const Tensor& target);
  Tensor backward() const;

 private:
  Tensor prediction_;
  Tensor target_;
};

}  // namespace semcache::nn
