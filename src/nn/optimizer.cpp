#include "nn/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::nn {

void Optimizer::zero_grad(std::span<Parameter* const> params) {
  for (Parameter* p : params) p->zero_grad();
}

double Optimizer::clip_grad_norm(std::span<Parameter* const> params,
                                 double max_norm) {
  SEMCACHE_CHECK(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
  double sq = 0.0;
  for (const Parameter* p : params) {
    const double n = tensor::l2_norm(p->grad);
    sq += n * n;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) {
      float* pg = p->grad.data();
      for (std::size_t i = 0; i < p->grad.size(); ++i) pg[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  SEMCACHE_CHECK(lr > 0.0, "sgd: lr must be positive");
  SEMCACHE_CHECK(momentum >= 0.0 && momentum < 1.0,
                 "sgd: momentum must be in [0, 1)");
}

void Sgd::step(std::span<Parameter* const> params) {
  if (momentum_ == 0.0) {
    for (Parameter* p : params) {
      tensor::axpy_inplace(p->value, p->grad, static_cast<float>(-lr_));
    }
    return;
  }
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Parameter* p : params) {
      velocity_.push_back(tensor::Tensor::zeros(p->value.shape()));
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    tensor::Tensor& v = velocity_[i];
    SEMCACHE_CHECK(v.same_shape(p->value),
                   "sgd: parameter list changed between steps");
    float* pv = v.data();
    float* pval = p->value.data();
    const float* pg = p->grad.data();
    const auto mom = static_cast<float>(momentum_);
    const auto lr = static_cast<float>(lr_);
    for (std::size_t j = 0; j < v.size(); ++j) {
      pv[j] = mom * pv[j] + pg[j];
      pval[j] -= lr * pv[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  SEMCACHE_CHECK(lr > 0.0, "adam: lr must be positive");
  SEMCACHE_CHECK(beta1 >= 0.0 && beta1 < 1.0, "adam: beta1 must be in [0,1)");
  SEMCACHE_CHECK(beta2 >= 0.0 && beta2 < 1.0, "adam: beta2 must be in [0,1)");
}

void Adam::step(std::span<Parameter* const> params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const Parameter* p : params) {
      m_.push_back(tensor::Tensor::zeros(p->value.shape()));
      v_.push_back(tensor::Tensor::zeros(p->value.shape()));
    }
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    SEMCACHE_CHECK(m_[i].same_shape(p->value),
                   "adam: parameter list changed between steps");
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pval = p->value.data();
    const float* pg = p->grad.data();
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      const double g = pg[j];
      pm[j] = static_cast<float>(beta1_ * pm[j] + (1.0 - beta1_) * g);
      pv[j] = static_cast<float>(beta2_ * pv[j] + (1.0 - beta2_) * g * g);
      const double mhat = pm[j] / bc1;
      const double vhat = pv[j] / bc2;
      pval[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace semcache::nn
