#include "nn/loss.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const std::int32_t> targets) {
  SEMCACHE_CHECK(logits.rank() == 2, "ce: logits must be rank-2");
  SEMCACHE_CHECK(logits.dim(0) == targets.size(),
                 "ce: batch size mismatch with targets");
  probs_ = tensor::row_softmax(logits);
  targets_.assign(targets.begin(), targets.end());

  double loss = 0.0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const auto t = targets_[i];
    SEMCACHE_CHECK(t >= 0 && static_cast<std::size_t>(t) < logits.dim(1),
                   "ce: target class out of range");
    // Clamp to avoid -inf on (numerically) zero probabilities.
    const double p =
        std::max(static_cast<double>(probs_.at(i, static_cast<std::size_t>(t))),
                 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(targets_.size());
}

Tensor SoftmaxCrossEntropy::backward() const {
  SEMCACHE_CHECK(!targets_.empty(), "ce: backward before forward");
  Tensor grad = probs_;
  const auto n = static_cast<float>(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    grad.at(i, static_cast<std::size_t>(targets_[i])) -= 1.0f;
  }
  float* pg = grad.data();
  const float inv = 1.0f / n;
  for (std::size_t i = 0; i < grad.size(); ++i) pg[i] *= inv;
  return grad;
}

double MeanSquaredError::forward(const Tensor& prediction,
                                 const Tensor& target) {
  SEMCACHE_CHECK(prediction.same_shape(target), "mse: shape mismatch");
  prediction_ = prediction;
  target_ = target;
  double loss = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = static_cast<double>(prediction.at(i)) - target.at(i);
    loss += d * d;
  }
  return loss / static_cast<double>(prediction.size());
}

Tensor MeanSquaredError::backward() const {
  SEMCACHE_CHECK(prediction_.size() > 0, "mse: backward before forward");
  Tensor grad = tensor::sub(prediction_, target_);
  const float scale = 2.0f / static_cast<float>(prediction_.size());
  for (std::size_t i = 0; i < grad.size(); ++i) grad.at(i) *= scale;
  return grad;
}

}  // namespace semcache::nn
