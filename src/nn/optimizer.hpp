// First-order optimizers over Parameter lists.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace semcache::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update step from the accumulated gradients.
  virtual void step(std::span<Parameter* const> params) = 0;

  /// Reset all gradients to zero.
  static void zero_grad(std::span<Parameter* const> params);
  /// Scale gradients so their global L2 norm is at most max_norm.
  /// Returns the pre-clip norm.
  static double clip_grad_norm(std::span<Parameter* const> params,
                               double max_norm);
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(std::span<Parameter* const> params) override;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::span<Parameter* const> params) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace semcache::nn
