// Numerical gradient checking harness.
//
// Used by the test suite to verify every layer's analytic backward pass
// against central finite differences. Gradcheck is the ground truth that
// makes the "explicit backward" design safe.
#pragma once

#include <functional>
#include <span>

#include "nn/layers.hpp"

namespace semcache::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;  // max |analytic - numeric|
  double max_rel_error = 0.0;  // max error relative to magnitudes
  std::size_t checked = 0;     // number of scalars compared
  std::size_t above_tol = 0;   // elements with rel error > count_tol

  bool ok(double tol) const { return max_rel_error <= tol; }
  /// Robust acceptance for ReLU networks: central differences straddle an
  /// activation kink for a handful of elements (bias perturbations shift
  /// every row's pre-activation), which inflates the max without any
  /// gradient bug. Accept when at most `allowed` elements exceeded the
  /// counting tolerance and the absolute error stays bounded.
  bool mostly_ok(std::size_t allowed, double max_abs) const {
    return above_tol <= allowed && max_abs_error <= max_abs;
  }
};

/// Compare the accumulated gradients in `params` against central-difference
/// estimates of `loss_fn` (a pure function of the parameter values). The
/// caller must have run forward+backward once so Parameter::grad holds the
/// analytic gradient. `probes` limits how many scalars per parameter are
/// checked (stride-sampled); 0 means all.
///
/// `denom_floor` bounds the relative-error denominator from below. With
/// float32 forward passes the numeric gradient carries noise of roughly
/// (loss ulp)/(2*epsilon) ~ 5e-4, so gradients smaller than the floor are
/// effectively judged by absolute error — without this, a correct 1e-4
/// gradient reads as a huge "relative" error.
GradCheckResult gradcheck(const std::function<double()>& loss_fn,
                          std::span<Parameter* const> params,
                          double epsilon = 1e-3, std::size_t probes = 0,
                          double denom_floor = 0.05,
                          double count_tol = 2e-2);

}  // namespace semcache::nn
