// GRU over a sequence, with full backpropagation-through-time.
//
// Substitutes for the "LSTM-based classification network" the paper's §III-A
// suggests for context-aware model selection (see DESIGN.md substitutions).
//
// Update equations (batch of 1, row vectors):
//   z_t = σ(x_t W_z + h_{t-1} U_z + b_z)
//   r_t = σ(x_t W_r + h_{t-1} U_r + b_r)
//   h̃_t = tanh(x_t W_h + (r_t ⊙ h_{t-1}) U_h + b_h)
//   h_t = (1 − z_t) ⊙ h_{t-1} + z_t ⊙ h̃_t
//
// All per-step intermediates live in a tensor::Workspace and the step cache
// is a grow-only pool, so repeated forwards/backwards over same-or-smaller
// sequences run allocation-free.
#pragma once

#include <vector>

#include "nn/layers.hpp"
#include "tensor/workspace.hpp"

namespace semcache::nn {

class Gru {
 public:
  Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
      std::string name = "gru");

  /// Run over a sequence: xs is (T x input_dim); returns (T x hidden_dim)
  /// hidden states h_1..h_T (internal buffer; valid until the next
  /// forward). Initial hidden state is zero.
  const Tensor& forward(const Tensor& xs);

  /// BPTT. grad_hs is (T x hidden_dim) = dL/dh_t for every step (zero rows
  /// for steps without a loss term). Accumulates parameter gradients and
  /// returns dL/dxs (T x input_dim; internal buffer).
  const Tensor& backward(const Tensor& grad_hs);

  std::vector<Parameter*> parameters();
  std::size_t input_dim() const { return in_; }
  std::size_t hidden_dim() const { return hid_; }

 private:
  struct StepCache {
    Tensor x;        // (1 x in)
    Tensor h_prev;   // (1 x hid)
    Tensor z;        // (1 x hid)
    Tensor r;        // (1 x hid)
    Tensor h_tilde;  // (1 x hid)
  };

  // Workspace slot ids for the per-step scratch tensors.
  enum Slot : std::size_t {
    kH,       // running hidden state (forward)
    kPre,     // gate pre-activation a_z / a_r / a_h
    kRh,      // r ⊙ h_prev
    kDh,      // dL/dh_t (backward)
    kDaZ,     // dL/da_z
    kDaH,     // dL/da_h
    kDaR,     // dL/da_r
    kGRh,     // gradient w.r.t. (r ⊙ h_prev)
    kDhPrev,  // dL/dh_{t-1}
  };

  std::size_t in_;
  std::size_t hid_;
  Parameter wz_, uz_, bz_;
  Parameter wr_, ur_, br_;
  Parameter wh_, uh_, bh_;
  std::vector<StepCache> cache_;  // grow-only pool; steps_ entries are live
  std::size_t steps_ = 0;
  tensor::Workspace ws_;
  Tensor hs_;   // (T x hid) forward output
  Tensor dxs_;  // (T x in) backward output
};

}  // namespace semcache::nn
