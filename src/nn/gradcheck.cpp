#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::nn {

GradCheckResult gradcheck(const std::function<double()>& loss_fn,
                          std::span<Parameter* const> params, double epsilon,
                          std::size_t probes, double denom_floor,
                          double count_tol) {
  SEMCACHE_CHECK(epsilon > 0.0, "gradcheck: epsilon must be positive");
  SEMCACHE_CHECK(denom_floor > 0.0, "gradcheck: denom_floor must be positive");
  GradCheckResult result;
  for (Parameter* p : params) {
    const std::size_t n = p->value.size();
    const std::size_t stride =
        (probes == 0 || probes >= n) ? 1 : std::max<std::size_t>(1, n / probes);
    for (std::size_t i = 0; i < n; i += stride) {
      const float original = p->value.at(i);
      p->value.at(i) = original + static_cast<float>(epsilon);
      const double plus = loss_fn();
      p->value.at(i) = original - static_cast<float>(epsilon);
      const double minus = loss_fn();
      p->value.at(i) = original;

      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double analytic = p->grad.at(i);
      const double abs_err = std::abs(numeric - analytic);
      const double denom =
          std::max({std::abs(numeric), std::abs(analytic), denom_floor});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
      if (abs_err / denom > count_tol) ++result.above_tol;
      ++result.checked;
    }
  }
  return result;
}

}  // namespace semcache::nn
