#include "nn/layers.hpp"

#include <cmath>

#include "common/check.hpp"

namespace semcache::nn {

using tensor::add_inplace;
using tensor::affine;
using tensor::column_sums;
using tensor::matmul;
using tensor::transpose;

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string name)
    : name_(std::move(name)),
      w_(name_ + ".w", Tensor::xavier(in_features, out_features, rng)),
      b_(name_ + ".b", Tensor::zeros({out_features})) {}

Tensor Linear::forward(const Tensor& x) {
  SEMCACHE_CHECK(x.rank() == 2 && x.dim(1) == w_.value.dim(0),
                 name_ + ": input shape " + x.shape_string() +
                     " incompatible with weight " + w_.value.shape_string());
  last_input_ = x;
  return affine(x, w_.value, b_.value);
}

Tensor Linear::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(last_input_.size() > 0, name_ + ": backward before forward");
  // dW = xᵀ dy, db = column sums of dy, dx = dy Wᵀ.
  add_inplace(w_.grad, matmul(transpose(last_input_), grad_out));
  add_inplace(b_.grad, column_sums(grad_out));
  return matmul(grad_out, transpose(w_.value));
}

Tensor ReLU::forward(const Tensor& x) {
  last_input_ = x;
  Tensor y = x;
  float* py = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (py[i] < 0.0f) py[i] = 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(last_input_),
                 "relu: backward shape mismatch");
  Tensor dx = grad_out;
  float* pd = dx.data();
  const float* px = last_input_.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (px[i] <= 0.0f) pd[i] = 0.0f;
  }
  return dx;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  float* py = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) py[i] = std::tanh(py[i]);
  last_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(last_output_),
                 "tanh: backward shape mismatch");
  Tensor dx = grad_out;
  float* pd = dx.data();
  const float* py = last_output_.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    pd[i] *= (1.0f - py[i] * py[i]);
  }
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  float* py = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    py[i] = 1.0f / (1.0f + std::exp(-py[i]));
  }
  last_output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(last_output_),
                 "sigmoid: backward shape mismatch");
  Tensor dx = grad_out;
  float* pd = dx.data();
  const float* py = last_output_.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    pd[i] *= py[i] * (1.0f - py[i]);
  }
  return dx;
}

LayerNorm::LayerNorm(std::size_t features, std::string name)
    : name_(std::move(name)),
      gain_(name_ + ".gain", Tensor::full({features}, 1.0f)),
      bias_(name_ + ".bias", Tensor::zeros({features})) {}

Tensor LayerNorm::forward(const Tensor& x) {
  SEMCACHE_CHECK(x.rank() == 2 && x.dim(1) == gain_.value.dim(0),
                 name_ + ": input width mismatch");
  const std::size_t m = x.dim(0);
  const std::size_t n = x.dim(1);
  normalized_ = Tensor({m, n});
  inv_std_ = Tensor({m});
  Tensor y({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    float mean = 0.0f;
    for (std::size_t j = 0; j < n; ++j) mean += x.at(i, j);
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float d = x.at(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + kEps);
    inv_std_.at(i) = inv_std;
    for (std::size_t j = 0; j < n; ++j) {
      const float nz = (x.at(i, j) - mean) * inv_std;
      normalized_.at(i, j) = nz;
      y.at(i, j) = nz * gain_.value.at(j) + bias_.value.at(j);
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(normalized_),
                 name_ + ": backward shape mismatch");
  const std::size_t m = grad_out.dim(0);
  const std::size_t n = grad_out.dim(1);
  Tensor dx({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    // dnorm_j = dy_j * gain_j; dx via the standard layernorm backward:
    // dx = inv_std * (dnorm - mean(dnorm) - norm * mean(dnorm * norm)).
    float mean_dn = 0.0f;
    float mean_dn_nz = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float dn = grad_out.at(i, j) * gain_.value.at(j);
      mean_dn += dn;
      mean_dn_nz += dn * normalized_.at(i, j);
    }
    mean_dn /= static_cast<float>(n);
    mean_dn_nz /= static_cast<float>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const float dn = grad_out.at(i, j) * gain_.value.at(j);
      dx.at(i, j) =
          inv_std_.at(i) * (dn - mean_dn - normalized_.at(i, j) * mean_dn_nz);
      gain_.grad.at(j) += grad_out.at(i, j) * normalized_.at(i, j);
      bias_.grad.at(j) += grad_out.at(i, j);
    }
  }
  return dx;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  SEMCACHE_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, Rng& rng,
                     std::string name)
    : w_(std::move(name),
         Tensor::uniform({vocab_size, dim},
                         1.0f / std::sqrt(static_cast<float>(dim)), rng)) {}

Tensor Embedding::forward(std::span<const std::int32_t> ids) {
  last_ids_.assign(ids.begin(), ids.end());
  const std::size_t d = dim();
  Tensor out({ids.size(), d});
  float* po = out.data();
  const float* pw = w_.value.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto id = ids[i];
    SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < vocab_size(),
                   "embedding: token id out of range");
    const float* row = pw + static_cast<std::size_t>(id) * d;
    for (std::size_t j = 0; j < d; ++j) po[i * d + j] = row[j];
  }
  return out;
}

void Embedding::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == last_ids_.size() &&
                     grad_out.dim(1) == dim(),
                 "embedding: backward shape mismatch");
  const std::size_t d = dim();
  float* pg = w_.grad.data();
  const float* po = grad_out.data();
  for (std::size_t i = 0; i < last_ids_.size(); ++i) {
    const auto id = static_cast<std::size_t>(last_ids_[i]);
    float* row = pg + id * d;
    for (std::size_t j = 0; j < d; ++j) row[j] += po[i * d + j];
  }
}

}  // namespace semcache::nn
