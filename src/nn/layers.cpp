#include "nn/layers.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace semcache::nn {

using tensor::affine_into;
using tensor::column_sums_acc;
using tensor::matmul_nt_into;
using tensor::matmul_tn_acc;

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string name)
    : name_(std::move(name)),
      w_(name_ + ".w", Tensor::xavier(in_features, out_features, rng)),
      b_(name_ + ".b", Tensor::zeros({out_features})) {}

const Tensor& Linear::forward(const Tensor& x) {
  SEMCACHE_CHECK(x.rank() == 2 && x.dim(1) == w_.value.dim(0),
                 name_ + ": input shape " + x.shape_string() +
                     " incompatible with weight " + w_.value.shape_string());
  last_input_ = x;
  affine_into(out_, x, w_.value, b_.value, pool_);
  return out_;
}

const Tensor& Linear::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(last_input_.size() > 0, name_ + ": backward before forward");
  SEMCACHE_CHECK(grad_out.same_shape(out_),
                 name_ + ": backward shape mismatch");
  // dW += xᵀ dy, db += column sums of dy, dx = dy Wᵀ — the transposed-kernel
  // variants avoid materializing xᵀ / Wᵀ on every step.
  matmul_tn_acc(w_.grad, last_input_, grad_out);
  column_sums_acc(b_.grad, grad_out);
  matmul_nt_into(dx_, grad_out, w_.value);
  return dx_;
}

LinearReLU::LinearReLU(std::size_t in_features, std::size_t out_features,
                       Rng& rng, std::string name)
    : name_(std::move(name)),
      w_(name_ + ".w", Tensor::xavier(in_features, out_features, rng)),
      b_(name_ + ".b", Tensor::zeros({out_features})) {}

const Tensor& LinearReLU::forward(const Tensor& x) {
  SEMCACHE_CHECK(x.rank() == 2 && x.dim(1) == w_.value.dim(0),
                 name_ + ": input shape " + x.shape_string() +
                     " incompatible with weight " + w_.value.shape_string());
  last_input_ = x;
  tensor::affine_relu_into(out_, x, w_.value, b_.value, pool_);
  return out_;
}

const Tensor& LinearReLU::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(last_input_.size() > 0, name_ + ": backward before forward");
  SEMCACHE_CHECK(grad_out.same_shape(out_),
                 name_ + ": backward shape mismatch");
  // Gate dy through the ReLU first (y == 0 iff the pre-activation was
  // clamped — same mask rule as the standalone ReLU layer), then run the
  // ordinary Linear backward on the gated gradient.
  masked_grad_.resize(grad_out.shape());
  const float* pg = grad_out.data();
  const float* py = out_.data();
  float* pm = masked_grad_.data();
  for (std::size_t i = 0; i < masked_grad_.size(); ++i) {
    pm[i] = py[i] <= 0.0f ? 0.0f : pg[i];
  }
  matmul_tn_acc(w_.grad, last_input_, masked_grad_);
  column_sums_acc(b_.grad, masked_grad_);
  matmul_nt_into(dx_, masked_grad_, w_.value);
  return dx_;
}

const Tensor& ReLU::forward(const Tensor& x) {
  out_.resize(x.shape());
  const float* px = x.data();
  float* py = out_.data();
  for (std::size_t i = 0; i < out_.size(); ++i) {
    py[i] = px[i] < 0.0f ? 0.0f : px[i];
  }
  return out_;
}

const Tensor& ReLU::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(out_), "relu: backward shape mismatch");
  dx_.resize(grad_out.shape());
  float* pd = dx_.data();
  const float* pg = grad_out.data();
  const float* py = out_.data();
  for (std::size_t i = 0; i < dx_.size(); ++i) {
    pd[i] = py[i] <= 0.0f ? 0.0f : pg[i];
  }
  return dx_;
}

const Tensor& Tanh::forward(const Tensor& x) {
  out_.resize(x.shape());
  const float* px = x.data();
  float* py = out_.data();
  for (std::size_t i = 0; i < out_.size(); ++i) py[i] = std::tanh(px[i]);
  return out_;
}

const Tensor& Tanh::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(out_), "tanh: backward shape mismatch");
  dx_.resize(grad_out.shape());
  float* pd = dx_.data();
  const float* pg = grad_out.data();
  const float* py = out_.data();
  for (std::size_t i = 0; i < dx_.size(); ++i) {
    pd[i] = pg[i] * (1.0f - py[i] * py[i]);
  }
  return dx_;
}

const Tensor& Sigmoid::forward(const Tensor& x) {
  out_.resize(x.shape());
  const float* px = x.data();
  float* py = out_.data();
  for (std::size_t i = 0; i < out_.size(); ++i) {
    py[i] = 1.0f / (1.0f + std::exp(-px[i]));
  }
  return out_;
}

const Tensor& Sigmoid::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(out_),
                 "sigmoid: backward shape mismatch");
  dx_.resize(grad_out.shape());
  float* pd = dx_.data();
  const float* pg = grad_out.data();
  const float* py = out_.data();
  for (std::size_t i = 0; i < dx_.size(); ++i) {
    pd[i] = pg[i] * py[i] * (1.0f - py[i]);
  }
  return dx_;
}

LayerNorm::LayerNorm(std::size_t features, std::string name)
    : name_(std::move(name)),
      gain_(name_ + ".gain", Tensor::full({features}, 1.0f)),
      bias_(name_ + ".bias", Tensor::zeros({features})) {}

const Tensor& LayerNorm::forward(const Tensor& x) {
  SEMCACHE_CHECK(x.rank() == 2 && x.dim(1) == gain_.value.dim(0),
                 name_ + ": input width mismatch");
  const std::size_t m = x.dim(0);
  const std::size_t n = x.dim(1);
  normalized_.resize({m, n});
  inv_std_.resize({m});
  out_.resize({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    float mean = 0.0f;
    for (std::size_t j = 0; j < n; ++j) mean += x.at(i, j);
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float d = x.at(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + kEps);
    inv_std_.at(i) = inv_std;
    for (std::size_t j = 0; j < n; ++j) {
      const float nz = (x.at(i, j) - mean) * inv_std;
      normalized_.at(i, j) = nz;
      out_.at(i, j) = nz * gain_.value.at(j) + bias_.value.at(j);
    }
  }
  return out_;
}

const Tensor& LayerNorm::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.same_shape(normalized_),
                 name_ + ": backward shape mismatch");
  const std::size_t m = grad_out.dim(0);
  const std::size_t n = grad_out.dim(1);
  dx_.resize({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    // dnorm_j = dy_j * gain_j; dx via the standard layernorm backward:
    // dx = inv_std * (dnorm - mean(dnorm) - norm * mean(dnorm * norm)).
    float mean_dn = 0.0f;
    float mean_dn_nz = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float dn = grad_out.at(i, j) * gain_.value.at(j);
      mean_dn += dn;
      mean_dn_nz += dn * normalized_.at(i, j);
    }
    mean_dn /= static_cast<float>(n);
    mean_dn_nz /= static_cast<float>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const float dn = grad_out.at(i, j) * gain_.value.at(j);
      dx_.at(i, j) =
          inv_std_.at(i) * (dn - mean_dn - normalized_.at(i, j) * mean_dn_nz);
      gain_.grad.at(j) += grad_out.at(i, j) * normalized_.at(i, j);
      bias_.grad.at(j) += grad_out.at(i, j);
    }
  }
  return dx_;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  SEMCACHE_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& x) {
  const Tensor* h = &x;
  for (const auto& layer : layers_) h = &layer->forward(*h);
  return *h;
}

const Tensor& Sequential::backward(const Tensor& grad_out) {
  const Tensor* g = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = &(*it)->backward(*g);
  }
  return *g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, Rng& rng,
                     std::string name)
    : w_(std::move(name),
         Tensor::uniform({vocab_size, dim},
                         1.0f / std::sqrt(static_cast<float>(dim)), rng)) {}

const Tensor& Embedding::forward(std::span<const std::int32_t> ids) {
  last_ids_.assign(ids.begin(), ids.end());
  const std::size_t d = dim();
  out_.resize({ids.size(), d});
  float* po = out_.data();
  const float* pw = w_.value.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto id = ids[i];
    SEMCACHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < vocab_size(),
                   "embedding: token id out of range");
    std::memcpy(po + i * d, pw + static_cast<std::size_t>(id) * d,
                d * sizeof(float));
  }
  return out_;
}

void Embedding::backward(const Tensor& grad_out) {
  SEMCACHE_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == last_ids_.size() &&
                     grad_out.dim(1) == dim(),
                 "embedding: backward shape mismatch");
  const std::size_t d = dim();
  float* pg = w_.grad.data();
  const float* po = grad_out.data();
  for (std::size_t i = 0; i < last_ids_.size(); ++i) {
    const auto id = static_cast<std::size_t>(last_ids_[i]);
    float* row = pg + id * d;
    for (std::size_t j = 0; j < d; ++j) row[j] += po[i * d + j];
  }
}

}  // namespace semcache::nn
