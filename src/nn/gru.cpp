#include "nn/gru.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace semcache::nn {

using tensor::affine_into;
using tensor::column_sums_acc;
using tensor::matmul_acc;
using tensor::matmul_nt_acc;
using tensor::matmul_nt_into;
using tensor::matmul_tn_acc;

namespace {
/// out = σ(t), element-wise; out is resized to t's shape.
void sigmoid_into(Tensor& out, const Tensor& t) {
  out.resize(t.shape());
  const float* pt = t.data();
  float* po = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    po[i] = 1.0f / (1.0f + std::exp(-pt[i]));
  }
}

/// out = tanh(t), element-wise; out is resized to t's shape.
void tanh_into(Tensor& out, const Tensor& t) {
  out.resize(t.shape());
  const float* pt = t.data();
  float* po = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) po[i] = std::tanh(pt[i]);
}

/// out = a ⊙ b (same shape); out is resized.
void mul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  out.resize(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) po[i] = pa[i] * pb[i];
}

/// Copy row i of a rank-2 tensor into out as a (1 x cols) tensor.
void copy_row(Tensor& out, const Tensor& t, std::size_t i) {
  const std::size_t cols = t.dim(1);
  out.resize({1, cols});
  std::memcpy(out.data(), t.data() + i * cols, cols * sizeof(float));
}
}  // namespace

Gru::Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
         std::string name)
    : in_(input_dim),
      hid_(hidden_dim),
      wz_(name + ".wz", Tensor::xavier(input_dim, hidden_dim, rng)),
      uz_(name + ".uz", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      bz_(name + ".bz", Tensor::zeros({hidden_dim})),
      wr_(name + ".wr", Tensor::xavier(input_dim, hidden_dim, rng)),
      ur_(name + ".ur", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      br_(name + ".br", Tensor::zeros({hidden_dim})),
      wh_(name + ".wh", Tensor::xavier(input_dim, hidden_dim, rng)),
      uh_(name + ".uh", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      bh_(name + ".bh", Tensor::zeros({hidden_dim})) {}

const Tensor& Gru::forward(const Tensor& xs) {
  SEMCACHE_CHECK(xs.rank() == 2 && xs.dim(1) == in_,
                 "gru: input must be (T x input_dim)");
  const std::size_t t_steps = xs.dim(0);
  if (cache_.size() < t_steps) cache_.resize(t_steps);
  steps_ = t_steps;

  hs_.resize({t_steps, hid_});
  Tensor& h = ws_.acquire_zeroed(kH, {1, hid_});
  Tensor& pre = ws_.acquire(kPre, {1, hid_});
  Tensor& rh = ws_.acquire(kRh, {1, hid_});
  for (std::size_t t = 0; t < t_steps; ++t) {
    StepCache& c = cache_[t];
    copy_row(c.x, xs, t);
    c.h_prev = h;

    affine_into(pre, c.x, wz_.value, bz_.value);
    matmul_acc(pre, c.h_prev, uz_.value);
    sigmoid_into(c.z, pre);

    affine_into(pre, c.x, wr_.value, br_.value);
    matmul_acc(pre, c.h_prev, ur_.value);
    sigmoid_into(c.r, pre);

    mul_into(rh, c.r, c.h_prev);
    affine_into(pre, c.x, wh_.value, bh_.value);
    matmul_acc(pre, rh, uh_.value);
    tanh_into(c.h_tilde, pre);

    float* ph = h.data();
    float* hs_row = hs_.data() + t * hid_;
    const float* pz = c.z.data();
    const float* pp = c.h_prev.data();
    const float* pt = c.h_tilde.data();
    for (std::size_t j = 0; j < hid_; ++j) {
      const float hv = (1.0f - pz[j]) * pp[j] + pz[j] * pt[j];
      ph[j] = hv;
      hs_row[j] = hv;
    }
  }
  return hs_;
}

const Tensor& Gru::backward(const Tensor& grad_hs) {
  SEMCACHE_CHECK(grad_hs.rank() == 2 && grad_hs.dim(0) == steps_ &&
                     grad_hs.dim(1) == hid_,
                 "gru: grad_hs must be (T x hidden_dim) matching forward");
  const std::size_t t_steps = steps_;
  dxs_.resize({t_steps, in_});
  Tensor& dh_next = ws_.acquire_zeroed(kDhPrev, {1, hid_});
  Tensor& dh = ws_.acquire(kDh, {1, hid_});
  Tensor& da_z = ws_.acquire(kDaZ, {1, hid_});
  Tensor& da_h = ws_.acquire(kDaH, {1, hid_});
  Tensor& da_r = ws_.acquire(kDaR, {1, hid_});
  Tensor& g_rh = ws_.acquire(kGRh, {1, hid_});
  Tensor& rh = ws_.acquire(kRh, {1, hid_});
  Tensor& dx = ws_.acquire(kPre, {1, in_});

  for (std::size_t ti = t_steps; ti-- > 0;) {
    const StepCache& c = cache_[ti];
    // Total gradient at h_t: from the per-step loss plus from step t+1.
    {
      const float* pn = dh_next.data();
      const float* pg = grad_hs.data() + ti * hid_;
      float* pd = dh.data();
      for (std::size_t j = 0; j < hid_; ++j) pd[j] = pn[j] + pg[j];
    }

    for (std::size_t j = 0; j < hid_; ++j) {
      const float z = c.z.at(0, j);
      const float ht = c.h_tilde.at(0, j);
      da_z.at(0, j) = dh.at(0, j) * (ht - c.h_prev.at(0, j)) * z * (1.0f - z);
      da_h.at(0, j) = dh.at(0, j) * z * (1.0f - ht * ht);
    }

    // Gradient w.r.t. (r ⊙ h_prev) through U_h.
    matmul_nt_into(g_rh, da_h, uh_.value);
    for (std::size_t j = 0; j < hid_; ++j) {
      const float r = c.r.at(0, j);
      da_r.at(0, j) = g_rh.at(0, j) * c.h_prev.at(0, j) * r * (1.0f - r);
    }

    // Parameter gradients, accumulated directly via the transposed kernels
    // (no xᵀ / h_prevᵀ temporaries).
    mul_into(rh, c.r, c.h_prev);
    matmul_tn_acc(wz_.grad, c.x, da_z);
    matmul_tn_acc(uz_.grad, c.h_prev, da_z);
    column_sums_acc(bz_.grad, da_z);
    matmul_tn_acc(wr_.grad, c.x, da_r);
    matmul_tn_acc(ur_.grad, c.h_prev, da_r);
    column_sums_acc(br_.grad, da_r);
    matmul_tn_acc(wh_.grad, c.x, da_h);
    matmul_tn_acc(uh_.grad, rh, da_h);
    column_sums_acc(bh_.grad, da_h);

    // Input gradient.
    matmul_nt_into(dx, da_z, wz_.value);
    matmul_nt_acc(dx, da_r, wr_.value);
    matmul_nt_acc(dx, da_h, wh_.value);
    std::memcpy(dxs_.data() + ti * in_, dx.data(), in_ * sizeof(float));

    // Hidden-state gradient to step t-1 (reuses the dh_next slot: dh was
    // already folded into da_z / da_h / the (1-z) term below).
    {
      float* pd = dh_next.data();
      const float* pz = c.z.data();
      const float* pr = c.r.data();
      const float* pg = g_rh.data();
      const float* ph = dh.data();
      for (std::size_t j = 0; j < hid_; ++j) {
        pd[j] = ph[j] * (1.0f - pz[j]) + pg[j] * pr[j];
      }
    }
    matmul_nt_acc(dh_next, da_z, uz_.value);
    matmul_nt_acc(dh_next, da_r, ur_.value);
  }
  return dxs_;
}

std::vector<Parameter*> Gru::parameters() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_};
}

}  // namespace semcache::nn
