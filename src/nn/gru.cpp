#include "nn/gru.hpp"

#include <cmath>

#include "common/check.hpp"

namespace semcache::nn {

using tensor::add_inplace;
using tensor::column_sums;
using tensor::matmul;
using tensor::transpose;

namespace {
Tensor sigmoid(const Tensor& t) {
  Tensor y = t;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y.at(i) = 1.0f / (1.0f + std::exp(-y.at(i)));
  }
  return y;
}

Tensor tanh_t(const Tensor& t) {
  Tensor y = t;
  for (std::size_t i = 0; i < y.size(); ++i) y.at(i) = std::tanh(y.at(i));
  return y;
}

/// Extract row i of a rank-2 tensor as a (1 x cols) tensor.
Tensor row(const Tensor& t, std::size_t i) {
  Tensor out({1, t.dim(1)});
  for (std::size_t j = 0; j < t.dim(1); ++j) out.at(0, j) = t.at(i, j);
  return out;
}
}  // namespace

Gru::Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
         std::string name)
    : in_(input_dim),
      hid_(hidden_dim),
      wz_(name + ".wz", Tensor::xavier(input_dim, hidden_dim, rng)),
      uz_(name + ".uz", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      bz_(name + ".bz", Tensor::zeros({hidden_dim})),
      wr_(name + ".wr", Tensor::xavier(input_dim, hidden_dim, rng)),
      ur_(name + ".ur", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      br_(name + ".br", Tensor::zeros({hidden_dim})),
      wh_(name + ".wh", Tensor::xavier(input_dim, hidden_dim, rng)),
      uh_(name + ".uh", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      bh_(name + ".bh", Tensor::zeros({hidden_dim})) {}

Tensor Gru::forward(const Tensor& xs) {
  SEMCACHE_CHECK(xs.rank() == 2 && xs.dim(1) == in_,
                 "gru: input must be (T x input_dim)");
  const std::size_t t_steps = xs.dim(0);
  cache_.clear();
  cache_.reserve(t_steps);

  Tensor hs({t_steps, hid_});
  Tensor h = Tensor::zeros({1, hid_});
  for (std::size_t t = 0; t < t_steps; ++t) {
    const Tensor x = row(xs, t);
    Tensor az = tensor::affine(x, wz_.value, bz_.value);
    add_inplace(az, matmul(h, uz_.value));
    const Tensor z = sigmoid(az);

    Tensor ar = tensor::affine(x, wr_.value, br_.value);
    add_inplace(ar, matmul(h, ur_.value));
    const Tensor r = sigmoid(ar);

    const Tensor rh = tensor::mul(r, h);
    Tensor ah = tensor::affine(x, wh_.value, bh_.value);
    add_inplace(ah, matmul(rh, uh_.value));
    const Tensor h_tilde = tanh_t(ah);

    Tensor h_next({1, hid_});
    for (std::size_t j = 0; j < hid_; ++j) {
      h_next.at(0, j) = (1.0f - z.at(0, j)) * h.at(0, j) +
                        z.at(0, j) * h_tilde.at(0, j);
      hs.at(t, j) = h_next.at(0, j);
    }
    cache_.push_back({x, h, z, r, h_tilde});
    h = h_next;
  }
  return hs;
}

Tensor Gru::backward(const Tensor& grad_hs) {
  SEMCACHE_CHECK(grad_hs.rank() == 2 && grad_hs.dim(0) == cache_.size() &&
                     grad_hs.dim(1) == hid_,
                 "gru: grad_hs must be (T x hidden_dim) matching forward");
  const std::size_t t_steps = cache_.size();
  Tensor dxs({t_steps, in_});
  Tensor dh_next = Tensor::zeros({1, hid_});  // dL/dh_t flowing from t+1

  for (std::size_t ti = t_steps; ti-- > 0;) {
    const StepCache& c = cache_[ti];
    // Total gradient at h_t: from the per-step loss plus from step t+1.
    Tensor dh = dh_next;
    for (std::size_t j = 0; j < hid_; ++j) dh.at(0, j) += grad_hs.at(ti, j);

    Tensor da_z({1, hid_});
    Tensor da_h({1, hid_});
    for (std::size_t j = 0; j < hid_; ++j) {
      const float z = c.z.at(0, j);
      const float ht = c.h_tilde.at(0, j);
      da_z.at(0, j) = dh.at(0, j) * (ht - c.h_prev.at(0, j)) * z * (1.0f - z);
      da_h.at(0, j) = dh.at(0, j) * z * (1.0f - ht * ht);
    }

    // Gradient w.r.t. (r ⊙ h_prev) through U_h.
    const Tensor g_rh = matmul(da_h, transpose(uh_.value));
    Tensor da_r({1, hid_});
    for (std::size_t j = 0; j < hid_; ++j) {
      const float r = c.r.at(0, j);
      da_r.at(0, j) = g_rh.at(0, j) * c.h_prev.at(0, j) * r * (1.0f - r);
    }

    // Parameter gradients.
    const Tensor xt_T = transpose(c.x);
    const Tensor hprev_T = transpose(c.h_prev);
    const Tensor rh = tensor::mul(c.r, c.h_prev);
    add_inplace(wz_.grad, matmul(xt_T, da_z));
    add_inplace(uz_.grad, matmul(hprev_T, da_z));
    add_inplace(bz_.grad, column_sums(da_z));
    add_inplace(wr_.grad, matmul(xt_T, da_r));
    add_inplace(ur_.grad, matmul(hprev_T, da_r));
    add_inplace(br_.grad, column_sums(da_r));
    add_inplace(wh_.grad, matmul(xt_T, da_h));
    add_inplace(uh_.grad, matmul(transpose(rh), da_h));
    add_inplace(bh_.grad, column_sums(da_h));

    // Input gradient.
    Tensor dx = matmul(da_z, transpose(wz_.value));
    add_inplace(dx, matmul(da_r, transpose(wr_.value)));
    add_inplace(dx, matmul(da_h, transpose(wh_.value)));
    for (std::size_t j = 0; j < in_; ++j) dxs.at(ti, j) = dx.at(0, j);

    // Hidden-state gradient to step t-1.
    Tensor dh_prev({1, hid_});
    for (std::size_t j = 0; j < hid_; ++j) {
      dh_prev.at(0, j) =
          dh.at(0, j) * (1.0f - c.z.at(0, j)) + g_rh.at(0, j) * c.r.at(0, j);
    }
    add_inplace(dh_prev, matmul(da_z, transpose(uz_.value)));
    add_inplace(dh_prev, matmul(da_r, transpose(ur_.value)));
    dh_next = dh_prev;
  }
  return dxs;
}

std::vector<Parameter*> Gru::parameters() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_};
}

}  // namespace semcache::nn
