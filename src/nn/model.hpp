// Model-level utilities shared by the semantic codecs, the selector
// networks, and the FL sync layer:
//  * ParameterSet — a named view over a model's parameters with snapshot,
//    restore, diff, and byte-exact (de)serialization;
//  * flattening of values/gradients to contiguous float vectors (the wire
//    format the gradient compressor in semcache::fl consumes).
#pragma once

#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "nn/layers.hpp"

namespace semcache::nn {

/// Non-owning, ordered collection of parameters. The order is part of the
/// contract: flatten/unflatten, serialize/deserialize, and gradient sync all
/// rely on both replicas enumerating parameters identically.
class ParameterSet {
 public:
  ParameterSet() = default;
  explicit ParameterSet(std::vector<Parameter*> params);

  void add(Parameter* p);
  void add_all(std::span<Parameter* const> params);

  std::span<Parameter* const> params() const { return params_; }
  std::size_t count() const { return params_.size(); }
  /// Total number of scalar weights.
  std::size_t scalar_count() const;
  /// Serialized size in bytes.
  std::size_t byte_size() const;

  /// Concatenate all parameter values (in order) into one vector.
  std::vector<float> flatten_values() const;
  /// Concatenate all gradients (in order) into one vector.
  std::vector<float> flatten_grads() const;
  /// Write a flat value vector back into the parameters.
  void unflatten_values(std::span<const float> flat);
  /// Add `delta` (a flat vector, e.g. a decompressed gradient scaled by
  /// -lr) into the parameter values.
  void apply_delta(std::span<const float> delta);

  /// Byte-exact snapshot of all values (names + tensors).
  void serialize(ByteWriter& w) const;
  /// Restore from a snapshot; shapes and names must match.
  void deserialize(ByteReader& r);

  /// Copy values from another set with identical structure.
  void copy_values_from(const ParameterSet& other);
  /// True when every parameter is bit-identical to `other`'s.
  bool values_equal(const ParameterSet& other) const;
  /// Max |a-b| over all scalars.
  float max_abs_diff(const ParameterSet& other) const;

 private:
  std::vector<Parameter*> params_;
};

}  // namespace semcache::nn
