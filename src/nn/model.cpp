#include "nn/model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace semcache::nn {

ParameterSet::ParameterSet(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  for (const Parameter* p : params_) {
    SEMCACHE_CHECK(p != nullptr, "ParameterSet: null parameter");
  }
}

void ParameterSet::add(Parameter* p) {
  SEMCACHE_CHECK(p != nullptr, "ParameterSet::add: null parameter");
  params_.push_back(p);
}

void ParameterSet::add_all(std::span<Parameter* const> params) {
  for (Parameter* p : params) add(p);
}

std::size_t ParameterSet::scalar_count() const {
  std::size_t n = 0;
  for (const Parameter* p : params_) n += p->value.size();
  return n;
}

std::size_t ParameterSet::byte_size() const {
  ByteWriter w;
  serialize(w);
  return w.size();
}

std::vector<float> ParameterSet::flatten_values() const {
  std::vector<float> out;
  out.reserve(scalar_count());
  for (const Parameter* p : params_) {
    out.insert(out.end(), p->value.flat().begin(), p->value.flat().end());
  }
  return out;
}

std::vector<float> ParameterSet::flatten_grads() const {
  std::vector<float> out;
  out.reserve(scalar_count());
  for (const Parameter* p : params_) {
    out.insert(out.end(), p->grad.flat().begin(), p->grad.flat().end());
  }
  return out;
}

void ParameterSet::unflatten_values(std::span<const float> flat) {
  SEMCACHE_CHECK(flat.size() == scalar_count(),
                 "unflatten_values: size mismatch");
  std::size_t off = 0;
  for (Parameter* p : params_) {
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(off),
                p->value.size(), p->value.flat().begin());
    off += p->value.size();
  }
}

void ParameterSet::apply_delta(std::span<const float> delta) {
  SEMCACHE_CHECK(delta.size() == scalar_count(), "apply_delta: size mismatch");
  std::size_t off = 0;
  for (Parameter* p : params_) {
    float* dst = p->value.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) dst[i] += delta[off + i];
    off += p->value.size();
  }
}

void ParameterSet::serialize(ByteWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(params_.size()));
  for (const Parameter* p : params_) {
    w.write_string(p->name);
    p->value.serialize(w);
  }
}

void ParameterSet::deserialize(ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  SEMCACHE_CHECK(n == params_.size(),
                 "ParameterSet::deserialize: parameter count mismatch");
  for (Parameter* p : params_) {
    const std::string name = r.read_string();
    SEMCACHE_CHECK(name == p->name,
                   "ParameterSet::deserialize: expected parameter '" + p->name +
                       "', found '" + name + "'");
    tensor::Tensor t = tensor::Tensor::deserialize(r);
    SEMCACHE_CHECK(t.same_shape(p->value),
                   "ParameterSet::deserialize: shape mismatch for " + p->name);
    p->value = std::move(t);
  }
}

void ParameterSet::copy_values_from(const ParameterSet& other) {
  SEMCACHE_CHECK(params_.size() == other.params_.size(),
                 "copy_values_from: parameter count mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    SEMCACHE_CHECK(params_[i]->value.same_shape(other.params_[i]->value),
                   "copy_values_from: shape mismatch at " + params_[i]->name);
    params_[i]->value = other.params_[i]->value;
  }
}

bool ParameterSet::values_equal(const ParameterSet& other) const {
  if (params_.size() != other.params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i]->value.equals(other.params_[i]->value)) return false;
  }
  return true;
}

float ParameterSet::max_abs_diff(const ParameterSet& other) const {
  SEMCACHE_CHECK(params_.size() == other.params_.size(),
                 "max_abs_diff: parameter count mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m = std::max(m, params_[i]->value.max_abs_diff(other.params_[i]->value));
  }
  return m;
}

}  // namespace semcache::nn
