// Baselines the experiments compare against.
//
//  * TraditionalCodec — bit-oriented communication: surface token ids are
//    serialized to bytes, source-compressed with a corpus-trained Huffman
//    code, and sent through the SAME channel stack as the semantic
//    features. Fidelity is measured at the surface level, plus a meaning-
//    level translation using the true domain's surface->meaning table (a
//    generous "perfectly informed human reader" assumption).
//  * The general-model-only and no-decoder-copy baselines are SystemConfig
//    switches on SemanticEdgeSystem itself (benches flip them).
#pragma once

#include <unordered_map>

#include "channel/pipeline.hpp"
#include "compress/huffman.hpp"
#include "text/corpus.hpp"

namespace semcache::core {

class TraditionalCodec {
 public:
  /// Trains the Huffman table on sentences sampled from the world (all
  /// domains pooled), mirroring how the semantic KBs are trained offline.
  TraditionalCodec(const text::World& world, Rng& rng,
                   std::size_t training_sentences = 2000);

  struct Result {
    std::vector<std::int32_t> received_surface;
    std::vector<std::int32_t> received_meanings;  ///< oracle translation
    double surface_accuracy = 0.0;
    double meaning_accuracy = 0.0;
    std::size_t payload_bits = 0;
  };

  /// Compress, send through `pipe`, decompress, score.
  Result transmit(const text::Sentence& message,
                  channel::ChannelPipeline& pipe, Rng& rng) const;

  /// Source-coded size of a message without channel transmission.
  std::size_t compressed_bits(const text::Sentence& message) const;

 private:
  std::vector<std::uint8_t> serialize_surface(
      std::span<const std::int32_t> surface) const;
  std::vector<std::int32_t> deserialize_surface(
      std::span<const std::uint8_t> bytes, std::size_t count) const;

  const text::World& world_;
  compress::HuffmanCode huffman_;
  /// [domain][surface id] -> meaning id, for the oracle reader.
  std::vector<std::unordered_map<std::int32_t, std::int32_t>> surface_to_meaning_;
};

}  // namespace semcache::core
