#include "core/dispatcher.hpp"

#include "common/check.hpp"

namespace semcache::core {

void ParallelDispatcher::enqueue(const std::string& sender,
                                 const std::string& receiver,
                                 std::vector<text::Sentence> messages) {
  // Fail fast: admit the batch NOW so flush() can never throw after the
  // queue has been moved into transmit_pairs — a rejected enqueue leaves
  // everything already queued intact and servable.
  {
    SemanticEdgeSystem::PairBatch probe;
    probe.sender = sender;
    probe.receiver = receiver;
    probe.messages = std::move(messages);
    system_.validate_pair_batch(probe);
    messages = std::move(probe.messages);
  }
  for (auto& batch : queue_) {
    if (batch.sender == sender && batch.receiver == receiver) {
      batch.messages.insert(batch.messages.end(),
                            std::make_move_iterator(messages.begin()),
                            std::make_move_iterator(messages.end()));
      return;
    }
  }
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  queue_.push_back(std::move(batch));
}

std::size_t ParallelDispatcher::flush(SemanticEdgeSystem::PairDone on_done) {
  if (queue_.empty()) return 0;
  // The only transmit_pairs precondition enqueue cannot vouch for; check
  // it before the queue moves out so a bad call cannot lose queued work.
  SEMCACHE_CHECK(on_done != nullptr, "dispatcher: flush with null completion");
  const std::size_t pairs = queue_.size();
  system_.transmit_pairs(std::move(queue_), std::move(on_done));
  queue_.clear();  // moved-from: restore the well-defined empty state
  ++waves_;
  pairs_served_ += pairs;
  return pairs;
}

std::size_t ParallelDispatcher::transmit_at(
    edge::SimTime t, const std::string& sender, const std::string& receiver,
    std::vector<text::Sentence> messages,
    SemanticEdgeSystem::PairDone on_done) {
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  // Fail fast at schedule time (prepare_pair re-validates at fire time).
  system_.validate_pair_batch(batch);
  const std::size_t index = scheduled_++;
  system_.transmit_pairs_at(t, std::move(batch), std::move(on_done), index);
  return index;
}

std::size_t ParallelDispatcher::queued_messages() const {
  std::size_t n = 0;
  for (const auto& batch : queue_) n += batch.messages.size();
  return n;
}

}  // namespace semcache::core
