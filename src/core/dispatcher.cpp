#include "core/dispatcher.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace semcache::core {

SemanticEdgeSystem& ParallelDispatcher::system_for(const std::string& sender) {
  return sharded_ != nullptr ? sharded_->owning_shard(sender) : *system_;
}

void ParallelDispatcher::enqueue(const std::string& sender,
                                 const std::string& receiver,
                                 std::vector<text::Sentence> messages) {
  // Fail fast: admit the batch NOW so flush() can never throw after the
  // queue has been moved into transmit_pairs — a rejected enqueue leaves
  // everything already queued intact and servable. In sharded mode the
  // OWNING shard validates (that is where the pair will be served; user
  // registration is replicated, so any shard would agree).
  {
    SemanticEdgeSystem::PairBatch probe;
    probe.sender = sender;
    probe.receiver = receiver;
    probe.messages = std::move(messages);
    system_for(sender).validate_pair_batch(probe);
    messages = std::move(probe.messages);
  }
  for (auto& batch : queue_) {
    if (batch.sender == sender && batch.receiver == receiver) {
      batch.messages.insert(batch.messages.end(),
                            std::make_move_iterator(messages.begin()),
                            std::make_move_iterator(messages.end()));
      return;
    }
  }
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  queue_.push_back(std::move(batch));
}

std::size_t ParallelDispatcher::flush(SemanticEdgeSystem::PairDone on_done) {
  if (queue_.empty()) return 0;
  // The only transmit_pairs precondition enqueue cannot vouch for; check
  // it before the queue moves out so a bad call cannot lose queued work.
  SEMCACHE_CHECK(on_done != nullptr, "dispatcher: flush with null completion");
  const std::size_t pairs = queue_.size();
  if (sharded_ != nullptr) {
    flush_sharded(on_done);
  } else {
    system_->transmit_pairs(std::move(queue_), std::move(on_done));
  }
  queue_.clear();  // moved-from: restore the well-defined empty state
  ++waves_;
  pairs_served_ += pairs;
  return pairs;
}

std::size_t ParallelDispatcher::flush_sharded(
    const SemanticEdgeSystem::PairDone& on_done) {
  const std::size_t num_shards = sharded_->num_shards();

  // Pin every batch's channel-noise base from the deployment-wide counter
  // in first-enqueue order — the coordinate that makes K independent
  // shards consume exactly the noise streams the single-system reference
  // would for this queue.
  for (auto& batch : queue_) {
    batch.noise_base = sharded_->claim_noise_bases(batch.messages.size());
  }

  // Partition by owning shard, remembering each batch's global pair index
  // (its first-enqueue position — what on_done reports).
  std::vector<std::vector<SemanticEdgeSystem::PairBatch>> shard_queues(
      num_shards);
  std::vector<std::vector<std::size_t>> global_pair(num_shards);
  for (std::size_t p = 0; p < queue_.size(); ++p) {
    const std::size_t s = sharded_->shard_of(queue_[p].sender);
    shard_queues[s].push_back(std::move(queue_[p]));
    global_pair[s].push_back(p);
  }

  // Degraded-service backup: a stalled or failed shard's pairs must
  // survive the std::move into its wave, so keep a copy of every busy
  // shard's queue (sentences are small next to the codec compute). The
  // fault config is replicated across shards; shard 0 always exists.
  const FaultPlane& fault_plane = sharded_->shard(0).fault_plane();
  std::vector<std::vector<SemanticEdgeSystem::PairBatch>> backup = shard_queues;
  std::vector<std::uint8_t> degraded(num_shards, 0);
  if (fault_plane.config().shard_stall > 0.0) {
    // Injected stall: the coin is keyed by (shard, wave ordinal), so a
    // given deployment stalls the same shards on the same waves no matter
    // the thread count. A stalled shard's thread is never spawned — its
    // wave "times out" and is served degraded below.
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!shard_queues[s].empty() && fault_plane.stall_shard(s, waves_)) {
        degraded[s] = 1;
      }
    }
  }

  // Fan the busy shards out, one thread per shard: each serves its wave
  // (the shard's own pool parallelizes across ITS pairs — the dispatcher
  // thread is not a pool worker, so shard-internal fan-out stays live)
  // and drains its simulator so delivery chains complete. That drain is
  // also where the timing plane's link-lane waves run: every data-plane
  // hop is a Link::send_concurrent event, so same-time hops across
  // different links compute in parallel on the shard's pool while each
  // link's FIFO commits stay ordered. Completions buffer per shard;
  // everything shard threads touch is shard-owned, so the threads share
  // nothing.
  struct Completion {
    std::size_t pair;
    std::size_t index;
    TransmitReport report;
  };
  std::vector<std::vector<Completion>> collected(num_shards);
  std::vector<std::exception_ptr> errors(num_shards);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queues[s].empty() || degraded[s]) continue;
    threads.emplace_back([this, s, &shard_queues, &global_pair, &collected,
                          &errors] {
      try {
        SemanticEdgeSystem& shard = sharded_->shard(s);
        const std::vector<std::size_t>& globals = global_pair[s];
        std::vector<Completion>& out = collected[s];
        shard.transmit_pairs(
            std::move(shard_queues[s]),
            [&globals, &out](std::size_t pair, std::size_t index,
                             TransmitReport report) {
              out.push_back({globals[pair], index, std::move(report)});
            });
        shard.simulator().run();
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // A shard whose wave threw mid-serve is degraded, not fatal: the flush
  // must never hang or propagate. Drain whatever delivery chains the dead
  // wave managed to schedule (their completions are discarded — the whole
  // wave is re-served below so every pair completes exactly once).
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!errors[s]) continue;
    degraded[s] = 1;
    try {
      sharded_->shard(s).simulator().run();
    } catch (...) {
      // A poisoned event queue must not kill the flush either.
    }
    collected[s].clear();
    common::log_once("shard-wave-failed",
                     "sharded flush: a shard's wave failed mid-serve; its "
                     "pairs were re-served degraded from the frozen generals "
                     "(see SystemStats::degraded_serves)");
  }

  // Graceful degradation: serve every stalled/failed shard's pairs from
  // its FROZEN general-model replicas on the calling thread. State on the
  // shard is left alone (no slots, no buffers, no syncs); reports come
  // back flagged `degraded`.
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!degraded[s] || backup[s].empty()) continue;
    common::log_once("shard-degraded",
                     "sharded flush: shard stalled; serving its pairs "
                     "degraded from the frozen general models (see "
                     "SystemStats::degraded_serves)");
    SemanticEdgeSystem& shard = sharded_->shard(s);
    std::vector<Completion>& out = collected[s];
    for (std::size_t j = 0; j < backup[s].size(); ++j) {
      const std::size_t g = global_pair[s][j];
      shard.serve_degraded(backup[s][j],
                           [&out, g](std::size_t index, TransmitReport report) {
                             out.push_back({g, index, std::move(report)});
                           });
    }
    try {
      shard.simulator().run();
    } catch (...) {
      // Never let a delivery-chain throw escape the degraded path.
    }
  }

  // Deliver on the calling thread in (global pair, message) order — a
  // deterministic merge of the per-shard completion streams.
  std::vector<Completion> merged;
  std::size_t total = 0;
  for (const auto& c : collected) total += c.size();
  merged.reserve(total);
  for (auto& c : collected) {
    for (auto& done : c) merged.push_back(std::move(done));
  }
  std::sort(merged.begin(), merged.end(),
            [](const Completion& a, const Completion& b) {
              return a.pair != b.pair ? a.pair < b.pair : a.index < b.index;
            });
  for (Completion& done : merged) {
    on_done(done.pair, done.index, std::move(done.report));
  }
  return merged.size();
}

std::size_t ParallelDispatcher::transmit_at(
    edge::SimTime t, const std::string& sender, const std::string& receiver,
    std::vector<text::Sentence> messages,
    SemanticEdgeSystem::PairDone on_done) {
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  SemanticEdgeSystem& target = system_for(sender);
  // Fail fast at schedule time (prepare_pair re-validates at fire time).
  target.validate_pair_batch(batch);
  if (sharded_ != nullptr) {
    // Deployment-wide noise order = schedule order (fire order may
    // interleave per shard; the pinned base is what keeps streams exact).
    batch.noise_base = sharded_->claim_noise_bases(batch.messages.size());
  }
  const std::size_t index = scheduled_++;
  target.transmit_pairs_at(t, std::move(batch), std::move(on_done), index);
  return index;
}

std::size_t ParallelDispatcher::queued_messages() const {
  std::size_t n = 0;
  for (const auto& batch : queue_) n += batch.messages.size();
  return n;
}

}  // namespace semcache::core
