#include "core/dispatcher.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace semcache::core {

SemanticEdgeSystem& ParallelDispatcher::system_for(const std::string& sender) {
  return sharded_ != nullptr ? sharded_->owning_shard(sender) : *system_;
}

void ParallelDispatcher::enqueue(const std::string& sender,
                                 const std::string& receiver,
                                 std::vector<text::Sentence> messages) {
  // Fail fast: admit the batch NOW so flush() can never throw after the
  // queue has been moved into transmit_pairs — a rejected enqueue leaves
  // everything already queued intact and servable. In sharded mode the
  // OWNING shard validates (that is where the pair will be served; user
  // registration is replicated, so any shard would agree).
  {
    SemanticEdgeSystem::PairBatch probe;
    probe.sender = sender;
    probe.receiver = receiver;
    probe.messages = std::move(messages);
    system_for(sender).validate_pair_batch(probe);
    messages = std::move(probe.messages);
  }
  for (auto& batch : queue_) {
    if (batch.sender == sender && batch.receiver == receiver) {
      batch.messages.insert(batch.messages.end(),
                            std::make_move_iterator(messages.begin()),
                            std::make_move_iterator(messages.end()));
      return;
    }
  }
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  queue_.push_back(std::move(batch));
}

std::size_t ParallelDispatcher::flush(SemanticEdgeSystem::PairDone on_done) {
  if (queue_.empty()) return 0;
  // The only transmit_pairs precondition enqueue cannot vouch for; check
  // it before the queue moves out so a bad call cannot lose queued work.
  SEMCACHE_CHECK(on_done != nullptr, "dispatcher: flush with null completion");
  const std::size_t pairs = queue_.size();
  if (sharded_ != nullptr) {
    flush_sharded(on_done);
  } else {
    system_->transmit_pairs(std::move(queue_), std::move(on_done));
  }
  queue_.clear();  // moved-from: restore the well-defined empty state
  ++waves_;
  pairs_served_ += pairs;
  return pairs;
}

std::size_t ParallelDispatcher::flush_sharded(
    const SemanticEdgeSystem::PairDone& on_done) {
  const std::size_t num_shards = sharded_->num_shards();

  // Pin every batch's channel-noise base from the deployment-wide counter
  // in first-enqueue order — the coordinate that makes K independent
  // shards consume exactly the noise streams the single-system reference
  // would for this queue.
  for (auto& batch : queue_) {
    batch.noise_base = sharded_->claim_noise_bases(batch.messages.size());
  }

  // Partition by owning shard, remembering each batch's global pair index
  // (its first-enqueue position — what on_done reports).
  std::vector<std::vector<SemanticEdgeSystem::PairBatch>> shard_queues(
      num_shards);
  std::vector<std::vector<std::size_t>> global_pair(num_shards);
  for (std::size_t p = 0; p < queue_.size(); ++p) {
    const std::size_t s = sharded_->shard_of(queue_[p].sender);
    shard_queues[s].push_back(std::move(queue_[p]));
    global_pair[s].push_back(p);
  }

  // Fan the busy shards out, one thread per shard: each serves its wave
  // (the shard's own pool parallelizes across ITS pairs — the dispatcher
  // thread is not a pool worker, so shard-internal fan-out stays live)
  // and drains its simulator so delivery chains complete. Completions
  // buffer per shard; everything shard threads touch is shard-owned, so
  // the threads share nothing.
  struct Completion {
    std::size_t pair;
    std::size_t index;
    TransmitReport report;
  };
  std::vector<std::vector<Completion>> collected(num_shards);
  std::vector<std::exception_ptr> errors(num_shards);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queues[s].empty()) continue;
    threads.emplace_back([this, s, &shard_queues, &global_pair, &collected,
                          &errors] {
      try {
        SemanticEdgeSystem& shard = sharded_->shard(s);
        const std::vector<std::size_t>& globals = global_pair[s];
        std::vector<Completion>& out = collected[s];
        shard.transmit_pairs(
            std::move(shard_queues[s]),
            [&globals, &out](std::size_t pair, std::size_t index,
                             TransmitReport report) {
              out.push_back({globals[pair], index, std::move(report)});
            });
        shard.simulator().run();
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Deliver on the calling thread in (global pair, message) order — a
  // deterministic merge of the per-shard completion streams.
  std::vector<Completion> merged;
  std::size_t total = 0;
  for (const auto& c : collected) total += c.size();
  merged.reserve(total);
  for (auto& c : collected) {
    for (auto& done : c) merged.push_back(std::move(done));
  }
  std::sort(merged.begin(), merged.end(),
            [](const Completion& a, const Completion& b) {
              return a.pair != b.pair ? a.pair < b.pair : a.index < b.index;
            });
  for (Completion& done : merged) {
    on_done(done.pair, done.index, std::move(done.report));
  }
  return merged.size();
}

std::size_t ParallelDispatcher::transmit_at(
    edge::SimTime t, const std::string& sender, const std::string& receiver,
    std::vector<text::Sentence> messages,
    SemanticEdgeSystem::PairDone on_done) {
  SemanticEdgeSystem::PairBatch batch;
  batch.sender = sender;
  batch.receiver = receiver;
  batch.messages = std::move(messages);
  SemanticEdgeSystem& target = system_for(sender);
  // Fail fast at schedule time (prepare_pair re-validates at fire time).
  target.validate_pair_batch(batch);
  if (sharded_ != nullptr) {
    // Deployment-wide noise order = schedule order (fire order may
    // interleave per shard; the pinned base is what keeps streams exact).
    batch.noise_base = sharded_->claim_noise_bases(batch.messages.size());
  }
  const std::size_t index = scheduled_++;
  target.transmit_pairs_at(t, std::move(batch), std::move(on_done), index);
  return index;
}

std::size_t ParallelDispatcher::queued_messages() const {
  std::size_t n = 0;
  for (const auto& batch : queue_) n += batch.messages.size();
  return n;
}

}  // namespace semcache::core
