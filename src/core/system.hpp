// SemanticEdgeSystem — the paper's contribution, assembled.
//
// Owns the language world, the trained general KB models, the edge/cloud
// topology, per-edge caches and user-model slots, the domain selector, the
// channel stack, and the FL-style sync machinery. One call to transmit()
// exercises the complete Fig. 1 workflow:
//
//   select model ─ encode (sender edge) ─ quantize ─ channel ─ decode
//   (receiver edge, user-specific decoder replica) ─ deliver; meanwhile the
//   sender's DECODER COPY measures the mismatch locally, buffers the
//   transaction (③), and — once the buffer trips — fine-tunes the user
//   model and ships the compressed decoder delta to the receiver edge (④).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/pipeline.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_state.hpp"
#include "edge/network.hpp"
#include "faults/fault_plane.hpp"
#include "fl/sync.hpp"
#include "select/selector.hpp"
#include "semantic/fidelity.hpp"
#include "semantic/quantizer.hpp"
#include "text/idiolect.hpp"

namespace semcache::core {

struct ChannelConfig {
  std::string code = "hamming74";  ///< see channel::make_code
  channel::Modulation modulation = channel::Modulation::kQpsk;
  double snr_db = 10.0;
  std::size_t interleave_depth = 8;
  /// Physical medium: "awgn" (memoryless, the pre-existing default) or
  /// "gilbert_elliott" (two-state burst noise driven by `burst`; the
  /// channel sees each message's global slot index, so burst weather is
  /// byte-identical across thread and shard counts).
  std::string medium = "awgn";
  channel::GilbertElliottConfig burst;
  /// Soft-decision (LLR) receive path. Resolved against SEMCACHE_SOFT at
  /// build ("off" forces hard, "on" forces soft). The hard default is
  /// bit-identical to earlier builds.
  bool soft_decision = false;
};

struct SystemConfig {
  text::WorldConfig world;
  // Codec dims; surface_vocab / meaning_vocab / sentence_length are filled
  // in from the generated world.
  semantic::CodecConfig codec;
  semantic::TrainConfig pretrain{/*steps=*/4000, /*lr=*/3e-3, /*grad_clip=*/5.0};
  unsigned feature_bits = 8;  ///< quantizer bits per feature dim

  // Fig. 1 ③/④ machinery.
  std::size_t buffer_trigger = 24;
  std::size_t buffer_capacity = 256;
  std::size_t finetune_epochs = 6;
  double finetune_lr = 1.5e-3;
  /// Samples stacked per fine-tune optimizer step (through the codec's
  /// batched entry points). 1 = per-sample Adam, the paper-faithful
  /// default; larger values trade update granularity for kernel
  /// amortization on busy edges.
  std::size_t finetune_batch_size = 1;
  fl::CompressionConfig sync_compression{/*top_k_fraction=*/0.25, /*bits=*/8};

  /// Ablation switch (§II-C): with the decoder copy disabled, mismatch
  /// calculation requires shipping the receiver's decoded output back to
  /// the sender (bytes + latency charged on the backbone).
  bool decoder_copy_enabled = true;

  /// Serving-path shortcut enabled by the §II-C replica design: when the
  /// payload survived the channel bit-intact AND the sender's decoder copy
  /// is at the same sync version as the receiver replica (so their weights
  /// are byte-identical by the sync protocol's invariant), the receiver's
  /// logits ARE the decoder-copy logits — the mismatch (③) is computed
  /// from them directly, skipping a full decoder forward per message.
  /// Results are bit-identical either way (test_transmit_batch pins this);
  /// disable only to measure or debug the full decoder-copy pass.
  bool mismatch_reuse = true;

  /// Deterministic fault injection (core::FaultPlane): sync-message loss /
  /// corruption / duplication with retry + exponential backoff, link
  /// outage flapping, and dispatcher shard stalls. Every coin is keyed by
  /// the identity of the thing failing (message identity, link id, shard),
  /// so fault-injected runs stay byte-identical across thread and shard
  /// counts. All-zero defaults inject nothing and keep the fault-free
  /// paths bit-compatible with earlier builds. A sync message whose every
  /// attempt is lost opens a version gap at the receiver; the next
  /// delivered update detects the gap and triggers a FULL decoder-state
  /// resync (bytes charged), restoring replica byte-identity (§III-C
  /// reliability) — retry first, resync as last resort.
  FaultConfig faults;

  /// Use the message's true domain instead of the selector (oracle mode,
  /// isolates codec behaviour from selection errors).
  bool oracle_selection = false;

  /// Which selector the system trains at build time:
  /// "nb" (stateless naive Bayes) or "context" (NB + EWMA/Markov context,
  /// §III-A). Ignored under oracle_selection.
  std::string selector = "nb";

  /// Worker threads for the data-plane parallel sections (the channel
  /// pipeline's per-message passes and the quantizer's per-row passes in
  /// transmit_many). 0 — the default — compiles down to today's
  /// sequential code path: no pool is built and no std::thread is ever
  /// spawned. Any value N >= 1 builds a common::ThreadPool whose results
  /// are BIT-IDENTICAL to the sequential path (per-message Rng forks +
  /// index-ordered stats commit; see README "Threading model"); the
  /// SEMCACHE_THREADS environment variable overrides a default-0 config
  /// at build() time (benches and the TSan CI job use it).
  std::size_t num_threads = 0;

  // Edge deployment.
  std::size_t num_edges = 2;
  std::size_t devices_per_edge = 4;
  edge::TopologyConfig topology;
  std::size_t cache_capacity_bytes = 8u << 20;
  std::string cache_policy = "lru";

  ChannelConfig channel;
  std::uint64_t seed = 42;
};

struct UserProfile {
  std::string name;
  std::size_t edge_index = 0;
  edge::NodeId device = 0;
  std::unique_ptr<text::Idiolect> idiolect;  ///< null = speaks plainly
};

/// Outcome of one end-to-end message.
struct TransmitReport {
  std::size_t domain_true = 0;
  std::size_t domain_selected = 0;
  bool selection_correct = true;
  std::vector<std::int32_t> decoded_meanings;
  double token_accuracy = 0.0;
  bool exact = false;
  double mismatch = 0.0;  ///< sender-side decoder-copy loss (③)

  std::size_t payload_bytes = 0;   ///< quantized feature payload
  std::size_t airtime_bits = 0;    ///< coded bits on the edge-edge channel
  std::size_t sync_bytes = 0;      ///< gradient message, if an update fired
  std::size_t output_return_bytes = 0;  ///< only when decoder copy disabled
  bool triggered_update = false;
  bool established_user_model = false;
  bool general_cache_hit = true;
  /// Served from a frozen general-model replica because the owning shard
  /// stalled or failed mid-flush (no personalization, no fine-tune, no
  /// cache/slot mutation) — availability over freshness.
  bool degraded = false;

  double latency_s = 0.0;  ///< arrival at receiver device minus send time
};

/// Aggregate accounting across a run.
struct SystemStats {
  std::size_t messages = 0;
  std::uint64_t feature_bytes = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t sync_bytes = 0;
  std::uint64_t output_return_bytes = 0;
  std::size_t updates = 0;
  std::size_t selection_errors = 0;
  std::size_t sync_drops = 0;       ///< injected per-attempt sync losses
  std::size_t full_resyncs = 0;     ///< gap-triggered full-state recoveries
  std::uint64_t resync_bytes = 0;   ///< bytes spent on full snapshots
  // Fault-plane accounting: every injected fault lands in exactly one of
  // these (or sync_drops above), so a fault-storm run is auditable from
  // stats alone — no stderr scraping.
  std::size_t sync_retries = 0;        ///< retransmit attempts beyond the 1st
  std::size_t sync_corrupt_drops = 0;  ///< CRC-rejected arrivals
  std::size_t sync_duplicates = 0;     ///< duplicate deliveries (replayed)
  std::size_t sync_expired = 0;        ///< messages abandoned at max_attempts
  std::uint64_t sync_ack_bytes = 0;    ///< ack traffic on the reverse link
  std::size_t outage_drops = 0;        ///< link sends refused during outages
  std::size_t outage_queued = 0;       ///< link sends delayed to outage end
  std::size_t degraded_serves = 0;     ///< messages served from frozen generals

  /// Field-wise accumulate (the sharded layer's stats merge).
  SystemStats& operator+=(const SystemStats& o) {
    messages += o.messages;
    feature_bytes += o.feature_bytes;
    uplink_bytes += o.uplink_bytes;
    downlink_bytes += o.downlink_bytes;
    sync_bytes += o.sync_bytes;
    output_return_bytes += o.output_return_bytes;
    updates += o.updates;
    selection_errors += o.selection_errors;
    sync_drops += o.sync_drops;
    full_resyncs += o.full_resyncs;
    resync_bytes += o.resync_bytes;
    sync_retries += o.sync_retries;
    sync_corrupt_drops += o.sync_corrupt_drops;
    sync_duplicates += o.sync_duplicates;
    sync_expired += o.sync_expired;
    sync_ack_bytes += o.sync_ack_bytes;
    outage_drops += o.outage_drops;
    outage_queued += o.outage_queued;
    degraded_serves += o.degraded_serves;
    return *this;
  }
};

/// Where a deployment's bytes live, split so the city-scale question —
/// "what does ONE MORE user cost?" — has a measurable answer. Fixed costs
/// (general models, per-worker serving replicas, topology) amortize over
/// the whole deployment; per-user costs (profiles, slots, buffers,
/// MATERIALIZED fine-tuned models) are what bound users-per-GB. The
/// copy-on-write slot design keeps user_model_bytes at zero until a user
/// actually fine-tunes: per-user cost is bytes plus deltas, not clones.
struct MemoryFootprint {
  // Deployment-fixed.
  std::size_t general_model_bytes = 0;    ///< frozen per-domain generals
  std::size_t serving_replica_bytes = 0;  ///< per-(domain, worker) clones
  std::size_t topology_bytes = 0;         ///< nodes/links/adjacency (approx)
  // Per-user.
  std::size_t profile_bytes = 0;     ///< directory entries + idiolects
  std::size_t slot_bytes = 0;        ///< slot bookkeeping (versions, keys)
  std::size_t buffer_bytes = 0;      ///< buffered transactions (the deltas)
  std::size_t user_model_bytes = 0;  ///< materialized fine-tuned models only
  // Counts.
  std::size_t users = 0;
  std::size_t slots = 0;
  std::size_t materialized_models = 0;

  std::size_t total() const {
    return general_model_bytes + serving_replica_bytes + topology_bytes +
           profile_bytes + slot_bytes + buffer_bytes + user_model_bytes;
  }

  MemoryFootprint& operator+=(const MemoryFootprint& o) {
    general_model_bytes += o.general_model_bytes;
    serving_replica_bytes += o.serving_replica_bytes;
    topology_bytes += o.topology_bytes;
    profile_bytes += o.profile_bytes;
    slot_bytes += o.slot_bytes;
    buffer_bytes += o.buffer_bytes;
    user_model_bytes += o.user_model_bytes;
    users += o.users;
    slots += o.slots;
    materialized_models += o.materialized_models;
    return *this;
  }
};

class SemanticEdgeSystem {
 public:
  /// Generate the world, pretrain one general codec per domain, train the
  /// selector, build the topology, and warm every edge cache.
  static std::unique_ptr<SemanticEdgeSystem> build(SystemConfig config);

  /// Register a user on an edge server; `idiolect_cfg` non-null gives the
  /// user a private way of speaking (E3).
  const UserProfile& register_user(const std::string& name,
                                   std::size_t edge_index,
                                   const text::IdiolectConfig* idiolect_cfg);

  /// Sample a message as `user` would utter it (idiolect applied).
  text::Sentence sample_message(const std::string& user, std::size_t domain);

  /// Synchronous end-to-end transmission (runs the event loop to idle).
  TransmitReport transmit(const std::string& sender,
                          const std::string& receiver,
                          const text::Sentence& message);

  /// Event-driven variant for open-loop workloads (E7/E10): the report is
  /// delivered to `on_done` when the message reaches the receiver device.
  /// Implemented as the N = 1 case of transmit_many (bit-identical reports,
  /// stats, and RNG streams).
  void transmit_async(const std::string& sender, const std::string& receiver,
                      text::Sentence message,
                      std::function<void(TransmitReport)> on_done);

  /// Batched end-to-end transmission: N messages from `sender` to
  /// `receiver` run the data plane once per (selected domain, fine-tune
  /// interval) group — one encode_batch, one quantize_batch, one
  /// channel transmit_batch (per-message forked RNG, so message i sees
  /// exactly the noise stream i sequential calls would), and one
  /// decode_logits_batch on the receiver replica — instead of N single
  /// passes. `on_done(i, report)` fires as message i arrives at the
  /// receiver device; each message keeps its own timing-plane event chain,
  /// so latency and queueing behaviour match N transmit_async calls.
  ///
  /// Equivalence guarantee: reports and aggregate stats are bit-identical
  /// to calling transmit_async once per message in order (without running
  /// the simulator in between) — including under fault injection, because
  /// every fault coin is keyed by the identity of the failing object
  /// (sync-message identity, link id), never by execution order.
  void transmit_many(const std::string& sender, const std::string& receiver,
                     std::vector<text::Sentence> messages,
                     std::function<void(std::size_t, TransmitReport)> on_done);

  /// One user pair's ready-to-serve transmissions.
  struct PairBatch {
    /// noise_base sentinel: claim the base index from this system's own
    /// message counter at prepare time (the single-system default).
    static constexpr std::uint64_t kAutoNoiseBase = ~0ULL;

    std::string sender;
    std::string receiver;
    std::vector<text::Sentence> messages;
    /// System-wide message index of messages[0] for channel-noise forking.
    /// The sharded front door pins this from ITS global counter so K
    /// independent shards consume exactly the noise streams the
    /// single-system reference would, regardless of how pairs interleave
    /// across shards. Left at kAutoNoiseBase everywhere else.
    std::uint64_t noise_base = kAutoNoiseBase;
  };
  /// Completion for pair-parallel serving: message `index` of pair `pair`
  /// arrived at its receiver device.
  using PairDone =
      std::function<void(std::size_t pair, std::size_t index, TransmitReport)>;

  /// Cross-pair parallel serving: serve several user pairs' batches as
  /// one wave. Three deterministic phases — (1) selection / cache touches
  /// / slot establishment run on the calling thread in pair order (they
  /// share the selector, the LRU caches, and the cloud links); (2) the
  /// per-pair data planes run CONCURRENTLY on the system pool, partitioned
  /// into lanes by sending user (every mutable serving object — user-model
  /// slots, buffers, fine-tune scratch — is keyed by (sender, domain), so
  /// distinct senders touch disjoint state; channel/system accounting
  /// collects into pair-local sinks); (3) stats merges, gradient-sync
  /// ships, and delivery-chain scheduling commit on the calling thread in
  /// pair order. Results (reports, stats, cache contents, model weights,
  /// event ordering) are BYTE-IDENTICAL to num_threads = 0 for any worker
  /// count, and identical to calling transmit_many once per pair in order
  /// (test_serve_pairs pins both).
  ///
  /// The guarantee HOLDS UNDER ACTIVE FAULT INJECTION: sync loss /
  /// corruption / duplication coins are keyed by message identity (user,
  /// domain, version, attempt) and link outages by (link, sim time), so a
  /// wave draws exactly the coins the sequential path would — there is no
  /// sequential fallback (test_faults pins the full thread x shard
  /// matrix).
  void transmit_pairs(std::vector<PairBatch> batches, PairDone on_done);

  /// Degraded-mode serving (the dispatcher's answer to a stalled or
  /// failed shard): serve `batch` end-to-end through the FROZEN general-
  /// model replicas — selection, encode, quantize, channel, decode,
  /// delivery chains — with NO personalization and NO state mutation (no
  /// slot establishment, no buffer adds, no fine-tune, no sync, no cache
  /// touches). Every report is flagged `degraded` and counted in
  /// SystemStats::degraded_serves. Channel noise keeps the identity-keyed
  /// fork discipline via the batch's pinned noise base, so degraded
  /// serving is itself deterministic.
  void serve_degraded(const PairBatch& batch,
                      std::function<void(std::size_t, TransmitReport)> on_done);

  /// Schedule a pair batch for simulated time t on the simulator's
  /// concurrent phase (edge::Simulator::schedule_concurrent_at, lane-keyed
  /// by sender). All pair batches landing on the same timestamp form one
  /// cross-pair parallel wave when the event loop reaches it. Typically
  /// reached through core::ParallelDispatcher.
  void transmit_pairs_at(edge::SimTime t, PairBatch batch, PairDone on_done,
                         std::size_t pair_index = 0);

  /// Admission checks for one pair batch (non-empty, known users,
  /// message lengths); throws semcache::Error on violation. The single
  /// source of truth: transmit_pairs runs it wave-wide BEFORE any
  /// prepare so a rejected wave is side-effect-free, prepare_pair
  /// re-runs it for simulator-scheduled batches (fire-time state), and
  /// ParallelDispatcher fails fast at enqueue/schedule time so a queued
  /// wave can never be lost to a validation throw mid-flush.
  void validate_pair_batch(const PairBatch& batch) const;

  // --- introspection used by tests, examples, and benches ---
  text::World& world() { return world_; }
  edge::Simulator& simulator() { return sim_; }
  edge::Network& network() { return *topology_.net; }
  EdgeServerState& edge_state(std::size_t index);
  const SystemConfig& config() const { return config_; }
  const SystemStats& stats() const { return stats_; }
  const UserProfile& user(const std::string& name) const;
  semantic::SemanticCodec& general_model(std::size_t domain);
  select::DomainSelector& selector() { return *selector_; }
  const semantic::FeatureQuantizer& quantizer() const { return *quantizer_; }
  /// The data-plane worker pool; nullptr when the resolved num_threads is
  /// 0 (pure sequential build).
  common::ThreadPool* thread_pool() { return pool_.get(); }
  /// The deterministic fault-injection plane built from config().faults.
  const FaultPlane& fault_plane() const { return fault_plane_; }

  /// Byte-identity check between the sender-side decoder copy and the
  /// receiver-side decoder replica for a (user, domain) pair.
  bool replicas_in_sync(const std::string& user, std::size_t domain,
                        std::size_t sender_edge, std::size_t receiver_edge);

  /// The memory audit: where this deployment's bytes live, with per-user
  /// costs (profiles, slots, buffered deltas, materialized models)
  /// separated from deployment-fixed costs (generals, serving replicas,
  /// topology). Approximate to container-bookkeeping precision; the point
  /// is the SHAPE — per-user cost must stay O(bytes + deltas).
  MemoryFootprint memory_footprint() const;

  /// Adjust the sync-loss injection rate mid-run (failure-injection
  /// tests): sets config().faults.sync_loss and rebuilds the fault plane.
  void set_sync_loss_probability(double p);

 private:
  explicit SemanticEdgeSystem(SystemConfig config);
  void pretrain_models();
  void build_topology();
  std::unique_ptr<semantic::SemanticCodec> clone_general(std::size_t domain);
  /// The codec that actually runs a slot's forward passes: the slot's own
  /// model once materialized, else the per-(domain, worker-slot) serving
  /// replica of the general model — never the shared general itself, whose
  /// internal Workspace scratch is not safe across concurrent lanes.
  /// Replica weights equal the frozen general's forever, so routing an
  /// aliased slot through a replica is bit-identical to the pre-COW
  /// design's per-slot clone.
  semantic::SemanticCodec& serving_codec(const UserModelSlot& slot,
                                         std::size_t domain);
  /// Copy-on-write: give `slot` a private clone of the general model
  /// before its first weight write. No-op when already materialized.
  void materialize_slot(UserModelSlot& slot, std::size_t domain);
  /// Resolve the general model through the edge cache (charges a cloud
  /// fetch on a miss); returns whether it was a hit.
  bool touch_general_cache(EdgeServerState& state, std::size_t domain);

  /// A gradient-sync ship whose link send is deferred to a wave's commit
  /// phase (cross-edge only; intra-edge applies are slot-local and run in
  /// place).
  struct PendingShip {
    fl::SyncMessage msg;
    std::vector<float> snapshot;  ///< post-update decoder state (resync)
    std::string sender;
    std::size_t domain = 0;
    std::size_t sender_edge = 0;
    std::size_t receiver_edge = 0;
  };

  /// Where a serving pass routes its order-sensitive side effects. The
  /// direct mode (transmit_many on the calling thread) writes straight to
  /// the global sinks and ships updates immediately; the deferred mode
  /// (cross-pair compute tasks on pool workers) collects into pair-local
  /// sinks that the commit phase folds back in pair order.
  struct ServeContext {
    SystemStats* stats;                     ///< accounting sink
    channel::PipelineStats* channel_stats;  ///< null = pipeline's own stats
    common::ThreadPool* row_pool;           ///< row-level fan-outs
    std::vector<PendingShip>* outbox;       ///< null = ship updates now
  };

  void run_update(const std::string& sender, std::size_t domain,
                  EdgeServerState& sender_state, EdgeServerState& recv_state,
                  TransmitReport& report, const ServeContext& ctx);
  /// Apply one delivered sync message to the receiver-edge replica
  /// (version advance, replay drop, or gap-triggered full resync).
  void apply_sync_at_receiver(EdgeServerState& recv_state,
                              const std::string& sender, std::size_t domain,
                              const fl::SyncMessage& msg,
                              const std::vector<float>& snapshot,
                              SystemStats& stats);
  /// Queue a cross-edge gradient ship on the backbone (the commit half of
  /// a deferred update; the direct path calls it in place). Takes the
  /// ship by value: msg and the decoder snapshot move into the event.
  /// With sync faults active, resolves the message's full retry schedule
  /// here from identity-keyed coins (see the implementation comment).
  void ship_sync(PendingShip ship);

  // --- transmit_many stages (transmit_async is the N = 1 case) ---
  /// Selection, general-cache touches, and user-slot establishment for one
  /// message; fills the corresponding report fields and returns the
  /// selected domain.
  std::size_t prepare_message(EdgeServerState& sstate, EdgeServerState& rstate,
                              const std::string& sender,
                              const text::Sentence& message,
                              TransmitReport& report);
  /// Eager data plane for the subset `indices` of `messages` that selected
  /// domain `m`: batched encode/quantize/channel/decode plus the
  /// per-message mismatch, buffer add, and update trigger, split into
  /// chunks at the exact messages where the sequential path fine-tunes.
  void process_domain_group(
      const std::string& sender, std::size_t m, EdgeServerState& sstate,
      EdgeServerState& rstate, bool cross_edge,
      std::uint64_t base_message_index,
      const std::vector<text::Sentence>& messages,
      const std::vector<std::size_t>& indices,
      const std::vector<std::shared_ptr<TransmitReport>>& reports,
      const ServeContext& ctx);

  // --- cross-pair serving phases (transmit_pairs / transmit_pairs_at) ---
  /// One pair's wave-scoped state: resolved profiles, per-message reports
  /// and domain groups from the prepare phase, and the pair-local sinks
  /// the compute phase collects into.
  struct PairTask;
  /// Phase 1 (calling thread, pair order): validation, selection, cache
  /// touches, slot establishment, global message-index assignment.
  void prepare_pair(PairTask& task);
  /// Phase 2 (pool worker, lane-keyed by sender): the pair's batched data
  /// plane — encode/quantize/channel/decode, mismatch, buffer adds,
  /// fine-tunes — against pair-owned state and pair-local sinks.
  void compute_pair(PairTask& task);
  /// Phase 3 (calling thread, pair order): fold the pair-local sinks into
  /// the global stats, ship deferred gradient syncs, schedule deliveries.
  void commit_pair(PairTask& task, const PairDone& on_done);
  /// Timing-plane event chain (uplink -> encode -> backbone -> decode ->
  /// downlink) for one message; `deliver` fires at the receiver device.
  void schedule_delivery(const UserProfile& sprofile,
                         const UserProfile& rprofile, std::size_t domain,
                         const text::Sentence& message,
                         std::shared_ptr<TransmitReport> report,
                         std::function<void(TransmitReport)> deliver);

  SystemConfig config_;
  Rng rng_;
  FaultPlane fault_plane_;  ///< rebuilt whenever config_.faults changes
  /// Destroyed after everything that borrows it (pipeline_ holds a
  /// non-owning pointer); declared early so it outlives those members.
  std::unique_ptr<common::ThreadPool> pool_;
  text::World world_;
  std::vector<std::shared_ptr<semantic::SemanticCodec>> general_models_;
  /// serving_replicas_[domain][worker_slot]: the clones aliased slots
  /// serve through. Sized max(1, num_threads) per domain at build — a
  /// worker-count-bounded fixed cost replacing the old user-count-bounded
  /// per-slot clones.
  std::vector<std::vector<std::unique_ptr<semantic::SemanticCodec>>>
      serving_replicas_;
  std::unique_ptr<select::DomainSelector> selector_;
  std::unique_ptr<semantic::FeatureQuantizer> quantizer_;
  std::unique_ptr<channel::ChannelPipeline> pipeline_;
  std::unique_ptr<fl::ModelSynchronizer> synchronizer_;

  edge::Simulator sim_;
  edge::StandardTopology topology_;
  std::vector<std::unique_ptr<EdgeServerState>> edge_states_;
  std::map<std::string, UserProfile> users_;
  std::map<std::string, std::size_t> next_device_slot_;  // per-edge cursor

  SystemStats stats_;
};

}  // namespace semcache::core
