#include "core/system.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "select/context.hpp"
#include "select/naive_bayes.hpp"

namespace semcache::core {

SemanticEdgeSystem::SemanticEdgeSystem(SystemConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      world_(text::World::generate(config_.world, rng_)) {}

std::unique_ptr<SemanticEdgeSystem> SemanticEdgeSystem::build(
    SystemConfig config) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<SemanticEdgeSystem> sys(
      new SemanticEdgeSystem(std::move(config)));
  sys->config_.codec.surface_vocab = sys->world_.surface_count();
  sys->config_.codec.meaning_vocab = sys->world_.meaning_count();
  sys->config_.codec.sentence_length = sys->config_.world.sentence_length;
  sys->quantizer_ = std::make_unique<semantic::FeatureQuantizer>(
      sys->config_.codec.feature_dim, sys->config_.feature_bits);
  if (sys->config_.pretrain.feature_noise == 0.0) {
    // Quantization-aware training: match the quantizer's half-step error.
    sys->config_.pretrain.feature_noise = sys->quantizer_->max_error() / 2.0;
  }
  sys->synchronizer_ =
      std::make_unique<fl::ModelSynchronizer>(sys->config_.sync_compression);

  const ChannelConfig& ch = sys->config_.channel;
  if (ch.medium == "gilbert_elliott") {
    channel::GilbertElliottConfig burst = ch.burst;
    if (burst.seed == 0) burst.seed = sys->config_.seed;
    sys->pipeline_ = channel::make_burst_pipeline(
        channel::make_code(ch.code), ch.modulation, burst,
        ch.interleave_depth);
  } else {
    SEMCACHE_CHECK(ch.medium == "awgn",
                   "channel: unknown medium \"" + ch.medium + "\"");
    sys->pipeline_ = channel::make_awgn_pipeline(
        channel::make_code(ch.code), ch.modulation, ch.snr_db,
        ch.interleave_depth);
  }
  sys->pipeline_->set_soft_decision(
      channel::resolve_soft_decision(ch.soft_decision));

  // Data-plane worker pool (README "Threading model"): resolved once at
  // build — an explicit num_threads wins, SEMCACHE_THREADS fills in for
  // the default 0, and a resolved 0 leaves pool_ null so every consumer
  // falls back to its sequential loop.
  sys->config_.num_threads =
      common::resolve_thread_count(sys->config_.num_threads);
  if (sys->config_.num_threads > 0) {
    sys->pool_ = std::make_unique<common::ThreadPool>(sys->config_.num_threads);
    sys->pipeline_->set_thread_pool(sys->pool_.get());
    // Concurrent waves (transmit_pairs_at) fan their per-pair compute
    // phases out over the same pool.
    sys->sim_.set_thread_pool(sys->pool_.get());
  }

  sys->pretrain_models();
  sys->build_topology();

  // Fault plane: validate the config once (throws on bad knobs) and wire
  // the link layer. Outage sinks are attached unconditionally so explicit
  // Link::add_outage windows (tests, scenario scripts) land in SystemStats
  // even when no flap schedule is configured; flap schedules get a
  // per-link deterministic phase so a fleet of links never flaps in
  // lockstep.
  sys->fault_plane_ = FaultPlane(sys->config_.faults);
  const FaultConfig& faults = sys->config_.faults;
  edge::Network& net = *sys->topology_.net;
  for (edge::LinkId id = 0; id < net.link_count(); ++id) {
    edge::Link& link = net.link_at(id);
    link.set_outage_sinks(&sys->stats_.outage_drops,
                          &sys->stats_.outage_queued);
    if (faults.link_faults_active()) {
      link.set_outage_policy(faults.outage_policy);
      link.set_flap_schedule(faults.link_flap_period_s, faults.link_flap_down_s,
                             sys->fault_plane_.flap_phase_s(id));
    }
  }

  // Per-worker serving replicas of the frozen generals: aliased
  // (copy-on-write) user slots run their forward passes through these, so
  // establishing a user never clones a model and concurrent lanes never
  // share Workspace scratch. One replica per (domain, worker slot) — a
  // fixed cost bounded by the worker count, not the user count. The
  // generals are frozen after pretraining, so the replicas never go stale.
  const std::size_t lanes = std::max<std::size_t>(1, sys->config_.num_threads);
  sys->serving_replicas_.resize(sys->world_.num_domains());
  for (std::size_t d = 0; d < sys->world_.num_domains(); ++d) {
    sys->serving_replicas_[d].reserve(lanes);
    for (std::size_t w = 0; w < lanes; ++w) {
      sys->serving_replicas_[d].push_back(sys->clone_general(d));
    }
  }
  return sys;
}

semantic::SemanticCodec& SemanticEdgeSystem::serving_codec(
    const UserModelSlot& slot, std::size_t domain) {
  if (slot.owns_model) return *slot.model;
  return *serving_replicas_[domain][common::ThreadPool::current_worker_slot()];
}

void SemanticEdgeSystem::materialize_slot(UserModelSlot& slot,
                                          std::size_t domain) {
  if (slot.owns_model) return;
  slot.model = clone_general(domain);
  slot.owns_model = true;
}

void SemanticEdgeSystem::pretrain_models() {
  // One general codec per domain (§II-A). All edge servers share the same
  // pretrained weights, which is what makes d^m_j == d^m_i (§II-C) hold at
  // bootstrap.
  Rng train_rng = rng_.fork(0xC0DEC);
  for (std::size_t d = 0; d < world_.num_domains(); ++d) {
    Rng init_rng = rng_.fork(0x1000 + d);
    auto codec =
        std::make_shared<semantic::SemanticCodec>(config_.codec, init_rng);
    semantic::CodecTrainer::pretrain_domain(*codec, world_, d,
                                            config_.pretrain, train_rng);
    general_models_.push_back(std::move(codec));
  }

  // Train the domain selector. "nb" is the stateless baseline; "context"
  // wraps it in the §III-A conversation-context decorator. (E6 compares
  // the full selector zoo including the GRU.)
  auto nb = std::make_unique<select::NaiveBayesSelector>(
      world_.surface_count(), world_.num_domains());
  Rng sel_rng = rng_.fork(0x5E1EC7);
  const std::size_t selector_examples = 400 * world_.num_domains();
  for (std::size_t i = 0; i < selector_examples; ++i) {
    const auto d = static_cast<std::size_t>(sel_rng.uniform_int(
        0, static_cast<std::int64_t>(world_.num_domains()) - 1));
    const text::Sentence s = world_.sample_sentence(d, sel_rng);
    nb->observe(s.surface, d);
  }
  if (config_.selector == "context") {
    selector_ = std::make_unique<select::ContextSelector>(
        std::move(nb), world_.num_domains());
  } else {
    SEMCACHE_CHECK(config_.selector == "nb",
                   "unknown selector '" + config_.selector +
                       "' (expected \"nb\" or \"context\")");
    selector_ = std::move(nb);
  }
}

void SemanticEdgeSystem::build_topology() {
  topology_ = edge::build_standard_topology(
      config_.num_edges, config_.devices_per_edge, config_.topology);
  for (std::size_t e = 0; e < config_.num_edges; ++e) {
    edge_states_.push_back(std::make_unique<EdgeServerState>(
        e, topology_.edges[e], config_.cache_capacity_bytes,
        config_.cache_policy));
    // Warm the cache with every general model (step ① of Fig. 1: the edge
    // caches both general encoders and decoder copies — one codec object
    // holds both halves).
    for (std::size_t d = 0; d < world_.num_domains(); ++d) {
      cache::EntryInfo info;
      info.size_bytes = general_models_[d]->byte_size();
      info.fetch_cost = topology_.net->link(topology_.cloud, topology_.edges[e])
                            .transfer_time(info.size_bytes);
      edge_states_.back()->general_cache().put(
          "general/" + std::to_string(d), general_models_[d], info);
    }
  }
}

const UserProfile& SemanticEdgeSystem::register_user(
    const std::string& name, std::size_t edge_index,
    const text::IdiolectConfig* idiolect_cfg) {
  SEMCACHE_CHECK(edge_index < config_.num_edges,
                 "register_user: edge index out of range");
  SEMCACHE_CHECK(!users_.contains(name), "register_user: duplicate user");
  UserProfile profile;
  profile.name = name;
  profile.edge_index = edge_index;
  auto& cursor = next_device_slot_[std::to_string(edge_index)];
  SEMCACHE_CHECK(cursor < topology_.devices[edge_index].size(),
                 "register_user: no free device on edge " +
                     std::to_string(edge_index) +
                     "; raise devices_per_edge");
  profile.device = topology_.devices[edge_index][cursor++];
  if (idiolect_cfg != nullptr) {
    Rng idio_rng = rng_.fork(std::hash<std::string>{}(name));
    profile.idiolect = std::make_unique<text::Idiolect>(
        text::Idiolect::generate(world_, *idiolect_cfg, idio_rng));
  }
  auto [it, inserted] = users_.emplace(name, std::move(profile));
  SEMCACHE_CHECK(inserted, "register_user: insert failed");
  return it->second;
}

text::Sentence SemanticEdgeSystem::sample_message(const std::string& user,
                                                  std::size_t domain) {
  const UserProfile& profile = this->user(user);
  text::Sentence s = world_.sample_sentence(domain, rng_);
  if (profile.idiolect) profile.idiolect->apply(s);
  return s;
}

EdgeServerState& SemanticEdgeSystem::edge_state(std::size_t index) {
  SEMCACHE_CHECK(index < edge_states_.size(), "edge_state: out of range");
  return *edge_states_[index];
}

const UserProfile& SemanticEdgeSystem::user(const std::string& name) const {
  const auto it = users_.find(name);
  SEMCACHE_CHECK(it != users_.end(), "unknown user: " + name);
  return it->second;
}

semantic::SemanticCodec& SemanticEdgeSystem::general_model(
    std::size_t domain) {
  SEMCACHE_CHECK(domain < general_models_.size(),
                 "general_model: domain out of range");
  return *general_models_[domain];
}

std::unique_ptr<semantic::SemanticCodec> SemanticEdgeSystem::clone_general(
    std::size_t domain) {
  auto codec = general_model(domain).clone();
  // Serving-path models row-partition their batch forwards over the
  // system pool (null = sequential). The general models and fine-tune
  // scratch clones stay pool-free: training runs entirely on the calling
  // thread either way, and results are bit-identical regardless.
  codec->set_thread_pool(pool_.get());
  return codec;
}

bool SemanticEdgeSystem::touch_general_cache(EdgeServerState& state,
                                             std::size_t domain) {
  const std::string key = "general/" + std::to_string(domain);
  if (state.general_cache().get(key) != nullptr) return true;
  // Miss: re-fetch from the cloud registry (charged on the cloud link) and
  // reinstate the entry.
  cache::EntryInfo info;
  info.size_bytes = general_models_[domain]->byte_size();
  edge::Link& cloud_link =
      topology_.net->link(topology_.cloud, topology_.edges[state.index()]);
  info.fetch_cost = cloud_link.transfer_time(info.size_bytes);
  cloud_link.send(sim_, info.size_bytes, [] {});
  state.general_cache().put(key, general_models_[domain], info);
  return false;
}

MemoryFootprint SemanticEdgeSystem::memory_footprint() const {
  MemoryFootprint fp;
  for (const auto& general : general_models_) {
    fp.general_model_bytes += general->byte_size();
  }
  for (const auto& domain_replicas : serving_replicas_) {
    for (const auto& replica : domain_replicas) {
      fp.serving_replica_bytes += replica->byte_size();
    }
  }
  fp.topology_bytes = topology_.net->approx_byte_size();

  fp.users = users_.size();
  for (const auto& [name, profile] : users_) {
    fp.profile_bytes += sizeof(UserProfile) + name.capacity();
    if (profile.idiolect != nullptr) {
      // unordered_map entry: two int32 ids plus node/bucket overhead.
      fp.profile_bytes += sizeof(text::Idiolect) +
                          profile.idiolect->size() *
                              (2 * sizeof(std::int32_t) + 2 * sizeof(void*));
    }
  }

  const std::size_t tokens_per_sample = 2 * config_.codec.sentence_length;
  for (const auto& state : edge_states_) {
    fp.slots += state->slot_count();
    fp.user_model_bytes += state->user_model_bytes();
    fp.materialized_models += state->materialized_models();
    for (const auto& [key, slot] : state->slots()) {
      fp.slot_bytes += sizeof(UserModelSlot) + key.capacity();
      if (slot.buffer != nullptr) {
        fp.buffer_bytes +=
            sizeof(fl::DomainBuffer) +
            slot.buffer->size() *
                (sizeof(semantic::Sample) + sizeof(double) +
                 tokens_per_sample * sizeof(std::int32_t));
      }
    }
  }
  return fp;
}

bool SemanticEdgeSystem::replicas_in_sync(const std::string& user,
                                          std::size_t domain,
                                          std::size_t sender_edge,
                                          std::size_t receiver_edge) {
  UserModelSlot* s = edge_state(sender_edge).find_slot(user, domain);
  UserModelSlot* r = edge_state(receiver_edge).find_slot(user, domain);
  if (s == nullptr || r == nullptr) return false;
  nn::ParameterSet sp = s->model->decoder().parameters();
  nn::ParameterSet rp = r->model->decoder().parameters();
  return sp.values_equal(rp);
}

TransmitReport SemanticEdgeSystem::transmit(const std::string& sender,
                                            const std::string& receiver,
                                            const text::Sentence& message) {
  std::optional<TransmitReport> result;
  transmit_async(sender, receiver, message,
                 [&](TransmitReport r) { result = std::move(r); });
  sim_.run();
  SEMCACHE_CHECK(result.has_value(), "transmit: chain did not complete");
  return std::move(*result);
}

}  // namespace semcache::core
