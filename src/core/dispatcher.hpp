// ParallelDispatcher — the front door for cross-pair parallel serving.
//
// The paper's data plane serves many independent user pairs per edge
// (Fig. 1); the dispatcher collects their ready-to-serve transmissions and
// hands them to the system as ONE wave, so pairs with distinct senders run
// their data planes concurrently on common::ThreadPool while everything
// they share (selector, LRU caches, stats, the event loop) keeps its
// sequential order. Two modes:
//
//  * enqueue() + flush(): accumulate pair batches (merged per (sender,
//    receiver) pair) and serve them immediately as one
//    SemanticEdgeSystem::transmit_pairs wave.
//  * transmit_at(): schedule a pair's messages for a simulated send time;
//    all pairs landing on the same timestamp form one concurrent wave in
//    the event loop (edge::Simulator's deterministic parallel phase) when
//    the simulation reaches it — the open-loop (E7/E10-style) shape.
//
// Constructed over a ShardedEdgeServing instead of a single system, the
// same front door scales OUT: enqueue routes each pair to
// shard_of(sender) (stable hash ownership), flush pins every batch's
// channel-noise base from the deployment-wide counter in first-enqueue
// order, fans the per-shard waves out concurrently (one thread per busy
// shard, each running its shard's transmit_pairs AND draining its shard's
// simulator), and delivers the merged completions on the calling thread
// in (global pair, message) order. A sharded flush is therefore
// synchronous-complete: when it returns, every delivery chain has run —
// there is no single simulator left for the caller to drive.
//
// Determinism: both modes inherit transmit_pairs' contract — results are
// byte-identical to num_threads = 0 for any worker count, and to serving
// the pairs one at a time through transmit_many in order. The sharded
// front door extends it across deployments: for the same enqueue stream,
// every K and every thread count produce byte-identical reports, weights,
// and merged stats (latency too once pairs do not contend across shards;
// see sharded.hpp). test_sharded pins the matrix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sharded.hpp"
#include "core/system.hpp"

namespace semcache::core {

class ParallelDispatcher {
 public:
  explicit ParallelDispatcher(SemanticEdgeSystem& system)
      : system_(&system) {}
  /// Sharded front door: route by sender hash, fan out per shard, merge.
  explicit ParallelDispatcher(ShardedEdgeServing& sharded)
      : sharded_(&sharded) {}
  ParallelDispatcher(const ParallelDispatcher&) = delete;
  ParallelDispatcher& operator=(const ParallelDispatcher&) = delete;

  /// Queue messages for (sender, receiver). Repeated enqueues for the
  /// same pair append to its batch (one pair, one lane, one completion
  /// index); the pair's index in the flush wave is its first-enqueue
  /// position.
  void enqueue(const std::string& sender, const std::string& receiver,
               std::vector<text::Sentence> messages);

  /// Serve everything queued as one cross-pair wave and clear the queue.
  /// Single-system mode: one transmit_pairs wave; `on_done(pair, index,
  /// report)` fires per message as its delivery chain completes (drive
  /// system.simulator() to run the chains, exactly as with
  /// transmit_many). Sharded mode: per-shard waves fan out concurrently,
  /// every shard's simulator is drained before returning, and on_done
  /// fires on THIS thread in (pair, index) order — no further driving
  /// needed. Returns the number of pairs served; a no-op returning 0 when
  /// nothing is queued.
  std::size_t flush(SemanticEdgeSystem::PairDone on_done);

  /// Schedule `messages` from a pair for simulated time t
  /// (transmit_pairs_at). Pairs scheduled for the same t form one
  /// concurrent wave when the event loop reaches it. The pair index
  /// reported to `on_done` is this dispatcher's running schedule count
  /// (returned), so interleaved schedules stay distinguishable. Sharded
  /// mode schedules on the OWNING shard's simulator with the noise base
  /// pinned at schedule time (deployment order = schedule order); the
  /// caller drives that shard's simulator.
  std::size_t transmit_at(edge::SimTime t, const std::string& sender,
                          const std::string& receiver,
                          std::vector<text::Sentence> messages,
                          SemanticEdgeSystem::PairDone on_done);

  std::size_t queued_pairs() const { return queue_.size(); }
  std::size_t queued_messages() const;
  /// Waves served through flush() so far (scheduling via transmit_at
  /// forms waves inside the simulator instead). A sharded flush counts as
  /// ONE wave however many shards it fanned out to.
  std::size_t waves_served() const { return waves_; }
  std::size_t pairs_served() const { return pairs_served_; }

 private:
  /// The system that owns (and validates) `sender`'s serving state.
  SemanticEdgeSystem& system_for(const std::string& sender);
  std::size_t flush_sharded(const SemanticEdgeSystem::PairDone& on_done);

  SemanticEdgeSystem* system_ = nullptr;    ///< single-system mode
  ShardedEdgeServing* sharded_ = nullptr;   ///< sharded mode (XOR system_)
  std::vector<SemanticEdgeSystem::PairBatch> queue_;
  std::size_t waves_ = 0;
  std::size_t pairs_served_ = 0;
  std::size_t scheduled_ = 0;
};

}  // namespace semcache::core
