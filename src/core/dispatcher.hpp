// ParallelDispatcher — the front door for cross-pair parallel serving.
//
// The paper's data plane serves many independent user pairs per edge
// (Fig. 1); the dispatcher collects their ready-to-serve transmissions and
// hands them to the system as ONE wave, so pairs with distinct senders run
// their data planes concurrently on common::ThreadPool while everything
// they share (selector, LRU caches, stats, the event loop) keeps its
// sequential order. Two modes:
//
//  * enqueue() + flush(): accumulate pair batches (merged per (sender,
//    receiver) pair) and serve them immediately as one
//    SemanticEdgeSystem::transmit_pairs wave.
//  * transmit_at(): schedule a pair's messages for a simulated send time;
//    all pairs landing on the same timestamp form one concurrent wave in
//    the event loop (edge::Simulator's deterministic parallel phase) when
//    the simulation reaches it — the open-loop (E7/E10-style) shape.
//
// Determinism: both modes inherit transmit_pairs' contract — results are
// byte-identical to num_threads = 0 for any worker count, and to serving
// the pairs one at a time through transmit_many in order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace semcache::core {

class ParallelDispatcher {
 public:
  explicit ParallelDispatcher(SemanticEdgeSystem& system) : system_(system) {}
  ParallelDispatcher(const ParallelDispatcher&) = delete;
  ParallelDispatcher& operator=(const ParallelDispatcher&) = delete;

  /// Queue messages for (sender, receiver). Repeated enqueues for the
  /// same pair append to its batch (one pair, one lane, one completion
  /// index); the pair's index in the flush wave is its first-enqueue
  /// position.
  void enqueue(const std::string& sender, const std::string& receiver,
               std::vector<text::Sentence> messages);

  /// Serve everything queued as one cross-pair wave (transmit_pairs) and
  /// clear the queue. `on_done(pair, index, report)` fires per message as
  /// its delivery chain completes (drive system.simulator() to run the
  /// chains, exactly as with transmit_many). Returns the number of pairs
  /// served; a no-op returning 0 when nothing is queued.
  std::size_t flush(SemanticEdgeSystem::PairDone on_done);

  /// Schedule `messages` from a pair for simulated time t
  /// (transmit_pairs_at). Pairs scheduled for the same t are served as
  /// one concurrent wave when the event loop reaches it. The pair index
  /// reported to `on_done` is this dispatcher's running schedule count
  /// (returned), so interleaved schedules stay distinguishable.
  std::size_t transmit_at(edge::SimTime t, const std::string& sender,
                          const std::string& receiver,
                          std::vector<text::Sentence> messages,
                          SemanticEdgeSystem::PairDone on_done);

  std::size_t queued_pairs() const { return queue_.size(); }
  std::size_t queued_messages() const;
  /// Waves served through flush() so far (scheduling via transmit_at
  /// forms waves inside the simulator instead).
  std::size_t waves_served() const { return waves_; }
  std::size_t pairs_served() const { return pairs_served_; }

 private:
  SemanticEdgeSystem& system_;
  std::vector<SemanticEdgeSystem::PairBatch> queue_;
  std::size_t waves_ = 0;
  std::size_t pairs_served_ = 0;
  std::size_t scheduled_ = 0;
};

}  // namespace semcache::core
