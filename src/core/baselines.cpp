#include "core/baselines.hpp"

#include "common/check.hpp"
#include "metrics/ngram.hpp"

namespace semcache::core {

TraditionalCodec::TraditionalCodec(const text::World& world, Rng& rng,
                                   std::size_t training_sentences)
    : world_(world) {
  // Gather byte statistics from pooled-domain samples.
  compress::ByteHistogram hist{};
  for (std::size_t i = 0; i < training_sentences; ++i) {
    const auto d = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(world.num_domains()) - 1));
    const text::Sentence s = world.sample_sentence(d, rng);
    for (const std::uint8_t b : serialize_surface(s.surface)) ++hist[b];
  }
  huffman_ = compress::HuffmanCode::build(hist);

  // Oracle surface->meaning tables: function meanings are valid in every
  // domain; domain meanings (incl. polysemous senses) in their own.
  surface_to_meaning_.resize(world.num_domains());
  for (std::size_t mid = 0; mid < world.meaning_count(); ++mid) {
    const text::Meaning& m = world.meaning(static_cast<std::int32_t>(mid));
    if (m.domain == text::World::kSharedDomain) {
      for (auto& table : surface_to_meaning_) {
        table.emplace(m.surface, static_cast<std::int32_t>(mid));
      }
    } else {
      surface_to_meaning_[m.domain][m.surface] =
          static_cast<std::int32_t>(mid);
    }
  }
}

std::vector<std::uint8_t> TraditionalCodec::serialize_surface(
    std::span<const std::int32_t> surface) const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(surface.size() * 2);
  for (const auto id : surface) {
    bytes.push_back(static_cast<std::uint8_t>(id & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((id >> 8) & 0xFF));
  }
  return bytes;
}

std::vector<std::int32_t> TraditionalCodec::deserialize_surface(
    std::span<const std::uint8_t> bytes, std::size_t count) const {
  std::vector<std::int32_t> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i + 1 < bytes.size() && ids.size() < count; i += 2) {
    auto id = static_cast<std::int32_t>(bytes[i]) |
              (static_cast<std::int32_t>(bytes[i + 1]) << 8);
    // Channel corruption can produce out-of-vocabulary ids.
    if (id < 0 || static_cast<std::size_t>(id) >= world_.surface_count()) {
      id = text::Vocab::kUnk;
    }
    ids.push_back(id);
  }
  ids.resize(count, text::Vocab::kUnk);
  return ids;
}

std::size_t TraditionalCodec::compressed_bits(
    const text::Sentence& message) const {
  return huffman_.encode(serialize_surface(message.surface)).size();
}

TraditionalCodec::Result TraditionalCodec::transmit(
    const text::Sentence& message, channel::ChannelPipeline& pipe,
    Rng& rng) const {
  const auto bytes = serialize_surface(message.surface);
  const BitVec payload = huffman_.encode(bytes);
  const BitVec received = pipe.transmit(payload, rng);
  const auto rx_bytes = huffman_.decode(received, bytes.size());
  Result result;
  result.payload_bits = payload.size();
  result.received_surface =
      deserialize_surface(rx_bytes, message.surface.size());
  result.surface_accuracy =
      metrics::token_accuracy(message.surface, result.received_surface);

  // Oracle meaning translation in the TRUE domain.
  const auto& table = surface_to_meaning_[message.domain];
  result.received_meanings.reserve(result.received_surface.size());
  for (const auto surf : result.received_surface) {
    const auto it = table.find(surf);
    result.received_meanings.push_back(it == table.end() ? -1 : it->second);
  }
  result.meaning_accuracy =
      metrics::token_accuracy(message.meanings, result.received_meanings);
  return result;
}

}  // namespace semcache::core
