// The Fig. 1 end-to-end workflow, single-message and batched.
//
// Structure note: the DATA plane (encode/quantize/channel/decode, mismatch,
// fine-tuning) is computed eagerly when transmit_async / transmit_many is
// called — its results do not depend on simulated time. The TIMING plane
// (uplink, compute queueing, backbone transfer, downlink, sync shipping) is
// a callback chain through the discrete-event simulator, so open-loop
// workloads (E7/E10) see real queueing contention. Weight updates therefore
// take effect in transmit-call order, which is deterministic.
//
// transmit_many batches the data plane: messages are grouped by selected
// domain and each group runs encode_batch / quantize_batch /
// transmit_batch / decode_logits_batch once per chunk, where chunk
// boundaries fall exactly on the messages whose buffer add trips the
// fine-tune trigger (the sequential path updates the weights there, so
// later messages must be encoded by the post-update model). Per-message
// channel noise keeps the sequential fork discipline: message i (counted
// across the whole system) forks rng_ with tag 0xC4A2 ^ (i * 2654435761),
// so batched and sequential runs consume identical noise streams.
//
// With SystemConfig::num_threads > 0, the per-row stages of each chunk
// (quantize, channel pass, dequantize) additionally fan out over the
// system's worker pool. The forked-RNG discipline makes those rows
// embarrassingly parallel, so threads=N output is bit-identical to
// threads=0 (test_transmit_parallel pins the whole matrix); everything
// stateful stays on the calling thread.
//
// transmit_pairs serves ACROSS user pairs: every mutable serving object —
// user-model slot, transaction buffer, fine-tune scratch, decoder replica
// — is keyed by (sending user, domain), so pairs with distinct senders
// own disjoint state and their data planes run concurrently (lanes keyed
// by sender; pairs sharing a sender serialize within one lane). What the
// pairs DO share is routed around the fan-out: the selector, LRU caches,
// and slot creation run in the sequential prepare phase; system/channel
// accounting collects into pair-local sinks; gradient-sync ships and
// delivery scheduling defer to the commit phase, folded back in pair
// order. The ServeContext below is the switch between the direct
// (transmit_many) and deferred (pair-task) routing; both produce
// byte-identical results for any worker count.
#include "core/system.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/grouping.hpp"
#include "common/log.hpp"
#include "metrics/ngram.hpp"
#include "nn/loss.hpp"

namespace semcache::core {

namespace {
constexpr std::size_t kHeaderBytes = 8;  ///< per-message framing overhead
constexpr std::size_t kTokenBytes = 2;   ///< raw token id on device links
constexpr std::size_t kSyncAckBytes = 16;  ///< sync delivery ack frame
constexpr std::size_t kCrcBytes = 4;       ///< sync wire CRC trailer

std::size_t raw_message_bytes(const text::Sentence& s) {
  return kHeaderBytes + kTokenBytes * s.surface.size();
}

/// Channel-noise fork tag for the system-wide message counter value `index`
/// (the same discipline whether the message rides the batched or the
/// sequential path). Pinned by test_channel_golden.
std::uint64_t channel_fork_tag(std::uint64_t index) {
  return 0xC4A2 ^ (index * 2654435761ULL);
}
}  // namespace

void SemanticEdgeSystem::run_update(const std::string& sender,
                                    std::size_t domain,
                                    EdgeServerState& sender_state,
                                    EdgeServerState& recv_state,
                                    TransmitReport& report,
                                    const ServeContext& ctx) {
  UserModelSlot* sslot = sender_state.find_slot(sender, domain);
  SEMCACHE_CHECK(sslot != nullptr && sslot->buffer != nullptr,
                 "run_update: missing sender slot");
  // First weight write for this slot: copy-on-write materializes a private
  // clone of the general model here, so the bytes are charged exactly when
  // the user develops state of their own.
  materialize_slot(*sslot, domain);

  // Fine-tune a scratch clone on the buffered transactions (§II-D: the
  // user-specialized encoder and decoder "start to be trained together
  // after enough collected data at b^m").
  auto scratch = sslot->model->clone();
  Rng ft_rng = rng_.fork(0xF17E ^ (sslot->send_version + 1));
  semantic::CodecTrainer::finetune(*scratch, sslot->buffer->samples(),
                                   config_.finetune_epochs,
                                   config_.finetune_lr, ft_rng,
                                   config_.pretrain.feature_noise,
                                   config_.finetune_batch_size);

  // Build the decoder sync message from pre/post snapshots.
  const std::vector<float> before =
      sslot->model->decoder().parameters().flatten_values();
  const std::vector<float> after =
      scratch->decoder().parameters().flatten_values();
  fl::SyncMessage msg = synchronizer_->make_message(
      before, after, sender, static_cast<std::uint32_t>(domain),
      ++sslot->send_version);

  // Encoder adopts the exact fine-tuned weights (it lives only at the
  // sender edge); the decoder COPY applies the same lossy delta the
  // receiver will apply, so the replicas stay bit-identical.
  nn::ParameterSet senc = sslot->model->encoder().parameters();
  senc.copy_values_from(scratch->encoder().parameters());
  nn::ParameterSet sdec = sslot->model->decoder().parameters();
  synchronizer_->apply(sdec, msg);
  sslot->buffer->consume();

  report.triggered_update = true;
  report.sync_bytes = msg.byte_size();
  ctx.stats->sync_bytes += msg.byte_size();
  ++ctx.stats->updates;

  // Ship the gradient to the receiver edge (④). The snapshot of the
  // sender's post-update decoder rides along for gap recovery — on the
  // wire it would be fetched on demand, so its bytes are only charged when
  // a resync actually happens. Intra-edge, the replica is slot-local
  // state this call owns, so the apply runs in place (both modes);
  // cross-edge the backbone send mutates link/simulator state, so
  // deferred mode queues it for the wave's ordered commit phase.
  std::vector<float> snapshot =
      sslot->model->decoder().parameters().flatten_values();
  if (sender_state.index() == recv_state.index()) {
    apply_sync_at_receiver(recv_state, sender, domain, msg, snapshot,
                           *ctx.stats);
    return;
  }
  PendingShip ship;
  ship.msg = std::move(msg);
  ship.snapshot = std::move(snapshot);
  ship.sender = sender;
  ship.domain = domain;
  ship.sender_edge = sender_state.index();
  ship.receiver_edge = recv_state.index();
  if (ctx.outbox != nullptr) {
    ctx.outbox->push_back(std::move(ship));
  } else {
    ship_sync(std::move(ship));
  }
}

void SemanticEdgeSystem::apply_sync_at_receiver(
    EdgeServerState& recv_state, const std::string& sender, std::size_t domain,
    const fl::SyncMessage& msg, const std::vector<float>& snapshot,
    SystemStats& stats) {
  UserModelSlot* rslot = recv_state.find_slot(sender, domain);
  if (rslot == nullptr) return;  // receiver never saw this user; drop
  if (rslot->recv_version.advance(msg.version)) {
    materialize_slot(*rslot, domain);  // copy-on-write before the apply
    nn::ParameterSet rdec = rslot->model->decoder().parameters();
    synchronizer_->apply(rdec, msg);
    ++rslot->updates_applied;
    return;
  }
  if (msg.version <= rslot->recv_version.current()) return;  // replay
  // Version gap: one or more updates were lost. Recover with a full
  // decoder-state transfer (bytes charged on the backbone).
  materialize_slot(*rslot, domain);
  nn::ParameterSet rdec = rslot->model->decoder().parameters();
  rdec.unflatten_values(snapshot);
  rslot->recv_version.reset(msg.version);
  ++rslot->updates_applied;
  ++stats.full_resyncs;
  stats.resync_bytes += 4 * snapshot.size();
}

void SemanticEdgeSystem::ship_sync(PendingShip ship) {
  EdgeServerState& recv_state = *edge_states_[ship.receiver_edge];
  edge::Link& fwd = topology_.net->link(topology_.edges[ship.sender_edge],
                                        topology_.edges[ship.receiver_edge]);
  const std::size_t byte_size = ship.msg.byte_size();

  if (!fault_plane_.config().sync_faults_active()) {
    // Fault-free fast path, bit-compatible with the pre-fault-plane wire:
    // msg and the decoder snapshot MOVE into the closure (the snapshot is
    // a full parameter vector — both call sites hand over a ship they are
    // done with). The apply runs at arrival time on the event loop, where
    // accounting is the global stats in every mode.
    fwd.send_concurrent(
        sim_, byte_size,
        [this, &recv_state, sender = std::move(ship.sender),
         domain = ship.domain, msg = std::move(ship.msg),
         snapshot = std::move(ship.snapshot)] {
          apply_sync_at_receiver(recv_state, sender, domain, msg, snapshot,
                                 stats_);
        });
    return;
  }

  // ---- Sync faults active: retry with exponential backoff. ----
  //
  // Every attempt's fate is a pure function of (seed, sender, domain,
  // version, attempt) — see FaultPlane — so the WHOLE retry ladder is
  // resolved here at ship time, deterministically, and only the surviving
  // wire traffic is scheduled on the simulator. That keeps waves
  // byte-identical at any thread or shard count: no coin ever depends on
  // a global ordinal or on event interleaving. Retransmissions ride the
  // same backbone link with the CRC-framed wire size; the receiver's CRC
  // check rejects corrupted images cleanly (no state touched). If every
  // attempt fails the message expires — the sender's replica has already
  // moved on, so the receiver heals through the VersionVector gap-resync
  // on the next delivered update (resync as last resort, retry first).
  const FaultConfig& cfg = fault_plane_.config();
  const auto domain32 = static_cast<std::uint32_t>(ship.domain);
  const std::uint64_t version = ship.msg.version;
  const std::size_t wire_bytes = byte_size + kCrcBytes;

  // Schedule one attempt's wire traffic `after` seconds from now (0 =
  // immediately, matching the fault-free path's timing for attempt 1).
  const auto send_attempt = [this, &fwd](double after, std::size_t bytes,
                                         edge::Simulator::Handler handler) {
    if (after <= 0.0) {
      fwd.send_concurrent(sim_, bytes, std::move(handler));
    } else {
      sim_.schedule_after(after, [this, &fwd, bytes,
                                  handler = std::move(handler)]() mutable {
        fwd.send_concurrent(sim_, bytes, std::move(handler));
      });
    }
  };

  double delay = 0.0;
  std::uint64_t attempt = 1;
  bool delivered = false;
  for (; attempt <= cfg.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.sync_retries;
      stats_.sync_bytes += byte_size;  // the retransmission rides the wire too
    }
    if (fault_plane_.drop_sync(ship.sender, domain32, version, attempt)) {
      // Lost in transit: nothing arrives, the sender times out and backs
      // off before the next attempt.
      ++stats_.sync_drops;
      delay += fault_plane_.retry_delay_s(attempt);
      continue;
    }
    if (fault_plane_.corrupt_sync(ship.sender, domain32, version, attempt)) {
      // Corrupted in transit: the real wire image, deterministically
      // mangled, traverses the link; the receiver runs the CRC gate and
      // drops it cleanly into the retry path. (A 2^-32 CRC collision
      // would parse — the attempt is still counted faulted and dropped.)
      auto wire = ship.msg.to_wire();
      fault_plane_.corrupt_bytes(wire, ship.sender, domain32, version,
                                 attempt);
      send_attempt(delay, wire.size(), [this, wire = std::move(wire)] {
        try {
          (void)fl::SyncMessage::from_wire(wire);
        } catch (const Error&) {
        }
        ++stats_.sync_corrupt_drops;
      });
      ++stats_.sync_drops;
      delay += fault_plane_.retry_delay_s(attempt);
      continue;
    }
    delivered = true;
    break;
  }
  if (!delivered) {
    // Retry budget exhausted: give up. The version gap heals via full
    // resync on the next delivered update for this (user, domain).
    ++stats_.sync_expired;
    common::log_once("sync-expired",
                     "sync message expired after max_attempts retries; "
                     "the receiver will gap-resync on the next delivered "
                     "update (see SystemStats::sync_expired)");
    return;
  }

  const bool duplicate =
      fault_plane_.duplicate_sync(ship.sender, domain32, version, attempt);
  // The intact attempt. Shared ownership so an injected duplicate can
  // deliver the same payload twice (the second copy is a VersionVector
  // replay at the receiver and is dropped there).
  auto payload = std::make_shared<PendingShip>(std::move(ship));
  send_attempt(delay, wire_bytes, [this, &recv_state, payload] {
    apply_sync_at_receiver(recv_state, payload->sender, payload->domain,
                           payload->msg, payload->snapshot, stats_);
    // Delivery ack on the reverse backbone path (modeled reliable; it is
    // what arms the sender's retry timer in a real deployment).
    stats_.sync_ack_bytes += kSyncAckBytes;
    topology_.net
        ->link(topology_.edges[payload->receiver_edge],
               topology_.edges[payload->sender_edge])
        .send_concurrent(sim_, kSyncAckBytes, [] {});
  });
  if (duplicate) {
    ++stats_.sync_duplicates;
    stats_.sync_bytes += byte_size;  // the duplicate copy rides the wire too
    send_attempt(delay, wire_bytes, [this, &recv_state, payload] {
      // Second copy: link FIFO guarantees it lands after the first, so
      // the receiver's replay check drops it without touching state.
      apply_sync_at_receiver(recv_state, payload->sender, payload->domain,
                             payload->msg, payload->snapshot, stats_);
    });
  }
}

void SemanticEdgeSystem::set_sync_loss_probability(double p) {
  SEMCACHE_CHECK(p >= 0.0 && p <= 1.0,
                 "sync_loss_probability must be in [0, 1]");
  config_.faults.sync_loss = p;
  fault_plane_ = FaultPlane(config_.faults);
}

std::size_t SemanticEdgeSystem::prepare_message(EdgeServerState& sstate,
                                                EdgeServerState& rstate,
                                                const std::string& sender,
                                                const text::Sentence& message,
                                                TransmitReport& report) {
  report.domain_true = message.domain;

  // --- Model selection (§III-A). ---
  const std::size_t m = config_.oracle_selection
                            ? message.domain
                            : selector_->select(message.surface);
  report.domain_selected = m;
  report.selection_correct = (m == message.domain);
  if (!report.selection_correct) ++stats_.selection_errors;

  // --- General models through the edge caches (①). ---
  report.general_cache_hit = touch_general_cache(sstate, m);
  touch_general_cache(rstate, m);

  // --- User-specific slots (②): established copy-on-write — the fresh
  // slot ALIASES the shared general model (bytes, not a clone; serving
  // routes through the per-worker replicas, and the first fine-tune or
  // sync apply materializes a private copy). The receiver edge holds the
  // decoder replica for this (sender, domain) pair. ---
  report.established_user_model = (sstate.find_slot(sender, m) == nullptr);
  UserModelSlot& sslot =
      sstate.ensure_slot(sender, m, [&] { return general_models_[m]; });
  if (sslot.buffer == nullptr) {
    // A trigger above the configured capacity means "never train" (the
    // frozen-general-model baseline); size the ring to match.
    sslot.buffer = std::make_unique<fl::DomainBuffer>(
        config_.buffer_trigger,
        std::max(config_.buffer_capacity, config_.buffer_trigger));
  }
  rstate.ensure_slot(sender, m, [&] { return general_models_[m]; });
  return m;
}

void SemanticEdgeSystem::process_domain_group(
    const std::string& sender, std::size_t m, EdgeServerState& sstate,
    EdgeServerState& rstate, bool cross_edge,
    std::uint64_t base_message_index,
    const std::vector<text::Sentence>& messages,
    const std::vector<std::size_t>& indices,
    const std::vector<std::shared_ptr<TransmitReport>>& reports,
    const ServeContext& ctx) {
  UserModelSlot& sslot = *sstate.find_slot(sender, m);
  UserModelSlot& rslot = *rstate.find_slot(sender, m);
  const std::size_t length = config_.codec.sentence_length;
  const std::size_t vocab = config_.codec.meaning_vocab;

  // Per-lane scratch for the parallel outcome assembly: the CE loss object
  // caches its softmax internally and the logits slice is reused across
  // messages, so each worker lane owns one of each (pool-slot-indexed —
  // no shared mutable state crosses workers).
  struct LaneScratch {
    tensor::Tensor slice;  // one message's logits (L x V)
    nn::SoftmaxCrossEntropy ce;
  };
  std::vector<LaneScratch> lanes(
      ctx.row_pool != nullptr
          ? std::max<std::size_t>(1, ctx.row_pool->worker_count())
          : 1);

  nn::SoftmaxCrossEntropy ce;  // calling-thread fallback path only
  std::vector<std::int32_t> surfaces;

  std::size_t pos = 0;
  while (pos < indices.size()) {
    // Chunk boundary: the sequential path fine-tunes at the message whose
    // buffer add trips the trigger, and every later message is encoded by
    // the updated weights — so a chunk may extend at most that far.
    const std::size_t until_ready =
        std::max<std::size_t>(1, sslot.buffer->adds_until_ready());
    const std::size_t chunk = std::min(indices.size() - pos, until_ready);

    // ---- One batched pass over the chunk. ----
    surfaces.clear();
    surfaces.reserve(chunk * length);
    for (std::size_t j = 0; j < chunk; ++j) {
      const text::Sentence& message = messages[indices[pos + j]];
      surfaces.insert(surfaces.end(), message.surface.begin(),
                      message.surface.end());
    }
    // Valid until this encoder's next encode, which happens only after
    // this chunk (the mismatch pass reads it through roundtrip_batch).
    //
    // Parallel sections: encode/decode stay batched on the calling thread
    // (they own per-model Workspace scratch), while the per-row quantize /
    // channel / dequantize passes fan out over pool_ when one is attached
    // — each row's work touches only row-owned state plus its own forked
    // RNG, so the bits are identical on any worker count. All mutation
    // (buffers, caches, stats, timing-plane scheduling) stays below, on
    // the calling thread.
    //
    // serving_codec is resolved per chunk, not hoisted: the update trigger
    // at a chunk boundary may MATERIALIZE the sender slot (copy-on-write),
    // after which later chunks must run on the private fine-tuned model
    // instead of the shared-general serving replica.
    const tensor::Tensor& features =
        serving_codec(sslot, m).encoder().encode_batch(surfaces, chunk);
    const std::vector<BitVec> payloads =
        quantizer_->quantize_batch(features, ctx.row_pool);

    std::vector<BitVec> received;
    if (cross_edge) {
      std::vector<Rng> rngs;
      std::vector<std::uint64_t> slots;
      rngs.reserve(chunk);
      slots.reserve(chunk);
      // The slot is the same global message ordinal that keys the RNG
      // fork — channels with memory (Gilbert–Elliott) key their burst
      // weather on it, so waves stay byte-identical across threads/shards.
      for (std::size_t j = 0; j < chunk; ++j) {
        const std::uint64_t ordinal = base_message_index + indices[pos + j];
        rngs.push_back(rng_.fork(channel_fork_tag(ordinal)));
        slots.push_back(ordinal);
      }
      // Deferred mode collects the channel accounting into the pair-local
      // sink (the pipeline is shared across concurrently-served pairs);
      // direct mode books into the pipeline's own stats as always.
      received = ctx.channel_stats != nullptr
                     ? pipeline_->transmit_batch_collect(payloads, rngs, slots,
                                                         *ctx.channel_stats,
                                                         ctx.row_pool)
                     : pipeline_->transmit_batch(payloads, rngs, slots);
    } else {
      received = payloads;
    }
    const tensor::Tensor rx_features =
        quantizer_->dequantize_batch(received, ctx.row_pool);
    // Keep the receiver logits alive past the argmax: the mismatch-reuse
    // fast path below reads per-message row slices out of them.
    const tensor::Tensor& rx_logits =
        serving_codec(rslot, m).decoder().decode_logits_batch(rx_features);
    const std::vector<std::int32_t> decoded =
        tensor::row_argmax(rx_logits, ctx.row_pool);

    // --- Mismatch calculation (③). With the decoder copy the sender can
    // evaluate its own clean quantized features locally; without it, the
    // receiver must return its decoded output ("sending the output back
    // would defeat the purpose", §II-C).
    //
    // Fast path (mismatch_reuse): replicas at the same sync version are
    // byte-identical, so for every message whose payload crossed the
    // channel intact the receiver logits already ARE the decoder-copy
    // logits — no second decoder forward. Messages the channel corrupted
    // (rare at serving SNRs) fall back to a single-row decoder-copy pass.
    const bool replicas_synced =
        &sslot == &rslot ||
        sslot.send_version == rslot.recv_version.current();
    const bool reuse = config_.decoder_copy_enabled &&
                       config_.mismatch_reuse && replicas_synced;
    const tensor::Tensor* copy_logits = nullptr;
    if (config_.decoder_copy_enabled && !reuse) {
      const tensor::Tensor clean =
          quantizer_->roundtrip_batch(features, ctx.row_pool);
      // Note: sslot and rslot may alias the same decoder (intra-edge, or
      // both copy-on-write slots routed to one serving replica); the
      // decoded ids above are already copied out, so overwriting its
      // logits buffer here is safe (rx_logits is not read again on this
      // branch).
      copy_logits = &serving_codec(sslot, m).decoder().decode_logits_batch(clean);
    }

    // ---- Per-message outcome assembly. Report fields and the mismatch
    // CE are pure functions of (message, batch outputs), so they fan out
    // over the pool with the lane scratch above; message j writes only
    // report j. The reuse fallback for channel-corrupted messages needs a
    // decoder forward (per-model Workspace), so it is only FLAGGED here
    // and computed on the calling thread in the commit loop below. ----
    std::vector<std::uint8_t> wants_copy_fallback(chunk, 0);
    const auto assemble = [&](std::size_t j, std::size_t lane) {
      const std::size_t idx = indices[pos + j];
      const text::Sentence& message = messages[idx];
      TransmitReport& report = *reports[idx];

      report.decoded_meanings.assign(
          decoded.begin() + static_cast<std::ptrdiff_t>(j * length),
          decoded.begin() + static_cast<std::ptrdiff_t>((j + 1) * length));
      report.token_accuracy =
          metrics::token_accuracy(message.meanings, report.decoded_meanings);
      report.exact = (report.decoded_meanings == message.meanings);
      report.payload_bytes = (payloads[j].size() + 7) / 8 + kHeaderBytes;
      if (cross_edge) {
        report.airtime_bits =
            pipeline_->code().encoded_length(payloads[j].size());
      }

      if (config_.decoder_copy_enabled) {
        LaneScratch& scratch = lanes[lane];
        if (reuse && received[j] == payloads[j]) {
          // Clean payload + synced replicas: rx_logits rows j*L..(j+1)*L
          // are bit-identical to what the decoder copy would produce.
          scratch.slice.resize({length, vocab});
          std::memcpy(scratch.slice.data(),
                      rx_logits.data() + j * length * vocab,
                      length * vocab * sizeof(float));
          report.mismatch = scratch.ce.forward(scratch.slice, message.meanings);
        } else if (reuse) {
          // Channel-corrupted message: needs the decoder copy (sslot !=
          // rslot here — a corrupted payload implies a cross-edge
          // channel). Deferred to the calling thread.
          wants_copy_fallback[j] = 1;
        } else {
          scratch.slice.resize({length, vocab});
          std::memcpy(scratch.slice.data(),
                      copy_logits->data() + j * length * vocab,
                      length * vocab * sizeof(float));
          report.mismatch = scratch.ce.forward(scratch.slice, message.meanings);
        }
      } else {
        report.output_return_bytes =
            kHeaderBytes + kTokenBytes * report.decoded_meanings.size();
        // Error-rate proxy computed from the returned output.
        report.mismatch = 1.0 - report.token_accuracy;
      }
    };
    common::parallel_for_or_inline(ctx.row_pool, chunk, assemble);

    // ---- Commit, in arrival order within the chunk (all mutation —
    // fallback decoder passes, buffers, stats — on the calling thread). --
    for (std::size_t j = 0; j < chunk; ++j) {
      const std::size_t idx = indices[pos + j];
      const text::Sentence& message = messages[idx];
      TransmitReport& report = *reports[idx];

      if (wants_copy_fallback[j]) {
        // Evaluate this one clean feature row through the decoder copy.
        // Safe even when the copy shares a serving replica with the
        // receiver side: the assembly join above already consumed every
        // rx_logits slice, so nothing reads that buffer again.
        tensor::Tensor row({1, config_.codec.feature_dim});
        std::memcpy(row.data(), features.data() + j * row.size(),
                    row.size() * sizeof(float));
        const tensor::Tensor clean = quantizer_->roundtrip(row);
        const tensor::Tensor logits =
            serving_codec(sslot, m).decoder().decode_logits(clean);
        report.mismatch = ce.forward(logits, message.meanings);
      }
      if (!config_.decoder_copy_enabled) {
        ctx.stats->output_return_bytes += report.output_return_bytes;
      }
      sslot.buffer->add({message.surface, message.meanings}, report.mismatch);
      ctx.stats->feature_bytes += report.payload_bytes;
    }

    // --- Update trigger (④): fires on the chunk's last message, exactly
    // where the sequential path fires it. ---
    if (sslot.buffer->ready()) {
      run_update(sender, m, sstate, rstate, *reports[indices[pos + chunk - 1]],
                 ctx);
    }
    pos += chunk;
  }
}

void SemanticEdgeSystem::schedule_delivery(
    const UserProfile& sprofile, const UserProfile& rprofile,
    std::size_t domain, const text::Sentence& message,
    std::shared_ptr<TransmitReport> report,
    std::function<void(TransmitReport)> deliver) {
  const bool cross_edge = sprofile.edge_index != rprofile.edge_index;
  const double start_time = sim_.now();
  const std::size_t up_bytes = raw_message_bytes(message);
  const std::size_t down_bytes =
      kHeaderBytes + kTokenBytes * report->decoded_meanings.size();
  stats_.uplink_bytes += up_bytes;
  stats_.downlink_bytes += down_bytes;

  edge::Network& net = *topology_.net;
  // Degraded serves never establish slots, so the compute cost falls back
  // to the frozen general's parameter shape (identical to any aliased
  // slot model — the fallback changes nothing for healthy serving).
  UserModelSlot* sslot =
      edge_state(sprofile.edge_index).find_slot(sprofile.name, domain);
  UserModelSlot* rslot =
      edge_state(rprofile.edge_index).find_slot(sprofile.name, domain);
  semantic::SemanticCodec& enc_model =
      sslot != nullptr ? *sslot->model : *general_models_[domain];
  semantic::SemanticCodec& dec_model =
      rslot != nullptr ? *rslot->model : *general_models_[domain];
  const double enc_flops =
      2.0 *
      static_cast<double>(enc_model.encoder().parameters().scalar_count());
  const double dec_flops =
      2.0 *
      static_cast<double>(dec_model.decoder().parameters().scalar_count());

  const edge::NodeId s_dev = sprofile.device;
  const edge::NodeId r_dev = rprofile.device;
  const edge::NodeId s_edge = topology_.edges[sprofile.edge_index];
  const edge::NodeId r_edge = topology_.edges[rprofile.edge_index];
  auto done = [this, report, deliver = std::move(deliver), start_time] {
    report->latency_s = sim_.now() - start_time;
    deliver(std::move(*report));
  };

  // Chain: uplink -> encode -> backbone -> decode -> downlink.
  const std::size_t payload_bytes = report->payload_bytes;
  auto downlink = [this, &net, r_edge, r_dev, down_bytes,
                   done = std::move(done)]() mutable {
    net.link(r_edge, r_dev).send_concurrent(sim_, down_bytes, std::move(done));
  };
  auto decode = [this, &net, r_edge, dec_flops,
                 downlink = std::move(downlink)]() mutable {
    net.node(r_edge).submit_compute(sim_, dec_flops, std::move(downlink));
  };
  auto backbone = [this, &net, cross_edge, s_edge, r_edge, payload_bytes,
                   decode = std::move(decode)]() mutable {
    if (cross_edge) {
      net.link(s_edge, r_edge).send_concurrent(sim_, payload_bytes,
                                               std::move(decode));
    } else {
      decode();
    }
  };
  auto encode = [this, &net, s_edge, enc_flops,
                 backbone = std::move(backbone)]() mutable {
    net.node(s_edge).submit_compute(sim_, enc_flops, std::move(backbone));
  };
  net.link(s_dev, s_edge).send_concurrent(sim_, up_bytes, std::move(encode));
}

void SemanticEdgeSystem::transmit_many(
    const std::string& sender, const std::string& receiver,
    std::vector<text::Sentence> messages,
    std::function<void(std::size_t, TransmitReport)> on_done) {
  SEMCACHE_CHECK(on_done != nullptr, "transmit_many: null completion");
  SEMCACHE_CHECK(!messages.empty(), "transmit_many: empty batch");
  for (const text::Sentence& message : messages) {
    SEMCACHE_CHECK(message.surface.size() == config_.codec.sentence_length,
                   "transmit_many: message length must match codec window");
  }
  const UserProfile& sprofile = user(sender);
  const UserProfile& rprofile = user(receiver);
  EdgeServerState& sstate = edge_state(sprofile.edge_index);
  EdgeServerState& rstate = edge_state(rprofile.edge_index);
  const bool cross_edge = sprofile.edge_index != rprofile.edge_index;
  const std::size_t n = messages.size();

  // ---- Selection / caches / slots, strictly in arrival order (the
  // selector and the LRU cache are stateful). ----
  std::vector<std::shared_ptr<TransmitReport>> reports(n);
  std::vector<std::size_t> domains(n);
  for (std::size_t i = 0; i < n; ++i) {
    reports[i] = std::make_shared<TransmitReport>();
    domains[i] = prepare_message(sstate, rstate, sender, messages[i],
                                 *reports[i]);
  }

  // ================= data plane (eager, batched) =================
  // Group by selected domain (first-appearance order); within a group the
  // arrival order is preserved, and each message keeps the channel-noise
  // fork of its system-wide index.
  const std::uint64_t base_message_index = stats_.messages;
  const auto grouped = common::group_by_first_appearance(
      n, [&](std::size_t i) { return domains[i]; });
  const ServeContext direct{&stats_, nullptr, pool_.get(), nullptr};
  for (std::size_t g = 0; g < grouped.groups.size(); ++g) {
    process_domain_group(sender, grouped.keys[g], sstate, rstate, cross_edge,
                         base_message_index, messages, grouped.groups[g],
                         reports, direct);
  }
  stats_.messages += n;

  // ================= timing plane (one event chain per message) =========
  for (std::size_t i = 0; i < n; ++i) {
    schedule_delivery(sprofile, rprofile, domains[i], messages[i], reports[i],
                      [on_done, i](TransmitReport report) {
                        on_done(i, std::move(report));
                      });
  }
}

// ===================== cross-pair parallel serving ======================

struct SemanticEdgeSystem::PairTask {
  std::size_t pair_index = 0;
  PairBatch batch;
  const UserProfile* sprofile = nullptr;
  const UserProfile* rprofile = nullptr;
  EdgeServerState* sstate = nullptr;
  EdgeServerState* rstate = nullptr;
  bool cross_edge = false;
  std::uint64_t base_message_index = 0;
  std::vector<std::size_t> domains;
  std::vector<std::shared_ptr<TransmitReport>> reports;
  // Selected-domain grouping (first-appearance order, as transmit_many).
  std::vector<std::size_t> group_domains;
  std::vector<std::vector<std::size_t>> groups;
  // Pair-local sinks the commit phase folds back in pair order.
  SystemStats stats_delta;
  channel::PipelineStats channel_delta;
  std::vector<PendingShip> outbox;
};

void SemanticEdgeSystem::validate_pair_batch(const PairBatch& batch) const {
  SEMCACHE_CHECK(!batch.messages.empty(), "transmit_pairs: empty pair batch");
  user(batch.sender);  // throws for unknown users
  user(batch.receiver);
  for (const text::Sentence& message : batch.messages) {
    SEMCACHE_CHECK(message.surface.size() == config_.codec.sentence_length,
                   "transmit_pairs: message length must match codec window");
  }
}

void SemanticEdgeSystem::prepare_pair(PairTask& task) {
  // Re-validate here for the simulator-scheduled path (the batch was
  // admitted at schedule time, but fire-time state is what counts).
  validate_pair_batch(task.batch);
  task.sprofile = &user(task.batch.sender);
  task.rprofile = &user(task.batch.receiver);
  task.sstate = &edge_state(task.sprofile->edge_index);
  task.rstate = &edge_state(task.rprofile->edge_index);
  task.cross_edge = task.sprofile->edge_index != task.rprofile->edge_index;

  const std::size_t n = task.batch.messages.size();
  task.reports.resize(n);
  task.domains.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    task.reports[i] = std::make_shared<TransmitReport>();
    task.domains[i] = prepare_message(*task.sstate, *task.rstate,
                                      task.batch.sender,
                                      task.batch.messages[i],
                                      *task.reports[i]);
  }
  // Claim this pair's run of global message indices now, in pair order —
  // exactly the channel-noise forks n sequential transmit_many calls
  // would consume (the counter's only other reader is the next prepare).
  // A batch with a PINNED noise base (the sharded front door assigns them
  // from its deployment-wide counter in first-enqueue order) uses that
  // instead, so a shard's noise streams match the single-system reference
  // no matter how pairs interleave across shards; the local message count
  // still advances either way.
  task.base_message_index = task.batch.noise_base == PairBatch::kAutoNoiseBase
                                ? stats_.messages
                                : task.batch.noise_base;
  stats_.messages += n;

  auto grouped = common::group_by_first_appearance(
      n, [&](std::size_t i) { return task.domains[i]; });
  task.group_domains = std::move(grouped.keys);
  task.groups = std::move(grouped.groups);
}

void SemanticEdgeSystem::compute_pair(PairTask& task) {
  // Row-level fan-outs still name the system pool: on a wave worker they
  // degrade to inline loops (nested-engagement rule), while a
  // single-lane wave computing on the calling thread keeps the row
  // parallelism of transmit_many. Bits are identical either way.
  const ServeContext deferred{&task.stats_delta, &task.channel_delta,
                              pool_.get(), &task.outbox};
  for (std::size_t g = 0; g < task.groups.size(); ++g) {
    process_domain_group(task.batch.sender, task.group_domains[g],
                         *task.sstate, *task.rstate, task.cross_edge,
                         task.base_message_index, task.batch.messages,
                         task.groups[g], task.reports, deferred);
  }
}

void SemanticEdgeSystem::commit_pair(PairTask& task, const PairDone& on_done) {
  // Fold the pair-local accounting into the global sinks. `messages` was
  // claimed at prepare; uplink/downlink book in schedule_delivery below;
  // selection_errors booked in prepare. The fault/resync counters are
  // structurally zero here (ship_sync books them at commit time, into
  // the global stats) but fold anyway so the invariant lives in one
  // place.
  stats_.feature_bytes += task.stats_delta.feature_bytes;
  stats_.sync_bytes += task.stats_delta.sync_bytes;
  stats_.output_return_bytes += task.stats_delta.output_return_bytes;
  stats_.updates += task.stats_delta.updates;
  stats_.sync_drops += task.stats_delta.sync_drops;
  stats_.sync_retries += task.stats_delta.sync_retries;
  stats_.sync_corrupt_drops += task.stats_delta.sync_corrupt_drops;
  stats_.sync_duplicates += task.stats_delta.sync_duplicates;
  stats_.sync_expired += task.stats_delta.sync_expired;
  stats_.sync_ack_bytes += task.stats_delta.sync_ack_bytes;
  stats_.full_resyncs += task.stats_delta.full_resyncs;
  stats_.resync_bytes += task.stats_delta.resync_bytes;
  stats_.degraded_serves += task.stats_delta.degraded_serves;
  pipeline_->fold_stats(task.channel_delta);
  // Ship deferred gradient syncs in trigger order, exactly where the
  // sequential path would have sent them: after this pair's data plane,
  // before its delivery chains.
  for (PendingShip& ship : task.outbox) ship_sync(std::move(ship));
  task.outbox.clear();

  const std::size_t pair = task.pair_index;
  for (std::size_t i = 0; i < task.batch.messages.size(); ++i) {
    schedule_delivery(*task.sprofile, *task.rprofile, task.domains[i],
                      task.batch.messages[i], task.reports[i],
                      [on_done, pair, i](TransmitReport report) {
                        on_done(pair, i, std::move(report));
                      });
  }
}

void SemanticEdgeSystem::transmit_pairs(std::vector<PairBatch> batches,
                                        PairDone on_done) {
  SEMCACHE_CHECK(on_done != nullptr, "transmit_pairs: null completion");
  SEMCACHE_CHECK(!batches.empty(), "transmit_pairs: no pairs");
  // Validate the WHOLE wave before serving anything: prepare claims
  // global message indices and mutates caches/slots, so a mid-wave
  // rejection would leave earlier pairs prepared but later ones dropped,
  // with every later channel-noise fork shifted. Rejecting up front
  // keeps a failed call side-effect-free, like a failed transmit_many.
  // Fault injection needs no special casing here: every fault coin is
  // keyed by message identity (FaultPlane), so waves stay parallel — and
  // byte-identical — under active injection.
  for (const PairBatch& batch : batches) validate_pair_batch(batch);

  // Phase 1: sequential prepares in pair order.
  std::vector<PairTask> tasks(batches.size());
  for (std::size_t p = 0; p < batches.size(); ++p) {
    tasks[p].pair_index = p;
    tasks[p].batch = std::move(batches[p]);
    prepare_pair(tasks[p]);
  }

  // Phase 2: partition pairs into lanes by sending user — every mutable
  // serving object is keyed by (sender, domain), so pairs sharing a
  // sender share slots and must serialize (in pair order, within one
  // lane); distinct senders own disjoint state and fan out.
  const auto lanes = common::group_by_first_appearance(
      tasks.size(),
      [&](std::size_t p) -> const std::string& { return tasks[p].batch.sender; });
  common::parallel_for_or_inline(
      pool_.get(), lanes.groups.size(), [&](std::size_t lane, std::size_t) {
        for (const std::size_t p : lanes.groups[lane]) compute_pair(tasks[p]);
      });

  // Phase 3: sequential commits in pair order.
  for (PairTask& task : tasks) commit_pair(task, on_done);
}

void SemanticEdgeSystem::transmit_pairs_at(edge::SimTime t, PairBatch batch,
                                           PairDone on_done,
                                           std::size_t pair_index) {
  SEMCACHE_CHECK(on_done != nullptr, "transmit_pairs_at: null completion");
  // One three-phase simulator event per pair, lane-keyed by sender: every
  // pair batch landing on the same timestamp joins one concurrent wave
  // (edge::Simulator batches consecutive concurrent events), with the
  // same prepare/compute/commit discipline as an immediate wave.
  auto task = std::make_shared<PairTask>();
  task->pair_index = pair_index;
  task->batch = std::move(batch);
  const std::uint64_t lane = std::hash<std::string>{}(task->batch.sender);
  sim_.schedule_concurrent_at(
      t, lane, [this, task] { prepare_pair(*task); },
      [this, task] { compute_pair(*task); },
      [this, task, on_done = std::move(on_done)] {
        commit_pair(*task, on_done);
      });
}

void SemanticEdgeSystem::serve_degraded(
    const PairBatch& batch,
    std::function<void(std::size_t, TransmitReport)> on_done) {
  SEMCACHE_CHECK(on_done != nullptr, "serve_degraded: null completion");
  validate_pair_batch(batch);
  const UserProfile& sprofile = user(batch.sender);
  const UserProfile& rprofile = user(batch.receiver);
  const bool cross_edge = sprofile.edge_index != rprofile.edge_index;
  const std::uint64_t base = batch.noise_base == PairBatch::kAutoNoiseBase
                                 ? stats_.messages
                                 : batch.noise_base;
  nn::SoftmaxCrossEntropy ce;

  // Availability mode: every message runs the full Fig. 1 data plane on a
  // FROZEN general-model replica — no slot creation, no cache touches, no
  // transaction buffering, no fine-tune, no sync. Worker slot 0 is safe:
  // degraded serving runs on the dispatcher's calling thread, never
  // inside a wave fan-out. The channel keeps the identity-keyed noise
  // fork, so a degraded wave is itself bit-reproducible.
  for (std::size_t i = 0; i < batch.messages.size(); ++i) {
    const text::Sentence& message = batch.messages[i];
    auto report = std::make_shared<TransmitReport>();
    report->degraded = true;
    report->domain_true = message.domain;
    const std::size_t m = config_.oracle_selection
                              ? message.domain
                              : selector_->select(message.surface);
    report->domain_selected = m;
    report->selection_correct = (m == message.domain);
    if (!report->selection_correct) ++stats_.selection_errors;

    semantic::SemanticCodec& codec = *serving_replicas_[m][0];
    const tensor::Tensor& features =
        codec.encoder().encode_batch(message.surface, 1);
    const std::vector<BitVec> payloads =
        quantizer_->quantize_batch(features, nullptr);
    std::vector<BitVec> received;
    if (cross_edge) {
      std::vector<Rng> rngs;
      rngs.push_back(rng_.fork(channel_fork_tag(base + i)));
      const std::uint64_t slot[] = {base + i};
      received = pipeline_->transmit_batch(payloads, rngs, slot);
    } else {
      received = payloads;
    }
    const tensor::Tensor rx_features =
        quantizer_->dequantize_batch(received, nullptr);
    const tensor::Tensor& rx_logits =
        codec.decoder().decode_logits_batch(rx_features);
    report->decoded_meanings = tensor::row_argmax(rx_logits, nullptr);
    report->token_accuracy =
        metrics::token_accuracy(message.meanings, report->decoded_meanings);
    report->exact = (report->decoded_meanings == message.meanings);
    report->payload_bytes = (payloads[0].size() + 7) / 8 + kHeaderBytes;
    if (cross_edge) {
      report->airtime_bits = pipeline_->code().encoded_length(payloads[0].size());
    }
    if (config_.decoder_copy_enabled) {
      // Encoder and decoder are the SAME frozen general here, trivially
      // in sync: the receiver logits ARE the decoder-copy logits.
      report->mismatch = ce.forward(rx_logits, message.meanings);
    } else {
      report->output_return_bytes =
          kHeaderBytes + kTokenBytes * report->decoded_meanings.size();
      report->mismatch = 1.0 - report->token_accuracy;
      stats_.output_return_bytes += report->output_return_bytes;
    }
    ++stats_.degraded_serves;
    stats_.feature_bytes += report->payload_bytes;
    schedule_delivery(sprofile, rprofile, m, message, report,
                      [on_done, i](TransmitReport r) { on_done(i, std::move(r)); });
  }
  stats_.messages += batch.messages.size();
}

void SemanticEdgeSystem::transmit_async(
    const std::string& sender, const std::string& receiver,
    text::Sentence message, std::function<void(TransmitReport)> on_done) {
  SEMCACHE_CHECK(on_done != nullptr, "transmit_async: null completion");
  std::vector<text::Sentence> batch;
  batch.push_back(std::move(message));
  transmit_many(sender, receiver, std::move(batch),
                [on_done = std::move(on_done)](std::size_t,
                                               TransmitReport report) {
                  on_done(std::move(report));
                });
}

}  // namespace semcache::core
