// The Fig. 1 end-to-end workflow.
//
// Structure note: the DATA plane (encode/quantize/channel/decode, mismatch,
// fine-tuning) is computed eagerly when transmit_async is called — its
// results do not depend on simulated time. The TIMING plane (uplink,
// compute queueing, backbone transfer, downlink, sync shipping) is a
// callback chain through the discrete-event simulator, so open-loop
// workloads (E7/E10) see real queueing contention. Weight updates therefore
// take effect in transmit-call order, which is deterministic.
#include "core/system.hpp"

#include "common/check.hpp"
#include "metrics/ngram.hpp"

namespace semcache::core {

namespace {
constexpr std::size_t kHeaderBytes = 8;  ///< per-message framing overhead
constexpr std::size_t kTokenBytes = 2;   ///< raw token id on device links

std::size_t raw_message_bytes(const text::Sentence& s) {
  return kHeaderBytes + kTokenBytes * s.surface.size();
}
}  // namespace

void SemanticEdgeSystem::run_update(const std::string& sender,
                                    std::size_t domain,
                                    EdgeServerState& sender_state,
                                    EdgeServerState& recv_state,
                                    TransmitReport& report) {
  UserModelSlot* sslot = sender_state.find_slot(sender, domain);
  SEMCACHE_CHECK(sslot != nullptr && sslot->buffer != nullptr,
                 "run_update: missing sender slot");

  // Fine-tune a scratch clone on the buffered transactions (§II-D: the
  // user-specialized encoder and decoder "start to be trained together
  // after enough collected data at b^m").
  auto scratch = sslot->model->clone();
  Rng ft_rng = rng_.fork(0xF17E ^ (sslot->send_version + 1));
  semantic::CodecTrainer::finetune(*scratch, sslot->buffer->samples(),
                                   config_.finetune_epochs,
                                   config_.finetune_lr, ft_rng,
                                   config_.pretrain.feature_noise,
                                   config_.finetune_batch_size);

  // Build the decoder sync message from pre/post snapshots.
  const std::vector<float> before =
      sslot->model->decoder().parameters().flatten_values();
  const std::vector<float> after =
      scratch->decoder().parameters().flatten_values();
  const fl::SyncMessage msg = synchronizer_->make_message(
      before, after, sender, static_cast<std::uint32_t>(domain),
      ++sslot->send_version);

  // Encoder adopts the exact fine-tuned weights (it lives only at the
  // sender edge); the decoder COPY applies the same lossy delta the
  // receiver will apply, so the replicas stay bit-identical.
  nn::ParameterSet senc = sslot->model->encoder().parameters();
  senc.copy_values_from(scratch->encoder().parameters());
  nn::ParameterSet sdec = sslot->model->decoder().parameters();
  synchronizer_->apply(sdec, msg);
  sslot->buffer->consume();

  report.triggered_update = true;
  report.sync_bytes = msg.byte_size();
  stats_.sync_bytes += msg.byte_size();
  ++stats_.updates;

  // Failure injection: the gradient message may be lost in transit. The
  // sender's replica already moved forward, so a loss opens a version gap
  // that the next delivered update must repair.
  if (config_.sync_loss_probability > 0.0) {
    Rng loss_rng = rng_.fork(0x10557 ^ (stats_.updates * 31ULL));
    if (loss_rng.bernoulli(config_.sync_loss_probability)) {
      ++stats_.sync_drops;
      return;
    }
  }

  // Ship the gradient to the receiver edge (④). Captures: recv_state lives
  // in a stable unique_ptr; msg copied into the closure. The snapshot of
  // the sender's post-update decoder rides along for gap recovery — on the
  // wire it would be fetched on demand, so its bytes are only charged when
  // a resync actually happens.
  const std::vector<float> snapshot =
      sslot->model->decoder().parameters().flatten_values();
  auto apply_at_receiver = [this, &recv_state, sender, domain, msg,
                            snapshot] {
    UserModelSlot* rslot = recv_state.find_slot(sender, domain);
    if (rslot == nullptr) return;  // receiver never saw this user; drop
    if (rslot->recv_version.advance(msg.version)) {
      nn::ParameterSet rdec = rslot->model->decoder().parameters();
      synchronizer_->apply(rdec, msg);
      ++rslot->updates_applied;
      return;
    }
    if (msg.version <= rslot->recv_version.current()) return;  // replay
    // Version gap: one or more updates were lost. Recover with a full
    // decoder-state transfer (bytes charged on the backbone).
    nn::ParameterSet rdec = rslot->model->decoder().parameters();
    rdec.unflatten_values(snapshot);
    rslot->recv_version.reset(msg.version);
    ++rslot->updates_applied;
    ++stats_.full_resyncs;
    stats_.resync_bytes += 4 * snapshot.size();
  };
  if (sender_state.index() == recv_state.index()) {
    apply_at_receiver();
  } else {
    topology_.net
        ->link(topology_.edges[sender_state.index()],
               topology_.edges[recv_state.index()])
        .send(sim_, msg.byte_size(), apply_at_receiver);
  }
}

void SemanticEdgeSystem::set_sync_loss_probability(double p) {
  SEMCACHE_CHECK(p >= 0.0 && p <= 1.0,
                 "sync_loss_probability must be in [0, 1]");
  config_.sync_loss_probability = p;
}

void SemanticEdgeSystem::transmit_async(
    const std::string& sender, const std::string& receiver,
    text::Sentence message, std::function<void(TransmitReport)> on_done) {
  SEMCACHE_CHECK(on_done != nullptr, "transmit_async: null completion");
  SEMCACHE_CHECK(message.surface.size() == config_.codec.sentence_length,
                 "transmit_async: message length must match codec window");
  const UserProfile& sprofile = user(sender);
  const UserProfile& rprofile = user(receiver);
  EdgeServerState& sstate = edge_state(sprofile.edge_index);
  EdgeServerState& rstate = edge_state(rprofile.edge_index);

  auto report = std::make_shared<TransmitReport>();
  report->domain_true = message.domain;

  // --- Model selection (§III-A). ---
  const std::size_t m = config_.oracle_selection
                            ? message.domain
                            : selector_->select(message.surface);
  report->domain_selected = m;
  report->selection_correct = (m == message.domain);
  if (!report->selection_correct) ++stats_.selection_errors;

  // --- General models through the edge caches (①). ---
  report->general_cache_hit = touch_general_cache(sstate, m);
  touch_general_cache(rstate, m);

  // --- User-specific slots (②): clone from the general model on first
  // contact. The receiver edge holds the decoder replica for this
  // (sender, domain) pair. ---
  report->established_user_model = (sstate.find_slot(sender, m) == nullptr);
  UserModelSlot& sslot =
      sstate.ensure_slot(sender, m, [&] { return clone_general(m); });
  if (sslot.buffer == nullptr) {
    // A trigger above the configured capacity means "never train" (the
    // frozen-general-model baseline); size the ring to match.
    sslot.buffer = std::make_unique<fl::DomainBuffer>(
        config_.buffer_trigger,
        std::max(config_.buffer_capacity, config_.buffer_trigger));
  }
  rstate.ensure_slot(sender, m, [&] { return clone_general(m); });
  UserModelSlot& rslot = *rstate.find_slot(sender, m);

  // ================= data plane (eager) =================
  // Batched entry point with count 1: same math as encode(), but keeps the
  // whole data plane on the allocation-free batch path (a future batched
  // transmit stacks N messages here). The reference is valid until this
  // encoder's next encode, which happens only after this block.
  const tensor::Tensor& feature =
      sslot.model->encoder().encode_batch(message.surface, 1);
  const BitVec payload = quantizer_->quantize(feature);

  BitVec received_bits = payload;
  const bool cross_edge = sprofile.edge_index != rprofile.edge_index;
  if (cross_edge) {
    Rng ch_rng = rng_.fork(0xC4A2 ^ (stats_.messages * 2654435761ULL));
    received_bits = pipeline_->transmit(payload, ch_rng);
    report->airtime_bits = pipeline_->code().encoded_length(payload.size());
  }

  const tensor::Tensor rx_feature = quantizer_->dequantize(received_bits);
  report->decoded_meanings = rslot.model->decoder().decode(rx_feature);
  report->token_accuracy =
      metrics::token_accuracy(message.meanings, report->decoded_meanings);
  report->exact = (report->decoded_meanings == message.meanings);
  report->payload_bytes = (payload.size() + 7) / 8 + kHeaderBytes;

  // --- Mismatch calculation (③). With the decoder copy the sender can
  // evaluate its own clean quantized feature locally; without it, the
  // receiver must return its decoded output ("sending the output back
  // would defeat the purpose", §II-C). ---
  if (config_.decoder_copy_enabled) {
    const tensor::Tensor clean = quantizer_->roundtrip(feature);
    const tensor::Tensor logits = sslot.model->decoder().decode_logits(clean);
    nn::SoftmaxCrossEntropy ce;
    report->mismatch = ce.forward(logits, message.meanings);
  } else {
    report->output_return_bytes =
        kHeaderBytes + kTokenBytes * report->decoded_meanings.size();
    stats_.output_return_bytes += report->output_return_bytes;
    // Error-rate proxy computed from the returned output.
    report->mismatch = 1.0 - report->token_accuracy;
  }
  sslot.buffer->add({message.surface, message.meanings}, report->mismatch);

  // --- Update trigger (④). ---
  if (sslot.buffer->ready()) {
    run_update(sender, m, sstate, rstate, *report);
  }

  stats_.feature_bytes += report->payload_bytes;
  ++stats_.messages;

  // ================= timing plane (event chain) =================
  const double start_time = sim_.now();
  const std::size_t up_bytes = raw_message_bytes(message);
  const std::size_t down_bytes =
      kHeaderBytes + kTokenBytes * report->decoded_meanings.size();
  stats_.uplink_bytes += up_bytes;
  stats_.downlink_bytes += down_bytes;

  edge::Network& net = *topology_.net;
  const double enc_flops =
      2.0 * static_cast<double>(sslot.model->encoder().parameters().scalar_count());
  const double dec_flops =
      2.0 * static_cast<double>(rslot.model->decoder().parameters().scalar_count());

  const edge::NodeId s_dev = sprofile.device;
  const edge::NodeId r_dev = rprofile.device;
  const edge::NodeId s_edge = topology_.edges[sprofile.edge_index];
  const edge::NodeId r_edge = topology_.edges[rprofile.edge_index];
  auto done = [this, report, on_done = std::move(on_done), start_time] {
    report->latency_s = sim_.now() - start_time;
    on_done(std::move(*report));
  };

  // Chain: uplink -> encode -> backbone -> decode -> downlink.
  const std::size_t payload_bytes = report->payload_bytes;
  auto downlink = [this, &net, r_edge, r_dev, down_bytes,
                   done = std::move(done)]() mutable {
    net.link(r_edge, r_dev).send(sim_, down_bytes, std::move(done));
  };
  auto decode = [this, &net, r_edge, dec_flops,
                 downlink = std::move(downlink)]() mutable {
    net.node(r_edge).submit_compute(sim_, dec_flops, std::move(downlink));
  };
  auto backbone = [this, &net, cross_edge, s_edge, r_edge, payload_bytes,
                   decode = std::move(decode)]() mutable {
    if (cross_edge) {
      net.link(s_edge, r_edge).send(sim_, payload_bytes, std::move(decode));
    } else {
      decode();
    }
  };
  auto encode = [this, &net, s_edge, enc_flops,
                 backbone = std::move(backbone)]() mutable {
    net.node(s_edge).submit_compute(sim_, enc_flops, std::move(backbone));
  };
  net.link(s_dev, s_edge).send(sim_, up_bytes, std::move(encode));
}

}  // namespace semcache::core
