// Per-edge-server state of the semantic caching model (Fig. 1):
//  ① a byte-capacity cache of domain-specialized general models — each
//    cached entry holds the encoder AND the decoder copy (§II-C);
//  ② user-specific individual model slots, one per (user, domain), each
//    with its transaction buffer b^m (③) and replica version bookkeeping.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "edge/node.hpp"
#include "fl/buffer.hpp"
#include "fl/sync.hpp"
#include "semantic/codec.hpp"

namespace semcache::core {

/// A user-domain-specialized model slot. At the SENDER edge the full codec
/// (encoder + decoder copy) lives here; at the RECEIVER edge only the
/// decoder half is consulted, kept in sync by gradient messages.
///
/// Copy-on-write: a fresh slot ALIASES the frozen general model
/// (owns_model == false) — establishing a user costs bytes, not a model
/// clone. The slot materializes a private clone only at the first weight
/// write (a fine-tune at the sender, a sync apply at the receiver), which
/// is what keeps per-user memory O(deltas) until a user actually trains
/// (the city-scale premise). Serving an aliased slot routes through the
/// system's per-worker serving replicas, never through the shared general
/// object (its forward passes use internal Workspace scratch and are not
/// concurrency-safe).
struct UserModelSlot {
  std::shared_ptr<semantic::SemanticCodec> model;
  bool owns_model = false;  ///< true once materialized (private clone)
  std::unique_ptr<fl::DomainBuffer> buffer;   // sender side only
  std::uint64_t send_version = 0;             // sender: last version produced
  fl::VersionVector recv_version;             // receiver: applied updates
  std::size_t updates_applied = 0;
};

class EdgeServerState {
 public:
  EdgeServerState(std::size_t index, edge::NodeId node,
                  std::size_t cache_capacity_bytes,
                  const std::string& cache_policy);

  std::size_t index() const { return index_; }
  edge::NodeId node() const { return node_; }

  cache::Cache<semantic::SemanticCodec>& general_cache() { return cache_; }

  /// Slot lookup; nullptr when absent.
  UserModelSlot* find_slot(const std::string& user, std::size_t domain);
  /// Create-or-get; `make` is invoked only on creation and typically hands
  /// back the shared general model (copy-on-write aliasing).
  UserModelSlot& ensure_slot(
      const std::string& user, std::size_t domain,
      const std::function<std::shared_ptr<semantic::SemanticCodec>()>& make);

  std::size_t slots_established() const { return established_; }
  std::size_t slot_count() const { return slots_.size(); }
  /// Bytes held by MATERIALIZED user-specific models (aliased slots cost
  /// nothing here; general-cache bytes are accounted by the cache).
  std::size_t user_model_bytes() const;
  /// Slots that have materialized a private model (copy-on-write fired).
  std::size_t materialized_models() const;
  /// All (user/domain, slot) entries, for accounting walks.
  const std::map<std::string, UserModelSlot>& slots() const { return slots_; }

 private:
  static std::string slot_key(const std::string& user, std::size_t domain);

  std::size_t index_;
  edge::NodeId node_;
  cache::Cache<semantic::SemanticCodec> cache_;
  std::map<std::string, UserModelSlot> slots_;
  std::size_t established_ = 0;
};

}  // namespace semcache::core
