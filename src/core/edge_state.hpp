// Per-edge-server state of the semantic caching model (Fig. 1):
//  ① a byte-capacity cache of domain-specialized general models — each
//    cached entry holds the encoder AND the decoder copy (§II-C);
//  ② user-specific individual model slots, one per (user, domain), each
//    with its transaction buffer b^m (③) and replica version bookkeeping.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "edge/node.hpp"
#include "fl/buffer.hpp"
#include "fl/sync.hpp"
#include "semantic/codec.hpp"

namespace semcache::core {

/// A user-domain-specialized model slot. At the SENDER edge the full codec
/// (encoder + decoder copy) lives here; at the RECEIVER edge only the
/// decoder half is consulted, kept in sync by gradient messages.
struct UserModelSlot {
  std::unique_ptr<semantic::SemanticCodec> model;
  std::unique_ptr<fl::DomainBuffer> buffer;   // sender side only
  std::uint64_t send_version = 0;             // sender: last version produced
  fl::VersionVector recv_version;             // receiver: applied updates
  std::size_t updates_applied = 0;
};

class EdgeServerState {
 public:
  EdgeServerState(std::size_t index, edge::NodeId node,
                  std::size_t cache_capacity_bytes,
                  const std::string& cache_policy);

  std::size_t index() const { return index_; }
  edge::NodeId node() const { return node_; }

  cache::Cache<semantic::SemanticCodec>& general_cache() { return cache_; }

  /// Slot lookup; nullptr when absent.
  UserModelSlot* find_slot(const std::string& user, std::size_t domain);
  /// Create-or-get; `make` is invoked only on creation.
  UserModelSlot& ensure_slot(
      const std::string& user, std::size_t domain,
      const std::function<std::unique_ptr<semantic::SemanticCodec>()>& make);

  std::size_t slots_established() const { return established_; }
  std::size_t slot_count() const { return slots_.size(); }
  /// Bytes held by user-specific models (not general-cache bytes).
  std::size_t user_model_bytes() const;

 private:
  static std::string slot_key(const std::string& user, std::size_t domain);

  std::size_t index_;
  edge::NodeId node_;
  cache::Cache<semantic::SemanticCodec> cache_;
  std::map<std::string, UserModelSlot> slots_;
  std::size_t established_ = 0;
};

}  // namespace semcache::core
