// ShardedEdgeServing — K independent SemanticEdgeSystem shards behind one
// deployment-wide view; the city-scale layer.
//
// The paper's premise is many users per edge sharing GENERAL models with
// tiny per-user fine-tune state. A single SemanticEdgeSystem already
// parallelizes inside one serving wave, but everything sequential (the
// selector, LRU cache order, the event loop) still funnels through one
// deployment. This layer scales OUT instead: users are hash-partitioned by
// sending user (common::shard_of, a stable FNV-1a hash — never std::hash,
// which is implementation-defined), and each shard owns a full system —
// its own thread pool, LRU caches, user-model slots, simulator, and
// SystemStats.
//
// Why sender-hash partitioning is exact, not approximate: every mutable
// serving object — slot, transaction buffer, fine-tune scratch, decoder
// replica — is keyed by (sending user, domain), so placing all of a
// sender's pairs on shard_of(sender) puts each piece of mutable state on
// exactly one shard. Shards are byte-identical deployments at build time
// (same config + seed → same world, same pretrained generals, same
// selector: Rng::fork is pure in (seed, tag)), user registration is
// replicated into every shard in the same order (profiles are directory
// bytes; the heavy state stays owner-only), and channel-noise forks are
// position-independent. The one global coordinate — the system-wide
// message index that seeds each message's channel-noise fork — is pinned
// per batch by the front door (PairBatch::noise_base), assigned in
// first-enqueue order from the deployment-wide counter here. Result: the
// K-shard data plane is byte-identical to the single-system reference for
// the same pair stream (test_sharded pins it for any K and any thread
// count).
//
// What is NOT identical across K: timing. Each shard has an independent
// simulator, so pairs that would contend on shared links/compute inside
// one system do not contend across shards — that decontention is the
// feature, and it only shows up in latency_s, never in decoded bytes,
// weights, or stats. (A K=1 deployment is timing-identical too.)
//
// The front door is core::ParallelDispatcher constructed over this class:
// enqueue routes to the owning shard, flush fans the shard waves out on
// one thread per busy shard and merges completions back into global pair
// order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hashing.hpp"
#include "core/system.hpp"

namespace semcache::core {

class ShardedEdgeServing {
 public:
  /// Build `num_shards` identical shards from one config. 0 — the default
  /// — resolves through the SEMCACHE_SHARDS environment variable, else 1.
  /// Every shard gets the same config and seed; per-shard resources
  /// (thread pools, caches) come from the config as usual, so a deployment
  /// with S shards of N threads runs S pools. Pretraining is repeated per
  /// shard (bit-identical results); point SEMCACHE_FIXTURE_DIR at a
  /// directory to pay it once and load K-1 times from the fixture cache.
  static std::unique_ptr<ShardedEdgeServing> build(SystemConfig config,
                                                   std::size_t num_shards = 0);

  std::size_t num_shards() const { return shards_.size(); }
  /// The ownership rule: all serving state for pairs SENT by `user`.
  std::size_t shard_of(std::string_view user) const {
    return common::shard_of(user, shards_.size());
  }
  SemanticEdgeSystem& shard(std::size_t index);
  SemanticEdgeSystem& owning_shard(const std::string& sender) {
    return *shards_[shard_of(sender)];
  }

  /// Register a user on every shard (same order → identical device ids and
  /// registration state everywhere). Profiles are directory bytes; slots,
  /// buffers, and materialized models only ever appear on the owning
  /// shard. Returns the owning shard's profile.
  const UserProfile& register_user(const std::string& name,
                                   std::size_t edge_index,
                                   const text::IdiolectConfig* idiolect_cfg);

  /// Sample as the user's OWNING shard would (its RNG stream advances).
  text::Sentence sample_message(const std::string& user, std::size_t domain);

  /// Claim `n` deployment-wide message indices (the channel-noise bases
  /// the front door pins into PairBatch::noise_base); returns the first.
  /// Serving through shards directly, without pinned bases, desyncs this
  /// counter from the shards' own — route waves through the dispatcher.
  std::uint64_t claim_noise_bases(std::uint64_t n) {
    const std::uint64_t base = noise_cursor_;
    noise_cursor_ += n;
    return base;
  }
  std::uint64_t messages_dispatched() const { return noise_cursor_; }

  /// Field-wise sum of every shard's stats — the one system-wide view.
  SystemStats stats() const;
  /// Deployment-wide memory audit (field-wise sum over shards).
  MemoryFootprint memory_footprint() const;

 private:
  explicit ShardedEdgeServing() = default;

  std::vector<std::unique_ptr<SemanticEdgeSystem>> shards_;
  std::uint64_t noise_cursor_ = 0;
};

}  // namespace semcache::core
