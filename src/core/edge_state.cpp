#include "core/edge_state.hpp"

#include "common/check.hpp"

namespace semcache::core {

EdgeServerState::EdgeServerState(std::size_t index, edge::NodeId node,
                                 std::size_t cache_capacity_bytes,
                                 const std::string& cache_policy)
    : index_(index),
      node_(node),
      cache_(cache_capacity_bytes, cache::make_policy(cache_policy)) {}

std::string EdgeServerState::slot_key(const std::string& user,
                                      std::size_t domain) {
  return user + "/" + std::to_string(domain);
}

UserModelSlot* EdgeServerState::find_slot(const std::string& user,
                                          std::size_t domain) {
  const auto it = slots_.find(slot_key(user, domain));
  return it == slots_.end() ? nullptr : &it->second;
}

UserModelSlot& EdgeServerState::ensure_slot(
    const std::string& user, std::size_t domain,
    const std::function<std::shared_ptr<semantic::SemanticCodec>()>& make) {
  const std::string key = slot_key(user, domain);
  const auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  UserModelSlot slot;
  slot.model = make();
  SEMCACHE_CHECK(slot.model != nullptr, "ensure_slot: factory returned null");
  auto [pos, inserted] = slots_.emplace(key, std::move(slot));
  SEMCACHE_CHECK(inserted, "ensure_slot: race on slot key");
  ++established_;
  return pos->second;
}

std::size_t EdgeServerState::user_model_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, slot] : slots_) {
    if (slot.owns_model && slot.model) total += slot.model->byte_size();
  }
  return total;
}

std::size_t EdgeServerState::materialized_models() const {
  std::size_t count = 0;
  for (const auto& [key, slot] : slots_) {
    if (slot.owns_model) ++count;
  }
  return count;
}

}  // namespace semcache::core
