#include "core/sharded.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace semcache::core {

namespace {
/// Largest shard count SEMCACHE_SHARDS accepts; each shard is a full
/// system (pool, caches, simulator), so a typo'd huge value would be a
/// resource bomb, not a deployment.
constexpr std::size_t kMaxEnvShards = 256;

std::size_t resolve_shard_count(std::size_t configured) {
  if (configured != 0) return configured;
  const char* env = std::getenv("SEMCACHE_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 1;  // garbage: ignore, like THREADS
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || value == 0 || value > kMaxEnvShards) {
    return 1;
  }
  return static_cast<std::size_t>(value);
}
}  // namespace

std::unique_ptr<ShardedEdgeServing> ShardedEdgeServing::build(
    SystemConfig config, std::size_t num_shards) {
  const std::size_t shards = resolve_shard_count(num_shards);
  // Not make_unique: the constructor is private.
  std::unique_ptr<ShardedEdgeServing> serving(new ShardedEdgeServing());
  serving->shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Same config and seed on purpose: shards must be byte-identical
    // deployments (worlds, generals, selectors) for sender-hash routing
    // to be exact. Per-shard divergence comes only from which pairs each
    // shard serves.
    serving->shards_.push_back(SemanticEdgeSystem::build(config));
  }
  return serving;
}

SemanticEdgeSystem& ShardedEdgeServing::shard(std::size_t index) {
  SEMCACHE_CHECK(index < shards_.size(), "shard: index out of range");
  return *shards_[index];
}

const UserProfile& ShardedEdgeServing::register_user(
    const std::string& name, std::size_t edge_index,
    const text::IdiolectConfig* idiolect_cfg) {
  const UserProfile* owned = nullptr;
  const std::size_t owner = shard_of(name);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const UserProfile& p =
        shards_[s]->register_user(name, edge_index, idiolect_cfg);
    if (s == owner) owned = &p;
  }
  return *owned;
}

text::Sentence ShardedEdgeServing::sample_message(const std::string& user,
                                                  std::size_t domain) {
  return owning_shard(user).sample_message(user, domain);
}

SystemStats ShardedEdgeServing::stats() const {
  SystemStats total;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

MemoryFootprint ShardedEdgeServing::memory_footprint() const {
  MemoryFootprint total;
  for (const auto& shard : shards_) total += shard->memory_footprint();
  return total;
}

}  // namespace semcache::core
