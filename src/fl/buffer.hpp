// Domain transaction buffer b^m (Fig. 1, step ③).
//
// After each communication the sender edge runs its DECODER COPY on the
// transmitted features, measures the mismatch against the original message
// (possible locally precisely because the decoder is replicated, §II-C),
// and stores the transaction here. When enough data accumulates, the
// user-specific model is (re)trained from the buffer (§II-D).
#pragma once

#include <span>
#include <vector>

#include "semantic/trainer.hpp"

namespace semcache::fl {

class DomainBuffer {
 public:
  /// `trigger` = samples needed before training; `capacity` = ring size.
  DomainBuffer(std::size_t trigger, std::size_t capacity);

  /// Record a transaction with its locally computed mismatch (loss).
  void add(semantic::Sample sample, double mismatch);

  /// True when at least `trigger` samples have accumulated since the last
  /// consume().
  bool ready() const;
  /// Samples currently buffered (oldest first).
  std::span<const semantic::Sample> samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  std::size_t trigger() const { return trigger_; }
  /// Further add() calls until ready() turns true (0 = already ready).
  /// Lets the batched transmit path split a message group at the exact
  /// points where the sequential path would fine-tune.
  std::size_t adds_until_ready() const {
    return since_consume_ >= trigger_ ? 0 : trigger_ - since_consume_;
  }
  double mean_mismatch() const;

  /// Mark the buffered data as consumed by a training round; keeps the
  /// samples (they remain valid fine-tuning data) but re-arms the trigger.
  void consume();
  void clear();

  std::size_t total_added() const { return total_added_; }

 private:
  std::size_t trigger_;
  std::size_t capacity_;
  std::vector<semantic::Sample> samples_;
  std::vector<double> mismatches_;
  std::size_t since_consume_ = 0;
  std::size_t total_added_ = 0;
};

}  // namespace semcache::fl
