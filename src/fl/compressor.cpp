#include "fl/compressor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::fl {

namespace {
// LEB128 varint: sorted index lists compress to ~1 byte per entry when
// encoded as first-difference deltas.
void write_varint(ByteWriter& w, std::uint32_t v) {
  while (v >= 0x80) {
    w.write_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.write_u8(static_cast<std::uint8_t>(v));
}

std::uint32_t read_varint(ByteReader& r) {
  std::uint32_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = r.read_u8();
    v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    SEMCACHE_CHECK(shift < 35, "varint too long");
  }
  return v;
}
}  // namespace

void CompressedDelta::serialize(ByteWriter& w) const {
  w.write_u32(total_dims);
  w.write_f32(scale);
  w.write_u8(static_cast<std::uint8_t>(bits));
  w.write_u32(static_cast<std::uint32_t>(indices.size()));
  // Indices are sorted ascending: store first-difference varints.
  std::uint32_t prev = 0;
  for (const auto i : indices) {
    SEMCACHE_CHECK(i >= prev, "CompressedDelta: indices must be sorted");
    write_varint(w, i - prev);
    prev = i;
  }
  if (bits == 32) {
    w.write_f32_vector(dense_values);
  } else {
    w.write_u32(static_cast<std::uint32_t>(q_values.size()));
    for (const auto v : q_values) {
      if (bits == 8) {
        w.write_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(v)));
      } else {
        w.write_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(v)));
      }
    }
  }
}

CompressedDelta CompressedDelta::deserialize(ByteReader& r) {
  CompressedDelta c;
  c.total_dims = r.read_u32();
  c.scale = r.read_f32();
  c.bits = r.read_u8();
  SEMCACHE_CHECK(c.bits == 8 || c.bits == 16 || c.bits == 32,
                 "CompressedDelta: bad bit width");
  const std::uint32_t idx_count = r.read_u32();
  // Untrusted count: every index occupies at least one varint byte, so a
  // count beyond the remaining bytes is malformed — check BEFORE reserving
  // (a garbage u32 must not turn into a multi-gigabyte allocation).
  SEMCACHE_CHECK(idx_count <= r.remaining(),
                 "CompressedDelta: index count exceeds payload");
  c.indices.reserve(idx_count);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < idx_count; ++i) {
    prev += read_varint(r);
    c.indices.push_back(prev);
  }
  SEMCACHE_CHECK(c.indices.empty() || c.indices.back() < c.total_dims,
                 "CompressedDelta: index out of range");
  if (c.bits == 32) {
    c.dense_values = r.read_f32_vector();
  } else {
    const std::uint32_t n = r.read_u32();
    SEMCACHE_CHECK(static_cast<std::size_t>(n) * (c.bits == 8 ? 1 : 2) <=
                       r.remaining(),
                   "CompressedDelta: value count exceeds payload");
    c.q_values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (c.bits == 8) {
        c.q_values.push_back(static_cast<std::int8_t>(r.read_u8()));
      } else {
        c.q_values.push_back(static_cast<std::int16_t>(r.read_u16()));
      }
    }
  }
  // A sparse message carries one value per index; a dense one (no index
  // list) covers every dimension. Anything else would either fail or
  // over-allocate in decompress — reject it at the wire.
  const std::size_t count =
      c.bits == 32 ? c.dense_values.size() : c.q_values.size();
  SEMCACHE_CHECK(count == c.indices.size() || count == c.total_dims,
                 "CompressedDelta: value/index count mismatch");
  return c;
}

std::size_t CompressedDelta::byte_size() const {
  ByteWriter w;
  serialize(w);
  return w.size();
}

DeltaCompressor::DeltaCompressor(const CompressionConfig& config)
    : config_(config) {
  SEMCACHE_CHECK(config.top_k_fraction > 0.0 && config.top_k_fraction <= 1.0,
                 "compressor: top_k_fraction must be in (0, 1]");
  SEMCACHE_CHECK(config.bits == 8 || config.bits == 16 || config.bits == 32,
                 "compressor: bits must be 8, 16 or 32");
}

CompressedDelta DeltaCompressor::compress(std::span<const float> delta) const {
  CompressedDelta c;
  c.total_dims = static_cast<std::uint32_t>(delta.size());
  c.bits = config_.bits;

  // Select the surviving coordinates.
  std::vector<std::uint32_t> selected;
  if (config_.top_k_fraction >= 1.0) {
    selected.resize(delta.size());
    for (std::uint32_t i = 0; i < delta.size(); ++i) selected[i] = i;
  } else {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               config_.top_k_fraction * static_cast<double>(delta.size()))));
    std::vector<std::uint32_t> order(delta.size());
    for (std::uint32_t i = 0; i < delta.size(); ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order.end(), [&](std::uint32_t a, std::uint32_t b) {
                       return std::abs(delta[a]) > std::abs(delta[b]);
                     });
    order.resize(k);
    std::sort(order.begin(), order.end());
    selected = std::move(order);
    c.indices = selected;
  }

  if (config_.bits == 32) {
    c.dense_values.reserve(selected.size());
    for (const auto i : selected) c.dense_values.push_back(delta[i]);
    return c;
  }

  // Symmetric quantization of the surviving values.
  float max_abs = 0.0f;
  for (const auto i : selected) max_abs = std::max(max_abs, std::abs(delta[i]));
  const std::int32_t qmax = config_.bits == 8 ? 127 : 32767;
  c.scale = max_abs > 0.0f ? max_abs / static_cast<float>(qmax) : 1.0f;
  c.q_values.reserve(selected.size());
  for (const auto i : selected) {
    const auto q = static_cast<std::int32_t>(
        std::lround(delta[i] / c.scale));
    c.q_values.push_back(std::clamp(q, -qmax, qmax));
  }
  return c;
}

std::vector<float> DeltaCompressor::decompress(const CompressedDelta& c) const {
  std::vector<float> out(c.total_dims, 0.0f);
  const bool sparse = !c.indices.empty();
  const std::size_t count =
      c.bits == 32 ? c.dense_values.size() : c.q_values.size();
  SEMCACHE_CHECK(!sparse || c.indices.size() == count,
                 "decompress: index/value count mismatch");
  SEMCACHE_CHECK(sparse || count == c.total_dims,
                 "decompress: dense count mismatch");
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = sparse ? c.indices[j] : j;
    SEMCACHE_CHECK(i < out.size(), "decompress: index out of range");
    out[i] = c.bits == 32
                 ? c.dense_values[j]
                 : static_cast<float>(c.q_values[j]) * c.scale;
  }
  return out;
}

}  // namespace semcache::fl
