// Decoder replica synchronization (Fig. 1, step ④).
//
// After a fine-tuning round at the sender edge, the decoder's weight delta
// is compressed and shipped to the receiver edge — "similar to the update
// process in traditional Federated Learning" (§II-D). Consistency contract:
// BOTH replicas apply the same DECOMPRESSED delta, so lossy compression
// never causes divergence — the sender's decoder copy is always bit-
// identical to the receiver's decoder (verified by tests and the E10
// ablation).
#pragma once

#include <cstdint>
#include <string>

#include "fl/compressor.hpp"
#include "nn/model.hpp"

namespace semcache::fl {

/// One sync message on the wire.
struct SyncMessage {
  std::string user;
  std::uint32_t domain = 0;
  std::uint64_t version = 0;  ///< sender's model version after this update
  CompressedDelta delta;

  std::vector<std::uint8_t> to_bytes() const;
  /// Parse a payload image. Hardened against truncated/garbage input:
  /// every read is bounds-checked and every count is validated against the
  /// bytes actually present, so malformed input throws semcache::Error —
  /// never UB, never an unbounded allocation (test_fl fuzzes this).
  static SyncMessage from_bytes(std::span<const std::uint8_t> bytes);
  std::size_t byte_size() const;

  /// Wire framing: payload (to_bytes) followed by its CRC-32, LE u32.
  /// Corruption in transit is detected at the receiver by from_wire, which
  /// throws semcache::Error on a CRC mismatch (the retry path's clean-drop
  /// signal) as well as on any malformed payload.
  std::vector<std::uint8_t> to_wire() const;
  static SyncMessage from_wire(std::span<const std::uint8_t> bytes);
  /// byte_size() plus the CRC trailer.
  std::size_t wire_byte_size() const { return byte_size() + 4; }
};

class ModelSynchronizer {
 public:
  explicit ModelSynchronizer(const CompressionConfig& config);

  /// Build a sync message from pre/post fine-tuning snapshots of the
  /// decoder parameters. IMPORTANT: the caller must then roll its own
  /// replica forward with apply() (not keep the raw fine-tuned weights) so
  /// both ends see the identical lossy delta.
  SyncMessage make_message(std::span<const float> before,
                           std::span<const float> after,
                           const std::string& user, std::uint32_t domain,
                           std::uint64_t version) const;

  /// Apply a received message to a replica's parameters.
  void apply(nn::ParameterSet& params, const SyncMessage& message) const;

  /// Residual error between the true delta and its compressed form
  /// (L2 norm), for the E9 fidelity-vs-bytes tradeoff.
  double compression_residual(std::span<const float> before,
                              std::span<const float> after) const;

  const DeltaCompressor& compressor() const { return compressor_; }

 private:
  DeltaCompressor compressor_;
};

/// Monotonic model version tracker; detects lost or replayed updates.
class VersionVector {
 public:
  /// Returns false (and ignores the update) unless version == current + 1.
  bool advance(std::uint64_t version);
  /// Force the version after a full-state resync (gap recovery).
  void reset(std::uint64_t version) { current_ = version; }
  std::uint64_t current() const { return current_; }
  std::size_t rejected() const { return rejected_; }

 private:
  std::uint64_t current_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace semcache::fl
