// Gradient/delta compression for the decoder sync of §II-D.
//
// The update transmitted to the receiver edge is a weight delta (the
// accumulated gradient of the user decoder). Two orthogonal knobs, ablated
// in E9:
//  * top-k sparsification: keep only the largest-|value| fraction;
//  * quantization: 32-bit raw floats, or symmetric int8/int16.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"

namespace semcache::fl {

struct CompressionConfig {
  double top_k_fraction = 1.0;  ///< in (0, 1]; 1.0 = dense
  unsigned bits = 32;           ///< 8, 16, or 32
};

/// Wire form of a compressed delta. byte_size() is exactly what the
/// simulated network charges for the sync message payload.
struct CompressedDelta {
  std::uint32_t total_dims = 0;
  float scale = 1.0f;                   ///< quantization scale (ignored @32)
  unsigned bits = 32;
  std::vector<std::uint32_t> indices;   ///< empty when dense
  std::vector<float> dense_values;      ///< used when bits == 32
  std::vector<std::int32_t> q_values;   ///< used when bits < 32

  void serialize(ByteWriter& w) const;
  static CompressedDelta deserialize(ByteReader& r);
  std::size_t byte_size() const;
};

class DeltaCompressor {
 public:
  explicit DeltaCompressor(const CompressionConfig& config);

  CompressedDelta compress(std::span<const float> delta) const;
  /// Reconstruct a full-size delta vector (zeros where sparsified).
  std::vector<float> decompress(const CompressedDelta& c) const;

  const CompressionConfig& config() const { return config_; }

 private:
  CompressionConfig config_;
};

}  // namespace semcache::fl
