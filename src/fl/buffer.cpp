#include "fl/buffer.hpp"

#include "common/check.hpp"

namespace semcache::fl {

DomainBuffer::DomainBuffer(std::size_t trigger, std::size_t capacity)
    : trigger_(trigger), capacity_(capacity) {
  SEMCACHE_CHECK(trigger >= 1, "DomainBuffer: trigger must be >= 1");
  SEMCACHE_CHECK(capacity >= trigger,
                 "DomainBuffer: capacity must be >= trigger");
}

void DomainBuffer::add(semantic::Sample sample, double mismatch) {
  if (samples_.size() == capacity_) {
    samples_.erase(samples_.begin());
    mismatches_.erase(mismatches_.begin());
  }
  samples_.push_back(std::move(sample));
  mismatches_.push_back(mismatch);
  ++since_consume_;
  ++total_added_;
}

bool DomainBuffer::ready() const { return since_consume_ >= trigger_; }

double DomainBuffer::mean_mismatch() const {
  if (mismatches_.empty()) return 0.0;
  double sum = 0.0;
  for (const double m : mismatches_) sum += m;
  return sum / static_cast<double>(mismatches_.size());
}

void DomainBuffer::consume() { since_consume_ = 0; }

void DomainBuffer::clear() {
  samples_.clear();
  mismatches_.clear();
  since_consume_ = 0;
}

}  // namespace semcache::fl
