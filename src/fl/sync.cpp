#include "fl/sync.hpp"

#include <cmath>

#include "common/check.hpp"

namespace semcache::fl {

std::vector<std::uint8_t> SyncMessage::to_bytes() const {
  ByteWriter w;
  w.write_string(user);
  w.write_u32(domain);
  w.write_u64(version);
  delta.serialize(w);
  return w.bytes();
}

SyncMessage SyncMessage::from_bytes(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  SyncMessage m;
  m.user = r.read_string();
  m.domain = r.read_u32();
  m.version = r.read_u64();
  m.delta = CompressedDelta::deserialize(r);
  SEMCACHE_CHECK(r.exhausted(), "SyncMessage: trailing bytes");
  return m;
}

std::size_t SyncMessage::byte_size() const { return to_bytes().size(); }

ModelSynchronizer::ModelSynchronizer(const CompressionConfig& config)
    : compressor_(config) {}

SyncMessage ModelSynchronizer::make_message(std::span<const float> before,
                                            std::span<const float> after,
                                            const std::string& user,
                                            std::uint32_t domain,
                                            std::uint64_t version) const {
  SEMCACHE_CHECK(before.size() == after.size(),
                 "make_message: snapshot size mismatch");
  std::vector<float> delta(before.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = after[i] - before[i];
  }
  SyncMessage m;
  m.user = user;
  m.domain = domain;
  m.version = version;
  m.delta = compressor_.compress(delta);
  return m;
}

void ModelSynchronizer::apply(nn::ParameterSet& params,
                              const SyncMessage& message) const {
  const std::vector<float> delta = compressor_.decompress(message.delta);
  params.apply_delta(delta);
}

double ModelSynchronizer::compression_residual(
    std::span<const float> before, std::span<const float> after) const {
  SEMCACHE_CHECK(before.size() == after.size(),
                 "compression_residual: size mismatch");
  std::vector<float> delta(before.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = after[i] - before[i];
  }
  const auto reconstructed =
      compressor_.decompress(compressor_.compress(delta));
  double sq = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double d = static_cast<double>(delta[i]) - reconstructed[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

bool VersionVector::advance(std::uint64_t version) {
  if (version != current_ + 1) {
    ++rejected_;
    return false;
  }
  current_ = version;
  return true;
}

}  // namespace semcache::fl
