#include "fl/sync.hpp"

#include <cmath>

#include "channel/crc.hpp"
#include "common/check.hpp"

namespace semcache::fl {

std::vector<std::uint8_t> SyncMessage::to_bytes() const {
  ByteWriter w;
  w.write_string(user);
  w.write_u32(domain);
  w.write_u64(version);
  delta.serialize(w);
  return w.bytes();
}

SyncMessage SyncMessage::from_bytes(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  SyncMessage m;
  m.user = r.read_string();
  m.domain = r.read_u32();
  m.version = r.read_u64();
  m.delta = CompressedDelta::deserialize(r);
  SEMCACHE_CHECK(r.exhausted(), "SyncMessage: trailing bytes");
  return m;
}

std::size_t SyncMessage::byte_size() const { return to_bytes().size(); }

std::vector<std::uint8_t> SyncMessage::to_wire() const {
  std::vector<std::uint8_t> wire = to_bytes();
  const std::uint32_t crc = channel::crc32(wire);
  for (std::size_t i = 0; i < 4; ++i) {
    wire.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF));
  }
  return wire;
}

SyncMessage SyncMessage::from_wire(std::span<const std::uint8_t> bytes) {
  SEMCACHE_CHECK(bytes.size() >= 4, "SyncMessage: wire image too short");
  const std::span<const std::uint8_t> payload =
      bytes.subspan(0, bytes.size() - 4);
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  SEMCACHE_CHECK(channel::crc32(payload) == crc,
                 "SyncMessage: CRC mismatch (corrupted in transit)");
  return from_bytes(payload);
}

ModelSynchronizer::ModelSynchronizer(const CompressionConfig& config)
    : compressor_(config) {}

SyncMessage ModelSynchronizer::make_message(std::span<const float> before,
                                            std::span<const float> after,
                                            const std::string& user,
                                            std::uint32_t domain,
                                            std::uint64_t version) const {
  SEMCACHE_CHECK(before.size() == after.size(),
                 "make_message: snapshot size mismatch");
  std::vector<float> delta(before.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = after[i] - before[i];
  }
  SyncMessage m;
  m.user = user;
  m.domain = domain;
  m.version = version;
  m.delta = compressor_.compress(delta);
  return m;
}

void ModelSynchronizer::apply(nn::ParameterSet& params,
                              const SyncMessage& message) const {
  const std::vector<float> delta = compressor_.decompress(message.delta);
  params.apply_delta(delta);
}

double ModelSynchronizer::compression_residual(
    std::span<const float> before, std::span<const float> after) const {
  SEMCACHE_CHECK(before.size() == after.size(),
                 "compression_residual: size mismatch");
  std::vector<float> delta(before.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = after[i] - before[i];
  }
  const auto reconstructed =
      compressor_.decompress(compressor_.compress(delta));
  double sq = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double d = static_cast<double>(delta[i]) - reconstructed[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

bool VersionVector::advance(std::uint64_t version) {
  if (version != current_ + 1) {
    ++rejected_;
    return false;
  }
  current_ = version;
  return true;
}

}  // namespace semcache::fl
