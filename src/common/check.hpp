// Always-on contract checking and the library-wide error type.
//
// Per C++ Core Guidelines E.2/I.6 we signal contract violations at public API
// boundaries with exceptions carrying a formatted message; checks stay
// enabled in release builds because every caller of this library is either a
// test, a bench, or a simulation driver where silent corruption is worse
// than the branch cost.
#pragma once

#include <stdexcept>
#include <string>

namespace semcache {

/// Root exception for all semcache-reported failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

/// SEMCACHE_CHECK(cond, "message") — throws semcache::Error when cond is
/// false. `msg` may use string concatenation; it is only evaluated on
/// failure.
#define SEMCACHE_CHECK(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::semcache::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

}  // namespace semcache
