// Minimal binary serialization used for model snapshots, cache sizing, and
// gradient wire formats. Little-endian, fixed-width, no alignment padding —
// the byte count of a serialized object is exactly what the simulated
// network charges for transmitting it.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace semcache {

/// Append-only byte sink.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_bytes(std::span<const std::uint8_t> bytes);
  void write_string(const std::string& s);
  void write_f32_vector(std::span<const float> v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte buffer; throws semcache::Error on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::vector<std::uint8_t> read_bytes(std::size_t n);
  std::string read_string();
  std::vector<float> read_f32_vector();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace semcache
