#include "common/bits.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace semcache {

BitVec bytes_to_bits(std::span<const std::uint8_t> bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t b : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(const BitVec& bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    SEMCACHE_CHECK(bits[i] <= 1, "bits_to_bytes: element is not 0/1");
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

std::size_t hamming_distance(const BitVec& a, const BitVec& b) {
  const std::size_t overlap = std::min(a.size(), b.size());
  std::size_t d = std::max(a.size(), b.size()) - overlap;
  for (std::size_t i = 0; i < overlap; ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

void append_bits(BitVec& bits, std::uint64_t value, std::size_t count) {
  SEMCACHE_CHECK(count <= 64, "append_bits: count must be <= 64");
  for (std::size_t i = 0; i < count; ++i) {
    bits.push_back(static_cast<std::uint8_t>((value >> i) & 1));
  }
}

std::uint64_t read_bits(const BitVec& bits, std::size_t& pos,
                        std::size_t count) {
  SEMCACHE_CHECK(count <= 64, "read_bits: count must be <= 64");
  SEMCACHE_CHECK(pos + count <= bits.size(), "read_bits: out of range");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i) {
    v |= static_cast<std::uint64_t>(bits[pos + i] & 1) << i;
  }
  pos += count;
  return v;
}

}  // namespace semcache
