#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>

namespace semcache::common {

namespace {
std::mutex g_mutex;
std::unordered_set<std::string> g_seen;
std::optional<LogLevel> g_level;

LogLevel parse_level() {
  const char* raw = std::getenv("SEMCACHE_LOG_LEVEL");
  if (raw == nullptr) return LogLevel::kWarn;
  const std::string_view v(raw);
  if (v == "silent" || v == "0") return LogLevel::kSilent;
  if (v == "info" || v == "2") return LogLevel::kInfo;
  // "warn", "1", and anything unrecognized: a typo must not mute warnings.
  return LogLevel::kWarn;
}
}  // namespace

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_level) g_level = parse_level();
  return *g_level;
}

bool log_once(std::string_view key, std::string_view message, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_level) g_level = parse_level();
  if (static_cast<int>(level) > static_cast<int>(*g_level)) return false;
  if (!g_seen.emplace(key).second) return false;
  std::fprintf(stderr, "semcache: %.*s\n", static_cast<int>(message.size()),
               message.data());
  return true;
}

void log_reset_for_tests() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_seen.clear();
  g_level.reset();
}

}  // namespace semcache::common
