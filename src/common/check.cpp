#include "common/check.hpp"

#include <sstream>

namespace semcache::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "SEMCACHE_CHECK failed: (" << expr << ") at " << file << ":" << line
     << " — " << msg;
  throw Error(os.str());
}

}  // namespace semcache::detail
