#include "common/rng.hpp"

#include "common/check.hpp"

namespace semcache {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Run the seed through splitmix64 so that adjacent seeds (0, 1, 2, ...)
  // produce uncorrelated mt19937_64 states.
  std::uint64_t s = seed;
  const std::uint64_t mixed = splitmix64(s);
  engine_.seed(mixed);
}

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t s = seed_ ^ (tag * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(splitmix64(s));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  SEMCACHE_CHECK(lo <= hi, "uniform: lo must not exceed hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SEMCACHE_CHECK(lo <= hi, "uniform_int: lo must not exceed hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  SEMCACHE_CHECK(stddev >= 0.0, "gaussian: stddev must be non-negative");
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  SEMCACHE_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0, 1]");
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  SEMCACHE_CHECK(!weights.empty(), "categorical: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    SEMCACHE_CHECK(w >= 0.0, "categorical: weights must be non-negative");
    total += w;
  }
  SEMCACHE_CHECK(total > 0.0, "categorical: weights must not all be zero");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bin.
}

}  // namespace semcache
