// Bit-vector helpers shared by the feature quantizer and the channel stack.
// A BitVec stores one bit per element (value 0 or 1) — wasteful in memory
// but unambiguous, which matters when splicing coded blocks, interleavers,
// and modulation symbol groups together.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace semcache {

using BitVec = std::vector<std::uint8_t>;  // each element is 0 or 1

/// LSB-first expansion of bytes into bits.
BitVec bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Inverse of bytes_to_bits; the bit count is padded with zeros to a
/// multiple of 8.
std::vector<std::uint8_t> bits_to_bytes(const BitVec& bits);

/// Number of positions where the two vectors differ (they may have
/// different lengths; extra positions count as errors).
std::size_t hamming_distance(const BitVec& a, const BitVec& b);

/// Append `count` bits of `value`, LSB first.
void append_bits(BitVec& bits, std::uint64_t value, std::size_t count);

/// Read `count` bits starting at `pos` (LSB first); advances pos.
std::uint64_t read_bits(const BitVec& bits, std::size_t& pos,
                        std::size_t count);

}  // namespace semcache
