// Deterministic worker pool for the data-plane hot paths.
//
// parallel_for(count, body) fans body(index, worker_slot) out over a fixed
// set of worker threads and blocks until every index has run. The
// determinism contract that lets the threaded serving paths stay
// bit-identical to the sequential ones:
//
//  * body(i, slot) may write only state owned by index i (its own output
//    slot) or by the executing worker (slot-indexed scratch, e.g. a
//    tensor::Workspace clone per worker). Because output slots are
//    disjoint, the computed values are independent of scheduling and of
//    the worker count.
//  * Anything order-sensitive — stats accumulation, buffer mutation, RNG
//    stream consumption from a shared generator — happens on the calling
//    thread, either before the fan-out (e.g. forking one Rng per index in
//    index order) or after parallel_for returns (committing per-index
//    results in ascending index order).
//
// Exceptions thrown by body are captured per index; after the join the
// LOWEST-index exception is rethrown on the caller, matching what a
// sequential loop would have thrown first (later indices still run — the
// pool never short-circuits, so side-effect-free bodies stay deterministic
// even on the error path). Calling parallel_for from inside a pool worker
// (any pool) throws instead of deadlocking.
//
// A pool built with zero workers spawns no threads: parallel_for degrades
// to an inline caller-thread loop with worker_slot 0, bit-identical to the
// threaded execution by the contract above. SystemConfig::num_threads = 0
// rides this path, so the default build never touches std::thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace semcache::common {

class ThreadPool {
 public:
  /// body(index, worker_slot): worker_slot < max(1, worker_count()) names
  /// the executing lane, for per-worker scratch.
  using Body = std::function<void(std::size_t index, std::size_t worker_slot)>;

  /// Spawns `workers` threads; 0 = inline mode (no threads, see above).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Run body for every index in [0, count); returns after all complete.
  /// count <= 1 and worker_count() == 0 execute inline on the caller.
  void parallel_for(std::size_t count, const Body& body);

  /// True while the calling thread is a pool worker executing a body (the
  /// state parallel_for uses to reject nested fan-out).
  static bool on_worker_thread();

  /// The calling thread's worker slot: its fixed lane index when it is a
  /// pool worker, 0 otherwise (the same value body(index, worker_slot)
  /// receives). Because slots are exclusive while a fan-out runs, code deep
  /// inside a body can index slot-owned scratch through this without the
  /// slot being threaded through every signature.
  static std::size_t current_worker_slot();

 private:
  /// One fan-out's shared state. Heap-anchored behind a shared_ptr so a
  /// worker that wakes late (after the caller already returned) still reads
  /// valid memory, finds no index left, and goes back to sleep.
  struct Job {
    Job(Body b, std::size_t n) : body(std::move(b)), count(n) {
      errors.resize(n);
    }
    Body body;
    std::size_t count;
    std::mutex next_mu;            // index dispatch + error store
    std::size_t next = 0;
    std::size_t completed = 0;
    std::vector<std::exception_ptr> errors;
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;
  };

  void worker_main(std::size_t slot);
  static void run_job(Job& job, std::size_t slot);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Run body(index, worker_slot) over [0, count): on the pool when one is
/// attached and there is real fan-out to do, inline on the caller (slot 0)
/// otherwise. This is the one engagement predicate every pooled call site
/// shares; the template keeps the ubiquitous null-pool path free of
/// std::function construction, which parallel_for's signature would pay
/// even for its internal inline fallback.
///
/// Nested engagement: when the caller is ITSELF a pool worker (a
/// cross-pair serving task, say, reaching a row-partitioned kernel whose
/// model still holds the system pool), the fan-out degrades to the inline
/// loop instead of tripping parallel_for's nested-fan-out rejection. The
/// caller already owns a full worker, and inline execution is
/// bit-identical to pooled execution by the disjoint-writes contract, so
/// this is purely a scheduling choice.
template <typename Fn>
void parallel_for_or_inline(ThreadPool* pool, std::size_t count,
                            const Fn& body) {
  if (pool != nullptr && pool->worker_count() > 0 && count > 1 &&
      !ThreadPool::on_worker_thread()) {
    pool->parallel_for(count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i, std::size_t{0});
  }
}

/// Largest worker count resolve_thread_count accepts from the
/// environment; anything above it (or non-numeric, including negatives)
/// is ignored as garbage rather than spawning a runaway thread herd.
inline constexpr std::size_t kMaxEnvThreads = 256;

/// Resolve the effective worker count: when `configured` is 0 (the
/// sequential default) and the SEMCACHE_THREADS environment variable holds
/// a plain decimal integer in [0, kMaxEnvThreads], the env value wins —
/// benches and the TSan CI job use it to thread default-configured
/// systems without code changes. An explicit non-zero `configured` always
/// wins over the environment; unparseable env values are ignored.
std::size_t resolve_thread_count(std::size_t configured);

}  // namespace semcache::common
