// First-appearance grouping — the one partition shape the serving and
// simulation layers keep needing: batch messages by selected domain,
// wave pairs into lanes by sending user, concurrent events into lanes by
// key. Groups appear in the order their key is first seen and preserve
// the original index order inside each group, which is exactly what the
// determinism contracts lean on (commit order == first-appearance order
// == the order a sequential loop would discover the keys).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace semcache::common {

template <typename Key>
struct Grouped {
  std::vector<Key> keys;  ///< keys[g] is the shared key of groups[g]
  std::vector<std::vector<std::size_t>> groups;
};

/// Partition indices [0, count) into groups keyed by key_of(i). Linear
/// scan over the keys seen so far: serving-layer group counts (domains,
/// senders, lanes) are tiny, so this beats hashing and keeps the
/// first-appearance order free.
template <typename KeyFn>
auto group_by_first_appearance(std::size_t count, const KeyFn& key_of) {
  using Key = std::decay_t<decltype(key_of(std::size_t{0}))>;
  Grouped<Key> out;
  for (std::size_t i = 0; i < count; ++i) {
    decltype(auto) key = key_of(i);
    std::size_t g = 0;
    while (g < out.keys.size() && !(out.keys[g] == key)) ++g;
    if (g == out.keys.size()) {
      out.keys.push_back(std::forward<decltype(key)>(key));
      out.groups.emplace_back();
    }
    out.groups[g].push_back(i);
  }
  return out;
}

}  // namespace semcache::common
