// First-appearance grouping — the one partition shape the serving and
// simulation layers keep needing: batch messages by selected domain,
// wave pairs into lanes by sending user, concurrent events into lanes by
// key. Groups appear in the order their key is first seen and preserve
// the original index order inside each group, which is exactly what the
// determinism contracts lean on (commit order == first-appearance order
// == the order a sequential loop would discover the keys).
#pragma once

#include <cstddef>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace semcache::common {

template <typename Key>
struct Grouped {
  std::vector<Key> keys;  ///< keys[g] is the shared key of groups[g]
  std::vector<std::vector<std::size_t>> groups;
};

/// Partition indices [0, count) into groups keyed by key_of(i). Small
/// waves (domains, senders on a laptop topology) resolve by a linear
/// scan over the keys seen so far — cheap, allocation-free, and cache
/// friendly. Past kGroupingLinearCutoff distinct keys (city-scale waves:
/// 10^4-10^5 distinct sender lanes) a hash index takes over so the whole
/// partition stays O(n) instead of O(n * k). The output is identical
/// either way — the index only changes HOW a key is located, never the
/// first-appearance order. Keys without a std::hash specialization keep
/// the linear path.
inline constexpr std::size_t kGroupingLinearCutoff = 32;

template <typename KeyFn>
auto group_by_first_appearance(std::size_t count, const KeyFn& key_of) {
  using Key = std::decay_t<decltype(key_of(std::size_t{0}))>;
  constexpr bool kIndexable = requires(const Key& k) { std::hash<Key>{}(k); };
  struct NoIndex {};
  using Index = std::conditional_t<kIndexable,
                                   std::unordered_map<Key, std::size_t>,
                                   NoIndex>;
  Grouped<Key> out;
  Index index;
  bool indexed = false;
  for (std::size_t i = 0; i < count; ++i) {
    decltype(auto) key = key_of(i);
    std::size_t g = out.keys.size();
    if constexpr (kIndexable) {
      if (indexed) {
        const auto it = index.find(key);
        if (it != index.end()) g = it->second;
      }
    }
    if (g == out.keys.size() && !indexed) {
      g = 0;
      while (g < out.keys.size() && !(out.keys[g] == key)) ++g;
    }
    if (g == out.keys.size()) {
      out.keys.push_back(std::forward<decltype(key)>(key));
      out.groups.emplace_back();
      if constexpr (kIndexable) {
        if (indexed) {
          index.emplace(out.keys.back(), g);
        } else if (out.keys.size() > kGroupingLinearCutoff) {
          for (std::size_t k = 0; k < out.keys.size(); ++k) {
            index.emplace(out.keys[k], k);
          }
          indexed = true;
        }
      }
    }
    out.groups[g].push_back(i);
  }
  return out;
}

}  // namespace semcache::common
