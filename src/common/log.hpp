// Library-wide diagnostics with a verbosity knob.
//
// The serving plane must never spam stderr from a hot loop — a fault-storm
// bench injects thousands of faults per second and each one is expected,
// not exceptional. Diagnostics therefore go through log_once(): a given key
// prints at most once per process, callers assert on COUNTERS (SystemStats)
// instead of stderr text, and the SEMCACHE_LOG_LEVEL environment variable
// ("silent" | "warn" | "info", default "warn") silences benches entirely.
#pragma once

#include <string_view>

namespace semcache::common {

enum class LogLevel {
  kSilent = 0,  ///< nothing prints (fault-storm benches)
  kWarn = 1,    ///< degradations and abandoned recoveries (default)
  kInfo = 2,    ///< plus informational one-shots
};

/// The process log level, parsed once from SEMCACHE_LOG_LEVEL. Unknown
/// values fall back to kWarn (a typo must not silence real warnings).
LogLevel log_level();

/// Print `message` to stderr the FIRST time `key` is seen at a level the
/// process verbosity admits; later calls with the same key are no-ops.
/// Returns whether this call printed (tests assert the dedup contract).
/// Thread-safe: commit phases and dispatcher threads may race on a key.
bool log_once(std::string_view key, std::string_view message,
              LogLevel level = LogLevel::kWarn);

/// Forget every seen key (unit tests only; the process level is re-read
/// from the environment on the next log_level() call after this too).
void log_reset_for_tests();

}  // namespace semcache::common
