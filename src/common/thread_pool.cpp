#include "common/thread_pool.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace semcache::common {

namespace {
/// Set while a pool worker executes a job body; parallel_for consults it to
/// reject nested fan-out from any pool.
thread_local bool tl_on_worker = false;
/// The worker's slot index, fixed for the thread's lifetime; 0 on threads
/// that are not pool workers. Lets code deep inside a fanned-out body pick
/// slot-indexed scratch (e.g. per-worker serving replicas) without
/// threading the slot through every call signature.
thread_local std::size_t tl_worker_slot = 0;
}  // namespace

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

std::size_t ThreadPool::current_worker_slot() { return tl_worker_slot; }

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t slot = 0; slot < workers; ++slot) {
    threads_.emplace_back([this, slot] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_job(Job& job, std::size_t slot) {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lk(job.next_mu);
      if (job.next >= job.count) return;
      index = job.next++;
    }
    try {
      job.body(index, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.next_mu);
      job.errors[index] = std::current_exception();
    }
    bool last;
    {
      std::lock_guard<std::mutex> lk(job.next_mu);
      last = (++job.completed == job.count);
    }
    if (last) {
      std::lock_guard<std::mutex> lk(job.done_mu);
      job.done = true;
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_main(std::size_t slot) {
  tl_worker_slot = slot;
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    tl_on_worker = true;
    run_job(*job, slot);
    tl_on_worker = false;
  }
}

void ThreadPool::parallel_for(std::size_t count, const Body& body) {
  SEMCACHE_CHECK(!tl_on_worker,
                 "parallel_for: nested fan-out from a pool worker is not "
                 "supported (restructure so only the calling thread fans out)");
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Inline mode: same results by the disjoint-writes contract; exceptions
    // propagate from the lowest throwing index exactly as on a pool (later
    // indices do not run, but a throwing fan-out yields no results either
    // way).
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }

  auto job = std::make_shared<Job>(body, count);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(job->done_mu);
    job->done_cv.wait(lk, [&] { return job->done; });
  }
  // Lowest-index exception wins — deterministic, and the same error a
  // sequential loop over the indices would have surfaced first.
  for (const std::exception_ptr& e : job->errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t resolve_thread_count(std::size_t configured) {
  if (configured != 0) return configured;
  const char* env = std::getenv("SEMCACHE_THREADS");
  if (env == nullptr || *env == '\0') return configured;
  // Digits only: strtoul would happily sign-wrap "-1" to 2^64-1, and a
  // typo'd huge count would try to spawn that many real threads — both
  // are garbage to ignore, like any other unparseable value.
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return configured;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || value > kMaxEnvThreads) return configured;
  return static_cast<std::size_t>(value);
}

}  // namespace semcache::common
