// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment,
// test, and benchmark is reproducible from a single 64-bit seed. Substreams
// are derived with splitmix64 so that independent components (corpus
// generation, channel noise, weight init, ...) do not share state.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace semcache {

/// splitmix64 step; used both as a seeding mixer and for cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic RNG wrapping mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream; deterministic in (seed, tag).
  Rng fork(std::uint64_t tag) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal draw.
  double gaussian();
  /// Normal draw with given mean/stddev.
  double gaussian(double mean, double stddev);
  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);
  /// Index draw from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);
  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }
  /// Read-only engine access (state capture/fingerprinting; mt19937_64
  /// round-trips exactly through iostream insertion/extraction).
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace semcache
