// Stable string hashing for partitioning decisions.
//
// std::hash<std::string> is implementation-defined (and in practice differs
// across standard libraries and even process runs under some hardening
// modes), so anything whose OUTPUT depends on a hash value — shard
// ownership, on-disk layouts, cross-process routing — must not use it.
// FNV-1a 64 is tiny, fast on short user names, and bit-stable everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace semcache::common {

/// FNV-1a 64-bit over the bytes of `s`. Deterministic across platforms,
/// compilers, and runs; usable in constant expressions.
constexpr std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

/// Hash-partition a user name into one of `num_shards` shards. This is THE
/// ownership rule of the sharded serving layer: every mutable serving
/// object is keyed by (sending user, domain), so placing all of a sender's
/// pairs on shard_of(sender) makes shards own disjoint state.
constexpr std::size_t shard_of(std::string_view user,
                               std::size_t num_shards) {
  return num_shards <= 1 ? 0 : stable_hash(user) % num_shards;
}

}  // namespace semcache::common
