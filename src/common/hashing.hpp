// Stable string hashing for partitioning decisions.
//
// std::hash<std::string> is implementation-defined (and in practice differs
// across standard libraries and even process runs under some hardening
// modes), so anything whose OUTPUT depends on a hash value — shard
// ownership, on-disk layouts, cross-process routing — must not use it.
// FNV-1a 64 is tiny, fast on short user names, and bit-stable everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace semcache::common {

/// FNV-1a 64-bit over the bytes of `s`. Deterministic across platforms,
/// compilers, and runs; usable in constant expressions.
constexpr std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

/// Hash-partition a user name into one of `num_shards` shards. This is THE
/// ownership rule of the sharded serving layer: every mutable serving
/// object is keyed by (sending user, domain), so placing all of a sender's
/// pairs on shard_of(sender) makes shards own disjoint state.
constexpr std::size_t shard_of(std::string_view user,
                               std::size_t num_shards) {
  return num_shards <= 1 ? 0 : stable_hash(user) % num_shards;
}

/// splitmix64 step as a pure constexpr function — bit-identical to
/// semcache::splitmix64 (rng.hpp), duplicated here so identity-keyed
/// hashing stays header-only and usable in constant expressions.
constexpr std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// splitmix64 chain over (seed, kind tag, identity words) — the identity-
/// hash discipline shared by the fault plane and the burst channel: every
/// stochastic decision is a PURE function of a seed and the identity of the
/// thing deciding (never a global RNG ordinal), which is what keeps
/// parallel and sharded runs byte-identical while the decisions fire.
constexpr std::uint64_t identity_mix(std::uint64_t seed, std::uint64_t kind,
                                     std::uint64_t a, std::uint64_t b,
                                     std::uint64_t c) {
  std::uint64_t state = seed ^ kind;
  (void)splitmix64_step(state);
  state ^= a;
  (void)splitmix64_step(state);
  state ^= b;
  (void)splitmix64_step(state);
  state ^= c;
  return splitmix64_step(state);
}

/// Top 53 bits -> [0, 1): p = 1 always fires, p = 0 never does.
constexpr double to_unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace semcache::common
