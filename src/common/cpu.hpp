// Runtime CPU-feature detection and the process-wide SIMD dispatch tier.
//
// The tensor and channel planes carry hand-written AVX2/FMA kernels next to
// the always-built scalar reference kernels (see README "SIMD kernels").
// Which family runs is a RUNTIME choice resolved here, once, from the
// SEMCACHE_SIMD environment variable ("auto" | "avx2" | "scalar", default
// auto) gated on what the executing CPU actually supports — the same binary
// runs vectorized on an AVX2 host and scalar on anything older, and CI
// flips the env to pin the fallback path without a rebuild.
//
// The tier is intent, not engagement: a dispatch site may still decline the
// SIMD path (kernels compiled out on a non-x86 build, or an equivalence
// probe that failed to match the as-built scalar reference — see
// tensor/ops.cpp). Each site reports what actually engaged via log_once.
#pragma once

namespace semcache::common {

/// What the executing CPU supports, detected once via cpuid.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// Detected features of the executing CPU (cached after the first call).
const CpuFeatures& cpu_features();

/// The dispatch families a build can carry. kAvx2 implies FMA hardware is
/// also required at runtime — the kernels use it when the baseline build
/// contracts (see tensor/ops.cpp's probe).
enum class SimdTier {
  kScalar = 0,  ///< reference kernels only (always available)
  kAvx2 = 1,    ///< AVX2(+FMA) kernels where an implementation exists
};

const char* simd_tier_name(SimdTier tier);

/// The process SIMD tier: resolved from SEMCACHE_SIMD on first use (see
/// resolve_simd_tier), overridable in-process via set_simd_tier. Cheap
/// enough for per-kernel-call reads (one relaxed atomic load).
SimdTier active_simd_tier();

/// Override the active tier (tests flip tiers in-process to twin the
/// vectorized and scalar kernels in one binary). Returns the previous
/// tier. A request for kAvx2 on a CPU without AVX2+FMA is clamped to
/// kScalar, mirroring the env path.
SimdTier set_simd_tier(SimdTier tier);

/// Pure resolution policy, exposed for unit tests: maps an environment
/// string (nullptr = unset) plus the detected features to a tier.
///   - "scalar"        -> kScalar
///   - "avx2"          -> kAvx2 if the CPU has AVX2+FMA, else kScalar
///                        (with a log_once warning: an explicit request
///                        the hardware cannot honor must not be silent)
///   - "auto" / unset  -> kAvx2 when supported, else kScalar
///   - anything else   -> treated as "auto", with a log_once warning
SimdTier resolve_simd_tier(const char* env, const CpuFeatures& features);

}  // namespace semcache::common
