#include "common/serialize.hpp"

namespace semcache {

namespace {
template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T read_le(std::span<const std::uint8_t> buf, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<T>(buf[pos + i]) << (8 * i));
  }
  return v;
}
}  // namespace

void ByteWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }
void ByteWriter::write_u16(std::uint16_t v) { append_le(buf_, v); }
void ByteWriter::write_u32(std::uint32_t v) { append_le(buf_, v); }
void ByteWriter::write_u64(std::uint64_t v) { append_le(buf_, v); }
void ByteWriter::write_i32(std::int32_t v) {
  append_le(buf_, static_cast<std::uint32_t>(v));
}
void ByteWriter::write_i64(std::int64_t v) {
  append_le(buf_, static_cast<std::uint64_t>(v));
}

void ByteWriter::write_f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_le(buf_, bits);
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_le(buf_, bits);
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::write_f32_vector(std::span<const float> v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (const float x : v) write_f32(x);
}

void ByteReader::require(std::size_t n) const {
  SEMCACHE_CHECK(pos_ + n <= buf_.size(),
                 "ByteReader underrun: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(buf_.size() - pos_));
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  const auto v = read_le<std::uint16_t>(buf_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  const auto v = read_le<std::uint32_t>(buf_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  const auto v = read_le<std::uint64_t>(buf_, pos_);
  pos_ += 8;
  return v;
}

std::int32_t ByteReader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

std::int64_t ByteReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

float ByteReader::read_f32() {
  const std::uint32_t bits = read_u32();
  float v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> ByteReader::read_bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::read_string() {
  const std::uint32_t n = read_u32();
  require(n);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::vector<float> ByteReader::read_f32_vector() {
  const std::uint32_t n = read_u32();
  // Validate the untrusted count against the bytes present BEFORE
  // reserving: a garbage length prefix must throw, not attempt a
  // multi-gigabyte allocation.
  require(static_cast<std::size_t>(n) * 4);
  std::vector<float> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_f32());
  return out;
}

}  // namespace semcache
