#include "common/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/log.hpp"

namespace semcache::common {

namespace {
CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang builtin: reads cpuid once and caches; no inline asm needed.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

// kScalar/kAvx2 as int; -1 = not yet resolved from the environment.
std::atomic<int> g_tier{-1};
}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

const char* simd_tier_name(SimdTier tier) {
  return tier == SimdTier::kAvx2 ? "avx2" : "scalar";
}

SimdTier resolve_simd_tier(const char* env, const CpuFeatures& features) {
  const SimdTier best =
      features.avx2 && features.fma ? SimdTier::kAvx2 : SimdTier::kScalar;
  if (env == nullptr || *env == '\0') return best;
  const std::string_view v(env);
  if (v == "scalar") return SimdTier::kScalar;
  if (v == "avx2") {
    if (best != SimdTier::kAvx2) {
      log_once("simd.unsupported",
               "SEMCACHE_SIMD=avx2 requested but this CPU lacks AVX2+FMA; "
               "falling back to scalar kernels");
    }
    return best;
  }
  if (v != "auto") {
    log_once("simd.badenv", "unrecognized SEMCACHE_SIMD value \"" +
                                std::string(v) + "\"; treating as auto");
  }
  return best;
}

SimdTier active_simd_tier() {
  int tier = g_tier.load(std::memory_order_relaxed);
  if (tier < 0) {
    const SimdTier resolved =
        resolve_simd_tier(std::getenv("SEMCACHE_SIMD"), cpu_features());
    log_once("simd.tier",
             std::string("SIMD dispatch tier: ") + simd_tier_name(resolved),
             LogLevel::kInfo);
    // First resolution wins the race (all racers compute the same value);
    // a concurrent set_simd_tier's explicit value is not overwritten.
    int expected = -1;
    g_tier.compare_exchange_strong(expected, static_cast<int>(resolved),
                                   std::memory_order_relaxed);
    tier = g_tier.load(std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(tier);
}

SimdTier set_simd_tier(SimdTier tier) {
  const CpuFeatures& f = cpu_features();
  if (tier == SimdTier::kAvx2 && !(f.avx2 && f.fma)) tier = SimdTier::kScalar;
  const SimdTier previous = active_simd_tier();
  g_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
  return previous;
}

}  // namespace semcache::common
