#include "faults/fault_plane.hpp"

#include "common/check.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"

namespace semcache::core {

namespace {
// Kind tags keep the coin families independent: the same message identity
// draws unrelated loss / corruption / duplication coins.
constexpr std::uint64_t kDropTag = 0xD407;
constexpr std::uint64_t kCorruptTag = 0xC0BB;
constexpr std::uint64_t kDuplicateTag = 0xD0BB;
constexpr std::uint64_t kPatternTag = 0xF11B;
constexpr std::uint64_t kStallTag = 0x57A11;
constexpr std::uint64_t kPhaseTag = 0xF1A9;

void check_probability(double p, const char* name) {
  SEMCACHE_CHECK(p >= 0.0 && p <= 1.0,
                 std::string("FaultConfig: ") + name + " must be in [0, 1]");
}

// The splitmix64 chain + unit-interval mapping live in common/hashing.hpp
// (identity_mix / to_unit_interval) so the burst channel draws its coins by
// the same discipline; these aliases keep the call sites short.
constexpr auto mix = common::identity_mix;
constexpr auto to_unit = common::to_unit_interval;
}  // namespace

FaultPlane::FaultPlane(FaultConfig config) : config_(config) {
  check_probability(config_.sync_loss, "sync_loss");
  check_probability(config_.sync_corrupt, "sync_corrupt");
  check_probability(config_.sync_duplicate, "sync_duplicate");
  check_probability(config_.shard_stall, "shard_stall");
  SEMCACHE_CHECK(config_.retry_timeout_s > 0.0,
                 "FaultConfig: retry_timeout_s must be positive");
  SEMCACHE_CHECK(config_.retry_backoff >= 1.0,
                 "FaultConfig: retry_backoff must be >= 1");
  SEMCACHE_CHECK(config_.max_attempts >= 1,
                 "FaultConfig: max_attempts must be >= 1");
  SEMCACHE_CHECK(config_.link_flap_period_s >= 0.0,
                 "FaultConfig: link_flap_period_s must be >= 0");
  SEMCACHE_CHECK(config_.link_flap_down_s >= 0.0 &&
                     config_.link_flap_down_s <= config_.link_flap_period_s,
                 "FaultConfig: link_flap_down_s must be in "
                 "[0, link_flap_period_s]");
}

double FaultPlane::coin(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) const {
  return to_unit(mix(config_.seed, kind, a, b, c));
}

bool FaultPlane::drop_sync(std::string_view user, std::uint32_t domain,
                           std::uint64_t version,
                           std::uint64_t attempt) const {
  return coin(kDropTag, common::stable_hash(user),
              (static_cast<std::uint64_t>(domain) << 32) ^ version,
              attempt) < config_.sync_loss;
}

bool FaultPlane::corrupt_sync(std::string_view user, std::uint32_t domain,
                              std::uint64_t version,
                              std::uint64_t attempt) const {
  return coin(kCorruptTag, common::stable_hash(user),
              (static_cast<std::uint64_t>(domain) << 32) ^ version,
              attempt) < config_.sync_corrupt;
}

bool FaultPlane::duplicate_sync(std::string_view user, std::uint32_t domain,
                                std::uint64_t version,
                                std::uint64_t attempt) const {
  return coin(kDuplicateTag, common::stable_hash(user),
              (static_cast<std::uint64_t>(domain) << 32) ^ version,
              attempt) < config_.sync_duplicate;
}

void FaultPlane::corrupt_bytes(std::vector<std::uint8_t>& bytes,
                               std::string_view user, std::uint32_t domain,
                               std::uint64_t version,
                               std::uint64_t attempt) const {
  if (bytes.empty()) return;
  std::uint64_t state =
      mix(config_.seed, kPatternTag, common::stable_hash(user),
          (static_cast<std::uint64_t>(domain) << 32) ^ version, attempt);
  const std::size_t flips = 1 + splitmix64(state) % 3;
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = splitmix64(state) % bytes.size();
    // XOR with a nonzero byte: every flip really changes the image.
    bytes[pos] ^= static_cast<std::uint8_t>(splitmix64(state) % 255 + 1);
  }
}

double FaultPlane::retry_delay_s(std::uint64_t attempt) const {
  double delay = config_.retry_timeout_s;
  for (std::uint64_t i = 1; i < attempt; ++i) delay *= config_.retry_backoff;
  return delay;
}

bool FaultPlane::stall_shard(std::size_t shard, std::size_t wave) const {
  return coin(kStallTag, shard, wave, 0) < config_.shard_stall;
}

double FaultPlane::flap_phase_s(edge::LinkId link) const {
  if (!config_.link_faults_active()) return 0.0;
  return to_unit(mix(config_.seed, kPhaseTag, link, 0, 0)) *
         config_.link_flap_period_s;
}

}  // namespace semcache::core
