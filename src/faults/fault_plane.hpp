// FaultPlane — seeded, fully deterministic fault injection.
//
// Every fault decision is a PURE FUNCTION of the fault seed and the
// identity of the thing failing — a sync message's (user, domain, version,
// attempt), a link's id, a (shard, wave) pair — never of a global RNG
// ordinal or of execution order. That is what lets transmit_pairs waves and
// sharded flushes stay byte-identical across any thread count and shard
// count while faults are ACTIVE: two deployments that serve the same
// messages draw the same coins, no matter how the work interleaves.
//
// The plane injects three fault families:
//   * sync-plane: per-attempt loss / corruption / duplication of gradient
//     sync messages, resolved against the retry/backoff policy below (the
//     VersionVector gap-resync remains the last resort when every attempt
//     fails);
//   * link-plane: periodic outage (flap) windows on every topology link,
//     with a per-link phase so links do not blink in lockstep (see
//     edge::Link for the queue-vs-drop admission semantics);
//   * dispatcher-plane: shard stalls, degraded by ParallelDispatcher to
//     frozen-general serving instead of a hang or a throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "edge/link.hpp"

namespace semcache::core {

/// Fault-injection knobs, embedded as SystemConfig::faults. All
/// probabilities are per-decision in [0, 1]; the defaults inject nothing.
struct FaultConfig {
  std::uint64_t seed = 0x5EED;  ///< fault coins only; independent of system seed

  // --- sync plane (per transmission attempt of one sync message) ---
  double sync_loss = 0.0;       ///< attempt lost in transit
  double sync_corrupt = 0.0;    ///< attempt arrives with flipped bytes (CRC catches)
  double sync_duplicate = 0.0;  ///< delivered attempt arrives twice (replay-dropped)

  // --- recovery policy ---
  double retry_timeout_s = 0.05;  ///< wait before attempt 2
  double retry_backoff = 2.0;     ///< delay multiplier per further attempt
  std::size_t max_attempts = 4;   ///< then the message expires (gap-resync repairs)

  // --- link plane ---
  double link_flap_period_s = 0.0;  ///< 0 = no flapping
  double link_flap_down_s = 0.0;    ///< outage length at the start of each period
  edge::OutagePolicy outage_policy = edge::OutagePolicy::kQueue;

  // --- dispatcher plane ---
  double shard_stall = 0.0;  ///< per-(shard, flush) stall probability

  bool sync_faults_active() const {
    return sync_loss > 0.0 || sync_corrupt > 0.0 || sync_duplicate > 0.0;
  }
  bool link_faults_active() const {
    return link_flap_period_s > 0.0 && link_flap_down_s > 0.0;
  }
  bool any_active() const {
    return sync_faults_active() || link_faults_active() || shard_stall > 0.0;
  }
};

class FaultPlane {
 public:
  /// Validates the config (probabilities in [0, 1], backoff >= 1,
  /// positive timeout, max_attempts >= 1, down <= period); throws
  /// semcache::Error on violation.
  explicit FaultPlane(FaultConfig config = {});

  const FaultConfig& config() const { return config_; }

  // --- sync-plane coins, keyed by message identity + attempt number ---
  bool drop_sync(std::string_view user, std::uint32_t domain,
                 std::uint64_t version, std::uint64_t attempt) const;
  bool corrupt_sync(std::string_view user, std::uint32_t domain,
                    std::uint64_t version, std::uint64_t attempt) const;
  bool duplicate_sync(std::string_view user, std::uint32_t domain,
                      std::uint64_t version, std::uint64_t attempt) const;

  /// Deterministically flip 1–3 bytes of a wire image, keyed by the same
  /// identity as the coins (so every deployment corrupts the same bytes).
  void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::string_view user,
                     std::uint32_t domain, std::uint64_t version,
                     std::uint64_t attempt) const;

  /// Backoff delay charged before transmission attempt `attempt + 1`
  /// (attempt counts from 1): retry_timeout_s * retry_backoff^(attempt-1).
  double retry_delay_s(std::uint64_t attempt) const;

  /// Dispatcher-plane coin: does shard `shard` stall on flush `wave`?
  bool stall_shard(std::size_t shard, std::size_t wave) const;

  /// Per-link flap phase offset in [0, link_flap_period_s), derived from
  /// the fault seed and the link id so links do not blink in lockstep.
  double flap_phase_s(edge::LinkId link) const;

 private:
  /// Uniform [0, 1) draw, pure in (seed, kind tag, a, b, c).
  double coin(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  FaultConfig config_;
};

}  // namespace semcache::core
