// Internal seam between the dispatching tensor ops (ops.cpp) and the
// AVX2 translation unit (ops_avx2.cpp), which is the only TU compiled with
// -mavx2 -mfma (and -ffp-contract=off, so the two kernel flavors below have
// deterministic codegen: the *_fma kernels fuse because they spell
// _mm256_fmadd_ps explicitly, the *_muladd kernels round after every
// multiply because the compiler is forbidden from re-fusing them).
//
// Two flavors exist because "bit-identical to the scalar kernels" depends
// on how the scalar kernels were COMPILED: Release (-O3 -march=native with
// GCC's default -ffp-contract=fast) contracts the scalar c += a*b into
// hardware FMA, while the sanitizer configs (-O1) do not. ops.cpp settles
// the question empirically at first use: it runs both flavors against the
// as-built scalar kernel on an adversarial probe (a value pattern where
// fused and unfused accumulation MUST differ in the last bit) and installs
// whichever flavor matches bit-for-bit — or neither, leaving the scalar
// kernels in sole charge. See "SIMD kernels" in the README.
#pragma once

#include <cstddef>

namespace semcache::tensor::detail {

/// c (m x n) += a * b, identical contract to the scalar gemm_nn/gemm_tn in
/// ops.cpp: per C element the products accumulate in ascending-k order (SIMD
/// lanes run across output columns, never across k), so for the matching
/// contraction flavor the result is bit-identical to the scalar kernel on
/// any shape. For the nn layout a is row-major (m x k); for the tn layout a
/// is stored (k x m) and read down columns.
using GemmFn = void (*)(std::size_t m, std::size_t k, std::size_t n,
                        const float* a, const float* b, float* c);

/// Row-broadcast epilogues over c (m x n): bias adds, bias_relu adds then
/// clamps at zero. Pure adds/max — no contraction ambiguity, one flavor.
using EpilogueFn = void (*)(std::size_t m, std::size_t n, const float* bias,
                            float* c);

struct Avx2TensorKernels {
  GemmFn gemm_nn_fma;
  GemmFn gemm_nn_muladd;
  GemmFn gemm_tn_fma;
  GemmFn gemm_tn_muladd;
  EpilogueFn bias;
  EpilogueFn bias_relu;
};

/// The AVX2 kernel table, or nullptr when this build carries no AVX2 code
/// (non-x86 target, or the compiler refused the ISA flags).
const Avx2TensorKernels* avx2_tensor_kernels();

}  // namespace semcache::tensor::detail
