// AVX2/FMA micro-kernels for the matmul family. This TU is compiled with
// -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt) and is the only one
// carrying AVX2 code; everything here is reached through the kernel table in
// simd_kernels.hpp after ops.cpp's equivalence probe picks a flavor.
//
// Shape of the kernel: C accumulators live in ymm registers across the whole
// k panel (6 rows x 16 columns = 12 independent FMA chains, enough to hide
// FMA latency), where the scalar kernel re-streams its 4 C rows through
// memory on every k step — that store/reload traffic is what capped it near
// ~26 GFLOP/s. Lanes run across output COLUMNS; k advances scalar, one step
// at a time, so per C element the summation order is exactly the scalar
// kernel's ascending-k chain and bit-identity is a matter of matching the
// contraction flavor, which the probe in ops.cpp settles empirically.
#include "tensor/simd_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace semcache::tensor::detail {
namespace {

// The two accumulation flavors (see simd_kernels.hpp). With contraction
// disabled for this TU, the muladd flavor's separate round after the
// multiply survives into the generated code; the fma flavor fuses because
// it says so explicitly, not because the compiler felt like it.
template <bool kFma>
inline __m256 madd(__m256 a, __m256 b, __m256 c) {
  if constexpr (kFma) {
    return _mm256_fmadd_ps(a, b, c);
  } else {
    return _mm256_add_ps(c, _mm256_mul_ps(a, b));
  }
}

template <bool kFma>
inline float maddf(float a, float b, float c) {
  if constexpr (kFma) {
    return __builtin_fmaf(a, b, c);  // hardware vfmadd*ss under -mfma
  } else {
    return c + a * b;
  }
}

// A-element address for relative output row r at absolute depth kk: the nn
// layout walks a row (stride 1 in kk), the tn layout walks a column of the
// (k x m)-stored matrix (stride astride in kk).
template <bool kTrans>
inline const float* a_at(const float* a, std::size_t astride, std::size_t r,
                         std::size_t kk) {
  return kTrans ? a + kk * astride + r : a + r * astride + kk;
}

// R x 16 register tile: load C once, run the whole k panel out of ymm
// accumulators, store C once. The hot 6-row case uses twelve NAMED
// accumulators instead of __m256 arrays: GCC declines to fully scalarize
// 192-byte register arrays, leaving a dead stack store after every FMA
// that saturates the store port and halves throughput. Named locals
// register-allocate cleanly (12 accumulators + 2 B vectors + 1 broadcast
// = 15 of 16 ymm).
template <bool kFma, bool kTrans>
void micro16x6(std::size_t kc, std::size_t n, std::size_t astride,
               const float* a, const float* b, float* c) {
  float* c0 = c;
  float* c1 = c + n;
  float* c2 = c + 2 * n;
  float* c3 = c + 3 * n;
  float* c4 = c + 4 * n;
  float* c5 = c + 5 * n;
  __m256 a0 = _mm256_loadu_ps(c0), a1 = _mm256_loadu_ps(c0 + 8);
  __m256 b0v = _mm256_loadu_ps(c1), b1v = _mm256_loadu_ps(c1 + 8);
  __m256 d0 = _mm256_loadu_ps(c2), d1 = _mm256_loadu_ps(c2 + 8);
  __m256 e0 = _mm256_loadu_ps(c3), e1 = _mm256_loadu_ps(c3 + 8);
  __m256 f0 = _mm256_loadu_ps(c4), f1 = _mm256_loadu_ps(c4 + 8);
  __m256 g0 = _mm256_loadu_ps(c5), g1 = _mm256_loadu_ps(c5 + 8);
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * n;
    const __m256 p0 = _mm256_loadu_ps(brow);
    const __m256 p1 = _mm256_loadu_ps(brow + 8);
    __m256 av;
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 0, kk));
    a0 = madd<kFma>(av, p0, a0);
    a1 = madd<kFma>(av, p1, a1);
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 1, kk));
    b0v = madd<kFma>(av, p0, b0v);
    b1v = madd<kFma>(av, p1, b1v);
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 2, kk));
    d0 = madd<kFma>(av, p0, d0);
    d1 = madd<kFma>(av, p1, d1);
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 3, kk));
    e0 = madd<kFma>(av, p0, e0);
    e1 = madd<kFma>(av, p1, e1);
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 4, kk));
    f0 = madd<kFma>(av, p0, f0);
    f1 = madd<kFma>(av, p1, f1);
    av = _mm256_broadcast_ss(a_at<kTrans>(a, astride, 5, kk));
    g0 = madd<kFma>(av, p0, g0);
    g1 = madd<kFma>(av, p1, g1);
  }
  _mm256_storeu_ps(c0, a0);
  _mm256_storeu_ps(c0 + 8, a1);
  _mm256_storeu_ps(c1, b0v);
  _mm256_storeu_ps(c1 + 8, b1v);
  _mm256_storeu_ps(c2, d0);
  _mm256_storeu_ps(c2 + 8, d1);
  _mm256_storeu_ps(c3, e0);
  _mm256_storeu_ps(c3 + 8, e1);
  _mm256_storeu_ps(c4, f0);
  _mm256_storeu_ps(c4 + 8, f1);
  _mm256_storeu_ps(c5, g0);
  _mm256_storeu_ps(c5 + 8, g1);
}

template <int R, bool kFma, bool kTrans>
void micro16(std::size_t kc, std::size_t n, std::size_t astride,
             const float* a, const float* b, float* c) {
  if constexpr (R == 6) {
    micro16x6<kFma, kTrans>(kc, n, astride, a, b, c);
  } else {
    __m256 lo[R], hi[R];
    for (int r = 0; r < R; ++r) {
      lo[r] = _mm256_loadu_ps(c + static_cast<std::size_t>(r) * n);
      hi[r] = _mm256_loadu_ps(c + static_cast<std::size_t>(r) * n + 8);
    }
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float* brow = b + kk * n;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 av = _mm256_broadcast_ss(
            a_at<kTrans>(a, astride, static_cast<std::size_t>(r), kk));
        lo[r] = madd<kFma>(av, b0, lo[r]);
        hi[r] = madd<kFma>(av, b1, hi[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(c + static_cast<std::size_t>(r) * n, lo[r]);
      _mm256_storeu_ps(c + static_cast<std::size_t>(r) * n + 8, hi[r]);
    }
  }
}

// R x 8 tile for the single-vector column remainder.
template <int R, bool kFma, bool kTrans>
void micro8(std::size_t kc, std::size_t n, std::size_t astride, const float* a,
            const float* b, float* c) {
  __m256 acc[R];
  for (int r = 0; r < R; ++r) {
    acc[r] = _mm256_loadu_ps(c + static_cast<std::size_t>(r) * n);
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 bv = _mm256_loadu_ps(b + kk * n);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_broadcast_ss(
          a_at<kTrans>(a, astride, static_cast<std::size_t>(r), kk));
      acc[r] = madd<kFma>(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(c + static_cast<std::size_t>(r) * n, acc[r]);
  }
}

// Scalar column tail (n % 8 trailing columns), same ascending-k chain.
template <int R, bool kFma, bool kTrans>
void micro_cols(std::size_t kc, std::size_t n, std::size_t astride,
                const float* a, const float* b, float* c, std::size_t cols) {
  for (std::size_t j = 0; j < cols; ++j) {
    for (int r = 0; r < R; ++r) {
      const std::size_t rs = static_cast<std::size_t>(r);
      float acc = c[rs * n + j];
      for (std::size_t kk = 0; kk < kc; ++kk) {
        acc = maddf<kFma>(*a_at<kTrans>(a, astride, rs, kk), b[kk * n + j],
                          acc);
      }
      c[rs * n + j] = acc;
    }
  }
}

template <int R, bool kFma, bool kTrans>
void row_block(std::size_t kc, std::size_t n, std::size_t astride,
               const float* a, const float* b, float* c) {
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    micro16<R, kFma, kTrans>(kc, n, astride, a, b + j, c + j);
  }
  if (j + 8 <= n) {
    micro8<R, kFma, kTrans>(kc, n, astride, a, b + j, c + j);
    j += 8;
  }
  if (j < n) {
    micro_cols<R, kFma, kTrans>(kc, n, astride, a, b + j, c + j, n - j);
  }
}

template <bool kFma, bool kTrans>
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  // k-panel blocking: 256 depth steps per pass keep the streamed B panel
  // (256 rows x 16 active columns = 16 KiB) L1-resident for the 256+
  // shapes. Panels accumulate into C in ascending-k order — the chain per
  // element is identical to one unblocked pass.
  constexpr std::size_t kKc = 256;
  const std::size_t astride = kTrans ? m : k;
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kc = std::min(kKc, k - k0);
    const float* bp = b + k0 * n;
    auto ap = [&](std::size_t i) {
      return kTrans ? a + k0 * m + i : a + i * k + k0;
    };
    std::size_t i = 0;
    for (; i + 6 <= m; i += 6) {
      row_block<6, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n);
    }
    switch (m - i) {
      case 5: row_block<5, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n); break;
      case 4: row_block<4, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n); break;
      case 3: row_block<3, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n); break;
      case 2: row_block<2, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n); break;
      case 1: row_block<1, kFma, kTrans>(kc, n, astride, ap(i), bp, c + i * n); break;
      default: break;
    }
  }
}

// Epilogues: one add (or add + clamp) per element — no accumulation chain,
// so vector and scalar agree bitwise regardless of contraction flavor.
// _mm256_max_ps(zero, v) returns v when v is NaN and keeps -0.0f, exactly
// like the scalar `v < 0 ? 0 : v`.
void bias_avx2(std::size_t m, std::size_t n, const float* bias, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                               _mm256_loadu_ps(bias + j)));
    }
    for (; j < n; ++j) crow[j] += bias[j];
  }
}

void bias_relu_avx2(std::size_t m, std::size_t n, const float* bias,
                    float* c) {
  const __m256 zero = _mm256_setzero_ps();
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                     _mm256_loadu_ps(bias + j));
      _mm256_storeu_ps(crow + j, _mm256_max_ps(zero, v));
    }
    for (; j < n; ++j) {
      const float v = crow[j] + bias[j];
      crow[j] = v < 0.0f ? 0.0f : v;
    }
  }
}

constexpr Avx2TensorKernels kKernels = {
    /*gemm_nn_fma=*/gemm<true, false>,
    /*gemm_nn_muladd=*/gemm<false, false>,
    /*gemm_tn_fma=*/gemm<true, true>,
    /*gemm_tn_muladd=*/gemm<false, true>,
    /*bias=*/bias_avx2,
    /*bias_relu=*/bias_relu_avx2,
};

}  // namespace

const Avx2TensorKernels* avx2_tensor_kernels() { return &kKernels; }

}  // namespace semcache::tensor::detail

#else  // no AVX2/FMA in this build: the dispatch layer sees an empty table

namespace semcache::tensor::detail {
const Avx2TensorKernels* avx2_tensor_kernels() { return nullptr; }
}  // namespace semcache::tensor::detail

#endif
