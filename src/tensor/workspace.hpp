// Reusable tensor arena for allocation-free hot paths.
//
// A Workspace owns a set of slot-indexed scratch tensors. Callers that run
// the same computation repeatedly (layer forwards, GRU steps, codec
// encode/decode) acquire each intermediate by a stable slot id; after the
// first call warms the slots up, acquire() only rewrites the shape and
// returns the same storage — no heap traffic per call.
//
// Slots are plain indices so a module can enumerate its intermediates in an
// enum and keep the mapping readable. A workspace is single-owner state
// (not thread-safe); share one per model instance, not across threads.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace semcache::tensor {

class Workspace {
 public:
  /// Scratch tensor for `slot`, resized to `shape`. Contents are
  /// unspecified — callers must fully overwrite (the `_into` kernels do).
  /// Grows the slot table and each slot's storage high-water mark on first
  /// use; steady state performs zero allocations. Slots are heap-anchored,
  /// so a returned reference survives later acquire() calls on other slots.
  Tensor& acquire(std::size_t slot, std::vector<std::size_t> shape) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    if (!slots_[slot]) slots_[slot] = std::make_unique<Tensor>();
    slots_[slot]->resize(std::move(shape));
    return *slots_[slot];
  }

  /// Like acquire(), but zero-filled (for accumulators).
  Tensor& acquire_zeroed(std::size_t slot, std::vector<std::size_t> shape) {
    Tensor& t = acquire(slot, std::move(shape));
    t.zero();
    return t;
  }

  std::size_t slot_count() const { return slots_.size(); }

  /// Total floats reserved across all slots; lets tests pin down that a
  /// warmed-up workspace stops growing.
  std::size_t floats_reserved() const {
    std::size_t total = 0;
    for (const auto& t : slots_) {
      if (t) total += t->capacity();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
};

}  // namespace semcache::tensor
