// Reusable tensor arena for allocation-free hot paths.
//
// A Workspace owns a set of slot-indexed scratch tensors. Callers that run
// the same computation repeatedly (layer forwards, GRU steps, codec
// encode/decode) acquire each intermediate by a stable slot id; after the
// first call warms the slots up, acquire() only rewrites the shape and
// returns the same storage — no heap traffic per call.
//
// Slots are plain indices so a module can enumerate its intermediates in an
// enum and keep the mapping readable. A workspace is single-owner state
// (not thread-safe); share one per model instance, not across threads.
// Parallel sections that need per-worker scratch take clone()s — copying
// is deleted outright so two owners can never silently alias one arena.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace semcache::tensor {

class Workspace {
 public:
  Workspace() = default;
  // Non-copyable by design (an accidental copy would be a fresh empty-ish
  // arena at best and shared storage at worst); explicitly deleted so the
  // intent survives refactors. Moves transfer the slots — heap-anchored,
  // so references handed out by acquire() stay valid across a move.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

  /// Independent arena with the same slot table and per-slot reserved
  /// capacities (contents unspecified, like any acquire()): the factory
  /// for per-worker instances on parallel sections — a clone warmed from a
  /// warmed source runs allocation-free from its first use and shares no
  /// storage with the source.
  Workspace clone() const {
    Workspace w;
    w.slots_.reserve(slots_.size());
    for (const auto& t : slots_) {
      if (t) {
        auto fresh = std::make_unique<Tensor>();
        fresh->resize({t->capacity()});  // reproduce the high-water mark
        fresh->resize(t->shape());
        w.slots_.push_back(std::move(fresh));
      } else {
        w.slots_.push_back(nullptr);
      }
    }
    return w;
  }

  /// Scratch tensor for `slot`, resized to `shape`. Contents are
  /// unspecified — callers must fully overwrite (the `_into` kernels do).
  /// Grows the slot table and each slot's storage high-water mark on first
  /// use; steady state performs zero allocations. Slots are heap-anchored,
  /// so a returned reference survives later acquire() calls on other slots.
  Tensor& acquire(std::size_t slot, std::vector<std::size_t> shape) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    if (!slots_[slot]) slots_[slot] = std::make_unique<Tensor>();
    slots_[slot]->resize(std::move(shape));
    return *slots_[slot];
  }

  /// Like acquire(), but zero-filled (for accumulators).
  Tensor& acquire_zeroed(std::size_t slot, std::vector<std::size_t> shape) {
    Tensor& t = acquire(slot, std::move(shape));
    t.zero();
    return t;
  }

  std::size_t slot_count() const { return slots_.size(); }

  /// Total floats reserved across all slots; lets tests pin down that a
  /// warmed-up workspace stops growing.
  std::size_t floats_reserved() const {
    std::size_t total = 0;
    for (const auto& t : slots_) {
      if (t) total += t->capacity();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
};

}  // namespace semcache::tensor
