// Dense row-major float tensor.
//
// Deliberately minimal: the NN stack (semcache::nn) only needs rank-1 and
// rank-2 tensors with value semantics, so there are no views or strides —
// every tensor owns its storage, which keeps aliasing bugs out of the
// backward passes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace semcache::tensor {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-filled tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  /// Tensor with explicit contents; data.size() must equal the shape volume.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// Uniform(-limit, limit) init.
  static Tensor uniform(std::vector<std::size_t> shape, float limit, Rng& rng);
  /// Xavier/Glorot-uniform init for a (fan_in x fan_out) weight matrix.
  static Tensor xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;
  /// Rows/cols of a rank-2 tensor (rank-1 counts as a single row).
  std::size_t rows() const;
  std::size_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Reshape in place; volume must be preserved.
  void reshape(std::vector<std::size_t> shape);
  /// Destructive reshape to an arbitrary shape: storage is resized, existing
  /// capacity is reused (no reallocation when the new volume fits), and the
  /// contents are unspecified. The workhorse of the Workspace / `_into`
  /// kernel API, where outputs are fully overwritten anyway.
  void resize(std::vector<std::size_t> shape);
  /// Allocated storage in floats (>= size()); lets tests assert that the
  /// `_into` kernels never reallocate a warmed-up output tensor.
  std::size_t capacity() const { return data_.capacity(); }
  void fill(float value);
  /// Set every element to zero (used for gradient reset between steps).
  void zero() { fill(0.0f); }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  /// Exact element-wise equality (used to verify replica synchronization).
  bool equals(const Tensor& other) const;
  /// Max |a-b| over elements; tensors must be the same shape.
  float max_abs_diff(const Tensor& other) const;

  void serialize(ByteWriter& w) const;
  static Tensor deserialize(ByteReader& r);
  /// Serialized size in bytes (what the simulated network charges).
  std::size_t byte_size() const;

  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace semcache::tensor
