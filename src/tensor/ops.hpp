// Free-function tensor operations. All value-returning functions validate
// shapes and return fresh tensors; the `_into` / `_acc` variants write into a
// caller-provided output tensor (resized in place, capacity reused) so hot
// loops run allocation-free after warm-up.
//
// The matmul family shares one register-tiled kernel (see ops.cpp). Per
// C-element summation order is identical to the naive reference, so the fast
// kernels are bit-exact against matmul_reference — tests rely on this.
//
// Worker pools: the forward kernels the serving path leans on
// (matmul_into, affine_into, row_argmax) accept an optional
// common::ThreadPool and row-partition the output across workers when the
// shape is worth a fan-out. Because each output row's summation order is
// fixed, the result is bit-identical for ANY partition — pool, worker
// count, and scheduling never change a single bit (tests pin this).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace semcache::common {
class ThreadPool;
}  // namespace semcache::common

namespace semcache::tensor {

/// c = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b, element-wise product (same shape).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s.
Tensor scale(const Tensor& a, float s);
/// a += b (same shape), returns a reference to a.
Tensor& add_inplace(Tensor& a, const Tensor& b);
/// a += b * s (same shape); fused scale-accumulate for optimizers.
Tensor& axpy_inplace(Tensor& a, const Tensor& b, float s);

/// Matrix product of rank-2 tensors: (m x k) * (k x n) -> (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Naive triple-loop matmul kept as the bit-exact oracle for kernel tests.
Tensor matmul_reference(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);
/// y = x * W + broadcast(bias): x (m x k), w (k x n), bias rank-1 (n).
Tensor affine(const Tensor& x, const Tensor& w, const Tensor& bias);

// --- out-parameter kernels (blocked/register-tiled; see ops.cpp) ---------
// The output must not alias either input. `_into` overwrites the output
// (resizing it, reusing capacity); `_acc` accumulates into it and requires
// the exact result shape.

/// c = a * b. A non-null pool row-partitions C across workers for large
/// shapes (bit-identical to the sequential kernel, see file comment).
void matmul_into(Tensor& c, const Tensor& a, const Tensor& b,
                 common::ThreadPool* pool = nullptr);
/// c += a * b.
void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b);
/// c = aᵀ * b for a (k x m), b (k x n): the dW = xᵀ·dy shape.
void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b);
/// c += aᵀ * b (gradient accumulation without materializing xᵀ).
void matmul_tn_acc(Tensor& c, const Tensor& a, const Tensor& b);
/// c = a * bᵀ for a (m x k), b (n x k): the dx = dy·Wᵀ shape.
void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b);
/// c += a * bᵀ.
void matmul_nt_acc(Tensor& c, const Tensor& a, const Tensor& b);
/// y = x * W + broadcast(bias), bias added in the kernel epilogue. A
/// non-null pool row-partitions like matmul_into.
void affine_into(Tensor& y, const Tensor& x, const Tensor& w,
                 const Tensor& bias, common::ThreadPool* pool = nullptr);
/// y = relu(x * W + broadcast(bias)) with the clamp fused into the bias
/// epilogue — bit-identical to affine_into followed by an elementwise
/// `v < 0 ? 0 : v` pass, one less sweep over y.
void affine_relu_into(Tensor& y, const Tensor& x, const Tensor& w,
                      const Tensor& bias, common::ThreadPool* pool = nullptr);
/// t = aᵀ.
void transpose_into(Tensor& t, const Tensor& a);

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor row_softmax(const Tensor& logits);
/// Row-wise argmax of a rank-2 tensor. A non-null pool row-partitions
/// large inputs (each row writes only its own output slot).
std::vector<std::int32_t> row_argmax(const Tensor& t,
                                     common::ThreadPool* pool = nullptr);

/// Apply f element-wise.
Tensor map(const Tensor& a, const std::function<float(float)>& f);

/// Sum of all elements.
float sum(const Tensor& a);
/// Mean of all elements.
float mean(const Tensor& a);
/// Dot product of two same-shape tensors viewed flat.
float dot(const Tensor& a, const Tensor& b);
/// L2 norm over all elements.
float l2_norm(const Tensor& a);

/// Sum rows of a rank-2 tensor into a rank-1 tensor of length cols.
Tensor column_sums(const Tensor& a);
/// out += column sums of a (out must be rank-1 of length a.dim(1)).
void column_sums_acc(Tensor& out, const Tensor& a);

/// The kernel path the NEXT matmul-family call will take: "avx2-fma" or
/// "avx2-muladd" when the AVX2 kernels are built, the CPU supports them,
/// the equivalence probe matched that flavor, and the active SIMD tier
/// (common::active_simd_tier) admits them; "scalar" otherwise. Tests and
/// benches use this to assert/record what actually engaged.
const char* active_matmul_path();

}  // namespace semcache::tensor
