// Free-function tensor operations. All functions validate shapes and return
// fresh tensors (value semantics); in-place accumulation variants exist for
// the hot gradient paths.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace semcache::tensor {

/// c = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b, element-wise product (same shape).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s.
Tensor scale(const Tensor& a, float s);
/// a += b (same shape), returns a reference to a.
Tensor& add_inplace(Tensor& a, const Tensor& b);
/// a += b * s (same shape); fused scale-accumulate for optimizers.
Tensor& axpy_inplace(Tensor& a, const Tensor& b, float s);

/// Matrix product of rank-2 tensors: (m x k) * (k x n) -> (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);
/// y = x * W + broadcast(bias): x (m x k), w (k x n), bias rank-1 (n).
Tensor affine(const Tensor& x, const Tensor& w, const Tensor& bias);

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor row_softmax(const Tensor& logits);
/// Row-wise argmax of a rank-2 tensor.
std::vector<std::int32_t> row_argmax(const Tensor& t);

/// Apply f element-wise.
Tensor map(const Tensor& a, const std::function<float(float)>& f);

/// Sum of all elements.
float sum(const Tensor& a);
/// Mean of all elements.
float mean(const Tensor& a);
/// Dot product of two same-shape tensors viewed flat.
float dot(const Tensor& a, const Tensor& b);
/// L2 norm over all elements.
float l2_norm(const Tensor& a);

/// Sum rows of a rank-2 tensor into a rank-1 tensor of length cols.
Tensor column_sums(const Tensor& a);

}  // namespace semcache::tensor
