#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace semcache::tensor {

namespace {
std::size_t volume(const std::vector<std::size_t>& shape) {
  std::size_t v = 1;
  for (const std::size_t d : shape) v *= d;
  return v;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(volume(shape_), 0.0f) {
  SEMCACHE_CHECK(!shape_.empty(), "Tensor shape must be non-empty");
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SEMCACHE_CHECK(!shape_.empty(), "Tensor shape must be non-empty");
  SEMCACHE_CHECK(data_.size() == volume(shape_),
                 "Tensor data size " + std::to_string(data_.size()) +
                     " does not match shape volume " +
                     std::to_string(volume(shape_)));
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(std::vector<std::size_t> shape, float limit, Rng& rng) {
  SEMCACHE_CHECK(limit >= 0.0f, "Tensor::uniform: limit must be >= 0");
  Tensor t(std::move(shape));
  for (float& x : t.data_) {
    x = static_cast<float>(rng.uniform(-limit, limit));
  }
  return t;
}

Tensor Tensor::xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return uniform({fan_in, fan_out}, limit, rng);
}

std::size_t Tensor::dim(std::size_t axis) const {
  SEMCACHE_CHECK(axis < shape_.size(), "Tensor::dim: axis out of range");
  return shape_[axis];
}

std::size_t Tensor::rows() const {
  SEMCACHE_CHECK(rank() >= 1 && rank() <= 2, "Tensor::rows: rank must be 1 or 2");
  return rank() == 1 ? 1 : shape_[0];
}

std::size_t Tensor::cols() const {
  SEMCACHE_CHECK(rank() >= 1 && rank() <= 2, "Tensor::cols: rank must be 1 or 2");
  return rank() == 1 ? shape_[0] : shape_[1];
}

float& Tensor::at(std::size_t i) {
  SEMCACHE_CHECK(i < data_.size(), "Tensor::at(i): index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  SEMCACHE_CHECK(i < data_.size(), "Tensor::at(i): index out of range");
  return data_[i];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  SEMCACHE_CHECK(rank() == 2, "Tensor::at(r,c): rank-2 tensor required");
  SEMCACHE_CHECK(r < shape_[0] && c < shape_[1],
                 "Tensor::at(r,c): index out of range");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  SEMCACHE_CHECK(rank() == 2, "Tensor::at(r,c): rank-2 tensor required");
  SEMCACHE_CHECK(r < shape_[0] && c < shape_[1],
                 "Tensor::at(r,c): index out of range");
  return data_[r * shape_[1] + c];
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  SEMCACHE_CHECK(volume(shape) == data_.size(),
                 "Tensor::reshape must preserve volume");
  shape_ = std::move(shape);
}

void Tensor::resize(std::vector<std::size_t> shape) {
  SEMCACHE_CHECK(!shape.empty(), "Tensor::resize: shape must be non-empty");
  const std::size_t v = volume(shape);
  if (data_.size() != v) data_.resize(v);
  shape_ = std::move(shape);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  SEMCACHE_CHECK(same_shape(other),
                 "max_abs_diff requires identical shapes (" + shape_string() +
                     " vs " + other.shape_string() + ")");
  float m = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

void Tensor::serialize(ByteWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(shape_.size()));
  for (const std::size_t d : shape_) w.write_u32(static_cast<std::uint32_t>(d));
  w.write_f32_vector(data_);
}

Tensor Tensor::deserialize(ByteReader& r) {
  const std::uint32_t rank = r.read_u32();
  SEMCACHE_CHECK(rank >= 1 && rank <= 4, "Tensor::deserialize: bad rank");
  std::vector<std::size_t> shape(rank);
  for (auto& d : shape) d = r.read_u32();
  std::vector<float> data = r.read_f32_vector();
  return Tensor(std::move(shape), std::move(data));
}

std::size_t Tensor::byte_size() const {
  // rank + dims + element count + payload, matching serialize().
  return 4 + 4 * shape_.size() + 4 + 4 * data_.size();
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace semcache::tensor
