#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/cpu.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "tensor/simd_kernels.hpp"

namespace semcache::tensor {

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  SEMCACHE_CHECK(a.same_shape(b), std::string(op) + ": shape mismatch " +
                                      a.shape_string() + " vs " +
                                      b.shape_string());
}

void require_matmul_shapes(const Tensor& a, const Tensor& b, const char* op) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2,
                 std::string(op) + ": rank-2 required");
  SEMCACHE_CHECK(a.dim(1) == b.dim(0),
                 std::string(op) + ": inner dims differ, " + a.shape_string() +
                     " * " + b.shape_string());
}

void require_no_alias(const Tensor& c, const Tensor& a, const Tensor& b,
                      const char* op) {
  SEMCACHE_CHECK(c.data() != a.data() && c.data() != b.data(),
                 std::string(op) + ": output must not alias an input");
}

// Register-tiled ikj matmul micro-kernel: c (m x n) += a (m x k) * b (k x n).
//
// Four C rows are carried per pass, so every streamed B row is reused four
// times from registers (4x the arithmetic intensity of the naive ikj loop);
// the contiguous j-loop auto-vectorizes. Per C-element the summation is
// still a_i0*b_0j + a_i1*b_1j + ... in ascending k order — exactly the
// reference order — so results are bit-identical to matmul_reference.
constexpr std::size_t kRowTile = 4;

void gemm_nn(std::size_t m, std::size_t k, std::size_t n,
             const float* __restrict a, const float* __restrict b,
             float* __restrict c) {
  std::size_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    float* __restrict c0 = c + (i + 0) * n;
    float* __restrict c1 = c + (i + 1) * n;
    float* __restrict c2 = c + (i + 2) * n;
    float* __restrict c3 = c + (i + 3) * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a0 = a[(i + 0) * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      const float* __restrict brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float bv = brow[j];
        c0[j] += a0 * bv;
        c1[j] += a1 * bv;
        c2[j] += a2 * bv;
        c3[j] += a3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* __restrict crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      const float* __restrict brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Transposed-A variant: c (m x n) += aᵀ * b with a stored (k x m). Same
// tiling as gemm_nn; A is read down a column (stride m), which is the
// natural layout for dW = xᵀ·dy without materializing the transpose.
void gemm_tn(std::size_t m, std::size_t k, std::size_t n,
             const float* __restrict a, const float* __restrict b,
             float* __restrict c) {
  std::size_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    float* __restrict c0 = c + (i + 0) * n;
    float* __restrict c1 = c + (i + 1) * n;
    float* __restrict c2 = c + (i + 2) * n;
    float* __restrict c3 = c + (i + 3) * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* __restrict acol = a + kk * m + i;
      const float a0 = acol[0];
      const float a1 = acol[1];
      const float a2 = acol[2];
      const float a3 = acol[3];
      const float* __restrict brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float bv = brow[j];
        c0[j] += a0 * bv;
        c1[j] += a1 * bv;
        c2[j] += a2 * bv;
        c3[j] += a3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* __restrict crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[kk * m + i];
      const float* __restrict brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Transposed-B products run through gemm_nn on a thread-local transposed
// copy of B. The scratch is reused across calls (no steady-state
// allocation), and going through gemm_nn keeps the summation order — and
// therefore bit-exactness vs. matmul(a, transpose(b)) — intact, while the
// inner loop stays contiguous/vectorizable instead of a strided dot.
const float* transpose_scratch(const Tensor& b) {
  static thread_local std::vector<float> scratch;
  const std::size_t rows = b.dim(0);
  const std::size_t cols = b.dim(1);
  if (scratch.size() < b.size()) scratch.resize(b.size());
  const float* __restrict pb = b.data();
  float* __restrict ps = scratch.data();
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) ps[j * rows + i] = pb[i * cols + j];
  }
  return ps;
}

void bias_epilogue(std::size_t m, std::size_t n, const float* __restrict bias,
                   float* __restrict c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] += bias[j];
  }
}

// Fused bias+ReLU epilogue. `v < 0 ? 0 : v` (not max) so NaN and -0.0f pass
// through unchanged, matching both the standalone ReLU layer and the AVX2
// epilogue's maxps semantics bit-for-bit.
void bias_relu_epilogue(std::size_t m, std::size_t n,
                        const float* __restrict bias, float* __restrict c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float v = crow[j] + bias[j];
      crow[j] = v < 0.0f ? 0.0f : v;
    }
  }
}

// ---- SIMD dispatch -------------------------------------------------------
//
// The AVX2 kernel table (ops_avx2.cpp) carries each gemm in two flavors:
// explicit-FMA and strict multiply-then-add. Which one is bit-identical to
// the scalar kernels above depends on how THIS translation unit was
// compiled — Release (-O3, gcc's default -ffp-contract=fast) contracts the
// scalar c += a*b into hardware FMA, the -O1 sanitizer configs do not — so
// the choice is settled empirically, once, by running both flavors against
// the as-built scalar kernel on a probe containing a value pattern where
// fused and unfused accumulation MUST differ in the last bit. Whichever
// flavor matches bit-for-bit is installed; if neither does (a compiler
// splitting contraction mid-chain, say), the AVX2 path stays disabled and
// the scalar kernels remain in sole charge.

// Deterministic full-mantissa values in [-1, 1) for the probe fill.
float probe_value(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  const std::uint32_t mant = static_cast<std::uint32_t>(state >> 40) & 0xFFFFFF;
  return (static_cast<float>(mant) - 8388608.0f) / 8388608.0f;
}

bool probe_matches(bool trans, detail::GemmFn candidate) {
  // 8 x 4 x 27 covers the candidate's 6-row block plus a 2-row tail, one
  // 16-wide and one 8-wide column block plus a 3-column scalar tail. The
  // shape is laundered through volatile so the compiler cannot specialize
  // the inlined scalar kernel for it — the probe must run the exact code
  // every real call site runs.
  static volatile std::size_t vm = 8, vk = 4, vn = 27;
  const std::size_t m = vm, k = vk, n = vn;
  std::vector<float> a(m * k), b(k * n), ref(m * n), out(m * n);
  std::uint64_t s = 0x5eed5eedULL;
  for (float& v : a) v = probe_value(s);
  for (float& v : b) v = probe_value(s);
  for (std::size_t i = 0; i < ref.size(); ++i) out[i] = ref[i] = probe_value(s);
  // Adversarial column 0: starting from exactly -1.0f, accumulating
  // (1 + 2^-23) * (1 - 2^-23) lands on -2^-46 when the multiply-add is
  // fused (the product is exact inside the fma) but on +0.0f when the
  // product is rounded first (it rounds to 1.0f). The remaining k steps
  // multiply by zero and preserve the split, so exactly one flavor can
  // match the as-built scalar kernel here.
  for (std::size_t r = 0; r < m; ++r) {
    a[trans ? 0 * m + r : r * k + 0] = 1.0f;
    a[trans ? 1 * m + r : r * k + 1] = 1.0f + 0x1p-23f;
    out[r * n + 0] = ref[r * n + 0] = 0.0f;
  }
  b[0 * n + 0] = -1.0f;
  b[1 * n + 0] = 1.0f - 0x1p-23f;
  b[2 * n + 0] = 0.0f;
  b[3 * n + 0] = 0.0f;
  if (trans) {
    gemm_tn(m, k, n, a.data(), b.data(), ref.data());
  } else {
    gemm_nn(m, k, n, a.data(), b.data(), ref.data());
  }
  candidate(m, k, n, a.data(), b.data(), out.data());
  return std::memcmp(ref.data(), out.data(), ref.size() * sizeof(float)) == 0;
}

struct SimdDispatch {
  detail::GemmFn nn = nullptr;
  detail::GemmFn tn = nullptr;
  detail::EpilogueFn bias = nullptr;
  detail::EpilogueFn bias_relu = nullptr;
  const char* path = "scalar";
};

const SimdDispatch& simd_dispatch() {
  static const SimdDispatch dispatch = [] {
    SimdDispatch d;
    const detail::Avx2TensorKernels* kt = detail::avx2_tensor_kernels();
    const common::CpuFeatures& f = common::cpu_features();
    if (kt == nullptr || !f.avx2 || !f.fma) {
      common::log_once("simd.tensor",
                       kt == nullptr
                           ? "tensor kernels: scalar (no AVX2 code in build)"
                           : "tensor kernels: scalar (CPU lacks AVX2+FMA)",
                       common::LogLevel::kInfo);
      return d;
    }
    const bool nn_fma = probe_matches(false, kt->gemm_nn_fma);
    const bool nn_mul = !nn_fma && probe_matches(false, kt->gemm_nn_muladd);
    const bool tn_fma = probe_matches(true, kt->gemm_tn_fma);
    const bool tn_mul = !tn_fma && probe_matches(true, kt->gemm_tn_muladd);
    if ((nn_fma || nn_mul) && (tn_fma || tn_mul) && nn_fma == tn_fma) {
      d.nn = nn_fma ? kt->gemm_nn_fma : kt->gemm_nn_muladd;
      d.tn = tn_fma ? kt->gemm_tn_fma : kt->gemm_tn_muladd;
      d.bias = kt->bias;
      d.bias_relu = kt->bias_relu;
      d.path = nn_fma ? "avx2-fma" : "avx2-muladd";
      common::log_once("simd.tensor",
                       std::string("tensor kernels: ") + d.path +
                           " (probe matched the as-built scalar kernels)",
                       common::LogLevel::kInfo);
    } else {
      common::log_once(
          "simd.tensor",
          "tensor kernels: scalar (equivalence probe matched neither AVX2 "
          "flavor; keeping the reference kernels)",
          common::LogLevel::kWarn);
    }
    return d;
  }();
  return dispatch;
}

inline bool simd_engaged(const SimdDispatch& d) {
  return d.nn != nullptr &&
         common::active_simd_tier() == common::SimdTier::kAvx2;
}

void gemm_nn_d(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  const SimdDispatch& d = simd_dispatch();
  if (simd_engaged(d)) {
    d.nn(m, k, n, a, b, c);
  } else {
    gemm_nn(m, k, n, a, b, c);
  }
}

void gemm_tn_d(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  const SimdDispatch& d = simd_dispatch();
  if (simd_engaged(d)) {
    d.tn(m, k, n, a, b, c);
  } else {
    gemm_tn(m, k, n, a, b, c);
  }
}

void bias_epilogue_d(std::size_t m, std::size_t n, const float* bias,
                     float* c) {
  const SimdDispatch& d = simd_dispatch();
  if (simd_engaged(d)) {
    d.bias(m, n, bias, c);
  } else {
    bias_epilogue(m, n, bias, c);
  }
}

void bias_relu_epilogue_d(std::size_t m, std::size_t n, const float* bias,
                          float* c) {
  const SimdDispatch& d = simd_dispatch();
  if (simd_engaged(d)) {
    d.bias_relu(m, n, bias, c);
  } else {
    bias_relu_epilogue(m, n, bias, c);
  }
}

// Row-partitioned dispatch for the pooled kernels: run(begin, end) covers
// a contiguous, kRowTile-aligned block of output rows per worker. Bit-
// exactness never depends on the partition — each output row's summation
// order is fixed by the kernel — so where the cuts fall (and whether the
// pool engages at all) is purely a scheduling/throughput choice; `grain`
// is the per-row work floor below which a fan-out costs more than it buys.
// Templated on the body so the ubiquitous sequential case (null pool —
// every training step, every small forward) is a direct inlined call:
// type erasure only happens on the branch that actually fans out.
template <typename RowRangeFn>
void parallel_rows(std::size_t m, std::size_t row_work, std::size_t grain,
                   common::ThreadPool* pool, const RowRangeFn& run) {
  const std::size_t workers = pool != nullptr ? pool->worker_count() : 0;
  // On a pool worker already (e.g. a cross-pair serving task driving this
  // model), nested fan-out is rejected by the pool — run the whole range
  // inline instead; the cut placement never changes the bits.
  if (workers < 2 || m < 2 * kRowTile || m * row_work < grain ||
      common::ThreadPool::on_worker_thread()) {
    run(0, m);
    return;
  }
  const std::size_t blocks = std::min(workers, m / kRowTile);
  const std::size_t per =
      (m / blocks + kRowTile - 1) / kRowTile * kRowTile;  // tile-aligned
  pool->parallel_for(blocks, [&](std::size_t block, std::size_t) {
    const std::size_t begin = block * per;
    const std::size_t end = block + 1 == blocks ? m : std::min(m, begin + per);
    if (begin < end) run(begin, end);
  });
}

// Fan-out floor in per-element kernel work units (MAC-equivalents): below
// this the pool wake-up dominates. The serving decoder's hidden->vocab
// affine (256 x 48 x 200 at batch 32) sits well above it, the per-message
// single-row passes well below.
constexpr std::size_t kParallelKernelGrain = 100'000;
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] += pb[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] -= pb[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= pb[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  float* pc = c.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= s;
  return c;
}

Tensor& add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
  return a;
}

Tensor& axpy_inplace(Tensor& a, const Tensor& b, float s) {
  require_same_shape(a, b, "axpy_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i] * s;
  return a;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matmul_shapes(a, b, "matmul");
  Tensor c({a.dim(0), b.dim(1)});  // zero-filled
  gemm_nn_d(a.dim(0), a.dim(1), b.dim(1), a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  require_matmul_shapes(a, b, "matmul_reference");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: streams through b and c rows, cache-friendly. No
  // zero-skip anywhere in the matmul family: every path accumulates every
  // a*b product, so the fast kernels agree with this oracle bit-for-bit
  // even on non-finite inputs (a skipped 0 * Inf would hide a NaN).
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void matmul_into(Tensor& c, const Tensor& a, const Tensor& b,
                 common::ThreadPool* pool) {
  require_matmul_shapes(a, b, "matmul_into");
  require_no_alias(c, a, b, "matmul_into");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  c.resize({m, n});
  parallel_rows(m, k * n, kParallelKernelGrain, pool,
                [&](std::size_t begin, std::size_t end) {
                  std::memset(c.data() + begin * n, 0,
                              (end - begin) * n * sizeof(float));
                  gemm_nn_d(end - begin, k, n, a.data() + begin * k, b.data(),
                            c.data() + begin * n);
                });
}

void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  require_matmul_shapes(a, b, "matmul_acc");
  require_no_alias(c, a, b, "matmul_acc");
  SEMCACHE_CHECK(c.rank() == 2 && c.dim(0) == a.dim(0) && c.dim(1) == b.dim(1),
                 "matmul_acc: accumulator shape mismatch");
  gemm_nn_d(a.dim(0), a.dim(1), b.dim(1), a.data(), b.data(), c.data());
}

void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn_into: aᵀb requires matching row counts");
  require_no_alias(c, a, b, "matmul_tn_into");
  c.resize({a.dim(1), b.dim(1)});
  std::memset(c.data(), 0, c.size() * sizeof(float));
  gemm_tn_d(a.dim(1), a.dim(0), b.dim(1), a.data(), b.data(), c.data());
}

void matmul_tn_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn_acc: aᵀb requires matching row counts");
  require_no_alias(c, a, b, "matmul_tn_acc");
  SEMCACHE_CHECK(c.rank() == 2 && c.dim(0) == a.dim(1) && c.dim(1) == b.dim(1),
                 "matmul_tn_acc: accumulator shape mismatch");
  gemm_tn_d(a.dim(1), a.dim(0), b.dim(1), a.data(), b.data(), c.data());
}

void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt_into: abᵀ requires matching column counts");
  require_no_alias(c, a, b, "matmul_nt_into");
  c.resize({a.dim(0), b.dim(0)});
  std::memset(c.data(), 0, c.size() * sizeof(float));
  gemm_nn_d(a.dim(0), a.dim(1), b.dim(0), a.data(), transpose_scratch(b),
            c.data());
}

void matmul_nt_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt_acc: abᵀ requires matching column counts");
  require_no_alias(c, a, b, "matmul_nt_acc");
  SEMCACHE_CHECK(c.rank() == 2 && c.dim(0) == a.dim(0) && c.dim(1) == b.dim(0),
                 "matmul_nt_acc: accumulator shape mismatch");
  gemm_nn_d(a.dim(0), a.dim(1), b.dim(0), a.data(), transpose_scratch(b),
            c.data());
}

void affine_into(Tensor& y, const Tensor& x, const Tensor& w,
                 const Tensor& bias, common::ThreadPool* pool) {
  SEMCACHE_CHECK(bias.rank() == 1, "affine_into: bias must be rank-1");
  SEMCACHE_CHECK(w.rank() == 2 && bias.dim(0) == w.dim(1),
                 "affine_into: bias length must equal W cols");
  require_matmul_shapes(x, w, "affine_into");
  require_no_alias(y, x, w, "affine_into");
  SEMCACHE_CHECK(y.data() != bias.data(),
                 "affine_into: output must not alias bias");
  const std::size_t m = x.dim(0);
  const std::size_t k = x.dim(1);
  const std::size_t n = w.dim(1);
  y.resize({m, n});
  parallel_rows(m, k * n, kParallelKernelGrain, pool,
                [&](std::size_t begin, std::size_t end) {
                  std::memset(y.data() + begin * n, 0,
                              (end - begin) * n * sizeof(float));
                  gemm_nn_d(end - begin, k, n, x.data() + begin * k, w.data(),
                            y.data() + begin * n);
                  // Bias rides in the epilogue while y is still cache-hot
                  // (and without the per-element bounds checks the old
                  // at(i,j) second pass paid).
                  bias_epilogue_d(end - begin, n, bias.data(),
                                  y.data() + begin * n);
                });
}

void affine_relu_into(Tensor& y, const Tensor& x, const Tensor& w,
                      const Tensor& bias, common::ThreadPool* pool) {
  SEMCACHE_CHECK(bias.rank() == 1, "affine_relu_into: bias must be rank-1");
  SEMCACHE_CHECK(w.rank() == 2 && bias.dim(0) == w.dim(1),
                 "affine_relu_into: bias length must equal W cols");
  require_matmul_shapes(x, w, "affine_relu_into");
  require_no_alias(y, x, w, "affine_relu_into");
  SEMCACHE_CHECK(y.data() != bias.data(),
                 "affine_relu_into: output must not alias bias");
  const std::size_t m = x.dim(0);
  const std::size_t k = x.dim(1);
  const std::size_t n = w.dim(1);
  y.resize({m, n});
  parallel_rows(m, k * n, kParallelKernelGrain, pool,
                [&](std::size_t begin, std::size_t end) {
                  std::memset(y.data() + begin * n, 0,
                              (end - begin) * n * sizeof(float));
                  gemm_nn_d(end - begin, k, n, x.data() + begin * k, w.data(),
                            y.data() + begin * n);
                  // ReLU is an elementwise clamp after the full sum, so
                  // fusing it into the bias epilogue changes no bits vs.
                  // affine_into followed by a standalone ReLU pass.
                  bias_relu_epilogue_d(end - begin, n, bias.data(),
                                       y.data() + begin * n);
                });
}

const char* active_matmul_path() {
  const SimdDispatch& d = simd_dispatch();
  return simd_engaged(d) ? d.path : "scalar";
}

Tensor transpose(const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "transpose: rank-2 required");
  Tensor t({a.dim(1), a.dim(0)});
  transpose_into(t, a);
  return t;
}

void transpose_into(Tensor& t, const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "transpose_into: rank-2 required");
  SEMCACHE_CHECK(t.data() != a.data(),
                 "transpose_into: output must not alias input");
  const std::size_t m = a.dim(0);
  const std::size_t n = a.dim(1);
  t.resize({n, m});
  const float* __restrict pa = a.data();
  float* __restrict pt = t.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) pt[j * m + i] = pa[i * n + j];
  }
}

Tensor affine(const Tensor& x, const Tensor& w, const Tensor& bias) {
  Tensor y;
  affine_into(y, x, w, bias);
  return y;
}

Tensor row_softmax(const Tensor& logits) {
  SEMCACHE_CHECK(logits.rank() == 2, "row_softmax: rank-2 required");
  Tensor out = logits;
  const std::size_t m = out.dim(0);
  const std::size_t n = out.dim(1);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = out.data() + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - mx);
      row[j] = e;
      denom += e;
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
  return out;
}

std::vector<std::int32_t> row_argmax(const Tensor& t,
                                     common::ThreadPool* pool) {
  SEMCACHE_CHECK(t.rank() == 2, "row_argmax: rank-2 required");
  const std::size_t m = t.dim(0);
  const std::size_t n = t.dim(1);
  std::vector<std::int32_t> out(m);
  const float* __restrict p = t.data();
  // A compare is cheaper than a MAC but the scan is memory-bound; the
  // halved floor lets serving-size logit batches (batch 32 x L x vocab)
  // shed their scan while single messages stay inline.
  parallel_rows(m, n, kParallelKernelGrain / 2, pool,
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    const float* __restrict row = p + i * n;
                    std::size_t best = 0;
                    for (std::size_t j = 1; j < n; ++j) {
                      if (row[j] > row[best]) best = j;
                    }
                    out[i] = static_cast<std::int32_t>(best);
                  }
                });
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.at(i) = f(c.at(i));
  return c;
}

float sum(const Tensor& a) {
  float s = 0.0f;
  for (const float x : a.flat()) s += x;
  return s;
}

float mean(const Tensor& a) {
  SEMCACHE_CHECK(a.size() > 0, "mean: empty tensor");
  return sum(a) / static_cast<float>(a.size());
}

float dot(const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.size() == b.size(), "dot: size mismatch");
  float s = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

float l2_norm(const Tensor& a) { return std::sqrt(dot(a, a)); }

Tensor column_sums(const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "column_sums: rank-2 required");
  Tensor out({a.dim(1)});
  column_sums_acc(out, a);
  return out;
}

void column_sums_acc(Tensor& out, const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "column_sums_acc: rank-2 required");
  SEMCACHE_CHECK(out.rank() == 1 && out.dim(0) == a.dim(1),
                 "column_sums_acc: accumulator must be rank-1 of length cols");
  const std::size_t m = a.dim(0);
  const std::size_t n = a.dim(1);
  const float* __restrict pa = a.data();
  float* __restrict po = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict arow = pa + i * n;
    for (std::size_t j = 0; j < n; ++j) po[j] += arow[j];
  }
}

}  // namespace semcache::tensor
