#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::tensor {

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  SEMCACHE_CHECK(a.same_shape(b), std::string(op) + ": shape mismatch " +
                                      a.shape_string() + " vs " +
                                      b.shape_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] += pb[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] -= pb[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= pb[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  float* pc = c.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= s;
  return c;
}

Tensor& add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
  return a;
}

Tensor& axpy_inplace(Tensor& a, const Tensor& b, float s) {
  require_same_shape(a, b, "axpy_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i] * s;
  return a;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 required");
  SEMCACHE_CHECK(a.dim(1) == b.dim(0),
                 "matmul: inner dims differ, " + a.shape_string() + " * " +
                     b.shape_string());
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: streams through b and c rows, cache-friendly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "transpose: rank-2 required");
  const std::size_t m = a.dim(0);
  const std::size_t n = a.dim(1);
  Tensor t({n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor affine(const Tensor& x, const Tensor& w, const Tensor& bias) {
  SEMCACHE_CHECK(bias.rank() == 1, "affine: bias must be rank-1");
  SEMCACHE_CHECK(w.rank() == 2 && bias.dim(0) == w.dim(1),
                 "affine: bias length must equal W cols");
  Tensor y = matmul(x, w);
  const std::size_t m = y.dim(0);
  const std::size_t n = y.dim(1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) y.at(i, j) += bias.at(j);
  }
  return y;
}

Tensor row_softmax(const Tensor& logits) {
  SEMCACHE_CHECK(logits.rank() == 2, "row_softmax: rank-2 required");
  Tensor out = logits;
  const std::size_t m = out.dim(0);
  const std::size_t n = out.dim(1);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = out.data() + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - mx);
      row[j] = e;
      denom += e;
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
  return out;
}

std::vector<std::int32_t> row_argmax(const Tensor& t) {
  SEMCACHE_CHECK(t.rank() == 2, "row_argmax: rank-2 required");
  std::vector<std::int32_t> out(t.dim(0));
  for (std::size_t i = 0; i < t.dim(0); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < t.dim(1); ++j) {
      if (t.at(i, j) > t.at(i, best)) best = j;
    }
    out[i] = static_cast<std::int32_t>(best);
  }
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.at(i) = f(c.at(i));
  return c;
}

float sum(const Tensor& a) {
  float s = 0.0f;
  for (const float x : a.flat()) s += x;
  return s;
}

float mean(const Tensor& a) {
  SEMCACHE_CHECK(a.size() > 0, "mean: empty tensor");
  return sum(a) / static_cast<float>(a.size());
}

float dot(const Tensor& a, const Tensor& b) {
  SEMCACHE_CHECK(a.size() == b.size(), "dot: size mismatch");
  float s = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

float l2_norm(const Tensor& a) { return std::sqrt(dot(a, a)); }

Tensor column_sums(const Tensor& a) {
  SEMCACHE_CHECK(a.rank() == 2, "column_sums: rank-2 required");
  Tensor out({a.dim(1)});
  for (std::size_t i = 0; i < a.dim(0); ++i) {
    for (std::size_t j = 0; j < a.dim(1); ++j) out.at(j) += a.at(i, j);
  }
  return out;
}

}  // namespace semcache::tensor
