#include "semantic/trainer.hpp"

#include "nn/optimizer.hpp"

namespace semcache::semantic {

namespace {
TrainStats run_steps(SemanticCodec& codec, const TrainConfig& config,
                     const std::function<Sample()>& next_sample, Rng& rng) {
  nn::Adam opt(config.lr);
  nn::ParameterSet params = codec.parameters();
  TrainStats stats;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const Sample s = next_sample();
    nn::Optimizer::zero_grad(params.params());
    const double loss = codec.forward_loss(
        s.surface, s.meanings, static_cast<float>(config.feature_noise), &rng);
    codec.backward();
    nn::Optimizer::clip_grad_norm(params.params(), config.grad_clip);
    opt.step(params.params());
    if (step == 0) stats.first_loss = loss;
    stats.final_loss = loss;
    ++stats.steps;
  }
  return stats;
}
}  // namespace

Sample CodecTrainer::draw_sample(const text::World& world, std::size_t domain,
                                 const text::Idiolect* idiolect, Rng& rng) {
  text::Sentence s = world.sample_sentence(domain, rng);
  if (idiolect != nullptr) idiolect->apply(s);
  return {std::move(s.surface), std::move(s.meanings)};
}

TrainStats CodecTrainer::pretrain_domain(SemanticCodec& codec,
                                         const text::World& world,
                                         std::size_t domain,
                                         const TrainConfig& config, Rng& rng) {
  return run_steps(codec, config, [&] {
    return draw_sample(world, domain, nullptr, rng);
  }, rng);
}

TrainStats CodecTrainer::pretrain_pooled(SemanticCodec& codec,
                                         const text::World& world,
                                         const TrainConfig& config, Rng& rng) {
  return run_steps(codec, config, [&] {
    const auto domain = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(world.num_domains()) - 1));
    return draw_sample(world, domain, nullptr, rng);
  }, rng);
}

TrainStats CodecTrainer::finetune(SemanticCodec& codec,
                                  std::span<const Sample> samples,
                                  std::size_t epochs, double lr, Rng& rng,
                                  double feature_noise) {
  SEMCACHE_CHECK(!samples.empty(), "finetune: no samples");
  nn::Adam opt(lr);
  nn::ParameterSet params = codec.parameters();
  TrainStats stats;
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t idx : order) {
      const Sample& s = samples[idx];
      nn::Optimizer::zero_grad(params.params());
      const double loss = codec.forward_loss(
          s.surface, s.meanings, static_cast<float>(feature_noise), &rng);
      codec.backward();
      nn::Optimizer::clip_grad_norm(params.params(), 5.0);
      opt.step(params.params());
      if (stats.steps == 0) stats.first_loss = loss;
      stats.final_loss = loss;
      ++stats.steps;
    }
  }
  return stats;
}

}  // namespace semcache::semantic
