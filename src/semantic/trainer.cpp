#include "semantic/trainer.hpp"

#include <algorithm>

#include "nn/optimizer.hpp"
#include "semantic/fixture_cache.hpp"

namespace semcache::semantic {

namespace {
TrainStats run_steps(SemanticCodec& codec, const TrainConfig& config,
                     const std::function<Sample()>& next_sample, Rng& rng) {
  nn::Adam opt(config.lr);
  nn::ParameterSet params = codec.parameters();
  TrainStats stats;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const Sample s = next_sample();
    nn::Optimizer::zero_grad(params.params());
    const double loss = codec.forward_loss(
        s.surface, s.meanings, static_cast<float>(config.feature_noise), &rng);
    codec.backward();
    nn::Optimizer::clip_grad_norm(params.params(), config.grad_clip);
    opt.step(params.params());
    if (step == 0) stats.first_loss = loss;
    stats.final_loss = loss;
    ++stats.steps;
  }
  return stats;
}
}  // namespace

Sample CodecTrainer::draw_sample(const text::World& world, std::size_t domain,
                                 const text::Idiolect* idiolect, Rng& rng) {
  text::Sentence s = world.sample_sentence(domain, rng);
  if (idiolect != nullptr) idiolect->apply(s);
  return {std::move(s.surface), std::move(s.meanings)};
}

TrainStats CodecTrainer::pretrain_domain(SemanticCodec& codec,
                                         const text::World& world,
                                         std::size_t domain,
                                         const TrainConfig& config, Rng& rng) {
  std::uint64_t key = 0;
  if (FixtureCache::enabled()) {
    key = FixtureCache::key(codec, world, config, rng, 0xD0000000ULL + domain);
    if (auto stats = FixtureCache::try_load(key, codec, rng)) return *stats;
  }
  const TrainStats stats = run_steps(codec, config, [&] {
    return draw_sample(world, domain, nullptr, rng);
  }, rng);
  if (FixtureCache::enabled()) FixtureCache::store(key, codec, rng, stats);
  return stats;
}

TrainStats CodecTrainer::pretrain_pooled(SemanticCodec& codec,
                                         const text::World& world,
                                         const TrainConfig& config, Rng& rng) {
  std::uint64_t key = 0;
  if (FixtureCache::enabled()) {
    key = FixtureCache::key(codec, world, config, rng, 0xB00000000ULL);
    if (auto stats = FixtureCache::try_load(key, codec, rng)) return *stats;
  }
  const TrainStats stats = run_steps(codec, config, [&] {
    const auto domain = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(world.num_domains()) - 1));
    return draw_sample(world, domain, nullptr, rng);
  }, rng);
  if (FixtureCache::enabled()) FixtureCache::store(key, codec, rng, stats);
  return stats;
}

TrainStats CodecTrainer::finetune(SemanticCodec& codec,
                                  std::span<const Sample> samples,
                                  std::size_t epochs, double lr, Rng& rng,
                                  double feature_noise,
                                  std::size_t batch_size) {
  SEMCACHE_CHECK(!samples.empty(), "finetune: no samples");
  SEMCACHE_CHECK(batch_size >= 1, "finetune: batch_size must be >= 1");
  nn::Adam opt(lr);
  nn::ParameterSet params = codec.parameters();
  TrainStats stats;
  const std::size_t sentence_length = codec.config().sentence_length;
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Flat id buffers reused across steps (allocation-free after warm-up).
  std::vector<std::int32_t> surface;
  std::vector<std::int32_t> meanings;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t pos = 0; pos < order.size(); pos += batch_size) {
      const std::size_t count =
          std::min(batch_size, order.size() - pos);
      surface.clear();
      meanings.clear();
      for (std::size_t b = 0; b < count; ++b) {
        const Sample& s = samples[order[pos + b]];
        SEMCACHE_CHECK(s.surface.size() == sentence_length &&
                           s.meanings.size() == sentence_length,
                       "finetune: sample length mismatch");
        surface.insert(surface.end(), s.surface.begin(), s.surface.end());
        meanings.insert(meanings.end(), s.meanings.begin(), s.meanings.end());
      }
      nn::Optimizer::zero_grad(params.params());
      const double loss = codec.forward_loss_batch(
          surface, meanings, count, static_cast<float>(feature_noise), &rng);
      codec.backward();
      nn::Optimizer::clip_grad_norm(params.params(), 5.0);
      opt.step(params.params());
      if (stats.steps == 0) stats.first_loss = loss;
      stats.final_loss = loss;
      ++stats.steps;
    }
  }
  return stats;
}

}  // namespace semcache::semantic
