#include "semantic/fixture_cache.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/serialize.hpp"

namespace semcache::semantic {

namespace {
constexpr std::uint32_t kMagic = 0x53434658;  // "SCFX"
constexpr std::uint32_t kVersion = 1;

const char* cache_dir() {
  const char* dir = std::getenv("SEMCACHE_FIXTURE_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : nullptr;
}

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hash_bytes(const ByteWriter& w) {
  return fnv1a(0xCBF29CE484222325ULL, w.bytes().data(), w.size());
}

std::string engine_state(const Rng& rng) {
  std::ostringstream os;
  os << rng.engine();
  return os.str();
}

/// Content fingerprint of the generated world: vocab sizes plus a few
/// sentences drawn with a fixed probe RNG. The probe is local, so the
/// caller's RNG stream is untouched; the sampled ids reflect the realized
/// vocabulary and sense distribution, distinguishing worlds whose configs
/// agree but whose generation seeds differ.
void fingerprint_world(ByteWriter& w, const text::World& world) {
  w.write_u64(world.num_domains());
  w.write_u64(world.surface_count());
  w.write_u64(world.meaning_count());
  Rng probe(0xF00DF00D);
  for (std::size_t d = 0; d < world.num_domains(); ++d) {
    for (int s = 0; s < 2; ++s) {
      const text::Sentence sent = world.sample_sentence(d, probe);
      w.write_u64(sent.domain);
      for (const auto id : sent.surface) w.write_i32(id);
      for (const auto id : sent.meanings) w.write_i32(id);
    }
  }
}
}  // namespace

bool FixtureCache::enabled() { return cache_dir() != nullptr; }

std::uint64_t FixtureCache::key(SemanticCodec& codec,
                                const text::World& world,
                                const TrainConfig& config, const Rng& rng,
                                std::uint64_t mode_tag) {
  ByteWriter w;
  w.write_u64(mode_tag);
  const CodecConfig& cc = codec.config();
  w.write_u64(cc.surface_vocab);
  w.write_u64(cc.meaning_vocab);
  w.write_u64(cc.sentence_length);
  w.write_u64(cc.embed_dim);
  w.write_u64(cc.feature_dim);
  w.write_u64(cc.hidden_dim);
  w.write_u64(config.steps);
  w.write_f64(config.lr);
  w.write_f64(config.grad_clip);
  w.write_f64(config.feature_noise);
  w.write_u64(rng.seed());
  w.write_string(engine_state(rng));
  fingerprint_world(w, world);
  // Initial weights pin down the init RNG without naming it.
  w.write_f32_vector(codec.parameters().flatten_values());
  return hash_bytes(w);
}

std::string FixtureCache::path_for(std::uint64_t key) {
  std::ostringstream os;
  os << cache_dir() << "/codec-" << std::hex << key << ".fixture";
  return os.str();
}

std::optional<TrainStats> FixtureCache::try_load(std::uint64_t key,
                                                 SemanticCodec& codec,
                                                 Rng& rng) {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  try {
    ByteReader r(bytes);
    if (r.read_u32() != kMagic || r.read_u32() != kVersion) {
      return std::nullopt;
    }
    TrainStats stats;
    stats.steps = r.read_u64();
    stats.first_loss = r.read_f64();
    stats.final_loss = r.read_f64();
    const std::string state = r.read_string();
    // Stage everything before touching the caller's codec or RNG: a file
    // that fails validation halfway through must leave both untouched, or
    // the fallback training would run from clobbered weights (and store()
    // would then poison the cache under the pristine-weights key).
    std::mt19937_64 engine;
    std::istringstream is(state);
    is >> engine;
    if (!is) return std::nullopt;
    auto staged = codec.clone();
    staged->parameters().deserialize(r);
    codec.parameters().copy_values_from(staged->parameters());
    rng.engine() = engine;
    return stats;
  } catch (const Error&) {
    return std::nullopt;  // truncated/corrupt file: treat as a miss
  }
}

void FixtureCache::store(std::uint64_t key, SemanticCodec& codec,
                         const Rng& rng, const TrainStats& stats) {
  const char* dir = cache_dir();
  if (dir == nullptr) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;

  ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u64(stats.steps);
  w.write_f64(stats.first_loss);
  w.write_f64(stats.final_loss);
  w.write_string(engine_state(rng));
  codec.parameters().serialize(w);

  const std::string final_path = path_for(key);
  std::ostringstream tmp;
  tmp << final_path << ".tmp." << ::getpid();
  std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
  if (!out) return;
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  // close() before the rename and re-check: the final flush can fail (full
  // disk) after write() buffered successfully, and publishing a truncated
  // fixture would break the readers-see-complete-files guarantee.
  out.close();
  if (out.fail()) {
    std::filesystem::remove(tmp.str(), ec);
    return;
  }
  std::filesystem::rename(tmp.str(), final_path, ec);
  if (ec) std::filesystem::remove(tmp.str(), ec);
}

}  // namespace semcache::semantic
