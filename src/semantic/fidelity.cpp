#include "semantic/fidelity.hpp"

#include "metrics/ngram.hpp"

namespace semcache::semantic {

namespace {
FidelityReport evaluate_impl(SemanticCodec& codec,
                             const std::function<Sample()>& next,
                             std::size_t sentences) {
  FidelityReport report;
  metrics::OnlineStats acc;
  metrics::OnlineStats bleu;
  metrics::OnlineStats loss;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < sentences; ++i) {
    const Sample s = next();
    loss.add(codec.forward_loss(s.surface, s.meanings));
    const auto decoded = codec.reconstruct(s.surface);
    acc.add(metrics::token_accuracy(s.meanings, decoded));
    bleu.add(metrics::bleu(s.meanings, decoded, 2));
    if (decoded == s.meanings) ++exact;
  }
  report.token_accuracy = acc.mean();
  report.bleu = bleu.mean();
  report.mean_loss = loss.mean();
  report.sentence_exact =
      sentences == 0 ? 0.0
                     : static_cast<double>(exact) / static_cast<double>(sentences);
  report.sentences = sentences;
  return report;
}
}  // namespace

FidelityReport evaluate_codec(SemanticCodec& codec, const text::World& world,
                              std::size_t domain, std::size_t sentences,
                              Rng& rng, const text::Idiolect* idiolect) {
  return evaluate_impl(
      codec,
      [&] { return CodecTrainer::draw_sample(world, domain, idiolect, rng); },
      sentences);
}

FidelityReport evaluate_on_samples(SemanticCodec& codec,
                                   std::span<const Sample> samples) {
  std::size_t i = 0;
  return evaluate_impl(
      codec, [&]() -> Sample { return samples[i++]; }, samples.size());
}

}  // namespace semcache::semantic
