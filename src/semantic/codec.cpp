#include "semantic/codec.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::semantic {

namespace {
void validate(const CodecConfig& c) {
  SEMCACHE_CHECK(c.surface_vocab >= 2, "codec: surface_vocab too small");
  SEMCACHE_CHECK(c.meaning_vocab >= 2, "codec: meaning_vocab too small");
  SEMCACHE_CHECK(c.sentence_length >= 1, "codec: sentence_length must be >= 1");
  SEMCACHE_CHECK(c.embed_dim >= 1 && c.feature_dim >= 1 && c.hidden_dim >= 1,
                 "codec: dims must be >= 1");
  SEMCACHE_CHECK(c.feature_dim % c.sentence_length == 0,
                 "codec: feature_dim must be a multiple of sentence_length "
                 "(per-position factorization)");
}
}  // namespace

KbEncoder::KbEncoder(const CodecConfig& config, Rng& rng)
    : config_(config), embed_(config.surface_vocab, config.embed_dim, rng,
                              "enc.embed") {
  validate(config);
  // Shared per-position encoder: positions are batch rows.
  mlp_.add(std::make_unique<nn::Linear>(config.embed_dim, config.hidden_dim,
                                        rng, "enc.l1"))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Linear>(config.hidden_dim,
                                        config.per_position_dims(), rng,
                                        "enc.l2"))
      .add(std::make_unique<nn::Tanh>());
}

Tensor KbEncoder::encode(std::span<const std::int32_t> surface) {
  SEMCACHE_CHECK(surface.size() == config_.sentence_length,
                 "encode: expected exactly " +
                     std::to_string(config_.sentence_length) + " tokens, got " +
                     std::to_string(surface.size()));
  const Tensor e = embed_.forward(surface);   // (L x embed)
  Tensor h = mlp_.forward(e);                 // (L x k/L)
  h.reshape({1, config_.feature_dim});
  return h;
}

void KbEncoder::backward(const Tensor& grad_feature) {
  Tensor g = grad_feature;
  g.reshape({config_.sentence_length, config_.per_position_dims()});
  embed_.backward(mlp_.backward(g));
}

nn::ParameterSet KbEncoder::parameters() {
  nn::ParameterSet set;
  set.add_all(embed_.parameters());
  set.add_all(mlp_.parameters());
  return set;
}

KbDecoder::KbDecoder(const CodecConfig& config, Rng& rng) : config_(config) {
  validate(config);
  // Shared per-position decoder: positions are batch rows.
  mlp_.add(std::make_unique<nn::Linear>(config.per_position_dims(),
                                        config.hidden_dim, rng, "dec.l1"))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Linear>(config.hidden_dim,
                                        config.meaning_vocab, rng, "dec.l2"));
}

Tensor KbDecoder::decode_logits(const Tensor& feature) {
  SEMCACHE_CHECK(feature.rank() == 2 && feature.dim(0) == 1 &&
                     feature.dim(1) == config_.feature_dim,
                 "decode: feature must be (1 x k)");
  Tensor f = feature;
  f.reshape({config_.sentence_length, config_.per_position_dims()});
  return mlp_.forward(f);  // (L x meaning_vocab)
}

std::vector<std::int32_t> KbDecoder::decode(const Tensor& feature) {
  return tensor::row_argmax(decode_logits(feature));
}

Tensor KbDecoder::backward(const Tensor& grad_logits) {
  Tensor g = mlp_.backward(grad_logits);  // (L x k/L)
  g.reshape({1, config_.feature_dim});
  return g;
}

nn::ParameterSet KbDecoder::parameters() {
  nn::ParameterSet set;
  set.add_all(mlp_.parameters());
  return set;
}

SemanticCodec::SemanticCodec(const CodecConfig& config, Rng& rng)
    : config_(config),
      encoder_(std::make_unique<KbEncoder>(config, rng)),
      decoder_(std::make_unique<KbDecoder>(config, rng)) {}

double SemanticCodec::forward_loss(std::span<const std::int32_t> surface,
                                   std::span<const std::int32_t> meanings,
                                   float feature_noise, Rng* rng) {
  SEMCACHE_CHECK(meanings.size() == config_.sentence_length,
                 "forward_loss: meaning count mismatch");
  Tensor feature = encoder_->encode(surface);
  if (feature_noise > 0.0f) {
    SEMCACHE_CHECK(rng != nullptr, "forward_loss: noise requires an rng");
    float* pf = feature.data();
    for (std::size_t i = 0; i < feature.size(); ++i) {
      pf[i] += static_cast<float>(rng->uniform(-feature_noise, feature_noise));
    }
  }
  const Tensor logits = decoder_->decode_logits(feature);
  return loss_.forward(logits, meanings);
}

void SemanticCodec::backward() {
  const Tensor dlogits = loss_.backward();
  const Tensor dfeature = decoder_->backward(dlogits);
  encoder_->backward(dfeature);
}

std::vector<std::int32_t> SemanticCodec::reconstruct(
    std::span<const std::int32_t> surface) {
  return decoder_->decode(encoder_->encode(surface));
}

nn::ParameterSet SemanticCodec::parameters() {
  nn::ParameterSet set;
  set.add_all(encoder_->parameters().params());
  set.add_all(decoder_->parameters().params());
  return set;
}

std::unique_ptr<SemanticCodec> SemanticCodec::clone() const {
  // Construct with a throwaway rng, then overwrite with our exact weights.
  Rng scratch(0);
  auto copy = std::make_unique<SemanticCodec>(config_, scratch);
  nn::ParameterSet src = const_cast<SemanticCodec*>(this)->parameters();
  copy->parameters().copy_values_from(src);
  return copy;
}

std::size_t SemanticCodec::byte_size() const {
  return const_cast<SemanticCodec*>(this)->parameters().byte_size();
}

}  // namespace semcache::semantic
