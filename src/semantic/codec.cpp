#include "semantic/codec.hpp"

#include <cstring>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::semantic {

namespace {
void validate(const CodecConfig& c) {
  SEMCACHE_CHECK(c.surface_vocab >= 2, "codec: surface_vocab too small");
  SEMCACHE_CHECK(c.meaning_vocab >= 2, "codec: meaning_vocab too small");
  SEMCACHE_CHECK(c.sentence_length >= 1, "codec: sentence_length must be >= 1");
  SEMCACHE_CHECK(c.embed_dim >= 1 && c.feature_dim >= 1 && c.hidden_dim >= 1,
                 "codec: dims must be >= 1");
  SEMCACHE_CHECK(c.feature_dim % c.sentence_length == 0,
                 "codec: feature_dim must be a multiple of sentence_length "
                 "(per-position factorization)");
}
}  // namespace

KbEncoder::KbEncoder(const CodecConfig& config, Rng& rng)
    : config_(config), embed_(config.surface_vocab, config.embed_dim, rng,
                              "enc.embed") {
  validate(config);
  // Shared per-position encoder: positions are batch rows. The fused
  // LinearReLU is bit- and checkpoint-compatible with the Linear + ReLU
  // pair it replaces (same parameter names, same RNG draws, same bits).
  mlp_.add(std::make_unique<nn::LinearReLU>(config.embed_dim,
                                            config.hidden_dim, rng, "enc.l1"))
      .add(std::make_unique<nn::Linear>(config.hidden_dim,
                                        config.per_position_dims(), rng,
                                        "enc.l2"))
      .add(std::make_unique<nn::Tanh>());
}

const Tensor& KbEncoder::encode_batch(std::span<const std::int32_t> surface,
                                      std::size_t count) {
  SEMCACHE_CHECK(count >= 1, "encode_batch: empty batch");
  SEMCACHE_CHECK(surface.size() == count * config_.sentence_length,
                 "encode_batch: expected " + std::to_string(count) + " x " +
                     std::to_string(config_.sentence_length) +
                     " tokens, got " + std::to_string(surface.size()));
  const Tensor& e = embed_.forward(surface);  // (count*L x embed)
  const Tensor& h = mlp_.forward(e);          // (count*L x k/L)
  // Rows regroup into per-sentence features: L positions x k/L dims = k.
  Tensor& f = ws_.acquire(kFeature, {count, config_.feature_dim});
  std::memcpy(f.data(), h.data(), h.size() * sizeof(float));
  return f;
}

Tensor KbEncoder::encode(std::span<const std::int32_t> surface) {
  SEMCACHE_CHECK(surface.size() == config_.sentence_length,
                 "encode: expected exactly " +
                     std::to_string(config_.sentence_length) + " tokens, got " +
                     std::to_string(surface.size()));
  return encode_batch(surface, 1);
}

void KbEncoder::backward_batch(const Tensor& grad_features) {
  SEMCACHE_CHECK(grad_features.rank() == 2 &&
                     grad_features.dim(1) == config_.feature_dim,
                 "encoder backward: gradient must be (count x k)");
  Tensor& g = ws_.acquire(
      kGrad, {grad_features.dim(0) * config_.sentence_length,
              config_.per_position_dims()});
  std::memcpy(g.data(), grad_features.data(),
              grad_features.size() * sizeof(float));
  embed_.backward(mlp_.backward(g));
}

void KbEncoder::backward(const Tensor& grad_feature) {
  backward_batch(grad_feature);
}

nn::ParameterSet KbEncoder::parameters() {
  nn::ParameterSet set;
  set.add_all(embed_.parameters());
  set.add_all(mlp_.parameters());
  return set;
}

KbDecoder::KbDecoder(const CodecConfig& config, Rng& rng) : config_(config) {
  validate(config);
  // Shared per-position decoder: positions are batch rows (fused
  // LinearReLU: same bits/params as the former Linear + ReLU pair).
  mlp_.add(std::make_unique<nn::LinearReLU>(config.per_position_dims(),
                                            config.hidden_dim, rng, "dec.l1"))
      .add(std::make_unique<nn::Linear>(config.hidden_dim,
                                        config.meaning_vocab, rng, "dec.l2"));
}

const Tensor& KbDecoder::decode_logits_batch(const Tensor& features) {
  SEMCACHE_CHECK(features.rank() == 2 &&
                     features.dim(1) == config_.feature_dim,
                 "decode: features must be (count x k)");
  Tensor& f = ws_.acquire(kRows, {features.dim(0) * config_.sentence_length,
                                  config_.per_position_dims()});
  std::memcpy(f.data(), features.data(), features.size() * sizeof(float));
  return mlp_.forward(f);  // (count*L x meaning_vocab)
}

Tensor KbDecoder::decode_logits(const Tensor& feature) {
  SEMCACHE_CHECK(feature.rank() == 2 && feature.dim(0) == 1,
                 "decode: feature must be (1 x k)");
  return decode_logits_batch(feature);
}

std::vector<std::int32_t> KbDecoder::decode(const Tensor& feature) {
  return tensor::row_argmax(decode_logits_batch(feature));
}

std::vector<std::int32_t> KbDecoder::decode_batch(const Tensor& features) {
  return tensor::row_argmax(decode_logits_batch(features));
}

const Tensor& KbDecoder::backward_batch(const Tensor& grad_logits) {
  const Tensor& g = mlp_.backward(grad_logits);  // (count*L x k/L)
  SEMCACHE_CHECK(g.dim(0) % config_.sentence_length == 0,
                 "decoder backward: row count not a sentence multiple");
  Tensor& df = ws_.acquire(
      kDFeature,
      {g.dim(0) / config_.sentence_length, config_.feature_dim});
  std::memcpy(df.data(), g.data(), g.size() * sizeof(float));
  return df;
}

Tensor KbDecoder::backward(const Tensor& grad_logits) {
  return backward_batch(grad_logits);
}

nn::ParameterSet KbDecoder::parameters() {
  nn::ParameterSet set;
  set.add_all(mlp_.parameters());
  return set;
}

SemanticCodec::SemanticCodec(const CodecConfig& config, Rng& rng)
    : config_(config),
      encoder_(std::make_unique<KbEncoder>(config, rng)),
      decoder_(std::make_unique<KbDecoder>(config, rng)) {}

double SemanticCodec::forward_loss_batch(std::span<const std::int32_t> surface,
                                         std::span<const std::int32_t> meanings,
                                         std::size_t count,
                                         float feature_noise, Rng* rng) {
  SEMCACHE_CHECK(meanings.size() == count * config_.sentence_length,
                 "forward_loss: meaning count mismatch");
  const Tensor& feature = encoder_->encode_batch(surface, count);
  const Tensor* input = &feature;
  if (feature_noise > 0.0f) {
    SEMCACHE_CHECK(rng != nullptr, "forward_loss: noise requires an rng");
    Tensor& noisy = ws_.acquire(kNoisy, feature.shape());
    const float* pf = feature.data();
    float* pn = noisy.data();
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      pn[i] = pf[i] +
              static_cast<float>(rng->uniform(-feature_noise, feature_noise));
    }
    input = &noisy;
  }
  const Tensor& logits = decoder_->decode_logits_batch(*input);
  return loss_.forward(logits, meanings);
}

double SemanticCodec::forward_loss(std::span<const std::int32_t> surface,
                                   std::span<const std::int32_t> meanings,
                                   float feature_noise, Rng* rng) {
  return forward_loss_batch(surface, meanings, 1, feature_noise, rng);
}

void SemanticCodec::backward() {
  const Tensor dlogits = loss_.backward();
  encoder_->backward_batch(decoder_->backward_batch(dlogits));
}

std::vector<std::int32_t> SemanticCodec::reconstruct(
    std::span<const std::int32_t> surface) {
  return decoder_->decode_batch(encoder_->encode_batch(
      surface, surface.size() / config_.sentence_length));
}

nn::ParameterSet SemanticCodec::parameters() {
  nn::ParameterSet set;
  set.add_all(encoder_->parameters().params());
  set.add_all(decoder_->parameters().params());
  return set;
}

std::unique_ptr<SemanticCodec> SemanticCodec::clone() const {
  // Construct with a throwaway rng, then overwrite with our exact weights.
  Rng scratch(0);
  auto copy = std::make_unique<SemanticCodec>(config_, scratch);
  nn::ParameterSet src = const_cast<SemanticCodec*>(this)->parameters();
  copy->parameters().copy_values_from(src);
  return copy;
}

std::size_t SemanticCodec::byte_size() const {
  return const_cast<SemanticCodec*>(this)->parameters().byte_size();
}

}  // namespace semcache::semantic
