// On-disk cache of pretrained codec fixtures.
//
// The tier-2 test suites spend nearly all of their wall-clock pretraining
// small codecs from identical configurations, over and over, across suites
// and across runs. This cache serializes the outcome of a pretraining run
// — final weights, training stats, and the trainer RNG's post-run state —
// keyed by a hash of everything that determines it: codec config and
// initial weights, train config, a content fingerprint of the language
// world, and the RNG state at call time. A hit is therefore bit-identical
// to having trained: downstream code (including later draws from the same
// RNG) cannot tell the difference.
//
// Opt-in via the SEMCACHE_FIXTURE_DIR environment variable (the cache
// directory); unset/empty disables it entirely, so library behaviour is
// pure by default. CMake points the tier-2 ctest targets at
// <build>/fixture-cache.
//
// Concurrency: writers dump to a unique temp file and rename into place
// (atomic on POSIX), so parallel ctest processes can share the directory;
// readers only ever see complete files. A corrupt or mismatched file is
// treated as a miss and overwritten.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "semantic/codec.hpp"
#include "semantic/trainer.hpp"
#include "text/corpus.hpp"

namespace semcache::semantic {

class FixtureCache {
 public:
  /// True when SEMCACHE_FIXTURE_DIR names a cache directory.
  static bool enabled();

  /// Cache key over every training input. `mode_tag` separates
  /// pretrain_domain(d) from pretrain_pooled on otherwise equal inputs.
  static std::uint64_t key(SemanticCodec& codec, const text::World& world,
                           const TrainConfig& config, const Rng& rng,
                           std::uint64_t mode_tag);

  /// On a hit: restores the trained weights into `codec`, fast-forwards
  /// `rng` to its post-training state, and returns the recorded stats.
  static std::optional<TrainStats> try_load(std::uint64_t key,
                                            SemanticCodec& codec, Rng& rng);

  /// Records a finished pretraining run under `key`. Failures (read-only
  /// dir, races) are silently ignored — the cache is an accelerator, never
  /// a correctness dependency.
  static void store(std::uint64_t key, SemanticCodec& codec, const Rng& rng,
                    const TrainStats& stats);

 private:
  static std::string path_for(std::uint64_t key);
};

}  // namespace semcache::semantic
