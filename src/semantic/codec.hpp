// Knowledge-base encoder/decoder pair (the "KB models" of Fig. 1).
//
// KbEncoder: surface-token ids -> k-dim semantic feature in (-1, 1)^k.
// KbDecoder: semantic feature  -> per-position logits over the MEANING
// vocabulary. Decoding recovers the *sense* of each word, so a decoder
// trained on the IT domain maps the surface word "bus" to bus#it while the
// transport decoder maps it to bus#transport — the paper's §II-A example.
//
// Architecture: per-position factorized with shared weights (the shape
// DeepSC-style transformer codecs use per token). Each of the L positions
// owns k/L feature dimensions; the same embed->MLP encoder and MLP->logits
// decoder processes every position (position = batch row). This keeps the
// parameter count small, converges quickly, and makes the bottleneck
// interpretable: k/L tanh-bounded floats per word-sense.
//
// The feature dimension k is the semantic bottleneck: it is what gets
// quantized and transmitted, replacing the raw text bits of traditional
// communication.
//
// Because positions are batch rows, a batch of N sentences is just N*L rows
// through the same MLPs: the *_batch entry points stack whole buffers of
// sentences into one kernel invocation per layer, which is where the serving
// and fine-tuning throughput comes from. The single-sentence calls are the
// N == 1 special case of the batch path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/workspace.hpp"

namespace semcache::semantic {

using nn::Parameter;
using tensor::Tensor;

struct CodecConfig {
  std::size_t surface_vocab = 0;    ///< input vocabulary size
  std::size_t meaning_vocab = 0;    ///< output (sense) vocabulary size
  std::size_t sentence_length = 8;  ///< fixed token window L
  std::size_t embed_dim = 20;
  /// k, the transmitted bottleneck; must be a multiple of sentence_length
  /// (each position owns k/L dims).
  std::size_t feature_dim = 16;
  std::size_t hidden_dim = 48;

  std::size_t per_position_dims() const {
    return feature_dim / sentence_length;
  }
};

/// Semantic feature extractor (one per domain per edge server).
class KbEncoder {
 public:
  KbEncoder(const CodecConfig& config, Rng& rng);

  /// surface.size() must equal config.sentence_length; returns (1 x k)
  /// features bounded to (-1, 1) by the final tanh.
  Tensor encode(std::span<const std::int32_t> surface);
  /// Batched encode: `surface` holds `count` sentences of L tokens each,
  /// concatenated. Returns (count x k) features in an internal buffer
  /// (valid until the next encode); one kernel pass per layer for the
  /// whole batch.
  const Tensor& encode_batch(std::span<const std::int32_t> surface,
                             std::size_t count);
  /// Accumulate gradients given dL/dfeature (1 x k).
  void backward(const Tensor& grad_feature);
  /// Accumulate gradients given dL/dfeatures (count x k) from the last
  /// encode_batch.
  void backward_batch(const Tensor& grad_features);
  /// Row-partition large batch forwards over `pool` (bit-identical).
  void set_thread_pool(common::ThreadPool* pool) {
    mlp_.set_thread_pool(pool);
  }

  nn::ParameterSet parameters();
  const CodecConfig& config() const { return config_; }

 private:
  enum Slot : std::size_t { kFeature, kGrad };

  CodecConfig config_;
  nn::Embedding embed_;
  nn::Sequential mlp_;
  tensor::Workspace ws_;
};

/// Semantic feature restorer (the KB-decoder; replicated as the sender-side
/// "decoder copy" in §II-C).
class KbDecoder {
 public:
  KbDecoder(const CodecConfig& config, Rng& rng);

  /// feature: (1 x k). Returns (L x meaning_vocab) logits.
  Tensor decode_logits(const Tensor& feature);
  /// Batched logits: features (count x k) -> (count*L x meaning_vocab) in
  /// an internal buffer (valid until the next decode).
  const Tensor& decode_logits_batch(const Tensor& features);
  /// Greedy decode to meaning ids.
  std::vector<std::int32_t> decode(const Tensor& feature);
  /// Greedy decode of a (count x k) feature batch to count*L meaning ids.
  std::vector<std::int32_t> decode_batch(const Tensor& features);
  /// Accumulate gradients given dL/dlogits (L x V); returns dL/dfeature.
  Tensor backward(const Tensor& grad_logits);
  /// Batched backward: dL/dlogits (count*L x V) -> dL/dfeatures
  /// (count x k) in an internal buffer.
  const Tensor& backward_batch(const Tensor& grad_logits);
  /// Row-partition large batch forwards over `pool` (bit-identical).
  void set_thread_pool(common::ThreadPool* pool) {
    mlp_.set_thread_pool(pool);
  }

  nn::ParameterSet parameters();
  const CodecConfig& config() const { return config_; }

 private:
  enum Slot : std::size_t { kRows, kDFeature };

  CodecConfig config_;
  nn::Sequential mlp_;
  tensor::Workspace ws_;
};

/// An encoder/decoder pair trained jointly — a complete KB model.
class SemanticCodec {
 public:
  SemanticCodec(const CodecConfig& config, Rng& rng);

  KbEncoder& encoder() { return *encoder_; }
  KbDecoder& decoder() { return *decoder_; }
  const CodecConfig& config() const { return config_; }

  /// Joint forward: encode then decode; fills the internal loss state.
  /// Returns mean cross-entropy over the L positions.
  ///
  /// `feature_noise` > 0 adds uniform noise in [-noise, noise] to the
  /// feature between encoder and decoder (quantization-aware training: the
  /// decoder learns to tolerate the quantizer's worst-case error). The
  /// noise is additive, so the straight-through gradient is exact.
  double forward_loss(std::span<const std::int32_t> surface,
                      std::span<const std::int32_t> meanings,
                      float feature_noise = 0.0f, Rng* rng = nullptr);
  /// Batched joint forward over `count` sentences (surface and meanings
  /// hold count*L concatenated ids). Returns mean cross-entropy over all
  /// count*L positions; one kernel pass per layer for the whole batch.
  double forward_loss_batch(std::span<const std::int32_t> surface,
                            std::span<const std::int32_t> meanings,
                            std::size_t count, float feature_noise = 0.0f,
                            Rng* rng = nullptr);
  /// Backward through decoder and encoder; call after forward_loss[_batch].
  void backward();

  /// End-to-end greedy reconstruction (clean features, no channel).
  std::vector<std::int32_t> reconstruct(std::span<const std::int32_t> surface);

  /// Attach a worker pool: large batch forwards (serving-path
  /// encode_batch / decode_logits_batch) row-partition across its workers
  /// with bit-identical results; single-row and small calls stay inline.
  /// Non-owning; clone() deliberately does NOT carry the pool (clones
  /// default to sequential until their owner attaches one).
  void set_thread_pool(common::ThreadPool* pool) {
    encoder_->set_thread_pool(pool);
    decoder_->set_thread_pool(pool);
  }

  nn::ParameterSet parameters();
  /// Deep copy with byte-identical weights (used to spawn user models from
  /// general models, Fig. 1 step ②).
  std::unique_ptr<SemanticCodec> clone() const;

  /// Serialized model size in bytes (what caching charges, E5).
  std::size_t byte_size() const;

 private:
  enum Slot : std::size_t { kNoisy };

  CodecConfig config_;
  std::unique_ptr<KbEncoder> encoder_;
  std::unique_ptr<KbDecoder> decoder_;
  nn::SoftmaxCrossEntropy loss_;
  tensor::Workspace ws_;
};

}  // namespace semcache::semantic
