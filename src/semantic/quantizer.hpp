// Uniform feature quantizer: k tanh-bounded floats -> k*b bits.
//
// This is the boundary between the learned semantic representation and the
// bit-level channel stack: the transmitted payload of a semantic message is
// exactly quantize()'s output.
#pragma once

#include <vector>

#include "common/bits.hpp"
#include "common/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace semcache::semantic {

class FeatureQuantizer {
 public:
  /// dims = feature dimension k; bits_per_dim in [1, 16]. Values are
  /// clamped to [-1, 1] before quantization (the encoder's tanh guarantees
  /// the range, clamping guards against channel-corrupted reconstructions).
  FeatureQuantizer(std::size_t dims, unsigned bits_per_dim);

  /// (1 x dims) feature -> dims*bits_per_dim bits (LSB-first per dim).
  BitVec quantize(const tensor::Tensor& feature) const;
  /// Inverse mapping to mid-rise reconstruction levels; returns (1 x dims).
  tensor::Tensor dequantize(const BitVec& bits) const;

  /// Quantize-then-dequantize, the distortion the receiver sees on a clean
  /// channel.
  tensor::Tensor roundtrip(const tensor::Tensor& feature) const;

  // --- Batched row-wise variants (the transmit_many data plane). Row i of
  // every batch call is bit-identical to the single-feature call on row i,
  // so the batched system path reproduces the sequential one exactly.
  // Rows are independent, so a non-null `pool` fans them out across
  // workers (each row writes only its own output slot — same bits on any
  // worker count); nullptr keeps the caller-thread loop. ---

  /// (N x dims) features -> N payloads; payload i == quantize(row i).
  std::vector<BitVec> quantize_batch(const tensor::Tensor& features,
                                     common::ThreadPool* pool = nullptr) const;
  /// N payloads -> (N x dims) reconstructions; row i == dequantize(bits i).
  tensor::Tensor dequantize_batch(const std::vector<BitVec>& payloads,
                                  common::ThreadPool* pool = nullptr) const;
  /// Row-wise quantize-then-dequantize of an (N x dims) feature batch.
  tensor::Tensor roundtrip_batch(const tensor::Tensor& features,
                                 common::ThreadPool* pool = nullptr) const;

  std::size_t dims() const { return dims_; }
  unsigned bits_per_dim() const { return bits_; }
  std::size_t total_bits() const { return dims_ * bits_; }
  std::size_t payload_bytes() const { return (total_bits() + 7) / 8; }
  /// Worst-case absolute reconstruction error per dimension.
  double max_error() const;

 private:
  /// Append one row's `dims_` quantized levels to `bits`.
  void quantize_row(const float* row, BitVec& bits) const;
  /// Decode `dims_` levels from `bits` starting at bit `pos` into `out`.
  void dequantize_row(const BitVec& bits, std::size_t pos, float* out) const;

  std::size_t dims_;
  unsigned bits_;
  std::uint32_t levels_;
};

}  // namespace semcache::semantic
