// Uniform feature quantizer: k tanh-bounded floats -> k*b bits.
//
// This is the boundary between the learned semantic representation and the
// bit-level channel stack: the transmitted payload of a semantic message is
// exactly quantize()'s output.
#pragma once

#include "common/bits.hpp"
#include "tensor/tensor.hpp"

namespace semcache::semantic {

class FeatureQuantizer {
 public:
  /// dims = feature dimension k; bits_per_dim in [1, 16]. Values are
  /// clamped to [-1, 1] before quantization (the encoder's tanh guarantees
  /// the range, clamping guards against channel-corrupted reconstructions).
  FeatureQuantizer(std::size_t dims, unsigned bits_per_dim);

  /// (1 x dims) feature -> dims*bits_per_dim bits (LSB-first per dim).
  BitVec quantize(const tensor::Tensor& feature) const;
  /// Inverse mapping to mid-rise reconstruction levels; returns (1 x dims).
  tensor::Tensor dequantize(const BitVec& bits) const;

  /// Quantize-then-dequantize, the distortion the receiver sees on a clean
  /// channel.
  tensor::Tensor roundtrip(const tensor::Tensor& feature) const;

  std::size_t dims() const { return dims_; }
  unsigned bits_per_dim() const { return bits_; }
  std::size_t total_bits() const { return dims_ * bits_; }
  std::size_t payload_bytes() const { return (total_bits() + 7) / 8; }
  /// Worst-case absolute reconstruction error per dimension.
  double max_error() const;

 private:
  std::size_t dims_;
  unsigned bits_;
  std::uint32_t levels_;
};

}  // namespace semcache::semantic
