// Training loops for KB codecs: domain pretraining (the "well-pretrained
// general KB-encoders" of §II-A), pooled pretraining (the general-model
// baseline), and fine-tuning on buffered user transactions (§II-D).
#pragma once

#include <vector>

#include "semantic/codec.hpp"
#include "text/corpus.hpp"
#include "text/idiolect.hpp"

namespace semcache::semantic {

/// One buffered communication transaction: what the user uttered and what
/// they meant. This is the record type stored in the domain buffers b^m.
struct Sample {
  std::vector<std::int32_t> surface;
  std::vector<std::int32_t> meanings;
};

struct TrainStats {
  std::size_t steps = 0;
  double first_loss = 0.0;
  double final_loss = 0.0;
};

struct TrainConfig {
  std::size_t steps = 3000;
  double lr = 3e-3;
  double grad_clip = 5.0;
  /// Quantization-aware feature noise amplitude (0 = off); typically the
  /// quantizer's half step, see FeatureQuantizer::max_error().
  double feature_noise = 0.0;
};

class CodecTrainer {
 public:
  /// Pretrain on sentences drawn from a single domain.
  static TrainStats pretrain_domain(SemanticCodec& codec,
                                    const text::World& world,
                                    std::size_t domain,
                                    const TrainConfig& config, Rng& rng);

  /// Pretrain on sentences pooled uniformly over all domains (the single
  /// general model §II-A argues against).
  static TrainStats pretrain_pooled(SemanticCodec& codec,
                                    const text::World& world,
                                    const TrainConfig& config, Rng& rng);

  /// Epoch-based fine-tuning on a fixed set of samples (the user buffer).
  ///
  /// `batch_size` > 1 stacks that many shuffled samples per optimizer step
  /// through the codec's *_batch entry points (one kernel pass per layer
  /// for the whole minibatch; the gradient is the mean over the batch).
  /// The default of 1 preserves the per-sample update sequence exactly.
  static TrainStats finetune(SemanticCodec& codec,
                             std::span<const Sample> samples,
                             std::size_t epochs, double lr, Rng& rng,
                             double feature_noise = 0.0,
                             std::size_t batch_size = 1);

  /// Draw a sample: sentence from `domain`, idiolect applied if non-null.
  static Sample draw_sample(const text::World& world, std::size_t domain,
                            const text::Idiolect* idiolect, Rng& rng);
};

}  // namespace semcache::semantic
