#include "semantic/bimodal.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace semcache::semantic {

SceneSampler::SceneSampler(std::size_t num_domains, const SceneConfig& config)
    : num_domains_(num_domains), config_(config) {
  SEMCACHE_CHECK(num_domains >= 1, "scene: need at least one domain");
  SEMCACHE_CHECK(config.tags_per_domain >= 1 && config.tags_per_scene >= 1,
                 "scene: tag counts must be >= 1");
  SEMCACHE_CHECK(config.off_domain_prob >= 0.0 && config.off_domain_prob < 1.0,
                 "scene: off_domain_prob must be in [0, 1)");
}

std::vector<std::int32_t> SceneSampler::sample(std::size_t domain,
                                               Rng& rng) const {
  SEMCACHE_CHECK(domain < num_domains_, "scene: domain out of range");
  std::vector<std::int32_t> tags;
  tags.reserve(config_.tags_per_scene);
  for (std::size_t i = 0; i < config_.tags_per_scene; ++i) {
    std::size_t d = domain;
    if (num_domains_ > 1 && rng.bernoulli(config_.off_domain_prob)) {
      // Clutter: a tag from some other domain's inventory.
      const auto offset = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(num_domains_) - 1));
      d = (domain + offset) % num_domains_;
    }
    const auto tag = rng.uniform_int(
        0, static_cast<std::int64_t>(config_.tags_per_domain) - 1);
    tags.push_back(static_cast<std::int32_t>(
        d * config_.tags_per_domain + static_cast<std::size_t>(tag)));
  }
  return tags;
}

BimodalCodec::BimodalCodec(const BimodalConfig& config, Rng& rng)
    : config_(config),
      text_embed_(config.text.surface_vocab, config.text.embed_dim, rng,
                  "bim.text_embed"),
      scene_embed_(config.scene_vocab, config.scene_embed_dim, rng,
                   "bim.scene_embed") {
  SEMCACHE_CHECK(config.scene_vocab >= 2, "bimodal: scene_vocab too small");
  SEMCACHE_CHECK(config.scene_feature_dim >= 1,
                 "bimodal: scene_feature_dim must be >= 1");
  SEMCACHE_CHECK(config.text.feature_dim % config.text.sentence_length == 0,
                 "bimodal: text feature_dim must be a multiple of L");
  // Hidden layers use the fused LinearReLU (bit- and checkpoint-compatible
  // with the Linear + ReLU pairs they replace).
  text_mlp_
      .add(std::make_unique<nn::LinearReLU>(config.text.embed_dim,
                                            config.text.hidden_dim, rng,
                                            "bim.t1"))
      .add(std::make_unique<nn::Linear>(config.text.hidden_dim,
                                        config.text.per_position_dims(), rng,
                                        "bim.t2"))
      .add(std::make_unique<nn::Tanh>());
  scene_mlp_
      .add(std::make_unique<nn::LinearReLU>(config.scene_embed_dim,
                                            config.text.hidden_dim, rng,
                                            "bim.s1"))
      .add(std::make_unique<nn::Linear>(config.text.hidden_dim,
                                        config.scene_feature_dim, rng,
                                        "bim.s2"))
      .add(std::make_unique<nn::Tanh>());
  const std::size_t dec_in =
      config.text.per_position_dims() + config.scene_feature_dim;
  dec_mlp_
      .add(std::make_unique<nn::LinearReLU>(dec_in, config.text.hidden_dim,
                                            rng, "bim.d1"))
      .add(std::make_unique<nn::Linear>(config.text.hidden_dim,
                                        config.text.meaning_vocab, rng,
                                        "bim.d2"));
}

Tensor BimodalCodec::encode(std::span<const std::int32_t> surface,
                            std::span<const std::int32_t> scene) {
  const std::size_t L = config_.text.sentence_length;
  SEMCACHE_CHECK(surface.size() == L, "bimodal: wrong sentence length");
  SEMCACHE_CHECK(!scene.empty(), "bimodal: empty scene");
  // Text half: (L x per_pos).
  const Tensor e = text_embed_.forward(surface);
  Tensor h = text_mlp_.forward(e);
  // Scene half: mean-pool tag embeddings -> (1 x scene_feature).
  const Tensor tags = scene_embed_.forward(scene);
  last_scene_count_ = scene.size();
  Tensor pooled({1, config_.scene_embed_dim});
  for (std::size_t t = 0; t < tags.dim(0); ++t) {
    for (std::size_t j = 0; j < config_.scene_embed_dim; ++j) {
      pooled.at(0, j) += tags.at(t, j) / static_cast<float>(tags.dim(0));
    }
  }
  const Tensor scene_feat = scene_mlp_.forward(pooled);

  Tensor out({1, config_.total_feature_dim()});
  h.reshape({1, config_.text.feature_dim});
  for (std::size_t i = 0; i < config_.text.feature_dim; ++i) {
    out.at(0, i) = h.at(0, i);
  }
  for (std::size_t i = 0; i < config_.scene_feature_dim; ++i) {
    out.at(0, config_.text.feature_dim + i) = scene_feat.at(0, i);
  }
  return out;
}

Tensor BimodalCodec::decode_logits(const Tensor& feature) {
  SEMCACHE_CHECK(feature.rank() == 2 && feature.dim(0) == 1 &&
                     feature.dim(1) == config_.total_feature_dim(),
                 "bimodal: feature must be (1 x total_dim)");
  const std::size_t L = config_.text.sentence_length;
  const std::size_t per_pos = config_.text.per_position_dims();
  Tensor dec_in({L, per_pos + config_.scene_feature_dim});
  for (std::size_t p = 0; p < L; ++p) {
    for (std::size_t i = 0; i < per_pos; ++i) {
      dec_in.at(p, i) = feature.at(0, p * per_pos + i);
    }
    for (std::size_t i = 0; i < config_.scene_feature_dim; ++i) {
      dec_in.at(p, per_pos + i) =
          feature.at(0, config_.text.feature_dim + i);
    }
  }
  return dec_mlp_.forward(dec_in);
}

std::vector<std::int32_t> BimodalCodec::decode(const Tensor& feature) {
  return tensor::row_argmax(decode_logits(feature));
}

double BimodalCodec::forward_loss(std::span<const std::int32_t> surface,
                                  std::span<const std::int32_t> scene,
                                  std::span<const std::int32_t> meanings,
                                  float feature_noise, Rng* rng) {
  Tensor feature = encode(surface, scene);
  if (feature_noise > 0.0f) {
    SEMCACHE_CHECK(rng != nullptr, "bimodal: noise requires an rng");
    float* pf = feature.data();
    for (std::size_t i = 0; i < feature.size(); ++i) {
      pf[i] += static_cast<float>(rng->uniform(-feature_noise, feature_noise));
    }
  }
  return loss_.forward(decode_logits(feature), meanings);
}

void BimodalCodec::backward() {
  const std::size_t L = config_.text.sentence_length;
  const std::size_t per_pos = config_.text.per_position_dims();
  const Tensor dgrid = dec_mlp_.backward(loss_.backward());
  // Split the decoder-input gradient back into text and scene halves.
  Tensor dtext({L, per_pos});
  Tensor dscene({1, config_.scene_feature_dim});
  for (std::size_t p = 0; p < L; ++p) {
    for (std::size_t i = 0; i < per_pos; ++i) {
      dtext.at(p, i) = dgrid.at(p, i);
    }
    for (std::size_t i = 0; i < config_.scene_feature_dim; ++i) {
      dscene.at(0, i) += dgrid.at(p, per_pos + i);  // broadcast -> sum
    }
  }
  text_embed_.backward(text_mlp_.backward(dtext));
  const Tensor dpooled = scene_mlp_.backward(dscene);
  // Mean-pool backward: spread evenly over the scene tags.
  SEMCACHE_CHECK(last_scene_count_ > 0, "bimodal: backward before encode");
  Tensor dtags({last_scene_count_, config_.scene_embed_dim});
  for (std::size_t t = 0; t < last_scene_count_; ++t) {
    for (std::size_t j = 0; j < config_.scene_embed_dim; ++j) {
      dtags.at(t, j) =
          dpooled.at(0, j) / static_cast<float>(last_scene_count_);
    }
  }
  scene_embed_.backward(dtags);
}

nn::ParameterSet BimodalCodec::parameters() {
  nn::ParameterSet set;
  set.add_all(text_embed_.parameters());
  set.add_all(text_mlp_.parameters());
  set.add_all(scene_embed_.parameters());
  set.add_all(scene_mlp_.parameters());
  set.add_all(dec_mlp_.parameters());
  return set;
}

}  // namespace semcache::semantic
