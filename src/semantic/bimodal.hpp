// Bimodal (text + scene) semantic codec — the §III-B research direction.
//
// "Given the diverse nature of message types, including text, image, video
// and audio, it is crucial to consider multimodality when designing these
// models."
//
// We simulate the visual modality as SCENE TAGS: each message carries a few
// tags drawn from its domain's visual inventory (a Metaverse scene graph —
// "road", "hospital ward", "server rack" — reduced to ids). The bimodal
// encoder transmits, alongside the per-position text features, a small
// SCENE VECTOR pooled from the tags; the decoder conditions every position
// on it. The payoff is architectural: a *single pooled* bimodal codec can
// resolve "bus"-style polysemy from scene context alone, without
// domain-specialized decoders (experiment E12).
#pragma once

#include <memory>

#include "semantic/codec.hpp"

namespace semcache::semantic {

struct SceneConfig {
  std::size_t tags_per_domain = 12;  ///< visual inventory size per domain
  std::size_t tags_per_scene = 4;    ///< tags attached to one message
  double off_domain_prob = 0.1;      ///< chance a tag is domain-unrelated
};

/// Scene tags live in a global vocabulary of num_domains * tags_per_domain
/// ids, domain d owning the contiguous block [d*tags_per_domain, ...).
class SceneSampler {
 public:
  SceneSampler(std::size_t num_domains, const SceneConfig& config);

  std::vector<std::int32_t> sample(std::size_t domain, Rng& rng) const;
  std::size_t scene_vocab() const {
    return num_domains_ * config_.tags_per_domain;
  }
  const SceneConfig& config() const { return config_; }

 private:
  std::size_t num_domains_;
  SceneConfig config_;
};

struct BimodalConfig {
  CodecConfig text;               ///< the usual per-position text codec dims
  std::size_t scene_vocab = 0;    ///< from SceneSampler::scene_vocab()
  std::size_t scene_embed_dim = 12;
  std::size_t scene_feature_dim = 4;  ///< extra transmitted dims

  std::size_t total_feature_dim() const {
    return text.feature_dim + scene_feature_dim;
  }
};

/// Encoder/decoder pair over (text tokens, scene tags). The transmitted
/// feature is [per-position text dims | scene dims]; the decoder feeds
/// every position the scene vector next to its own feature slice.
class BimodalCodec {
 public:
  BimodalCodec(const BimodalConfig& config, Rng& rng);

  /// Returns (1 x total_feature_dim), all tanh-bounded.
  Tensor encode(std::span<const std::int32_t> surface,
                std::span<const std::int32_t> scene);
  /// (L x meaning_vocab) logits from a received feature.
  Tensor decode_logits(const Tensor& feature);
  std::vector<std::int32_t> decode(const Tensor& feature);

  /// Joint train step support (mirrors SemanticCodec).
  double forward_loss(std::span<const std::int32_t> surface,
                      std::span<const std::int32_t> scene,
                      std::span<const std::int32_t> meanings,
                      float feature_noise = 0.0f, Rng* rng = nullptr);
  void backward();

  nn::ParameterSet parameters();
  const BimodalConfig& config() const { return config_; }

 private:
  BimodalConfig config_;
  // Text side (same shape as KbEncoder).
  nn::Embedding text_embed_;
  nn::Sequential text_mlp_;
  // Scene side: mean-pooled tag embeddings -> scene feature.
  nn::Embedding scene_embed_;
  nn::Sequential scene_mlp_;
  std::size_t last_scene_count_ = 0;
  // Decoder: per position [text slice | scene vector] -> logits.
  nn::Sequential dec_mlp_;
  nn::SoftmaxCrossEntropy loss_;
};

}  // namespace semcache::semantic
