// Semantic fidelity evaluation: how well reconstructed meanings match what
// the sender meant.
#pragma once

#include "metrics/stats.hpp"
#include "semantic/codec.hpp"
#include "semantic/trainer.hpp"
#include "text/corpus.hpp"
#include "text/idiolect.hpp"

namespace semcache::semantic {

struct FidelityReport {
  double token_accuracy = 0.0;   ///< mean per-position meaning accuracy
  double sentence_exact = 0.0;   ///< fraction of perfectly recovered sentences
  double bleu = 0.0;             ///< mean BLEU over sentences
  double mean_loss = 0.0;        ///< mean cross-entropy
  std::size_t sentences = 0;
};

/// Evaluate a codec on freshly sampled sentences from one domain (clean
/// features, no quantization/channel — the semantic-layer ceiling).
FidelityReport evaluate_codec(SemanticCodec& codec, const text::World& world,
                              std::size_t domain, std::size_t sentences,
                              Rng& rng,
                              const text::Idiolect* idiolect = nullptr);

/// Evaluate reconstruction over a fixed sample set.
FidelityReport evaluate_on_samples(SemanticCodec& codec,
                                   std::span<const Sample> samples);

}  // namespace semcache::semantic
