#include "semantic/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::semantic {

FeatureQuantizer::FeatureQuantizer(std::size_t dims, unsigned bits_per_dim)
    : dims_(dims), bits_(bits_per_dim), levels_(1u << bits_per_dim) {
  SEMCACHE_CHECK(dims >= 1, "quantizer: dims must be >= 1");
  SEMCACHE_CHECK(bits_per_dim >= 1 && bits_per_dim <= 16,
                 "quantizer: bits_per_dim must be in [1, 16]");
}

BitVec FeatureQuantizer::quantize(const tensor::Tensor& feature) const {
  SEMCACHE_CHECK(feature.size() == dims_,
                 "quantizer: feature has " + std::to_string(feature.size()) +
                     " dims, expected " + std::to_string(dims_));
  BitVec bits;
  bits.reserve(total_bits());
  for (std::size_t i = 0; i < dims_; ++i) {
    const float x = std::clamp(feature.at(i), -1.0f, 1.0f);
    // Map [-1, 1] onto [0, levels-1].
    auto level = static_cast<std::uint32_t>(
        std::lround((static_cast<double>(x) + 1.0) / 2.0 *
                    static_cast<double>(levels_ - 1)));
    level = std::min(level, levels_ - 1);
    append_bits(bits, level, bits_);
  }
  return bits;
}

tensor::Tensor FeatureQuantizer::dequantize(const BitVec& bits) const {
  SEMCACHE_CHECK(bits.size() == total_bits(),
                 "quantizer: expected " + std::to_string(total_bits()) +
                     " bits, got " + std::to_string(bits.size()));
  tensor::Tensor out({1, dims_});
  std::size_t pos = 0;
  for (std::size_t i = 0; i < dims_; ++i) {
    const auto level = static_cast<std::uint32_t>(read_bits(bits, pos, bits_));
    const double x = 2.0 * static_cast<double>(level) /
                         static_cast<double>(levels_ - 1) -
                     1.0;
    out.at(0, i) = static_cast<float>(x);
  }
  return out;
}

tensor::Tensor FeatureQuantizer::roundtrip(
    const tensor::Tensor& feature) const {
  return dequantize(quantize(feature));
}

double FeatureQuantizer::max_error() const {
  return 1.0 / static_cast<double>(levels_ - 1);
}

}  // namespace semcache::semantic
