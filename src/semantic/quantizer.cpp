#include "semantic/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace semcache::semantic {

FeatureQuantizer::FeatureQuantizer(std::size_t dims, unsigned bits_per_dim)
    : dims_(dims), bits_(bits_per_dim), levels_(1u << bits_per_dim) {
  SEMCACHE_CHECK(dims >= 1, "quantizer: dims must be >= 1");
  SEMCACHE_CHECK(bits_per_dim >= 1 && bits_per_dim <= 16,
                 "quantizer: bits_per_dim must be in [1, 16]");
}

void FeatureQuantizer::quantize_row(const float* row, BitVec& bits) const {
  for (std::size_t i = 0; i < dims_; ++i) {
    const float x = std::clamp(row[i], -1.0f, 1.0f);
    // Map [-1, 1] onto [0, levels-1].
    auto level = static_cast<std::uint32_t>(
        std::lround((static_cast<double>(x) + 1.0) / 2.0 *
                    static_cast<double>(levels_ - 1)));
    level = std::min(level, levels_ - 1);
    append_bits(bits, level, bits_);
  }
}

void FeatureQuantizer::dequantize_row(const BitVec& bits, std::size_t pos,
                                      float* out) const {
  for (std::size_t i = 0; i < dims_; ++i) {
    const auto level = static_cast<std::uint32_t>(read_bits(bits, pos, bits_));
    const double x = 2.0 * static_cast<double>(level) /
                         static_cast<double>(levels_ - 1) -
                     1.0;
    out[i] = static_cast<float>(x);
  }
}

BitVec FeatureQuantizer::quantize(const tensor::Tensor& feature) const {
  SEMCACHE_CHECK(feature.size() == dims_,
                 "quantizer: feature has " + std::to_string(feature.size()) +
                     " dims, expected " + std::to_string(dims_));
  BitVec bits;
  bits.reserve(total_bits());
  quantize_row(feature.data(), bits);
  return bits;
}

tensor::Tensor FeatureQuantizer::dequantize(const BitVec& bits) const {
  SEMCACHE_CHECK(bits.size() == total_bits(),
                 "quantizer: expected " + std::to_string(total_bits()) +
                     " bits, got " + std::to_string(bits.size()));
  tensor::Tensor out({1, dims_});
  dequantize_row(bits, 0, out.data());
  return out;
}

tensor::Tensor FeatureQuantizer::roundtrip(
    const tensor::Tensor& feature) const {
  return dequantize(quantize(feature));
}

// Fan-out shape of the *_batch methods (common::parallel_for_or_inline):
// row bodies only write their own output slot, so pooled and inline
// execution are bit-identical.

std::vector<BitVec> FeatureQuantizer::quantize_batch(
    const tensor::Tensor& features, common::ThreadPool* pool) const {
  SEMCACHE_CHECK(features.rank() == 2 && features.dim(1) == dims_,
                 "quantizer: batch must be (N x " + std::to_string(dims_) +
                     "), got " + features.shape_string());
  std::vector<BitVec> payloads(features.dim(0));
  common::parallel_for_or_inline(
      pool, features.dim(0), [&](std::size_t r, std::size_t) {
        payloads[r].reserve(total_bits());
        quantize_row(features.data() + r * dims_, payloads[r]);
      });
  return payloads;
}

tensor::Tensor FeatureQuantizer::dequantize_batch(
    const std::vector<BitVec>& payloads, common::ThreadPool* pool) const {
  SEMCACHE_CHECK(!payloads.empty(), "quantizer: empty payload batch");
  tensor::Tensor out({payloads.size(), dims_});
  common::parallel_for_or_inline(
      pool, payloads.size(), [&](std::size_t r, std::size_t) {
        SEMCACHE_CHECK(payloads[r].size() == total_bits(),
                       "quantizer: payload " + std::to_string(r) + " has " +
                           std::to_string(payloads[r].size()) +
                           " bits, expected " + std::to_string(total_bits()));
        dequantize_row(payloads[r], 0, out.data() + r * dims_);
      });
  return out;
}

tensor::Tensor FeatureQuantizer::roundtrip_batch(
    const tensor::Tensor& features, common::ThreadPool* pool) const {
  SEMCACHE_CHECK(features.rank() == 2 && features.dim(1) == dims_,
                 "quantizer: batch must be (N x " + std::to_string(dims_) +
                     "), got " + features.shape_string());
  tensor::Tensor out({features.dim(0), dims_});
  // Per-row bit scratch (not hoisted): each lane needs its own BitVec, and
  // at dims*bits bits the row-local buffer costs nothing measurable.
  common::parallel_for_or_inline(
      pool, features.dim(0), [&](std::size_t r, std::size_t) {
        BitVec bits;
        bits.reserve(total_bits());
        quantize_row(features.data() + r * dims_, bits);
        dequantize_row(bits, 0, out.data() + r * dims_);
      });
  return out;
}

double FeatureQuantizer::max_error() const {
  return 1.0 / static_cast<double>(levels_ - 1);
}

}  // namespace semcache::semantic
