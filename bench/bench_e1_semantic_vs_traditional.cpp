// E1 (Fig. 2) — Semantic vs traditional communication.
//
// Claim (§I, §II-C): semantic communication "decrease[s] the transmitted
// data sizes" while preserving what the message MEANT.
//
// Series 1: meaning fidelity vs channel SNR (QPSK/AWGN, uncoded) for
//   (a) semantic features (quantized KB-encoder output) and
//   (b) traditional bits (Huffman-coded text), same channel.
// Series 2: wire size per message vs sentence length.
//
// Expected shape: semantic uses fewer bits/token and degrades gracefully
// at low SNR; traditional is bit-exact at high SNR but falls off a cliff
// once bit errors corrupt the compressed stream.
#include "bench_util.hpp"
#include "channel/pipeline.hpp"
#include "core/baselines.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "semantic/quantizer.hpp"

using namespace semcache;

namespace {

struct Setup {
  text::World world;
  std::unique_ptr<semantic::SemanticCodec> codec;
  std::unique_ptr<semantic::FeatureQuantizer> quantizer;
  std::unique_ptr<core::TraditionalCodec> traditional;
};

Setup build_setup(std::size_t sentence_length, unsigned bits) {
  Rng rng(1001);
  Setup s{text::World::generate(bench::standard_world(2, sentence_length), rng),
          nullptr, nullptr, nullptr};
  const auto cc = bench::standard_codec(s.world, 2);
  s.quantizer =
      std::make_unique<semantic::FeatureQuantizer>(cc.feature_dim, bits);
  s.codec = bench::train_domain_codec(s.world, 0, cc, 6000,
                                      s.quantizer->max_error() / 2, 7);
  Rng trng(1002);
  s.traditional =
      std::make_unique<core::TraditionalCodec>(s.world, trng, 1500);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned kBits = 3;  // 2 dims/position x 3 bits = 6 bits/token
  Setup s = build_setup(8, kBits);

  // ---- Series 1: fidelity vs SNR ----
  metrics::Table fidelity(
      "E1/Fig2a — meaning fidelity vs SNR (QPSK, AWGN, uncoded)",
      {"snr_db", "semantic_acc", "traditional_surface_acc",
       "traditional_meaning_acc", "semantic_bits/msg", "traditional_bits/msg"});
  for (const double snr : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0}) {
    auto sem_pipe = channel::make_awgn_pipeline(
        channel::make_code("uncoded"), channel::Modulation::kQpsk, snr);
    auto trad_pipe = channel::make_awgn_pipeline(
        channel::make_code("uncoded"), channel::Modulation::kQpsk, snr);
    Rng rng(2000 + static_cast<std::uint64_t>(snr * 10));
    metrics::OnlineStats sem_acc, trad_surf, trad_mean, trad_bits;
    for (int i = 0; i < 300; ++i) {
      const auto msg = s.world.sample_sentence(0, rng);
      // Semantic path.
      const auto feature = s.codec->encoder().encode(msg.surface);
      const BitVec payload = s.quantizer->quantize(feature);
      const BitVec received = sem_pipe->transmit(payload, rng);
      const auto decoded =
          s.codec->decoder().decode(s.quantizer->dequantize(received));
      sem_acc.add(metrics::token_accuracy(msg.meanings, decoded));
      // Traditional path.
      const auto trad = s.traditional->transmit(msg, *trad_pipe, rng);
      trad_surf.add(trad.surface_accuracy);
      trad_mean.add(trad.meaning_accuracy);
      trad_bits.add(static_cast<double>(trad.payload_bits));
    }
    fidelity.add_row({metrics::Table::num(snr, 0),
                      metrics::Table::num(sem_acc.mean()),
                      metrics::Table::num(trad_surf.mean()),
                      metrics::Table::num(trad_mean.mean()),
                      metrics::Table::num(s.quantizer->total_bits(), 0),
                      metrics::Table::num(trad_bits.mean(), 1)});
  }
  bench::emit(fidelity, argc, argv);

  // ---- Series 2: wire size vs message length ----
  metrics::Table size("E1/Fig2b — wire size vs message length",
                      {"tokens/msg", "semantic_bits", "huffman_bits",
                       "raw_bits", "semantic_bits/token"});
  for (const std::size_t len : {6u, 8u, 12u, 16u}) {
    Setup sl = build_setup(len, kBits);
    Rng rng(3000 + len);
    metrics::OnlineStats huff;
    for (int i = 0; i < 200; ++i) {
      huff.add(static_cast<double>(
          sl.traditional->compressed_bits(sl.world.sample_sentence(0, rng))));
    }
    size.add_row({metrics::Table::num(static_cast<double>(len), 0),
                  metrics::Table::num(sl.quantizer->total_bits(), 0),
                  metrics::Table::num(huff.mean(), 1),
                  metrics::Table::num(static_cast<double>(len) * 16.0, 0),
                  metrics::Table::num(
                      static_cast<double>(sl.quantizer->total_bits()) /
                      static_cast<double>(len), 1)});
  }
  bench::emit(size, argc, argv);
  return 0;
}
