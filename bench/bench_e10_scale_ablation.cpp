// E10 (Fig. 7) — System scale and the decoder-copy ablation.
//
// Sweeps the number of concurrent user pairs and domains through the full
// system (open-loop arrivals on the event simulator) and reports delivered
// throughput, latency, per-edge cached user-model state, and total wire
// bytes — with the decoder copy enabled vs disabled (the §II-C ablation:
// every message pays an output-return transfer when the copy is absent).
#include "bench_util.hpp"
#include "core/system.hpp"
#include "metrics/stats.hpp"

using namespace semcache;

namespace {

struct ScaleResult {
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  std::uint64_t wire_bytes = 0;      // feature + sync + output-return
  std::size_t updates = 0;
  std::size_t user_model_slots = 0;
  double user_model_mbytes = 0.0;
};

ScaleResult run(std::size_t pairs, std::size_t domains, bool decoder_copy,
                std::size_t messages_per_pair) {
  core::SystemConfig config;
  config.seed = 2001;
  config.world = bench::standard_world(domains, 6);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 12;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 3500;
  config.feature_bits = 3;
  config.oracle_selection = true;
  config.buffer_trigger = 16;
  config.finetune_epochs = 4;
  config.decoder_copy_enabled = decoder_copy;
  config.devices_per_edge = pairs;
  auto system = core::SemanticEdgeSystem::build(config);

  std::vector<std::string> senders, receivers;
  for (std::size_t p = 0; p < pairs; ++p) {
    text::IdiolectConfig idio;
    idio.substitution_rate = 0.3;
    senders.push_back("s" + std::to_string(p));
    receivers.push_back("r" + std::to_string(p));
    system->register_user(senders.back(), 0, &idio);
    system->register_user(receivers.back(), 1, nullptr);
  }

  metrics::OnlineStats latency;
  metrics::PercentileTracker p95;
  auto& sim = system->simulator();
  Rng arrival_rng(2002);
  for (std::size_t p = 0; p < pairs; ++p) {
    for (std::size_t i = 0; i < messages_per_pair; ++i) {
      const double t = 0.05 * static_cast<double>(i) +
                       arrival_rng.uniform(0.0, 0.01);
      sim.schedule_at(t, [&, p] {
        Rng drng(sim.now() * 1e6);
        const auto domain = static_cast<std::size_t>(
            drng.uniform_int(0, static_cast<std::int64_t>(
                                    system->world().num_domains()) - 1));
        system->transmit_async(
            senders[p], receivers[p],
            system->sample_message(senders[p], domain),
            [&](core::TransmitReport r) {
              latency.add(r.latency_s * 1e3);
              p95.add(r.latency_s * 1e3);
            });
      });
    }
  }
  sim.run();

  const auto& st = system->stats();
  ScaleResult result;
  result.mean_latency_ms = latency.mean();
  result.p95_latency_ms = p95.percentile(0.95);
  result.wire_bytes = st.feature_bytes + st.sync_bytes + st.output_return_bytes;
  result.updates = st.updates;
  result.user_model_slots = system->edge_state(0).slot_count() +
                            system->edge_state(1).slot_count();
  result.user_model_mbytes =
      static_cast<double>(system->edge_state(0).user_model_bytes() +
                          system->edge_state(1).user_model_bytes()) /
      1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::Table table(
      "E10/Fig7 — scale sweep with decoder-copy ablation",
      {"pairs", "domains", "decoder_copy", "mean_ms", "p95_ms",
       "wire_bytes", "updates", "user_slots", "user_model_MB"});
  for (const std::size_t pairs : {2u, 4u, 8u}) {
    for (const std::size_t domains : {2u, 4u}) {
      for (const bool copy : {true, false}) {
        const ScaleResult r = run(pairs, domains, copy, 40);
        table.add_row({std::to_string(pairs), std::to_string(domains),
                       copy ? "on" : "off",
                       metrics::Table::num(r.mean_latency_ms, 2),
                       metrics::Table::num(r.p95_latency_ms, 2),
                       std::to_string(r.wire_bytes),
                       std::to_string(r.updates),
                       std::to_string(r.user_model_slots),
                       metrics::Table::num(r.user_model_mbytes, 2)});
      }
    }
  }
  bench::emit(table, argc, argv);
  return 0;
}
