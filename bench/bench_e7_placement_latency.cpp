// E7 (Fig. 5) — Where should semantic encoding/decoding run?
//
// Claim (§I): "it is essential to explore the potential of edge computing
// to aid the semantic encoding/decoding process, as semantic communication
// requires a certain level of computing power".
//
// Three placements of the KB compute, modeled directly on the DES
// substrate with codec-derived FLOP counts:
//   device : encode on the sender phone, decode on the receiver phone
//            (feature bits still relayed through the edges);
//   edge   : the paper's design — encode/decode at the edge servers;
//   cloud  : both at the cloud, all traffic hairpins through it.
// Series: mean / p95 latency vs offered load, and a component breakdown.
#include "bench_util.hpp"
#include "edge/network.hpp"
#include "metrics/stats.hpp"

using namespace semcache;

namespace {

enum class Placement { kDevice, kEdge, kCloud };

const char* name(Placement p) {
  switch (p) {
    case Placement::kDevice: return "device";
    case Placement::kEdge: return "edge";
    case Placement::kCloud: return "cloud";
  }
  return "?";
}

struct LatencyResult {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
};

// One message flow; compute charged on the node that hosts the KB model.
// Message sizes: raw text 24 B, semantic feature payload 14 B.
struct FlowConfig {
  double encode_flops;   // per message
  double decode_flops;
  std::size_t raw_bytes = 24;
  std::size_t feature_bytes = 14;
};

LatencyResult run(Placement placement, double rate_hz, const FlowConfig& flow,
                  std::size_t messages) {
  edge::Simulator sim;
  edge::TopologyConfig tc;
  // A modest edge box and a phone; the gap drives the story.
  tc.device_flops = 2e9;
  tc.edge_flops = 1e11;
  tc.cloud_flops = 1e12;
  auto topo = edge::build_standard_topology(2, 1, tc);
  edge::Network& net = *topo.net;
  const auto s_dev = topo.devices[0][0];
  const auto r_dev = topo.devices[1][0];
  const auto s_edge = topo.edges[0];
  const auto r_edge = topo.edges[1];
  const auto cloud = topo.cloud;

  metrics::OnlineStats lat;
  metrics::PercentileTracker p95;
  std::size_t done = 0;

  auto launch = [&](double t0) {
    auto finish = [&, t0] {
      const double ms = (sim.now() - t0) * 1e3;
      lat.add(ms);
      p95.add(ms);
      ++done;
    };
    switch (placement) {
      case Placement::kEdge:
        // dev -raw-> edge -(encode)-> feature -> edge' -(decode)-> dev'.
        net.link(s_dev, s_edge).send(sim, flow.raw_bytes, [&, finish] {
          net.node(s_edge).submit_compute(sim, flow.encode_flops, [&, finish] {
            net.link(s_edge, r_edge).send(sim, flow.feature_bytes, [&, finish] {
              net.node(r_edge).submit_compute(sim, flow.decode_flops,
                                              [&, finish] {
                net.link(r_edge, r_dev).send(sim, flow.raw_bytes, finish);
              });
            });
          });
        });
        break;
      case Placement::kDevice:
        // encode on phone, feature relayed dev->edge->edge'->dev', decode
        // on the receiving phone.
        net.node(s_dev).submit_compute(sim, flow.encode_flops, [&, finish] {
          net.link(s_dev, s_edge).send(sim, flow.feature_bytes, [&, finish] {
            net.link(s_edge, r_edge).send(sim, flow.feature_bytes, [&, finish] {
              net.link(r_edge, r_dev).send(sim, flow.feature_bytes,
                                           [&, finish] {
                net.node(r_dev).submit_compute(sim, flow.decode_flops, finish);
              });
            });
          });
        });
        break;
      case Placement::kCloud:
        // raw text all the way to the cloud and back down.
        net.link(s_dev, s_edge).send(sim, flow.raw_bytes, [&, finish] {
          net.link(s_edge, cloud).send(sim, flow.raw_bytes, [&, finish] {
            net.node(cloud).submit_compute(
                sim, flow.encode_flops + flow.decode_flops, [&, finish] {
                  net.link(cloud, r_edge).send(sim, flow.raw_bytes, [&, finish] {
                    net.link(r_edge, r_dev).send(sim, flow.raw_bytes, finish);
                  });
                });
          });
        });
        break;
    }
  };

  for (std::size_t i = 0; i < messages; ++i) {
    const double t = static_cast<double>(i) / rate_hz;
    sim.schedule_at(t, [&, t] { launch(t); });
  }
  sim.run();
  return {lat.mean(), p95.percentile(0.95)};
}

}  // namespace

int main(int argc, char** argv) {
  // FLOP counts derived from a real trained codec at the standard size,
  // scaled up to a realistic transformer-KB workload (x2000: our toy codec
  // is ~8k parameters, DeepSC-class models are ~10M).
  Rng rng(1701);
  text::World world = text::World::generate(bench::standard_world(2), rng);
  const auto cc = bench::standard_codec(world, 1);
  Rng init(1);
  semantic::SemanticCodec probe(cc, init);
  const double scale = 2000.0;
  FlowConfig flow{
      2.0 * static_cast<double>(probe.encoder().parameters().scalar_count()) *
          scale,
      2.0 * static_cast<double>(probe.decoder().parameters().scalar_count()) *
          scale};

  metrics::Table table("E7/Fig5 — end-to-end latency vs placement and load",
                       {"rate_msg_s", "placement", "mean_ms", "p95_ms"});
  for (const double rate : {5.0, 20.0, 80.0, 320.0}) {
    for (const Placement p :
         {Placement::kDevice, Placement::kEdge, Placement::kCloud}) {
      const LatencyResult r = run(p, rate, flow, 300);
      table.add_row({metrics::Table::num(rate, 0), name(p),
                     metrics::Table::num(r.mean_ms, 2),
                     metrics::Table::num(r.p95_ms, 2)});
    }
  }
  bench::emit(table, argc, argv);

  // Component breakdown at light load (single message, idle network).
  metrics::Table parts("E7/Fig5-b — latency components (idle network)",
                       {"component", "device_ms", "edge_ms", "cloud_ms"});
  edge::TopologyConfig tc;
  tc.device_flops = 2e9;
  tc.edge_flops = 1e11;
  tc.cloud_flops = 1e12;
  auto topo = edge::build_standard_topology(2, 1, tc);
  const double enc_dev = flow.encode_flops / tc.device_flops * 1e3;
  const double enc_edge = flow.encode_flops / tc.edge_flops * 1e3;
  const double enc_cloud =
      (flow.encode_flops + flow.decode_flops) / tc.cloud_flops * 1e3;
  const double access =
      topo.net->link(topo.devices[0][0], topo.edges[0]).transfer_time(24) * 1e3;
  const double backbone =
      topo.net->link(topo.edges[0], topo.edges[1]).transfer_time(14) * 1e3;
  const double cloud_hop =
      topo.net->link(topo.edges[0], topo.cloud).transfer_time(24) * 1e3;
  parts.add_row({"encode+decode compute",
                 metrics::Table::num(enc_dev * 2, 3),
                 metrics::Table::num(enc_edge * 2, 3),
                 metrics::Table::num(enc_cloud, 3)});
  parts.add_row({"access links", metrics::Table::num(access * 2, 3),
                 metrics::Table::num(access * 2, 3),
                 metrics::Table::num(access * 2, 3)});
  parts.add_row({"backbone/cloud hops", metrics::Table::num(backbone, 3),
                 metrics::Table::num(backbone, 3),
                 metrics::Table::num(cloud_hop * 2, 3)});
  bench::emit(parts, argc, argv);
  return 0;
}
