// E16 — Per-link adaptive code rate over Gilbert–Elliott bursts.
//
// The channel-realism rung on top of E8: instead of a fixed SNR, the link
// weather alternates between good and bad states (two-state Markov burst
// noise keyed by the global message slot), and the transmitter picks its
// code rate per message from the receiver's decision-directed SNR
// estimates (EWMA + hysteresis, soft-decision Viterbi throughout).
//
// Arms per scenario: the three fixed rates (conv 1/2, punctured 2/3 and
// 3/4) and the adaptive ladder. Goodput counts only exactly-delivered
// messages: payload bits of messages whose decoded meaning matches the
// original, divided by coded bits on air — the quantity the adaptive
// controller is supposed to win: fixed 3/4 collapses inside bursts,
// fixed 1/2 wastes airtime in clear weather, the ladder rides both.
//
// Determinism: burst weather is a pure function of (seed, slot) and every
// message RNG is an identity fork, so all counters in these tables are
// byte-identical across SEMCACHE_THREADS settings (the fixed arms batch
// over the worker pool; the adaptive arm is genuinely sequential — the
// controller is a serial dependency).
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/adaptive.hpp"
#include "channel/pipeline.hpp"
#include "common/thread_pool.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "semantic/quantizer.hpp"

using namespace semcache;

namespace {

constexpr std::size_t kMessages = 400;
constexpr std::size_t kInterleaveDepth = 8;

struct Scenario {
  std::string name;
  channel::GilbertElliottConfig burst;
};

struct ArmResult {
  double accuracy = 0.0;       // mean token accuracy
  double exact = 0.0;          // fraction of messages delivered exactly
  std::uint64_t airtime = 0;   // coded bits on air
  double goodput = 0.0;        // exactly-delivered payload bits / airtime bit
  std::uint64_t switches = 0;  // adaptive only
  std::array<std::uint64_t, channel::kCodeRateCount> rate_messages{};
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  channel::GilbertElliottConfig calm;
  calm.snr_good_db = 12.0;
  calm.snr_bad_db = -2.0;
  calm.bad_weather_prob = 0.1;
  calm.dwell_messages = 16;
  calm.seed = 71;
  out.push_back({"calm", calm});

  channel::GilbertElliottConfig gusty = calm;
  gusty.bad_weather_prob = 0.4;
  gusty.dwell_messages = 8;
  out.push_back({"gusty", gusty});

  channel::GilbertElliottConfig stormy = calm;
  stormy.bad_weather_prob = 0.7;
  stormy.dwell_messages = 8;
  stormy.p_good_to_bad = 0.05;
  out.push_back({"stormy", stormy});
  return out;
}

struct Workload {
  std::vector<text::Sentence> messages;
  std::vector<BitVec> payloads;
};

Workload make_workload(const text::World& world, semantic::SemanticCodec& codec,
                       const semantic::FeatureQuantizer& quantizer) {
  Workload w;
  Rng rng(4242);
  for (std::size_t i = 0; i < kMessages; ++i) {
    w.messages.push_back(world.sample_sentence(0, rng));
    w.payloads.push_back(
        quantizer.quantize(codec.encoder().encode(w.messages.back().surface)));
  }
  return w;
}

struct DecodeResult {
  double accuracy = 0.0;  // mean token accuracy
  double exact = 0.0;     // fraction of messages decoded exactly
};

DecodeResult decode_quality(semantic::SemanticCodec& codec,
                            const semantic::FeatureQuantizer& quantizer,
                            const Workload& w,
                            const std::vector<BitVec>& received) {
  metrics::OnlineStats acc;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    const auto decoded =
        codec.decoder().decode(quantizer.dequantize(received[i]));
    const double ta = metrics::token_accuracy(w.messages[i].meanings, decoded);
    acc.add(ta);
    if (ta >= 1.0) ++exact;
  }
  DecodeResult r;
  r.accuracy = acc.mean();
  r.exact = static_cast<double>(exact) / static_cast<double>(received.size());
  return r;
}

ArmResult run_fixed(const std::string& code, const Scenario& sc,
                    semantic::SemanticCodec& codec,
                    const semantic::FeatureQuantizer& quantizer,
                    const Workload& w, common::ThreadPool* pool) {
  auto pipe = channel::make_burst_pipeline(channel::make_code(code),
                                           channel::Modulation::kQpsk,
                                           sc.burst, kInterleaveDepth);
  pipe->set_soft_decision(true);
  pipe->set_thread_pool(pool);
  std::vector<Rng> rngs;
  std::vector<std::uint64_t> slots;
  Rng base(9090);
  for (std::size_t i = 0; i < kMessages; ++i) {
    rngs.push_back(base.fork(i));
    slots.push_back(i);
  }
  const std::vector<BitVec> received =
      pipe->transmit_batch(w.payloads, rngs, slots);
  ArmResult r;
  const DecodeResult q = decode_quality(codec, quantizer, w, received);
  r.accuracy = q.accuracy;
  r.exact = q.exact;
  r.airtime = pipe->stats().airtime_bits;
  r.goodput = q.exact * static_cast<double>(pipe->stats().payload_bits) /
              static_cast<double>(r.airtime);
  return r;
}

ArmResult run_adaptive(const Scenario& sc, semantic::SemanticCodec& codec,
                       const semantic::FeatureQuantizer& quantizer,
                       const Workload& w) {
  channel::AdaptiveRateConfig cfg;  // 6 / 10 dB thresholds, 1 dB hysteresis
  channel::AdaptiveRatePipeline link(channel::Modulation::kQpsk, sc.burst,
                                     cfg, kInterleaveDepth);
  std::vector<BitVec> received;
  Rng base(9090);
  for (std::size_t i = 0; i < kMessages; ++i) {
    Rng rng = base.fork(i);
    received.push_back(link.transmit_at(w.payloads[i], rng, i));
  }
  ArmResult r;
  const DecodeResult q = decode_quality(codec, quantizer, w, received);
  r.accuracy = q.accuracy;
  r.exact = q.exact;
  r.airtime = link.stats().airtime_bits;
  r.goodput = q.exact * static_cast<double>(link.stats().payload_bits) /
              static_cast<double>(r.airtime);
  r.switches = link.stats().switches;
  r.rate_messages = link.stats().rate_messages;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1801);
  text::World world = text::World::generate(bench::standard_world(2), rng);
  const auto cc = bench::standard_codec(world, 2);
  semantic::FeatureQuantizer quantizer(cc.feature_dim, 3);
  auto codec = bench::train_domain_codec(world, 0, cc, 6000,
                                         quantizer.max_error() / 2, 18);

  // One worker pool for the fixed arms' batches; SEMCACHE_THREADS=0 (or
  // unset) keeps everything sequential. Counters must not depend on this.
  const std::size_t threads = common::resolve_thread_count(0);
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);

  metrics::Table summary(
      "E16 — adaptive vs best fixed rate (goodput, per scenario)",
      {"scenario", "r12", "r23", "r34", "adaptive", "best_fixed",
       "adaptive_wins"});

  for (const Scenario& sc : scenarios()) {
    const Workload w = make_workload(world, *codec, quantizer);
    metrics::Table table(
        "E16 — " + sc.name + " (p_bad=" +
            metrics::Table::num(sc.burst.bad_weather_prob, 2) + ", dwell=" +
            std::to_string(sc.burst.dwell_messages) + ")",
        {"arm", "accuracy", "exact", "airtime_bits", "goodput", "switches",
         "msgs_r12", "msgs_r23", "msgs_r34"});

    std::vector<std::pair<std::string, ArmResult>> arms;
    for (const char* code : {"conv_k3_r12", "conv_k3_r23", "conv_k3_r34"}) {
      arms.emplace_back(code,
                        run_fixed(code, sc, *codec, quantizer, w, pool.get()));
    }
    arms.emplace_back("adaptive", run_adaptive(sc, *codec, quantizer, w));

    double best_fixed = 0.0;
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const ArmResult& r = arms[a].second;
      if (a < 3 && r.goodput > best_fixed) best_fixed = r.goodput;
      const bool adaptive = arms[a].first == "adaptive";
      table.add_row(
          {arms[a].first, metrics::Table::num(r.accuracy),
           metrics::Table::num(r.exact),
           std::to_string(r.airtime), metrics::Table::num(r.goodput),
           adaptive ? std::to_string(r.switches) : "-",
           adaptive ? std::to_string(r.rate_messages[0]) : "-",
           adaptive ? std::to_string(r.rate_messages[1]) : "-",
           adaptive ? std::to_string(r.rate_messages[2]) : "-"});
    }
    bench::emit(table, argc, argv);

    const double adaptive_goodput = arms.back().second.goodput;
    summary.add_row({sc.name, metrics::Table::num(arms[0].second.goodput),
                     metrics::Table::num(arms[1].second.goodput),
                     metrics::Table::num(arms[2].second.goodput),
                     metrics::Table::num(adaptive_goodput),
                     metrics::Table::num(best_fixed),
                     adaptive_goodput > best_fixed ? "yes" : "no"});
  }
  bench::emit(summary, argc, argv);
  return 0;
}
