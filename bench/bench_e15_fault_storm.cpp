// E15 — fault storm: goodput, availability, and recovery cost under
// deterministic fault injection (core::FaultPlane).
//
// Four scenarios run the SAME traffic through the same sharded deployment
// shape (K = 2 behind core::ParallelDispatcher) and differ only in the
// injected fault mix:
//
//   * clean      — fault plane disarmed; the availability baseline.
//   * flap-queue — flapping backbone links (outages hold-and-drain) plus
//                  a sync storm: loss + corruption + duplication with the
//                  retry/backoff ladder mopping up. Every message still
//                  completes; the cost shows up as latency and sync
//                  retries/resyncs.
//   * flap-drop  — the same storm with outage_policy = kDrop: a send that
//                  lands in a down window is refused and its delivery
//                  chain dies, so goodput falls below 100% (the
//                  availability number the paper's edge story cares
//                  about) while the data plane itself never stalls.
//   * stall      — shard stalls (p = 0.3 per shard per wave): the
//                  dispatcher serves the stalled shard's pairs degraded
//                  from the frozen general replicas — availability stays
//                  100%, quality cost is the degraded-serve count.
//
// Reported per scenario: goodput % (completions / attempted), degraded
// serves, mean delivered latency and its delta vs clean (the recovery
// latency actually paid: outage drain + retry backoff), the sync ladder's
// accounting (retries / drops / expired), gap-resync traffic in KB (the
// last-resort recovery cost), outage counters, and serve wall time.
//
// Faults are identity-keyed (see src/faults/fault_plane.hpp), so every
// scenario is bit-reproducible at any thread count — rerunning this bench
// under SEMCACHE_THREADS=4 changes the wall clock, never the counters.
//
// Knobs: SEMCACHE_E15_WAVES / _PAIRS / _MSGS (defaults 16/6/3 — enough
// waves that every sender ships several sync versions, so expired ladders
// are followed by delivered updates and the gap-resync path is measured,
// not just armed).
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/dispatcher.hpp"
#include "core/sharded.hpp"
#include "core/system.hpp"

using namespace semcache;

namespace {

constexpr std::size_t kUsers = 16;
constexpr std::size_t kShards = 2;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  return (end == raw || *end != '\0' || value == 0) ? fallback : value;
}

core::FaultConfig storm() {
  core::FaultConfig f;
  f.seed = 0xE15;
  f.sync_loss = 0.3;
  f.sync_corrupt = 0.2;
  f.sync_duplicate = 0.15;
  f.retry_timeout_s = 0.02;
  f.retry_backoff = 2.0;
  f.max_attempts = 4;
  f.link_flap_period_s = 0.08;
  f.link_flap_down_s = 0.02;
  return f;
}

struct Scenario {
  std::string name;
  core::FaultConfig faults;
};

struct StormResult {
  std::size_t attempted = 0;
  std::size_t delivered = 0;
  double latency_sum_s = 0.0;
  double serve_s = 0.0;
  core::SystemStats stats;
};

StormResult run(const Scenario& scenario, std::size_t waves,
                std::size_t pairs, std::size_t msgs) {
  using clock = std::chrono::steady_clock;

  core::SystemConfig config;
  config.seed = 1501;
  config.world = bench::standard_world(2, 8);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 16;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 400;
  config.oracle_selection = true;  // measure the fault plane, not the selector
  config.num_edges = 2;
  config.devices_per_edge = kUsers;  // every registered user needs a device
  config.buffer_trigger = 3;  // sync ships fire often enough to meet the storm
  config.faults = scenario.faults;

  auto city = core::ShardedEdgeServing::build(config, kShards);
  for (std::size_t u = 0; u < kUsers; ++u) {
    city->register_user("u" + std::to_string(u), u % 2, nullptr);
  }

  StormResult result;
  core::ParallelDispatcher dispatcher(*city);
  for (std::size_t w = 0; w < waves; ++w) {
    // Fixed pair rotation, every pair cross-edge (sender and receiver of
    // opposite parity) so each triggered update ships a sync over the
    // faulted backbone. Each sender keeps ONE partner across waves so an
    // expired sync's version gap meets later delivered updates at the same
    // receiver slot — that is what exercises the gap-resync path. Sampled
    // OUTSIDE the timer.
    std::vector<std::string> senders, receivers;
    std::vector<std::vector<text::Sentence>> batches;
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t si = (w * pairs + p) % kUsers;
      const std::size_t ri = (si + 1) % kUsers;  // opposite parity
      senders.push_back("u" + std::to_string(si));
      receivers.push_back("u" + std::to_string(ri));
      std::vector<text::Sentence> batch;
      for (std::size_t i = 0; i < msgs; ++i) {
        batch.push_back(city->sample_message(senders.back(), (w + p + i) % 2));
      }
      batches.push_back(std::move(batch));
      result.attempted += msgs;
    }
    const auto t_wave = clock::now();
    for (std::size_t p = 0; p < pairs; ++p) {
      dispatcher.enqueue(senders[p], receivers[p], std::move(batches[p]));
    }
    dispatcher.flush([&result](std::size_t, std::size_t,
                               core::TransmitReport report) {
      ++result.delivered;
      result.latency_sum_s += report.latency_s;
    });
    result.serve_s +=
        std::chrono::duration<double>(clock::now() - t_wave).count();
  }
  result.stats = city->stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // K shards pretrain bit-identical codecs, and all four scenarios share
  // one codec config: pay the pretraining once via the fixture cache.
  if (std::getenv("SEMCACHE_FIXTURE_DIR") == nullptr) {
    const auto dir =
        std::filesystem::temp_directory_path() / "semcache-e15-fixtures";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) setenv("SEMCACHE_FIXTURE_DIR", dir.c_str(), 0);
  }

  const std::size_t waves = env_size("SEMCACHE_E15_WAVES", 16);
  const std::size_t pairs = env_size("SEMCACHE_E15_PAIRS", 6);
  const std::size_t msgs = env_size("SEMCACHE_E15_MSGS", 3);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", {}});
  {
    Scenario s{"flap-queue", storm()};
    s.faults.outage_policy = edge::OutagePolicy::kQueue;
    scenarios.push_back(s);
  }
  {
    Scenario s{"flap-drop", storm()};
    s.faults.outage_policy = edge::OutagePolicy::kDrop;
    scenarios.push_back(s);
  }
  {
    Scenario s{"stall", {}};
    s.faults.shard_stall = 0.3;
    scenarios.push_back(s);
  }

  metrics::Table availability(
      "E15 — goodput and availability under fault storms (" +
          std::to_string(kShards) + " shards, " + std::to_string(waves) +
          " waves x " + std::to_string(pairs) + " pairs x " +
          std::to_string(msgs) + " msgs)",
      {"scenario", "goodput_pct", "delivered", "degraded", "avg_ms",
       "d_ms_vs_clean", "serve_s"});
  metrics::Table recovery(
      "E15 — recovery accounting (retry ladder first, gap resync last "
      "resort)",
      {"scenario", "updates", "sync_retries", "sync_drops", "sync_expired",
       "corrupt_drops", "duplicates", "full_resyncs", "resync_kb", "outage_q",
       "outage_d"});

  double clean_avg_ms = 0.0;
  for (const Scenario& scenario : scenarios) {
    const StormResult r = run(scenario, waves, pairs, msgs);
    const double goodput =
        100.0 * static_cast<double>(r.delivered) /
        static_cast<double>(r.attempted);
    const double avg_ms =
        r.delivered == 0
            ? 0.0
            : 1000.0 * r.latency_sum_s / static_cast<double>(r.delivered);
    if (scenario.name == "clean") clean_avg_ms = avg_ms;
    availability.add_row(
        {scenario.name, metrics::Table::num(goodput, 1),
         std::to_string(r.delivered),
         std::to_string(r.stats.degraded_serves),
         metrics::Table::num(avg_ms, 2),
         metrics::Table::num(avg_ms - clean_avg_ms, 2),
         metrics::Table::num(r.serve_s, 3)});
    recovery.add_row(
        {scenario.name, std::to_string(r.stats.updates),
         std::to_string(r.stats.sync_retries),
         std::to_string(r.stats.sync_drops),
         std::to_string(r.stats.sync_expired),
         std::to_string(r.stats.sync_corrupt_drops),
         std::to_string(r.stats.sync_duplicates),
         std::to_string(r.stats.full_resyncs),
         metrics::Table::num(
             static_cast<double>(r.stats.resync_bytes) / 1024.0, 1),
         std::to_string(r.stats.outage_queued),
         std::to_string(r.stats.outage_drops)});
  }
  bench::emit(availability, argc, argv);
  bench::emit(recovery, argc, argv);
  return 0;
}
