// E13 — Batched transmit_many() serving throughput.
//
// The survey literature's throughput lever for semantic edge serving is
// amortizing per-message inference: transmit_many stacks N messages from a
// user pair through one encode/quantize/channel/decode pass per (domain,
// fine-tune interval) group. This bench measures delivered end-to-end
// throughput (data plane + timing-plane drain) as the batch size grows,
// with the fine-tune path disabled (pure serving) and enabled (trigger 24,
// the default serving+adaptation mix). speedup is per-message throughput
// relative to the N = 1 sequential path of the same fine-tune mode.
#include <chrono>

#include "bench_util.hpp"
#include "core/system.hpp"

using namespace semcache;

namespace {

constexpr std::size_t kMessages = 192;  // per configuration

struct BatchResult {
  double wall_ms = 0.0;
  double msgs_per_s = 0.0;
  double us_per_msg = 0.0;
  std::size_t updates = 0;
};

BatchResult run(std::size_t batch, bool finetune) {
  core::SystemConfig config;
  config.seed = 1301;
  config.world = bench::standard_world(2, 8);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 16;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 800;
  config.oracle_selection = true;
  config.buffer_trigger = finetune ? 24 : kMessages + 1;  // +1: never trips
  config.buffer_capacity = 256;
  auto system = core::SemanticEdgeSystem::build(config);
  system->register_user("s", 0, nullptr);
  system->register_user("r", 1, nullptr);

  std::vector<text::Sentence> messages;
  for (std::size_t i = 0; i < kMessages; ++i) {
    messages.push_back(system->sample_message("s", 0));
  }

  std::size_t delivered = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t pos = 0; pos < kMessages; pos += batch) {
    const std::size_t n = std::min(batch, kMessages - pos);
    std::vector<text::Sentence> chunk(
        messages.begin() + static_cast<std::ptrdiff_t>(pos),
        messages.begin() + static_cast<std::ptrdiff_t>(pos + n));
    system->transmit_many(
        "s", "r", std::move(chunk),
        [&delivered](std::size_t, core::TransmitReport) { ++delivered; });
    system->simulator().run();
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();

  BatchResult result;
  result.wall_ms = seconds * 1e3;
  result.msgs_per_s = static_cast<double>(delivered) / seconds;
  result.us_per_msg = seconds * 1e6 / static_cast<double>(delivered);
  result.updates = system->stats().updates;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::Table table(
      "E13 — batched transmit_many serving throughput (192 msgs/config)",
      {"batch", "finetune", "wall_ms", "msgs_per_s", "us_per_msg", "updates",
       "speedup"});
  for (const bool finetune : {false, true}) {
    double base_us = 0.0;
    for (const std::size_t batch : {1u, 2u, 8u, 32u}) {
      const BatchResult r = run(batch, finetune);
      if (batch == 1) base_us = r.us_per_msg;
      table.add_row({std::to_string(batch), finetune ? "on" : "off",
                     metrics::Table::num(r.wall_ms, 1),
                     metrics::Table::num(r.msgs_per_s, 0),
                     metrics::Table::num(r.us_per_msg, 2),
                     std::to_string(r.updates),
                     metrics::Table::num(base_us / r.us_per_msg, 2)});
    }
  }
  bench::emit(table, argc, argv);
  return 0;
}
