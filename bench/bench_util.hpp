// Shared builders for the experiment benches (E1..E10). Each bench binary
// regenerates one table/figure of the evaluation plan in DESIGN.md §2 and
// prints it as a markdown table (and CSV on --csv).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.hpp"
#include "semantic/codec.hpp"
#include "semantic/trainer.hpp"
#include "text/corpus.hpp"

namespace semcache::bench {

/// Standard experiment world: 4 domains, strong polysemy.
inline text::WorldConfig standard_world(std::size_t domains = 4,
                                        std::size_t sentence_length = 8) {
  text::WorldConfig wc;
  wc.num_domains = domains;
  wc.concepts_per_domain = 20;
  wc.num_polysemous = 12;
  wc.sentence_length = sentence_length;
  return wc;
}

/// Codec sized for the standard world (1..2 feature dims per position).
inline semantic::CodecConfig standard_codec(const text::World& world,
                                            std::size_t per_position_dims = 1,
                                            std::size_t hidden = 48) {
  semantic::CodecConfig cc;
  cc.surface_vocab = world.surface_count();
  cc.meaning_vocab = world.meaning_count();
  cc.sentence_length = world.config().sentence_length;
  cc.embed_dim = 20;
  cc.feature_dim = cc.sentence_length * per_position_dims;
  cc.hidden_dim = hidden;
  return cc;
}

/// Pretrain a specialized codec for one domain.
inline std::unique_ptr<semantic::SemanticCodec> train_domain_codec(
    const text::World& world, std::size_t domain,
    const semantic::CodecConfig& cc, std::size_t steps, double feature_noise,
    std::uint64_t seed) {
  Rng init(seed);
  auto codec = std::make_unique<semantic::SemanticCodec>(cc, init);
  semantic::TrainConfig tc;
  tc.steps = steps;
  tc.feature_noise = feature_noise;
  Rng trng(seed ^ 0xBEEF);
  semantic::CodecTrainer::pretrain_domain(*codec, world, domain, tc, trng);
  return codec;
}

/// Print a table as markdown (default), CSV on --csv, or JSON on --json.
/// Several benches emit more than one table, so --json is NDJSON: each
/// emit() writes exactly one single-line JSON object. Consumers must
/// parse line-by-line (as bench/run_all.sh does), not json.load the
/// whole stream.
inline void emit(const metrics::Table& table, int argc, char** argv) {
  bool csv = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") csv = true;
    if (std::string(argv[i]) == "--json") json = true;
  }
  if (json) {
    std::cout << table.to_json() << "\n";
  } else {
    std::cout << (csv ? table.to_csv() : table.to_markdown()) << "\n";
  }
}

}  // namespace semcache::bench
