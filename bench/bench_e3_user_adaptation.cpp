// E3 (Fig. 3) — User-specific individual models.
//
// Claim (§II-B): a general model "may not accurately capture the nuances
// and context-specific language usage of individual users"; the cached
// user-specific model fine-tuned from buffered transactions closes the gap.
//
// Two systems over the same idiolect-speaking user: one with the full
// Fig. 1 update loop, one frozen at the general model (buffer never trips).
// Series: meaning accuracy per 10-message window, plus update/sync counts.
#include "bench_util.hpp"
#include "core/system.hpp"
#include "metrics/stats.hpp"

using namespace semcache;

namespace {

core::SystemConfig system_config(bool adaptive) {
  core::SystemConfig config;
  config.seed = 1301;
  config.world = bench::standard_world(2);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 16;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 6000;
  config.feature_bits = 3;
  config.oracle_selection = true;
  config.buffer_trigger = adaptive ? 16 : 1000000;  // frozen control
  config.finetune_epochs = 8;
  return config;
}

std::vector<double> run(bool adaptive, std::size_t messages,
                        std::size_t window, std::size_t* updates,
                        std::uint64_t* sync_bytes) {
  auto system = core::SemanticEdgeSystem::build(system_config(adaptive));
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.7;
  idio.slang_prob = 0.8;
  system->register_user("user", 0, &idio);
  system->register_user("peer", 1, nullptr);

  std::vector<double> series;
  metrics::OnlineStats bucket;
  for (std::size_t i = 0; i < messages; ++i) {
    const auto msg = system->sample_message("user", 0);
    const auto r = system->transmit("user", "peer", msg);
    bucket.add(r.token_accuracy);
    if (bucket.count() == window) {
      series.push_back(bucket.mean());
      bucket = {};
    }
  }
  if (updates != nullptr) *updates = system->stats().updates;
  if (sync_bytes != nullptr) *sync_bytes = system->stats().sync_bytes;
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kMessages = 160;
  const std::size_t kWindow = 10;
  std::size_t updates = 0;
  std::uint64_t sync_bytes = 0;
  const auto adaptive = run(true, kMessages, kWindow, &updates, &sync_bytes);
  const auto frozen = run(false, kMessages, kWindow, nullptr, nullptr);

  metrics::Table curve("E3/Fig3 — accuracy vs transactions (idiolect user)",
                       {"messages", "individual_model", "general_only"});
  for (std::size_t w = 0; w < adaptive.size(); ++w) {
    curve.add_row({std::to_string((w + 1) * kWindow),
                   metrics::Table::num(adaptive[w]),
                   metrics::Table::num(frozen[w])});
  }
  bench::emit(curve, argc, argv);

  metrics::Table totals("E3/Fig3-b — update-loop accounting",
                        {"metric", "value"});
  totals.add_row({"updates_triggered", std::to_string(updates)});
  totals.add_row({"gradient_sync_bytes", std::to_string(sync_bytes)});
  totals.add_row(
      {"final_window_gain",
       metrics::Table::num(adaptive.back() - frozen.back())});
  bench::emit(totals, argc, argv);
  return 0;
}
