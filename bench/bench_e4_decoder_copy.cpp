// E4 (Table II) — Decoder copy on the sender edge.
//
// Claim (§II-C): computing encoder/decoder mismatch needs both input and
// output; "sending the output back to the sender would defeat the purpose
// of the semantic communication system". Caching decoder COPIES at the
// sender makes mismatch calculation free of network traffic.
//
// Two identical systems, decoder copy on/off, same idiolect workload.
// Table: per-message and cumulative bytes for mismatch calculation, plus
// gradient-sync bytes (which both variants pay).
#include "bench_util.hpp"
#include "core/system.hpp"

using namespace semcache;

namespace {

core::SystemConfig system_config(bool decoder_copy) {
  core::SystemConfig config;
  config.seed = 1401;
  config.world = bench::standard_world(2);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 16;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 5000;
  config.feature_bits = 3;
  config.oracle_selection = true;
  config.buffer_trigger = 20;
  config.decoder_copy_enabled = decoder_copy;
  return config;
}

struct RunStats {
  std::uint64_t feature_bytes = 0;
  std::uint64_t output_return_bytes = 0;
  std::uint64_t sync_bytes = 0;
  std::size_t updates = 0;
  std::size_t messages = 0;
};

RunStats run(bool decoder_copy, std::size_t messages) {
  auto system = core::SemanticEdgeSystem::build(system_config(decoder_copy));
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.5;
  system->register_user("user", 0, &idio);
  system->register_user("peer", 1, nullptr);
  for (std::size_t i = 0; i < messages; ++i) {
    system->transmit("user", "peer", system->sample_message("user", 0));
  }
  const auto& s = system->stats();
  return {s.feature_bytes, s.output_return_bytes, s.sync_bytes, s.updates,
          s.messages};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kMessages = 120;
  const RunStats with_copy = run(true, kMessages);
  const RunStats without = run(false, kMessages);

  metrics::Table table(
      "E4/TableII — mismatch-calculation cost: decoder copy vs output return",
      {"variant", "feature_bytes", "mismatch_extra_bytes",
       "extra_bytes/msg", "sync_bytes", "updates"});
  table.add_row({"decoder_copy (paper)",
                 std::to_string(with_copy.feature_bytes),
                 std::to_string(with_copy.output_return_bytes),
                 metrics::Table::num(
                     static_cast<double>(with_copy.output_return_bytes) /
                     static_cast<double>(kMessages), 2),
                 std::to_string(with_copy.sync_bytes),
                 std::to_string(with_copy.updates)});
  table.add_row({"output_return (ablation)",
                 std::to_string(without.feature_bytes),
                 std::to_string(without.output_return_bytes),
                 metrics::Table::num(
                     static_cast<double>(without.output_return_bytes) /
                     static_cast<double>(kMessages), 2),
                 std::to_string(without.sync_bytes),
                 std::to_string(without.updates)});
  bench::emit(table, argc, argv);

  metrics::Table overhead("E4/TableII-b — output-return overhead vs payload",
                          {"metric", "value"});
  const double payload_pm = static_cast<double>(without.feature_bytes) /
                            static_cast<double>(kMessages);
  const double extra_pm = static_cast<double>(without.output_return_bytes) /
                          static_cast<double>(kMessages);
  overhead.add_row({"feature_payload_bytes/msg",
                    metrics::Table::num(payload_pm, 2)});
  overhead.add_row({"output_return_bytes/msg", metrics::Table::num(extra_pm, 2)});
  overhead.add_row(
      {"overhead_fraction", metrics::Table::num(extra_pm / payload_pm, 3)});
  bench::emit(overhead, argc, argv);
  return 0;
}
