// E11 (extension, §III-C) — Reliability: error tolerance vs retransmission.
//
// Traditional bit-exact communication needs ARQ: a flipped bit corrupts
// the token stream, so the receiver CRC-checks and requests retransmission.
// Semantic features tolerate residual errors instead — a flipped feature
// bit perturbs one word's sense, it does not desynchronize anything.
//
// Table, per SNR (BPSK/AWGN, both sides conv-coded):
//   (a) semantic, fire-and-forget — fixed airtime, graceful fidelity;
//   (b) traditional (2 B/token) + stop-and-wait ARQ (CRC-32, <= 8
//       attempts) — exact when delivered, but airtime inflates as the
//       channel worsens and undelivered messages appear.
#include "bench_util.hpp"
#include "channel/arq.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "semantic/quantizer.hpp"
#include "text/vocab.hpp"

using namespace semcache;

namespace {

BitVec serialize_tokens(std::span<const std::int32_t> ids) {
  std::vector<std::uint8_t> raw;
  raw.reserve(ids.size() * 2);
  for (const auto id : ids) {
    raw.push_back(static_cast<std::uint8_t>(id & 0xFF));
    raw.push_back(static_cast<std::uint8_t>((id >> 8) & 0xFF));
  }
  return bytes_to_bits(raw);
}

std::vector<std::int32_t> deserialize_tokens(const BitVec& bits,
                                             std::size_t count,
                                             std::size_t vocab) {
  const auto bytes = bits_to_bytes(bits);
  std::vector<std::int32_t> ids;
  for (std::size_t b = 0; b + 1 < bytes.size() && ids.size() < count; b += 2) {
    auto id = static_cast<std::int32_t>(bytes[b]) |
              (static_cast<std::int32_t>(bytes[b + 1]) << 8);
    if (id < 0 || static_cast<std::size_t>(id) >= vocab) {
      id = text::Vocab::kUnk;
    }
    ids.push_back(id);
  }
  ids.resize(count, text::Vocab::kUnk);
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(2101);
  text::World world = text::World::generate(bench::standard_world(2), rng);
  const auto cc = bench::standard_codec(world, 2);
  semantic::FeatureQuantizer quantizer(cc.feature_dim, 3);
  auto codec = bench::train_domain_codec(world, 0, cc, 6000,
                                         quantizer.max_error() / 2, 21);

  metrics::Table table(
      "E11 — error tolerance vs ARQ (BPSK/AWGN, conv-coded both sides)",
      {"snr_db", "sem_acc", "sem_airtime", "trad_acc", "trad_airtime",
       "trad_attempts", "trad_undelivered"});
  for (const double snr : {-2.0, 0.0, 2.0, 4.0, 6.0}) {
    Rng run_rng(2200 + static_cast<std::uint64_t>((snr + 4) * 13));
    metrics::OnlineStats sem_acc, sem_air, trad_acc, trad_air, attempts;
    std::size_t undelivered = 0;
    const int kMessages = 250;
    for (int i = 0; i < kMessages; ++i) {
      const auto msg = world.sample_sentence(0, run_rng);

      // (a) Semantic, fire-and-forget.
      auto sem_pipe = channel::make_awgn_pipeline(
          channel::make_code("conv_k3_r12"), channel::Modulation::kBpsk, snr);
      const auto feature = codec->encoder().encode(msg.surface);
      const BitVec rx =
          sem_pipe->transmit(quantizer.quantize(feature), run_rng);
      const auto decoded = codec->decoder().decode(quantizer.dequantize(rx));
      sem_acc.add(metrics::token_accuracy(msg.meanings, decoded));
      sem_air.add(static_cast<double>(sem_pipe->stats().airtime_bits));

      // (b) Traditional tokens + ARQ.
      channel::ArqPipeline arq(
          channel::make_awgn_pipeline(channel::make_code("conv_k3_r12"),
                                      channel::Modulation::kBpsk, snr),
          8);
      const channel::ArqResult ar =
          arq.transmit(serialize_tokens(msg.surface), run_rng);
      attempts.add(static_cast<double>(ar.attempts));
      trad_air.add(static_cast<double>(ar.airtime_bits));
      if (!ar.delivered) ++undelivered;
      const auto rx_ids = deserialize_tokens(ar.payload, msg.surface.size(),
                                             world.surface_count());
      trad_acc.add(metrics::token_accuracy(msg.surface, rx_ids));
    }
    table.add_row(
        {metrics::Table::num(snr, 0), metrics::Table::num(sem_acc.mean()),
         metrics::Table::num(sem_air.mean(), 0),
         metrics::Table::num(trad_acc.mean()),
         metrics::Table::num(trad_air.mean(), 0),
         metrics::Table::num(attempts.mean(), 2),
         std::to_string(undelivered)});
  }
  bench::emit(table, argc, argv);
  return 0;
}
