#!/usr/bin/env python3
"""CI perf-regression gate for the pinned hot-path benches.

Compares a bench_micro JSON capture (Google Benchmark format, as written
by bench/run_all.sh into BENCH_bench_micro.json) against the multi-core
baseline recorded in bench/BASELINE.json under "regression_gate", and
fails when a pinned bench regresses by more than the threshold, or when
the cross-pair serving wave stops showing a wall speedup over its
sequential row.

The gate is CONTEXT-AWARE: baselines are captured on the CI runner class
(ci_micro_ns, with the capturing host's core count alongside), and the
gate disarms itself — loudly, exit 0 — when the current host has fewer
cores than `min_cores` (wall numbers from a starved pool are noise) or
when a pinned bench has no recorded baseline yet (bootstrap: record one
with --record from a trusted run's artifact).

Override: a run with SEMCACHE_PERF_OVERRIDE=1 in the environment (CI
sets it when the PR carries the `perf-override` label) or --override
reports regressions as warnings and exits 0 — for PRs that knowingly
trade the pinned paths, with the expectation that BASELINE.json is
refreshed in the same change.

Usage:
  check_regression.py --current build/bench_out/BENCH_bench_micro.json
  check_regression.py --current <capture> --record   # refresh baseline
"""

import argparse
import json
import os
import sys


def annotate(message):
    """Surface a disarm/override loudly in CI.

    Printing a plain line into a long job log is how a disarmed gate
    stays silently disarmed for five PRs. On GitHub Actions this emits a
    workflow warning annotation (rendered on the run summary and the PR
    checks tab); elsewhere it is a plain stderr-style print, so local
    runs see the same text.
    """
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::warning ::check_regression: {message}")
    print(f"  warn {message}")


def load_real_times(capture_path):
    """name -> real_time in ns from a Google Benchmark JSON capture."""
    with open(capture_path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregates; the gate compares raw runs
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        if "name" not in bench or "real_time" not in bench:
            continue  # error_occurred entries carry no timing
        times[bench["name"]] = float(bench["real_time"]) * scale
    return times


def print_drift_table(baseline, current):
    """Non-gating drift report against the informational micro_ns table.

    Prints every baseline micro_ns row present in the capture with its
    delta. Purely informational — nothing here fails the job, and it runs
    even on hosts below min_cores (drift direction is still meaningful on
    a starved pool; absolute walls are not). The ARMED numbers live in
    regression_gate.ci_micro_ns and are handled by the gate proper.
    """
    info = baseline.get("micro_ns", {})
    rows = []
    skipped = []  # baseline rows that are not comparable (non-numeric)
    for name, base in sorted(info.items()):
        if name not in current:
            continue
        try:
            rows.append((name, float(base), current[name]))
        except (TypeError, ValueError):
            skipped.append(name)
    # A capture from a newer tree legitimately carries benches the
    # checked-in baseline has never seen (freshly added micro benches).
    # Those are not drift — note them instead of crashing or silently
    # hiding them, so a stale baseline is visible in the log.
    unknown = sorted(set(current) - set(info))
    if not rows and not unknown and not skipped:
        return
    print("check_regression: informational micro_ns drift (non-gating; "
          "provenance in BASELINE.json _comment):")
    for name, base_ns, cur_ns in rows:
        delta = cur_ns / base_ns - 1.0
        print(f"  info {name}: {cur_ns / 1e3:.1f}us vs baseline "
              f"{base_ns / 1e3:.1f}us ({delta:+.1%})")
    for name in skipped:
        print(f"  info {name}: baseline value is not numeric — skipped")
    if unknown:
        print(f"  info {len(unknown)} capture row(s) without a baseline "
              f"(new benches — refresh micro_ns to track them): "
              + ", ".join(unknown))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="bench_micro JSON capture to gate")
    parser.add_argument("--baseline", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BASELINE.json"))
    parser.add_argument("--override", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--record", action="store_true",
                        help="write the current pinned/speedup numbers into "
                             "the baseline's ci_micro_ns and exit")
    args = parser.parse_args()

    override = args.override or os.environ.get(
        "SEMCACHE_PERF_OVERRIDE", "") == "1"

    with open(args.baseline) as f:
        baseline = json.load(f)
    gate = baseline.get("regression_gate")
    if not gate:
        annotate("baseline has no regression_gate section — perf gate "
                 "DISARMED; seed bench/BASELINE.json to re-arm")
        return 0

    current = load_real_times(args.current)
    threshold = float(gate.get("threshold", 0.25))
    min_cores = int(gate.get("min_cores", 4))
    cores = os.cpu_count() or 1
    recorded = gate.get("ci_micro_ns", {})
    recorded_cores = recorded.get("context", {}).get("host_cores")

    if not args.record:
        print_drift_table(baseline, current)

    if args.record:
        if cores < min_cores:
            print(f"check_regression: refusing --record on a {cores}-core "
                  f"host (min_cores={min_cores}): a starved-pool baseline "
                  f"would silently disarm the gate on every real runner. "
                  f"Record from the CI runner class's artifact on a matching "
                  f"host.")
            return 1
        values = {}
        names = list(gate.get("pinned", []))
        for pair in gate.get("speedup", []):
            names += [pair["sequential"], pair["threaded"]]
        missing = [n for n in names if n not in current]
        if missing:
            print("check_regression: capture lacks benches: "
                  + ", ".join(missing))
            return 1
        for name in names:
            values[name] = round(current[name], 1)
        gate["ci_micro_ns"] = {
            "context": {"host_cores": cores,
                        "source": os.path.basename(args.current)},
            "values": values,
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=1)
            f.write("\n")
        print(f"check_regression: recorded {len(values)} baseline rows "
              f"(host_cores={cores}) into {args.baseline}")
        return 0

    if cores < min_cores:
        annotate(f"host has {cores} core(s) < min_cores={min_cores}; "
                 f"wall-clock perf gate DISARMED (pool-starved numbers are "
                 f"noise)")
        return 0

    failures = []
    warnings = []

    # ---- pinned-bench wall regression ----
    values = recorded.get("values", {})
    for name in gate.get("pinned", []):
        if name not in current:
            warnings.append(f"{name}: not present in this capture")
            continue
        if name not in values:
            warnings.append(f"{name}: no CI baseline recorded yet — "
                            f"bootstrap by running --record on a trusted "
                            f"capture from this runner class")
            continue
        if recorded_cores is not None and recorded_cores != cores:
            warnings.append(f"{name}: baseline captured on "
                            f"{recorded_cores}-core host, this host has "
                            f"{cores}; skipping (refresh with --record)")
            continue
        base_ns = float(values[name])
        cur_ns = current[name]
        delta = cur_ns / base_ns - 1.0
        line = (f"{name}: {cur_ns / 1e3:.1f}us vs baseline "
                f"{base_ns / 1e3:.1f}us ({delta:+.1%}, threshold "
                f"+{threshold:.0%})")
        if delta > threshold:
            failures.append(line)
        else:
            print(f"  ok   {line}")

    # ---- cross-pair wall-speedup assertion (within this capture) ----
    # Armed only once a CI baseline exists with matching context: before
    # the first --record the multi-core win is unproven (the gate ships
    # armed-but-empty), and a congested bootstrap run must not fail CI.
    for pair in gate.get("speedup", []):
        seq, thr = pair["sequential"], pair["threaded"]
        min_ratio = float(pair.get("min_ratio", 1.0))
        if not values:
            warnings.append(f"speedup {seq} / {thr}: disarmed until a CI "
                            f"baseline is recorded (--record)")
            continue
        if recorded_cores is not None and recorded_cores != cores:
            warnings.append(f"speedup {seq} / {thr}: baseline context is "
                            f"{recorded_cores}-core, this host has {cores}; "
                            f"skipping")
            continue
        if seq not in current or thr not in current:
            warnings.append(f"speedup {seq} / {thr}: rows missing from "
                            f"capture")
            continue
        ratio = current[seq] / current[thr]
        line = (f"speedup {seq} over {thr}: {ratio:.2f}x "
                f"(required > {min_ratio:.2f}x)")
        if ratio <= min_ratio:
            failures.append(line)
        else:
            print(f"  ok   {line}")

    # Every warning is a partially disarmed gate (a pinned bench or the
    # speedup assertion skipping its check) — annotate each one so CI
    # renders the disarm instead of burying it in the log.
    for line in warnings:
        annotate(line)
    if failures:
        verb = "WARN (override active)" if override else "FAIL"
        for line in failures:
            print(f"  {verb} {line}")
        if override:
            annotate("perf gate override engaged (perf-override label / "
                     "SEMCACHE_PERF_OVERRIDE=1) with "
                     f"{len(failures)} regression(s) reported as warnings — "
                     "refresh BASELINE.json if this change is intentional")
            return 0
        print("check_regression: perf gate failed — investigate, or apply "
              "the documented override (PR label `perf-override`) and "
              "refresh bench/BASELINE.json via --record")
        return 1
    print("check_regression: perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
