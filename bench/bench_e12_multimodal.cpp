// E12 (extension, §III-B) — Multimodal semantic communication.
//
// "It is crucial to consider multimodality when designing these models."
// We attach a simulated visual modality (Metaverse scene tags) to each
// message and compare three ways of serving ALL domains:
//   (a) pooled text-only codec           — cannot resolve polysemy;
//   (b) pooled BIMODAL codec             — scene vector disambiguates;
//   (c) per-domain specialized codecs    — the paper's Fig. 1 design
//                                          (upper bound, M models cached).
// Table: overall + polysemous-word accuracy, transmitted feature bits, and
// cached model bytes — the architecture trade-off in one view.
#include "bench_util.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "nn/optimizer.hpp"
#include "semantic/bimodal.hpp"

using namespace semcache;

int main(int argc, char** argv) {
  Rng rng(2201);
  text::WorldConfig wc = bench::standard_world(4, 8);
  wc.polysemous_prob = 0.3;
  text::World world = text::World::generate(wc, rng);
  semantic::SceneSampler scenes(world.num_domains(), semantic::SceneConfig{});

  semantic::BimodalConfig bc;
  bc.text = bench::standard_codec(world, 2);
  bc.scene_vocab = scenes.scene_vocab();
  bc.scene_feature_dim = 4;

  const std::size_t kSteps = 8000;
  // (a) pooled text-only.
  Rng ra(1);
  semantic::SemanticCodec text_only(bc.text, ra);
  // (b) pooled bimodal.
  Rng rb(1);
  semantic::BimodalCodec bimodal(bc, rb);
  {
    nn::Adam opt_t(3e-3), opt_b(3e-3);
    nn::ParameterSet pt = text_only.parameters();
    nn::ParameterSet pb = bimodal.parameters();
    Rng trng(2);
    for (std::size_t step = 0; step < kSteps; ++step) {
      const auto d = static_cast<std::size_t>(trng.uniform_int(
          0, static_cast<std::int64_t>(world.num_domains()) - 1));
      const auto msg = world.sample_sentence(d, trng);
      const auto scene = scenes.sample(d, trng);
      nn::Optimizer::zero_grad(pt.params());
      text_only.forward_loss(msg.surface, msg.meanings);
      text_only.backward();
      nn::Optimizer::clip_grad_norm(pt.params(), 5.0);
      opt_t.step(pt.params());
      nn::Optimizer::zero_grad(pb.params());
      bimodal.forward_loss(msg.surface, scene, msg.meanings);
      bimodal.backward();
      nn::Optimizer::clip_grad_norm(pb.params(), 5.0);
      opt_b.step(pb.params());
    }
  }
  // (c) specialized codecs (trained on the per-domain share of the budget).
  std::vector<std::unique_ptr<semantic::SemanticCodec>> specialized;
  std::size_t specialized_bytes = 0;
  for (std::size_t d = 0; d < world.num_domains(); ++d) {
    specialized.push_back(bench::train_domain_codec(
        world, d, bc.text, kSteps / world.num_domains(), 0.0, 300 + d));
    specialized_bytes += specialized.back()->byte_size();
  }

  // Evaluation over all domains (oracle domain for the specialized bank —
  // selection quality is E6's topic).
  Rng erng(4);
  metrics::OnlineStats t_all, t_poly, b_all, b_poly, s_all, s_poly;
  for (int i = 0; i < 400; ++i) {
    const auto d = static_cast<std::size_t>(erng.uniform_int(
        0, static_cast<std::int64_t>(world.num_domains()) - 1));
    const auto msg = world.sample_sentence(d, erng);
    const auto scene = scenes.sample(d, erng);
    const auto t_dec = text_only.reconstruct(msg.surface);
    const auto b_dec = bimodal.decode(bimodal.encode(msg.surface, scene));
    const auto s_dec = specialized[d]->reconstruct(msg.surface);
    const auto& poly = world.polysemous_meanings(d);
    for (std::size_t p = 0; p < msg.meanings.size(); ++p) {
      const bool is_poly =
          std::find(poly.begin(), poly.end(), msg.meanings[p]) != poly.end();
      auto score = [&](const std::vector<std::int32_t>& dec,
                       metrics::OnlineStats& all, metrics::OnlineStats& po) {
        const double hit = dec[p] == msg.meanings[p] ? 1.0 : 0.0;
        all.add(hit);
        if (is_poly) po.add(hit);
      };
      score(t_dec, t_all, t_poly);
      score(b_dec, b_all, b_poly);
      score(s_dec, s_all, s_poly);
    }
  }

  Rng szr(5);
  semantic::BimodalCodec size_probe(bc, szr);
  metrics::Table table(
      "E12 — multimodality vs specialization (pooled models, 4 domains)",
      {"architecture", "overall_acc", "polysemous_acc", "feature_bits@3b",
       "cached_model_bytes"});
  table.add_row({"pooled text-only", metrics::Table::num(t_all.mean()),
                 metrics::Table::num(t_poly.mean()),
                 std::to_string(bc.text.feature_dim * 3),
                 std::to_string(text_only.byte_size())});
  table.add_row({"pooled bimodal (+scene)", metrics::Table::num(b_all.mean()),
                 metrics::Table::num(b_poly.mean()),
                 std::to_string(bc.total_feature_dim() * 3),
                 std::to_string(size_probe.parameters().byte_size())});
  table.add_row({"4x specialized (oracle)", metrics::Table::num(s_all.mean()),
                 metrics::Table::num(s_poly.mean()),
                 std::to_string(bc.text.feature_dim * 3),
                 std::to_string(specialized_bytes)});
  bench::emit(table, argc, argv);
  return 0;
}
