// E2 (Table I) — Domain-specialized vs pooled general models.
//
// Claim (§II-A): "Using only general models for all users can lead to
// severe mismatches" — the word "bus" means different things in different
// domains, so one pooled model at the same capacity must lose accuracy,
// and the loss concentrates on polysemous words.
//
// Output: cross-domain token-accuracy matrix (codec trained on row-domain,
// evaluated on column-domain), a pooled-model row, and a polysemy
// breakdown (accuracy on polysemous vs exclusive positions).
#include "bench_util.hpp"
#include "metrics/stats.hpp"

using namespace semcache;

namespace {

struct Breakdown {
  double overall = 0.0;
  double polysemous = 0.0;
  double exclusive = 0.0;
};

Breakdown evaluate_breakdown(semantic::SemanticCodec& codec,
                             const text::World& world, std::size_t domain,
                             std::size_t sentences, Rng& rng) {
  metrics::OnlineStats all, poly, excl;
  for (std::size_t i = 0; i < sentences; ++i) {
    const auto msg = world.sample_sentence(domain, rng);
    const auto decoded = codec.reconstruct(msg.surface);
    for (std::size_t p = 0; p < msg.meanings.size(); ++p) {
      const bool hit = decoded[p] == msg.meanings[p];
      all.add(hit ? 1.0 : 0.0);
      const auto& meaning = world.meaning(msg.meanings[p]);
      if (meaning.domain == text::World::kSharedDomain) continue;
      // Polysemous = this domain lists the meaning among its shared-surface
      // senses.
      const auto& poly_ids = world.polysemous_meanings(domain);
      const bool is_poly = std::find(poly_ids.begin(), poly_ids.end(),
                                     msg.meanings[p]) != poly_ids.end();
      (is_poly ? poly : excl).add(hit ? 1.0 : 0.0);
    }
  }
  return {all.mean(), poly.mean(), excl.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1101);
  const std::size_t kDomains = 4;
  text::World world =
      text::World::generate(bench::standard_world(kDomains), rng);
  const auto cc = bench::standard_codec(world, 1);
  const std::size_t kSteps = 6000;

  // Specialized codecs.
  std::vector<std::unique_ptr<semantic::SemanticCodec>> specialized;
  for (std::size_t d = 0; d < kDomains; ++d) {
    specialized.push_back(
        bench::train_domain_codec(world, d, cc, kSteps, 0.0, 100 + d));
  }
  // Pooled general model: same capacity, same total steps per domain share.
  Rng pooled_init(200);
  semantic::SemanticCodec pooled(cc, pooled_init);
  semantic::TrainConfig tc;
  tc.steps = kSteps;  // same budget as each specialist
  Rng pooled_rng(201);
  semantic::CodecTrainer::pretrain_pooled(pooled, world, tc, pooled_rng);

  metrics::Table cross("E2/TableI — cross-domain token accuracy",
                       {"model\\eval", "it", "medical", "news",
                        "entertainment"});
  for (std::size_t m = 0; m < kDomains; ++m) {
    std::vector<std::string> row = {"kb_" + world.domain_name(m)};
    for (std::size_t d = 0; d < kDomains; ++d) {
      Rng erng(300 + m * 10 + d);
      row.push_back(metrics::Table::num(
          evaluate_breakdown(*specialized[m], world, d, 200, erng).overall));
    }
    cross.add_row(row);
  }
  std::vector<std::string> pooled_row = {"pooled_general"};
  for (std::size_t d = 0; d < kDomains; ++d) {
    Rng erng(400 + d);
    pooled_row.push_back(metrics::Table::num(
        evaluate_breakdown(pooled, world, d, 200, erng).overall));
  }
  cross.add_row(pooled_row);
  bench::emit(cross, argc, argv);

  metrics::Table poly(
      "E2/TableI-b — where the pooled model loses: polysemous senses",
      {"model", "overall", "polysemous_words", "exclusive_words"});
  {
    Rng erng(500);
    const auto spec = evaluate_breakdown(*specialized[0], world, 0, 300, erng);
    Rng erng2(500);
    const auto pool = evaluate_breakdown(pooled, world, 0, 300, erng2);
    poly.add_row({"specialized(it)", metrics::Table::num(spec.overall),
                  metrics::Table::num(spec.polysemous),
                  metrics::Table::num(spec.exclusive)});
    poly.add_row({"pooled_general", metrics::Table::num(pool.overall),
                  metrics::Table::num(pool.polysemous),
                  metrics::Table::num(pool.exclusive)});
  }
  bench::emit(poly, argc, argv);
  return 0;
}
