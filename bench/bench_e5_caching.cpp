// E5 (Fig. 4) — Semantic caching of KB models at the edge.
//
// Claim (abstract): caching domain-specialized general models and user-
// specific individual models "reduce[s] the time and resources required to
// establish individual KBs".
//
// Workload: a mixed population of general models (large, very popular) and
// per-user individual models (smaller, Zipf-popular users with sticky
// domains) requested at an edge server. A miss fetches from the cloud over
// a contended link (discrete-event simulated). Sweep cache capacity and
// eviction policy; report hit rate and mean KB-establishment latency.
#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "cache/registry.hpp"
#include "edge/network.hpp"
#include "metrics/stats.hpp"
#include "text/zipf.hpp"

using namespace semcache;

namespace {

struct Model {
  std::string key;
  std::size_t bytes;
};

struct Workload {
  std::vector<Model> models;
  std::vector<std::size_t> requests;  // indices into models
  std::size_t total_bytes = 0;
};

Workload build_workload(std::size_t num_domains, std::size_t num_users,
                        std::size_t num_requests, Rng& rng) {
  Workload w;
  // General models ~2 MB, user models ~0.5 MB (encoder+decoder vs the
  // decoder-sized personal delta state).
  for (std::size_t d = 0; d < num_domains; ++d) {
    w.models.push_back({"general/" + std::to_string(d),
                        (1800 + static_cast<std::size_t>(rng.uniform_int(0, 600))) * 1024});
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    for (std::size_t d = 0; d < 2; ++d) {  // each user active in 2 domains
      w.models.push_back({"user/" + std::to_string(u) + "/" + std::to_string(d),
                          (400 + static_cast<std::size_t>(rng.uniform_int(0, 200))) * 1024});
    }
  }
  for (const auto& m : w.models) w.total_bytes += m.bytes;

  // Requests: 30% general-model touches (Zipf over domains), 70% user-model
  // touches (Zipf over users, then one of their two domains).
  text::ZipfSampler domain_pop(num_domains, 0.9);
  text::ZipfSampler user_pop(num_users, 1.1);
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (rng.bernoulli(0.3)) {
      w.requests.push_back(domain_pop.sample(rng));
    } else {
      const std::size_t u = user_pop.sample(rng);
      const std::size_t d = rng.bernoulli(0.7) ? 0 : 1;
      w.requests.push_back(num_domains + u * 2 + d);
    }
  }
  return w;
}

struct Result {
  double hit_rate = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

Result run_policy(const Workload& w, const std::string& policy,
                  std::size_t capacity_bytes) {
  edge::Simulator sim;
  edge::Network net;
  const auto cloud = net.add_node("cloud", edge::NodeKind::kCloud, 1e12);
  const auto server = net.add_node("edge", edge::NodeKind::kEdgeServer, 1e11);
  net.connect(cloud, server, 200e6, 0.060);  // the TopologyConfig defaults

  cache::ModelRegistry registry;
  for (const auto& m : w.models) registry.register_model(m.key, m.bytes);
  cache::Cache<std::string> model_cache(capacity_bytes,
                                        cache::make_policy(policy));
  edge::Link& link = net.link(cloud, server);

  metrics::OnlineStats latency;
  metrics::PercentileTracker p95;
  constexpr double kLocalLoadMs = 0.5;  // cache hit: local storage load
  for (const std::size_t idx : w.requests) {
    const Model& m = w.models[idx];
    if (model_cache.get(m.key) != nullptr) {
      latency.add(kLocalLoadMs);
      p95.add(kLocalLoadMs);
      continue;
    }
    const double start = sim.now();
    double done = start;
    registry.fetch(sim, link, m.key, [&] { done = sim.now(); });
    sim.run();
    const double ms = (done - start) * 1e3 + kLocalLoadMs;
    latency.add(ms);
    p95.add(ms);
    cache::EntryInfo info;
    info.size_bytes = m.bytes;
    info.fetch_cost = link.transfer_time(m.bytes);
    model_cache.put(m.key, std::make_shared<std::string>(m.key), info);
  }
  return {model_cache.stats().hit_rate(), latency.mean(), p95.percentile(0.95)};
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1501);
  const Workload w = build_workload(8, 24, 4000, rng);

  metrics::Table table(
      "E5/Fig4 — KB-establishment cost vs cache capacity and policy",
      {"capacity_pct", "policy", "hit_rate", "mean_latency_ms",
       "p95_latency_ms"});
  for (const double pct : {0.10, 0.25, 0.50, 0.75}) {
    const auto capacity =
        static_cast<std::size_t>(pct * static_cast<double>(w.total_bytes));
    for (const std::string policy :
         {"fifo", "lru", "lfu", "gdsf", "sempop"}) {
      const Result r = run_policy(w, policy, capacity);
      table.add_row({metrics::Table::num(pct * 100, 0), policy,
                     metrics::Table::num(r.hit_rate),
                     metrics::Table::num(r.mean_latency_ms, 2),
                     metrics::Table::num(r.p95_latency_ms, 2)});
    }
  }
  bench::emit(table, argc, argv);

  metrics::Table baseline("E5/Fig4-b — no cache vs full cache",
                          {"configuration", "mean_latency_ms"});
  const Result none = run_policy(w, "lru", 1);  // effectively no cache
  const Result full = run_policy(w, "lru", w.total_bytes);
  baseline.add_row({"no_cache", metrics::Table::num(none.mean_latency_ms, 2)});
  baseline.add_row({"full_cache", metrics::Table::num(full.mean_latency_ms, 2)});
  baseline.add_row(
      {"speedup",
       metrics::Table::num(none.mean_latency_ms / full.mean_latency_ms, 1)});
  bench::emit(baseline, argc, argv);
  return 0;
}
