// E14 — city-scale sharded serving: users per GB and msgs/s/core.
//
// The paper's economic claim is that semantic serving state is CHEAP per
// user — general models amortize across the population while each user
// adds only directory bytes, slot bookkeeping, and buffered deltas
// (copy-on-write: a model clone materializes only when a user actually
// fine-tunes). This bench registers a city-scale population (default
// 100000 users; SEMCACHE_E14_USERS overrides — CI runs a smaller one),
// drives Zipf-distributed pair activity through the sharded front door
// (core::ShardedEdgeServing behind core::ParallelDispatcher), and reports
// the two capacity numbers that fall out:
//
//   * users/GB — registered users per gigabyte of deployment-wide
//     per-user state (profiles, slots, buffers, materialized models,
//     summed across shards; fixed costs reported separately),
//   * msgs/s/core — delivered serving throughput per engaged core
//     (shards x per-shard worker lanes), over a K in {1, 2, 4} sweep.
//
// Activity is Zipf(alpha = 1.0) over the population for both sender and
// receiver draws — the head users go hot (slots, buffers, fine-tunes)
// while the long tail stays registration-only, which is exactly the
// regime the memory audit is about. Message sampling happens outside the
// timed section; the timer covers enqueue + flush (the serving wave and
// its simulator drains).
//
// Knobs: SEMCACHE_E14_USERS (population, default 100000),
// SEMCACHE_E14_WAVES / _PAIRS / _MSGS (wave count, pairs per wave,
// messages per pair; defaults 12/8/4). K shards repeat pretraining
// bit-identically; SEMCACHE_FIXTURE_DIR amortizes it to one run — this
// bench points it at a temp directory when unset.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/dispatcher.hpp"
#include "core/sharded.hpp"
#include "core/system.hpp"
#include "text/zipf.hpp"

using namespace semcache;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  return (end == raw || *end != '\0' || value == 0) ? fallback : value;
}

struct CityResult {
  double build_s = 0.0;
  double register_s = 0.0;
  double serve_s = 0.0;
  std::size_t delivered = 0;
  std::size_t cores = 0;
  std::size_t updates = 0;
  core::MemoryFootprint footprint;
};

CityResult run(std::size_t num_shards, std::size_t users, std::size_t waves,
               std::size_t pairs, std::size_t msgs) {
  using clock = std::chrono::steady_clock;
  const auto seconds = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  core::SystemConfig config;
  config.seed = 1401;
  config.world = bench::standard_world(2, 8);
  config.codec.embed_dim = 20;
  config.codec.feature_dim = 16;
  config.codec.hidden_dim = 48;
  config.pretrain.steps = 800;
  config.oracle_selection = true;  // measure serving, not selector drift
  config.num_edges = 2;
  // Every registered user needs a device slot on its edge.
  config.devices_per_edge = users / 2 + 64;

  CityResult result;
  const auto t_build = clock::now();
  auto city = core::ShardedEdgeServing::build(config, num_shards);
  const auto t_register = clock::now();
  result.build_s = seconds(t_build, t_register);
  for (std::size_t u = 0; u < users; ++u) {
    city->register_user("u" + std::to_string(u), u % 2, nullptr);
  }
  result.register_s = seconds(t_register, clock::now());

  const std::size_t threads =
      city->shard(0).thread_pool() == nullptr
          ? 1
          : city->shard(0).thread_pool()->worker_count();
  result.cores = num_shards * threads;

  // Same activity stream for every K (seed fixed, drawn outside shards).
  Rng activity(0xE14);
  text::ZipfSampler zipf(users, 1.0);
  core::ParallelDispatcher dispatcher(*city);
  double serve_s = 0.0;
  for (std::size_t w = 0; w < waves; ++w) {
    // Draw the wave and sample its messages OUTSIDE the timer.
    std::vector<std::string> senders, receivers;
    std::vector<std::vector<text::Sentence>> batches;
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t si = zipf.sample(activity);
      std::size_t ri = zipf.sample(activity);
      if (ri == si) ri = (ri + 1) % users;
      senders.push_back("u" + std::to_string(si));
      receivers.push_back("u" + std::to_string(ri));
      std::vector<text::Sentence> batch;
      for (std::size_t i = 0; i < msgs; ++i) {
        batch.push_back(
            city->sample_message(senders.back(), (w + p + i) % 2));
      }
      batches.push_back(std::move(batch));
    }
    const auto t_wave = clock::now();
    for (std::size_t p = 0; p < pairs; ++p) {
      dispatcher.enqueue(senders[p], receivers[p], std::move(batches[p]));
    }
    dispatcher.flush([&result](std::size_t, std::size_t,
                               core::TransmitReport) { ++result.delivered; });
    serve_s += seconds(t_wave, clock::now());
  }
  result.serve_s = serve_s;
  result.updates = city->stats().updates;
  result.footprint = city->memory_footprint();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // K shards pretrain bit-identical codecs; pay once via the fixture
  // cache when the caller has not already pointed it somewhere.
  if (std::getenv("SEMCACHE_FIXTURE_DIR") == nullptr) {
    const auto dir =
        std::filesystem::temp_directory_path() / "semcache-e14-fixtures";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) setenv("SEMCACHE_FIXTURE_DIR", dir.c_str(), 0);
  }

  const std::size_t users = env_size("SEMCACHE_E14_USERS", 100000);
  const std::size_t waves = env_size("SEMCACHE_E14_WAVES", 12);
  const std::size_t pairs = env_size("SEMCACHE_E14_PAIRS", 8);
  const std::size_t msgs = env_size("SEMCACHE_E14_MSGS", 4);

  metrics::Table memory(
      "E14 — city-scale memory audit (" + std::to_string(users) +
          " registered users; per-user = profiles + slots + buffers + "
          "materialized models, summed over shards)",
      {"shards", "fixed_mb", "per_user_b", "users_per_gb", "slots",
       "materialized"});
  metrics::Table serving(
      "E14 — sharded serving throughput (Zipf(1.0) activity, " +
          std::to_string(waves) + " waves x " + std::to_string(pairs) +
          " pairs x " + std::to_string(msgs) + " msgs)",
      {"shards", "cores", "build_s", "register_s", "serve_s", "msgs_per_s",
       "msgs_per_s_core", "updates"});

  for (const std::size_t num_shards : {1u, 2u, 4u}) {
    const CityResult r = run(num_shards, users, waves, pairs, msgs);
    const core::MemoryFootprint& fp = r.footprint;
    const double fixed_mb =
        static_cast<double>(fp.general_model_bytes + fp.serving_replica_bytes +
                            fp.topology_bytes) /
        (1024.0 * 1024.0);
    const double per_user =
        static_cast<double>(fp.profile_bytes + fp.slot_bytes +
                            fp.buffer_bytes + fp.user_model_bytes) /
        static_cast<double>(users);
    const double users_per_gb =
        static_cast<double>(1ULL << 30) / per_user;
    memory.add_row({std::to_string(num_shards),
                    metrics::Table::num(fixed_mb, 1),
                    metrics::Table::num(per_user, 1),
                    metrics::Table::num(users_per_gb, 0),
                    std::to_string(fp.slots),
                    std::to_string(fp.materialized_models)});
    const double msgs_per_s =
        static_cast<double>(r.delivered) / r.serve_s;
    serving.add_row({std::to_string(num_shards), std::to_string(r.cores),
                     metrics::Table::num(r.build_s, 2),
                     metrics::Table::num(r.register_s, 2),
                     metrics::Table::num(r.serve_s, 3),
                     metrics::Table::num(msgs_per_s, 0),
                     metrics::Table::num(
                         msgs_per_s / static_cast<double>(r.cores), 0),
                     std::to_string(r.updates)});
  }
  bench::emit(memory, argc, argv);
  bench::emit(serving, argc, argv);
  return 0;
}
