// E9 (Table IV) — Gradient-sync compression for the decoder update (§II-D).
//
// The decoder delta shipped to the receiver edge can be sparsified and
// quantized. Both replicas apply the same lossy delta (consistency is
// structural), so compression trades SYNC BYTES against POST-UPDATE
// FIDELITY, never against replica agreement.
//
// Table: wire bytes, compression residual, post-sync accuracy on the
// user's idiolect traffic, and the replica byte-identity check.
#include "bench_util.hpp"
#include "fl/sync.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "text/idiolect.hpp"

using namespace semcache;

namespace {

double idiolect_accuracy(semantic::KbEncoder& enc, semantic::KbDecoder& dec,
                         const text::World& world,
                         const text::Idiolect& idio, std::size_t sentences,
                         std::uint64_t seed) {
  Rng rng(seed);
  metrics::OnlineStats acc;
  for (std::size_t i = 0; i < sentences; ++i) {
    auto msg = world.sample_sentence(0, rng);
    idio.apply(msg);
    const auto decoded = dec.decode(enc.encode(msg.surface));
    acc.add(metrics::token_accuracy(msg.meanings, decoded));
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1901);
  text::World world = text::World::generate(bench::standard_world(2), rng);
  const auto cc = bench::standard_codec(world, 2);
  auto general = bench::train_domain_codec(world, 0, cc, 6000, 0.0, 19);

  text::IdiolectConfig icfg;
  icfg.substitution_rate = 0.7;
  icfg.slang_prob = 0.9;
  Rng irng(1902);
  const text::Idiolect idio = text::Idiolect::generate(world, icfg, irng);

  // Buffered transactions + the fine-tuned scratch model (shared across
  // compression variants so only the sync wire differs).
  std::vector<semantic::Sample> buffer;
  Rng srng(1903);
  for (int i = 0; i < 64; ++i) {
    buffer.push_back(
        semantic::CodecTrainer::draw_sample(world, 0, &idio, srng));
  }
  auto scratch = general->clone();
  Rng frng(1904);
  semantic::CodecTrainer::finetune(*scratch, buffer, 10, 2e-3, frng);

  const auto before_vals = general->decoder().parameters().flatten_values();
  const auto after_vals = scratch->decoder().parameters().flatten_values();
  const double base_acc = idiolect_accuracy(
      general->encoder(), general->decoder(), world, idio, 200, 42);
  // Upper bound: raw fine-tuned weights (dense float32 sync).
  const double tuned_acc = idiolect_accuracy(
      scratch->encoder(), scratch->decoder(), world, idio, 200, 42);

  metrics::Table table(
      "E9/TableIV — decoder gradient sync: bytes vs fidelity",
      {"top_k", "bits", "sync_bytes", "residual_l2", "post_sync_acc",
       "replicas_identical"});
  table.add_row({"(no update)", "-", "0", "-", metrics::Table::num(base_acc),
                 "yes"});
  const fl::CompressionConfig configs[] = {
      {1.0, 32}, {1.0, 16}, {1.0, 8}, {0.25, 8}, {0.10, 8}, {0.01, 8}};
  for (const auto& cfg : configs) {
    fl::ModelSynchronizer sync(cfg);
    const fl::SyncMessage msg =
        sync.make_message(before_vals, after_vals, "user", 0, 1);

    // Sender-side replica: fine-tuned ENCODER (exact) + lossy decoder delta.
    auto sender = general->clone();
    nn::ParameterSet senc = sender->encoder().parameters();
    senc.copy_values_from(scratch->encoder().parameters());
    nn::ParameterSet sdec = sender->decoder().parameters();
    sync.apply(sdec, msg);
    // Receiver-side decoder replica.
    auto receiver = general->clone();
    nn::ParameterSet rdec = receiver->decoder().parameters();
    sync.apply(rdec, msg);

    const bool identical = sdec.values_equal(rdec);
    const double acc = idiolect_accuracy(sender->encoder(),
                                         receiver->decoder(), world, idio,
                                         200, 42);
    table.add_row({metrics::Table::num(cfg.top_k_fraction, 2),
                   std::to_string(cfg.bits), std::to_string(msg.byte_size()),
                   metrics::Table::num(
                       sync.compression_residual(before_vals, after_vals), 4),
                   metrics::Table::num(acc), identical ? "yes" : "NO"});
  }
  table.add_row({"(raw weights)", "32",
                 std::to_string(4 * after_vals.size()), "0",
                 metrics::Table::num(tuned_acc), "n/a"});
  bench::emit(table, argc, argv);
  return 0;
}
