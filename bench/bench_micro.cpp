// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: tensor matmul, codec encode/decode, Viterbi decoding,
// Huffman coding, cache operations, quantization, and the event loop.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "channel/convolutional.hpp"
#include "channel/modulation.hpp"
#include "compress/huffman.hpp"
#include "edge/sim.hpp"
#include "semantic/codec.hpp"
#include "semantic/quantizer.hpp"
#include "tensor/ops.hpp"

using namespace semcache;

static void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = tensor::Tensor::uniform({n, n}, 1.0f, rng);
  const auto b = tensor::Tensor::uniform({n, n}, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128);

namespace {
semantic::CodecConfig micro_codec_config() {
  semantic::CodecConfig cc;
  cc.surface_vocab = 300;
  cc.meaning_vocab = 200;
  cc.sentence_length = 8;
  cc.embed_dim = 20;
  cc.feature_dim = 16;
  cc.hidden_dim = 48;
  return cc;
}
}  // namespace

static void BM_CodecEncode(benchmark::State& state) {
  Rng rng(2);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encoder().encode(surface));
  }
}
BENCHMARK(BM_CodecEncode);

static void BM_CodecDecode(benchmark::State& state) {
  Rng rng(3);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto feature = codec.encoder().encode(surface);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decoder().decode(feature));
  }
}
BENCHMARK(BM_CodecDecode);

static void BM_CodecTrainStep(benchmark::State& state) {
  Rng rng(4);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::int32_t> meanings = {9, 8, 7, 6, 5, 4, 3, 2};
  for (auto _ : state) {
    codec.forward_loss(surface, meanings);
    codec.backward();
  }
}
BENCHMARK(BM_CodecTrainStep);

static void BM_ViterbiDecode(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  channel::ConvolutionalCode code;
  BitVec info(bits);
  for (auto& b : info) b = rng.bernoulli(0.5) ? 1 : 0;
  const BitVec coded = code.encode(info);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(coded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_ViterbiDecode)->Arg(64)->Arg(512);

static void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::uint8_t> data(1024);
  for (auto& b : data) {
    b = rng.bernoulli(0.7) ? 'e' : static_cast<std::uint8_t>(
                                       rng.uniform_int(0, 255));
  }
  const auto code = compress::HuffmanCode::build(compress::histogram(data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HuffmanEncode);

static void BM_CacheGetPut(benchmark::State& state) {
  cache::Cache<int> c(1 << 20, cache::make_lru_policy());
  cache::EntryInfo info;
  info.size_bytes = 64;
  Rng rng(7);
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 1000);
    if (c.get(key) == nullptr) {
      c.put(key, std::make_shared<int>(i), info);
    }
  }
}
BENCHMARK(BM_CacheGetPut);

static void BM_Quantizer(benchmark::State& state) {
  semantic::FeatureQuantizer q(16, 6);
  Rng rng(8);
  tensor::Tensor f({1, 16});
  for (std::size_t i = 0; i < 16; ++i) {
    f.at(0, i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.roundtrip(f));
  }
}
BENCHMARK(BM_Quantizer);

static void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    edge::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i) * 1e-3, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);

static void BM_Modulate16Qam(benchmark::State& state) {
  Rng rng(9);
  BitVec bits(4096);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel::modulate(bits, channel::Modulation::kQam16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Modulate16Qam);

BENCHMARK_MAIN();
