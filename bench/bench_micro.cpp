// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: tensor matmul (square, rectangular, and allocation-free
// variants), codec encode/decode/train (single and batched), the selector
// forward pass, cache get/put and eviction, gradient-sync compression,
// Viterbi decoding, Huffman coding, quantization, and the event loop.
#include <benchmark/benchmark.h>

#include <map>

#include "cache/cache.hpp"
#include "core/system.hpp"
#include "channel/convolutional.hpp"
#include "channel/modulation.hpp"
#include "channel/physical.hpp"
#include "common/cpu.hpp"
#include "compress/huffman.hpp"
#include "edge/sim.hpp"
#include "fl/compressor.hpp"
#include "select/gru_classifier.hpp"
#include "semantic/codec.hpp"
#include "semantic/quantizer.hpp"
#include "semantic/trainer.hpp"
#include "tensor/ops.hpp"

using namespace semcache;

static void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = tensor::Tensor::uniform({n, n}, 1.0f, rng);
  const auto b = tensor::Tensor::uniform({n, n}, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Non-square shapes exercise the blocked kernel's remainder paths: the
// codec's forward/backward shapes (skinny), plus tall and wide panels.
static void BM_TensorMatmulRect(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  const auto a = tensor::Tensor::uniform({m, k}, 1.0f, rng);
  const auto b = tensor::Tensor::uniform({k, n}, 1.0f, rng);
  tensor::Tensor c;
  for (auto _ : state) {
    tensor::matmul_into(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * k * n));
}
BENCHMARK(BM_TensorMatmulRect)
    ->Args({8, 48, 200})   // decoder output projection (L x hidden x vocab)
    ->Args({8, 20, 48})    // encoder hidden projection
    ->Args({192, 48, 200}) // 24-sentence fine-tune batch through the decoder
    ->Args({256, 64, 16})  // tall-skinny
    ->Args({16, 64, 256}); // short-wide

// The fused y = xW + b epilogue vs. the two-pass affine it replaced.
static void BM_TensorAffine(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto x = tensor::Tensor::uniform({m, 48}, 1.0f, rng);
  const auto w = tensor::Tensor::uniform({48, 200}, 1.0f, rng);
  const auto bias = tensor::Tensor::uniform({200}, 1.0f, rng);
  tensor::Tensor y;
  for (auto _ : state) {
    tensor::affine_into(y, x, w, bias);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TensorAffine)->Arg(8)->Arg(64);

namespace {
semantic::CodecConfig micro_codec_config() {
  semantic::CodecConfig cc;
  cc.surface_vocab = 300;
  cc.meaning_vocab = 200;
  cc.sentence_length = 8;
  cc.embed_dim = 20;
  cc.feature_dim = 16;
  cc.hidden_dim = 48;
  return cc;
}
}  // namespace

static void BM_CodecEncode(benchmark::State& state) {
  Rng rng(2);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encoder().encode(surface));
  }
}
BENCHMARK(BM_CodecEncode);

static void BM_CodecDecode(benchmark::State& state) {
  Rng rng(3);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto feature = codec.encoder().encode(surface);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decoder().decode(feature));
  }
}
BENCHMARK(BM_CodecDecode);

static void BM_CodecTrainStep(benchmark::State& state) {
  Rng rng(4);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::int32_t> meanings = {9, 8, 7, 6, 5, 4, 3, 2};
  for (auto _ : state) {
    codec.forward_loss(surface, meanings);
    codec.backward();
  }
}
BENCHMARK(BM_CodecTrainStep);

// Batched codec entry points: N sentences stacked as N*L rows through one
// kernel invocation per layer. items/s counts sentences, so the per-sentence
// amortization vs. BM_CodecEncode / BM_CodecTrainStep is directly readable.
static void BM_CodecEncodeBatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  std::vector<std::int32_t> surface(count * 8);
  for (std::size_t i = 0; i < surface.size(); ++i) {
    surface[i] = static_cast<std::int32_t>(i % 300);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.encoder().encode_batch(surface, count).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_CodecEncodeBatch)->Arg(1)->Arg(8)->Arg(32);

static void BM_CodecTrainStepBatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  semantic::SemanticCodec codec(micro_codec_config(), rng);
  std::vector<std::int32_t> surface(count * 8);
  std::vector<std::int32_t> meanings(count * 8);
  for (std::size_t i = 0; i < surface.size(); ++i) {
    surface[i] = static_cast<std::int32_t>(i % 300);
    meanings[i] = static_cast<std::int32_t>((i * 7) % 200);
  }
  for (auto _ : state) {
    codec.forward_loss_batch(surface, meanings, count);
    codec.backward();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_CodecTrainStepBatch)->Arg(8)->Arg(32);

// Selector forward pass: the per-message model-selection cost on the
// transmit hot path (§III-A), measured on the GRU classifier with a few
// messages of conversation context.
static void BM_SelectorForward(benchmark::State& state) {
  Rng rng(11);
  select::GruClassifier selector(300, 4, rng);
  const std::vector<std::int32_t> surface = {3, 14, 15, 92, 6, 53, 58, 9};
  for (std::size_t warm = 0; warm < 3; ++warm) {
    selector.observe(surface, warm % 4);
  }
  // Each iteration: a 4-message conversation, one select per message (the
  // GRU re-runs the growing prefix, as the online path does).
  for (auto _ : state) {
    for (int msg = 0; msg < 4; ++msg) {
      benchmark::DoNotOptimize(selector.select(surface));
    }
    selector.reset_context();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_SelectorForward);

// End-to-end batched data plane: transmit_many of N cross-edge messages
// (encode/quantize/channel/decode plus the timing-plane event chains,
// drained per batch). items/s counts messages, so per-message amortization
// vs. Arg(1) — the transmit_async path — is directly readable. The
// fine-tune trigger is set above the batch size and the buffer cleared
// between iterations, so this measures the pure serving path.
static void BM_TransmitBatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  static core::SemanticEdgeSystem* system = [] {
    core::SystemConfig config;
    config.seed = 91;
    config.world.num_domains = 2;
    config.world.sentence_length = 8;
    config.codec.embed_dim = 20;
    config.codec.feature_dim = 16;
    config.codec.hidden_dim = 48;
    config.pretrain.steps = 200;  // throughput bench: accuracy irrelevant
    config.oracle_selection = true;
    config.buffer_trigger = 64;  // > max batch: no fine-tune in the loop
    config.buffer_capacity = 64;
    auto built = core::SemanticEdgeSystem::build(config);
    built->register_user("s", 0, nullptr);
    built->register_user("r", 1, nullptr);
    return built.release();
  }();
  static const std::vector<text::Sentence>* pool = [] {
    auto* msgs = new std::vector<text::Sentence>;
    for (int i = 0; i < 32; ++i) {
      msgs->push_back(system->sample_message("s", 0));
    }
    return msgs;
  }();

  // Warm the (s, domain 0) slot so find_slot below never sees null.
  system->transmit_many("s", "r", {pool->front()},
                        [](std::size_t, core::TransmitReport) {});
  system->simulator().run();
  auto* buffer =
      system->edge_state(0).find_slot("s", 0)->buffer.get();
  buffer->clear();

  for (auto _ : state) {
    std::vector<text::Sentence> batch(pool->begin(),
                                      pool->begin() + static_cast<std::ptrdiff_t>(count));
    system->transmit_many("s", "r", std::move(batch),
                          [](std::size_t, core::TransmitReport) {});
    system->simulator().run();
    state.PauseTiming();
    buffer->clear();  // keep the transaction ring from growing unboundedly
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_TransmitBatch)->Arg(1)->Arg(8)->Arg(32);

// The worker-pool serving path: BM_TransmitBatch's exact workload on a
// system built with num_threads = {1, 2, 4} (args: {threads, batch}).
// Output is bit-identical to the sequential path by construction
// (test_transmit_parallel), so the only thing this measures is how much
// of the per-message channel-noise floor the pool recovers; compare
// against BM_TransmitBatch at the same batch for the speedup. One system
// per thread count (the pool is fixed at build), built lazily and leaked
// like BM_TransmitBatch's.
static void BM_TransmitBatchThreaded(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  static auto* systems =
      new std::map<std::size_t, core::SemanticEdgeSystem*>();
  static auto* pools =
      new std::map<std::size_t, std::vector<text::Sentence>>();
  if (!systems->contains(threads)) {
    core::SystemConfig config;
    config.seed = 91;
    config.world.num_domains = 2;
    config.world.sentence_length = 8;
    config.codec.embed_dim = 20;
    config.codec.feature_dim = 16;
    config.codec.hidden_dim = 48;
    config.pretrain.steps = 200;  // throughput bench: accuracy irrelevant
    config.oracle_selection = true;
    config.buffer_trigger = 64;  // > max batch: no fine-tune in the loop
    config.buffer_capacity = 64;
    config.num_threads = threads;
    auto built = core::SemanticEdgeSystem::build(config);
    built->register_user("s", 0, nullptr);
    built->register_user("r", 1, nullptr);
    auto& msgs = (*pools)[threads];
    for (int i = 0; i < 32; ++i) {
      msgs.push_back(built->sample_message("s", 0));
    }
    (*systems)[threads] = built.release();
  }
  core::SemanticEdgeSystem* system = (*systems)[threads];
  const std::vector<text::Sentence>& pool = (*pools)[threads];

  system->transmit_many("s", "r", {pool.front()},
                        [](std::size_t, core::TransmitReport) {});
  system->simulator().run();
  auto* buffer = system->edge_state(0).find_slot("s", 0)->buffer.get();
  buffer->clear();

  for (auto _ : state) {
    std::vector<text::Sentence> batch(
        pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(count));
    system->transmit_many("s", "r", std::move(batch),
                          [](std::size_t, core::TransmitReport) {});
    system->simulator().run();
    state.PauseTiming();
    buffer->clear();  // keep the transaction ring from growing unboundedly
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_TransmitBatchThreaded)
    ->Args({1, 8})
    ->Args({1, 32})
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({4, 8})
    ->Args({4, 32});

// Cross-pair parallel serving: P independent user pairs (distinct
// senders, alternating cross-edge directions) each ship an 8-message
// batch as ONE transmit_pairs wave (args: {threads, pairs}). threads=0
// is the sequential reference; on a multi-core host the threads=4 row
// over the threads=0 row at the same pair count is the wall-clock
// speedup of the cross-pair layer (the lanes are truly independent, so
// this is the row the CI perf plane gates on). Results are bit-identical
// across rows by construction (test_serve_pairs).
static void BM_ServePairsThreaded(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto pairs = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kPerPair = 8;
  struct Setup {
    core::SemanticEdgeSystem* system;
    std::vector<text::Sentence> messages;  // one lockstep draw, reused
  };
  static auto* setups = new std::map<std::size_t, Setup>();
  if (!setups->contains(threads)) {
    core::SystemConfig config;
    config.seed = 92;
    config.world.num_domains = 2;
    config.world.sentence_length = 8;
    config.codec.embed_dim = 20;
    config.codec.feature_dim = 16;
    config.codec.hidden_dim = 48;
    config.pretrain.steps = 200;  // throughput bench: accuracy irrelevant
    config.oracle_selection = true;
    config.buffer_trigger = 64;  // > per-pair batch: no fine-tune in loop
    config.buffer_capacity = 64;
    config.num_threads = threads;
    auto built = core::SemanticEdgeSystem::build(config);
    for (std::size_t p = 0; p < 4; ++p) {
      built->register_user("s" + std::to_string(p), p % 2, nullptr);
      built->register_user("r" + std::to_string(p), (p + 1) % 2, nullptr);
    }
    Setup setup;
    setup.messages.reserve(kPerPair);
    for (std::size_t i = 0; i < kPerPair; ++i) {
      setup.messages.push_back(built->sample_message("s0", 0));
    }
    setup.system = built.release();
    (*setups)[threads] = std::move(setup);
  }
  Setup& setup = (*setups)[threads];
  core::SemanticEdgeSystem* system = setup.system;

  auto make_wave = [&] {
    std::vector<core::SemanticEdgeSystem::PairBatch> wave(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      wave[p].sender = "s" + std::to_string(p);
      wave[p].receiver = "r" + std::to_string(p);
      wave[p].messages = setup.messages;
    }
    return wave;
  };
  // Warm every pair's slots (slot establishment is a one-off).
  system->transmit_pairs(make_wave(),
                         [](std::size_t, std::size_t, core::TransmitReport) {});
  system->simulator().run();
  auto clear_buffers = [&] {
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t edge = p % 2;
      system->edge_state(edge)
          .find_slot("s" + std::to_string(p), 0)
          ->buffer->clear();
    }
  };
  clear_buffers();

  for (auto _ : state) {
    system->transmit_pairs(
        make_wave(), [](std::size_t, std::size_t, core::TransmitReport) {});
    system->simulator().run();
    state.PauseTiming();
    clear_buffers();  // keep the transaction rings from tripping updates
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs * kPerPair));
}
BENCHMARK(BM_ServePairsThreaded)
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 2})
    ->Args({4, 4});

static void BM_ViterbiDecode(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  channel::ConvolutionalCode code;
  BitVec info(bits);
  for (auto& b : info) b = rng.bernoulli(0.5) ? 1 : 0;
  const BitVec coded = code.encode(info);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(coded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_ViterbiDecode)->Arg(64)->Arg(512);

// Weighted (soft-decision) trellis over quantized LLR confidences — the
// receive path of a soft pipeline. Branch metrics are rebuilt per step
// from the weight stream, so this bounds the LLR overhead vs the hard
// table-driven ACS above.
static void BM_ViterbiDecodeSoft(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  channel::ConvolutionalCode code;
  BitVec info(bits);
  for (auto& b : info) b = rng.bernoulli(0.5) ? 1 : 0;
  const BitVec coded = code.encode(info);
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = static_cast<float>((coded[i] != 0 ? 1.0 : -1.0) +
                                 rng.gaussian(0.0, 0.7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_soft(llrs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_ViterbiDecodeSoft)->Arg(64)->Arg(512);

static void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::uint8_t> data(1024);
  for (auto& b : data) {
    b = rng.bernoulli(0.7) ? 'e' : static_cast<std::uint8_t>(
                                       rng.uniform_int(0, 255));
  }
  const auto code = compress::HuffmanCode::build(compress::histogram(data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HuffmanEncode);

static void BM_CacheGetPut(benchmark::State& state) {
  cache::Cache<int> c(1 << 20, cache::make_lru_policy());
  cache::EntryInfo info;
  info.size_bytes = 64;
  Rng rng(7);
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 1000);
    if (c.get(key) == nullptr) {
      c.put(key, std::make_shared<int>(i), info);
    }
  }
}
BENCHMARK(BM_CacheGetPut);

// Eviction path: the cache is sized for 64 entries and fed a 1024-key
// cycle, so nearly every put must choose and expel an LRU victim — the
// model-churn regime of a saturated edge (E5).
static void BM_CacheEviction(benchmark::State& state) {
  cache::Cache<int> c(64 * 64, cache::make_lru_policy());
  cache::EntryInfo info;
  info.size_bytes = 64;
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 1024);
    c.put(key, std::make_shared<int>(i), info);
  }
  state.counters["evictions"] =
      static_cast<double>(c.stats().evictions) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CacheEviction);

// Gradient-sync compression (§II-D / E9): top-k sparsification + int8
// quantization of a decoder-sized delta, the per-update cost on the
// fine-tune sync path.
static void BM_SyncCompress(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<float> delta(dims);
  for (auto& d : delta) {
    d = static_cast<float>(rng.gaussian(0.0, 0.01));
  }
  const fl::DeltaCompressor compressor({/*top_k_fraction=*/0.25, /*bits=*/8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compressor.compress(delta).byte_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dims));
}
BENCHMARK(BM_SyncCompress)->Arg(10000)->Arg(100000);

static void BM_Quantizer(benchmark::State& state) {
  semantic::FeatureQuantizer q(16, 6);
  Rng rng(8);
  tensor::Tensor f({1, 16});
  for (std::size_t i = 0; i < 16; ++i) {
    f.at(0, i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.roundtrip(f));
  }
}
BENCHMARK(BM_Quantizer);

// Args sweep the event count 100x: the timing wheel's per-event cost
// (items_per_second) should stay near-flat where a binary heap degrades
// with log n. Timestamps spread across ticks so scheduling exercises the
// wheel levels, not just one sorted slot.
static void BM_SimulatorEventLoop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    edge::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>(i) * 1e-3, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(1000)->Arg(100000);

// Vectorized channel floor, both dispatch tiers in one capture: the full
// bit-pipeline a transmit pays per message — conv encode, 16-QAM map,
// AWGN, hard demap, Viterbi decode — on a 4096-bit payload. Arg(0) pins
// the scalar kernels, Arg(1) the AVX2 tier (identical to scalar when the
// host lacks AVX2+FMA, so the ratio reads 1.0 there rather than lying).
// Output bits are tier-invariant by contract (test_simd), so the rows
// differ in wall time only. The wall is dominated by the scalar gaussian
// draws and the modulation LUT walk, so the tier gap here is small by
// design — it guards against the dispatch layer ADDING overhead; the
// per-kernel wins read from BM_ViterbiDecode and BM_TensorMatmul.
static void BM_ChannelBatchSimd(benchmark::State& state) {
  const auto tier = state.range(0) == 0 ? common::SimdTier::kScalar
                                        : common::SimdTier::kAvx2;
  const common::SimdTier prev = common::set_simd_tier(tier);
  Rng bits_rng(21);
  BitVec info(4096);
  for (auto& b : info) b = bits_rng.bernoulli(0.5) ? 1 : 0;
  channel::ConvolutionalCode code;
  channel::AwgnChannel awgn(8.0);
  const BitVec coded = code.encode(info);
  for (auto _ : state) {
    std::vector<channel::Symbol> symbols =
        channel::modulate(coded, channel::Modulation::kQam16);
    Rng noise_rng(77);
    awgn.apply(symbols, noise_rng);
    const BitVec received =
        channel::demodulate(symbols, channel::Modulation::kQam16,
                            coded.size());
    benchmark::DoNotOptimize(code.decode(received));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(info.size()));
  state.SetLabel(tier == common::SimdTier::kAvx2
                     ? tensor::active_matmul_path()
                     : "scalar");
  common::set_simd_tier(prev);
}
BENCHMARK(BM_ChannelBatchSimd)->Arg(0)->Arg(1);

static void BM_Modulate16Qam(benchmark::State& state) {
  Rng rng(9);
  BitVec bits(4096);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel::modulate(bits, channel::Modulation::kQam16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Modulate16Qam);

// Custom main instead of BENCHMARK_MAIN(): stamp the engaged SIMD path
// into the Google Benchmark context so every JSON capture records which
// ISA actually ran (the tier is a runtime choice — the binary alone
// doesn't identify the kernels; see README "SIMD kernels").
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("semcache_simd", tensor::active_matmul_path());
  benchmark::AddCustomContext(
      "semcache_simd_tier",
      common::simd_tier_name(common::active_simd_tier()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
