#!/usr/bin/env bash
# Run every bench binary and collect machine-readable output.
#
# Each experiment bench (bench_e*) is run with --json, which emits NDJSON
# (one single-line JSON object per table — several benches print two
# tables). The tables are wrapped into bench_out/BENCH_<name>.json with
# the exit status and wall-clock time. bench_micro is Google Benchmark
# and emits native JSON directly.
#
# After the run, results are diffed against the checked-in perf baseline
# (bench/BASELINE.json, captured at PR 1): a per-benchmark delta table is
# printed so regressions are visible in CI logs and PR descriptions.
#
# Environment:
#   BENCH_BIN_DIR   directory holding the bench binaries (default: ./build)
#   BENCH_OUT_DIR   where the JSON lands (default: $BENCH_BIN_DIR/bench_out)
#   BENCH_FILTER    only run binaries whose name matches this grep pattern
#   BENCH_TIMEOUT   per-bench timeout in seconds (default: 1800)
#   BENCH_BASELINE  baseline file to diff against (default:
#                   bench/BASELINE.json next to this script; set empty to
#                   skip the diff)
#   SEMCACHE_THREADS  data-plane worker threads for default-configured
#                   systems (see README "Threading model"). Recorded as
#                   "threads" in every e-bench JSON and as
#                   context.semcache_threads in the bench_micro JSON, so a
#                   perf trajectory row always names its thread count.
#   SEMCACHE_E14_USERS  population for bench_e14_city_scale (picked up by
#                   the binary itself; default 100000 — CI sets 20000).
#                   New bench_e* binaries are auto-globbed: e14 needs no
#                   entry here, only its BASELINE.json wall_s row.
#
# Invoked by `cmake --build build --target bench`, or standalone:
#   BENCH_BIN_DIR=build bench/run_all.sh
set -u

BENCH_BIN_DIR="${BENCH_BIN_DIR:-./build}"
BENCH_OUT_DIR="${BENCH_OUT_DIR:-${BENCH_BIN_DIR}/bench_out}"
BENCH_FILTER="${BENCH_FILTER:-.}"
BENCH_TIMEOUT="${BENCH_TIMEOUT:-1800}"

mkdir -p "${BENCH_OUT_DIR}"

failures=0
ran=0

for bin in "${BENCH_BIN_DIR}"/bench_*; do
  [ -x "${bin}" ] && [ -f "${bin}" ] || continue
  name="$(basename "${bin}")"
  echo "${name}" | grep -q -E "${BENCH_FILTER}" || continue
  out="${BENCH_OUT_DIR}/BENCH_${name}.json"
  echo "== ${name}"
  start="$(python3 -c 'import time; print(time.time())')"
  if [ "${name}" = "bench_micro" ]; then
    timeout "${BENCH_TIMEOUT}" "${bin}" \
      --benchmark_format=json >"${out}" 2>"${BENCH_OUT_DIR}/${name}.stderr"
    status=$?
    if [ "${status}" -eq 0 ]; then
      # Stamp the worker-thread count into the Google Benchmark context so
      # threaded and sequential captures are distinguishable in the
      # trajectory.
      python3 - "${out}" <<'EOF' || status=1
import json, os, sys
path = sys.argv[1]
doc = json.load(open(path))
# Mirror common::resolve_thread_count: digits-only, <= 256, else 0 — the
# stamp must record what the library actually resolved, and a garbage env
# value must not fail a green bench run.
raw = os.environ.get("SEMCACHE_THREADS") or "0"
doc.setdefault("context", {})["semcache_threads"] = \
    int(raw) if raw.isdigit() and int(raw) <= 256 else 0
# The ENGAGED ISA is already in context.semcache_simd (the binary stamps
# it via AddCustomContext); record the requested tier alongside so a
# scalar-pinned capture is distinguishable from an auto one at a glance.
doc["context"]["semcache_simd_env"] = \
    os.environ.get("SEMCACHE_SIMD") or "auto"
json.dump(doc, open(path, "w"), indent=1)
EOF
    fi
  else
    raw="${BENCH_OUT_DIR}/${name}.ndjson"
    timeout "${BENCH_TIMEOUT}" "${bin}" --json \
      >"${raw}" 2>"${BENCH_OUT_DIR}/${name}.stderr"
    status=$?
    end="$(python3 -c 'import time; print(time.time())')"
    python3 - "${name}" "${raw}" "${out}" "${start}" "${end}" \
             "${status}" <<'EOF'
import json, os, sys
name, raw_path, out_path, start, end, status = sys.argv[1:7]
tables = []
bad_lines = 0
with open(raw_path) as f:
    for ln in f:
        ln = ln.strip()
        if not ln:
            continue
        try:
            tables.append(json.loads(ln))
        except ValueError:
            # A timeout-killed bench leaves a truncated final line; a
            # stray print poisons one line. Count it, keep the rest.
            bad_lines += 1
# Mirror common::resolve_thread_count (digits-only, <= 256, else 0) so the
# recorded count is what the library actually resolved.
raw_threads = os.environ.get("SEMCACHE_THREADS") or "0"
doc = {
    "bench": name,
    "exit_status": int(status),
    "bad_lines": bad_lines,
    "threads": int(raw_threads)
               if raw_threads.isdigit() and int(raw_threads) <= 256 else 0,
    # Requested SIMD tier (the e-bench binaries resolve it at runtime,
    # same policy as the library): a perf row must name its ISA.
    "simd": os.environ.get("SEMCACHE_SIMD") or "auto",
    "wall_s": round(float(end) - float(start), 3),
    "tables": tables,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
# A bench that "succeeded" but emitted unparseable output — or no
# tables at all — is a failure: an empty record must not silently
# enter the perf trajectory.
sys.exit(1 if (int(status) == 0 and (bad_lines or not tables)) else 0)
EOF
    if [ $? -ne 0 ] && [ "${status}" -eq 0 ]; then
      status=1
    fi
  fi
  if [ "${status}" -ne 0 ]; then
    echo "   FAILED (exit ${status}) — see ${BENCH_OUT_DIR}/${name}.stderr"
    failures=$((failures + 1))
  else
    echo "   wrote ${out}"
  fi
  ran=$((ran + 1))
done

echo "ran ${ran} benches, ${failures} failed; output in ${BENCH_OUT_DIR}"

# ---- baseline diff ----------------------------------------------------------
# Compare this run against the checked-in snapshot. Informational only: the
# table makes perf drift diffable across PRs, but never fails the run (noisy
# CI machines would flap; gating thresholds belong to a reviewer, not a
# script).
BENCH_BASELINE="${BENCH_BASELINE-$(dirname "$0")/BASELINE.json}"
if [ -n "${BENCH_BASELINE}" ] && [ -f "${BENCH_BASELINE}" ]; then
  python3 - "${BENCH_BASELINE}" "${BENCH_OUT_DIR}" <<'EOF'
import glob, json, os, sys

baseline_path, out_dir = sys.argv[1], sys.argv[2]
base = json.load(open(baseline_path))

rows = []  # (name, baseline, current, unit)
micro_path = os.path.join(out_dir, "BENCH_bench_micro.json")
if os.path.exists(micro_path):
    try:
        current = {b["name"]: b["real_time"]
                   for b in json.load(open(micro_path)).get("benchmarks", [])}
    except ValueError:
        current = {}
    for name, ns in sorted(base.get("micro_ns", {}).items()):
        rows.append((name, ns, current.get(name), "ns"))
    for name in sorted(set(current) - set(base.get("micro_ns", {}))):
        rows.append((name, None, current[name], "ns"))

base_wall = base.get("wall_s", {})
cur_wall = {}
for path in glob.glob(os.path.join(out_dir, "BENCH_bench_e*.json")):
    try:
        d = json.load(open(path))
        cur_wall[d["bench"]] = d["wall_s"]
    except (ValueError, KeyError):
        pass
for name in sorted(set(base_wall) | set(cur_wall)):
    rows.append((name, base_wall.get(name), cur_wall.get(name), "s"))

if not rows:
    sys.exit(0)
print()
print(f"== perf delta vs {baseline_path} "
      f"(captured at {base.get('captured_at', '?')}; negative = faster)")
name_w = max(len(r[0]) for r in rows)
print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
for name, old, new, unit in rows:
    fmt = (lambda v: "-" if v is None else
           (f"{v:,.0f}{unit}" if unit == "ns" else f"{v:.2f}{unit}"))
    if old and new:
        delta = f"{100.0 * (new - old) / old:+.1f}%"
    elif old is None:
        delta = "new"
    else:
        delta = "gone"
    print(f"{name:<{name_w}}  {fmt(old):>12}  {fmt(new):>12}  {delta:>8}")
EOF
fi
# Zero matches means a wrong BENCH_BIN_DIR or stale BENCH_FILTER — fail
# loudly instead of reporting an empty perf trajectory as success.
[ "${ran}" -gt 0 ] && [ "${failures}" -eq 0 ]
