// E8 (Fig. 6) — Channel coding for semantic features.
//
// Claim (§III-C): "issues such as signal interference [and] transmission
// errors ... can be addressed and mitigated through effective channel
// encoding and decoding techniques."
//
// Series 1: semantic meaning-accuracy vs SNR on AWGN for four channel
//   codes (uncoded / rep3 / Hamming / convolutional+Viterbi).
// Series 2: same on block-fading Rayleigh with and without interleaving.
//
// Expected shape: coding gain grows as SNR drops; on fading channels the
// interleaver rescues the block code.
#include "bench_util.hpp"
#include "channel/pipeline.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "semantic/quantizer.hpp"

using namespace semcache;

namespace {

double semantic_accuracy(semantic::SemanticCodec& codec,
                         const semantic::FeatureQuantizer& quantizer,
                         const text::World& world,
                         channel::ChannelPipeline& pipe, std::size_t sentences,
                         std::uint64_t seed) {
  Rng rng(seed);
  metrics::OnlineStats acc;
  for (std::size_t i = 0; i < sentences; ++i) {
    const auto msg = world.sample_sentence(0, rng);
    const auto feature = codec.encoder().encode(msg.surface);
    const BitVec rx = pipe.transmit(quantizer.quantize(feature), rng);
    const auto decoded = codec.decoder().decode(quantizer.dequantize(rx));
    acc.add(metrics::token_accuracy(msg.meanings, decoded));
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1801);
  text::World world = text::World::generate(bench::standard_world(2), rng);
  const auto cc = bench::standard_codec(world, 2);
  semantic::FeatureQuantizer quantizer(cc.feature_dim, 3);
  auto codec = bench::train_domain_codec(world, 0, cc, 6000,
                                         quantizer.max_error() / 2, 18);

  const std::vector<std::string> codes = {"uncoded", "rep3", "hamming74",
                                          "conv_k3_r12"};

  metrics::Table awgn("E8/Fig6a — semantic fidelity vs SNR (BPSK, AWGN)",
                      {"snr_db", "uncoded", "rep3", "hamming74",
                       "conv_k3_r12", "best_code_airtime_x"});
  for (const double snr : {-2.0, 0.0, 2.0, 4.0, 6.0, 8.0}) {
    std::vector<std::string> row = {metrics::Table::num(snr, 0)};
    for (const auto& code : codes) {
      auto pipe = channel::make_awgn_pipeline(channel::make_code(code),
                                              channel::Modulation::kBpsk, snr);
      row.push_back(metrics::Table::num(semantic_accuracy(
          *codec, quantizer, world, *pipe, 250,
          1900 + static_cast<std::uint64_t>(snr * 7))));
    }
    // Airtime expansion of the strongest code (conv, rate 1/2-ish).
    const auto payload = quantizer.total_bits();
    row.push_back(metrics::Table::num(
        static_cast<double>(
            channel::make_code("conv_k3_r12")->encoded_length(payload)) /
        static_cast<double>(payload), 2));
    awgn.add_row(row);
  }
  bench::emit(awgn, argc, argv);

  metrics::Table fading(
      "E8/Fig6b — block-fading Rayleigh: interleaving x coding",
      {"snr_db", "uncoded", "hamming74", "hamming74+interleave",
       "conv+interleave"});
  for (const double snr : {6.0, 10.0, 14.0, 18.0}) {
    auto acc = [&](const std::string& code, std::size_t depth) {
      auto pipe = channel::make_rayleigh_pipeline(
          channel::make_code(code), channel::Modulation::kBpsk, snr, 16, depth);
      return metrics::Table::num(semantic_accuracy(
          *codec, quantizer, world, *pipe, 250,
          2000 + static_cast<std::uint64_t>(snr)));
    };
    fading.add_row({metrics::Table::num(snr, 0), acc("uncoded", 1),
                    acc("hamming74", 1), acc("hamming74", 16),
                    acc("conv_k3_r12", 16)});
  }
  bench::emit(fading, argc, argv);
  return 0;
}
