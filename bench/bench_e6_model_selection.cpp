// E6 (Table III) — Model selection: stateless vs context-aware.
//
// Claim (§III-A): "a traditional classification neural network ... may not
// take into account the context of the message. As context is often
// critical", context-aware selectors (we use EWMA+Markov decoration and a
// GRU sequence classifier for the suggested LSTM) should win on
// conversations, especially on ambiguous (polysemy-heavy) messages.
//
// Table: per-message selection accuracy by selector and topic-switch rate,
// plus mean recovery lag after a topic switch.
#include "bench_util.hpp"
#include "metrics/stats.hpp"
#include "select/context.hpp"
#include "select/gru_classifier.hpp"
#include "select/logistic.hpp"
#include "select/naive_bayes.hpp"

using namespace semcache;

namespace {

struct Eval {
  double accuracy = 0.0;
  double switch_lag = 0.0;  // messages until correct again after a switch
};

Eval evaluate(select::DomainSelector& sel, const text::World& world,
              std::size_t conversations, double switch_prob,
              std::uint64_t seed) {
  Rng rng(seed);
  std::size_t correct = 0, total = 0;
  metrics::OnlineStats lag;
  for (std::size_t c = 0; c < conversations; ++c) {
    const auto conv = select::generate_conversation(world, 20, switch_prob, rng);
    sel.reset_context();
    std::size_t pending_switch_at = 0;
    bool pending = false;
    for (std::size_t i = 0; i < conv.messages.size(); ++i) {
      const auto& msg = conv.messages[i];
      if (i > 0 && msg.domain != conv.messages[i - 1].domain) {
        pending = true;
        pending_switch_at = i;
      }
      const std::size_t predicted = sel.select(msg.surface);
      if (predicted == msg.domain) {
        ++correct;
        if (pending) {
          lag.add(static_cast<double>(i - pending_switch_at));
          pending = false;
        }
      }
      ++total;
    }
  }
  return {static_cast<double>(correct) / static_cast<double>(total),
          lag.count() > 0 ? lag.mean() : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(1601);
  // Short, ambiguous messages: most positions are function words or
  // polysemous words, so a single message often contains NO domain-
  // exclusive word — exactly the regime where context is the only signal.
  text::WorldConfig wc = bench::standard_world(4, 4);
  wc.polysemous_prob = 0.45;
  wc.function_word_prob = 0.35;
  text::World world = text::World::generate(wc, rng);

  // Training budget: 800 labeled messages (shared); GRU additionally trains
  // on 300 labeled conversations (it is the only sequence model).
  auto train_flat = [&](select::DomainSelector& sel, std::uint64_t seed) {
    Rng trng(seed);
    for (int i = 0; i < 800; ++i) {
      const auto d = static_cast<std::size_t>(trng.uniform_int(
          0, static_cast<std::int64_t>(world.num_domains()) - 1));
      const auto s = world.sample_sentence(d, trng);
      sel.observe(s.surface, d);
    }
  };

  select::NaiveBayesSelector nb(world.surface_count(), world.num_domains());
  train_flat(nb, 11);

  Rng lrng(12);
  select::LogisticSelector logistic(world.surface_count(),
                                    world.num_domains(), lrng);
  train_flat(logistic, 13);

  auto ctx_base = std::make_unique<select::NaiveBayesSelector>(
      world.surface_count(), world.num_domains());
  train_flat(*ctx_base, 11);
  select::ContextSelector context(std::move(ctx_base), world.num_domains());

  Rng grng(14);
  select::GruClassifier gru(world.surface_count(), world.num_domains(), grng);
  Rng gcrng(15);
  for (int i = 0; i < 300; ++i) {
    gru.train_conversation(
        select::generate_conversation(world, 12, 0.12, gcrng));
  }

  metrics::Table table("E6/TableIII — selection accuracy on conversations",
                       {"selector", "switch=0.05", "switch=0.15",
                        "switch=0.30", "recovery_lag@0.15"});
  struct Entry {
    const char* name;
    select::DomainSelector* sel;
  };
  select::DomainSelector* selectors[] = {&nb, &logistic, &context, &gru};
  const char* names[] = {"naive_bayes (stateless)", "logistic (stateless)",
                         "context(NB)+markov", "gru (learned context)"};
  for (int s = 0; s < 4; ++s) {
    std::vector<std::string> row = {names[s]};
    double lag15 = 0.0;
    for (const double sw : {0.05, 0.15, 0.30}) {
      const Eval e = evaluate(*selectors[s], world, 40, sw, 1700);
      row.push_back(metrics::Table::num(e.accuracy));
      if (sw == 0.15) lag15 = e.switch_lag;
    }
    row.push_back(metrics::Table::num(lag15, 2));
    table.add_row(row);
  }
  bench::emit(table, argc, argv);
  return 0;
}
