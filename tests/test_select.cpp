// Unit tests for semcache::select — naive Bayes / logistic baselines learn
// separable domains; context-aware selectors exploit conversation
// stickiness; the GRU classifier trains end-to-end.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "metrics/confusion.hpp"
#include "select/context.hpp"
#include "select/gru_classifier.hpp"
#include "select/logistic.hpp"
#include "select/naive_bayes.hpp"

namespace semcache::select {
namespace {

class SelectorWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(51);
    text::WorldConfig cfg;
    cfg.num_domains = 3;
    cfg.concepts_per_domain = 15;
    cfg.num_polysemous = 8;
    cfg.sentence_length = 6;
    world_ = new text::World(text::World::generate(cfg, rng));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static void train(DomainSelector& sel, std::size_t examples,
                    std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < examples; ++i) {
      const auto d = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(world_->num_domains()) - 1));
      const auto s = world_->sample_sentence(d, rng);
      sel.observe(s.surface, d);
    }
  }

  static double stateless_accuracy(DomainSelector& sel, std::size_t n,
                                   std::uint64_t seed) {
    Rng rng(seed);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto d = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(world_->num_domains()) - 1));
      const auto s = world_->sample_sentence(d, rng);
      sel.reset_context();
      if (sel.select(s.surface) == d) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n);
  }

  static double conversation_accuracy(DomainSelector& sel, std::size_t convs,
                                      double switch_prob, std::uint64_t seed) {
    Rng rng(seed);
    std::size_t correct = 0, total = 0;
    for (std::size_t c = 0; c < convs; ++c) {
      const Conversation conv =
          generate_conversation(*world_, 16, switch_prob, rng);
      sel.reset_context();
      for (const auto& msg : conv.messages) {
        if (sel.select(msg.surface) == msg.domain) ++correct;
        ++total;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  }

  static text::World* world_;
};

text::World* SelectorWorld::world_ = nullptr;

TEST_F(SelectorWorld, NaiveBayesLearnsSeparableDomains) {
  NaiveBayesSelector nb(world_->surface_count(), world_->num_domains());
  train(nb, 600, 1);
  EXPECT_GT(stateless_accuracy(nb, 300, 2), 0.9);
}

TEST_F(SelectorWorld, NaiveBayesPosteriorNormalized) {
  NaiveBayesSelector nb(world_->surface_count(), world_->num_domains());
  train(nb, 100, 3);
  Rng rng(4);
  const auto s = world_->sample_sentence(0, rng);
  const auto post = nb.log_posterior(s.surface);
  double total = 0.0;
  for (const double lp : post) total += std::exp(lp);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SelectorWorld, NaiveBayesValidatesInput) {
  NaiveBayesSelector nb(10, 2);
  const std::vector<std::int32_t> bad = {11};
  EXPECT_THROW(nb.observe(bad, 0), Error);
  const std::vector<std::int32_t> ok = {1};
  EXPECT_THROW(nb.observe(ok, 5), Error);
}

TEST_F(SelectorWorld, LogisticLearnsSeparableDomains) {
  Rng rng(5);
  LogisticSelector lr(world_->surface_count(), world_->num_domains(), rng);
  train(lr, 1200, 6);
  EXPECT_GT(stateless_accuracy(lr, 300, 7), 0.85);
}

TEST_F(SelectorWorld, ContextBeatsStatelessOnStickyConversations) {
  // Polysemy-heavy short messages are ambiguous one at a time; context
  // disambiguates. This is the §III-A claim in miniature.
  auto nb_base = std::make_unique<NaiveBayesSelector>(
      world_->surface_count(), world_->num_domains());
  train(*nb_base, 600, 8);
  NaiveBayesSelector nb_plain(world_->surface_count(), world_->num_domains());
  train(nb_plain, 600, 8);

  ContextSelector ctx(std::move(nb_base), world_->num_domains());
  const double ctx_acc = conversation_accuracy(ctx, 40, 0.08, 9);
  const double plain_acc = conversation_accuracy(nb_plain, 40, 0.08, 9);
  EXPECT_GE(ctx_acc, plain_acc);
}

TEST_F(SelectorWorld, ContextResetForgetsHistory) {
  auto base = std::make_unique<NaiveBayesSelector>(world_->surface_count(),
                                                   world_->num_domains());
  train(*base, 600, 10);
  ContextSelector ctx(std::move(base), world_->num_domains());
  Rng rng(11);
  // Prime context hard on domain 0.
  for (int i = 0; i < 8; ++i) {
    ctx.select(world_->sample_sentence(0, rng).surface);
  }
  ctx.reset_context();
  // After reset, a clear domain-1 message must win immediately.
  std::size_t wins = 0;
  for (int i = 0; i < 20; ++i) {
    ctx.reset_context();
    if (ctx.select(world_->sample_sentence(1, rng).surface) == 1) ++wins;
  }
  EXPECT_GE(wins, 16u);
}

TEST_F(SelectorWorld, ContextValidatesConfig) {
  auto base = std::make_unique<NaiveBayesSelector>(10, 2);
  ContextConfig bad;
  bad.ewma = 1.0;
  EXPECT_THROW(ContextSelector(std::move(base), 2, bad), Error);
  EXPECT_THROW(ContextSelector(nullptr, 2), Error);
}

TEST_F(SelectorWorld, GruTrainsOnConversations) {
  Rng rng(12);
  GruClassifierConfig cfg;
  GruClassifier gru(world_->surface_count(), world_->num_domains(), rng, cfg);
  Rng crng(13);
  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 150; ++i) {
    const Conversation conv = generate_conversation(*world_, 10, 0.1, crng);
    const double loss = gru.train_conversation(conv);
    if (i == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_GT(conversation_accuracy(gru, 20, 0.1, 14), 0.6);
}

TEST_F(SelectorWorld, GruContextAccumulatesAcrossSelects) {
  Rng rng(15);
  GruClassifier gru(world_->surface_count(), world_->num_domains(), rng);
  Rng crng(16);
  for (int i = 0; i < 100; ++i) {
    gru.train_conversation(generate_conversation(*world_, 8, 0.1, crng));
  }
  // select() without reset threads hidden state through the conversation.
  Rng mrng(17);
  gru.reset_context();
  for (int i = 0; i < 5; ++i) {
    gru.select(world_->sample_sentence(2, mrng).surface);
  }
  // No crash, and context length grew; reset clears it.
  gru.reset_context();
  SUCCEED();
}

TEST_F(SelectorWorld, GruRejectsEmptyConversation) {
  Rng rng(18);
  GruClassifier gru(world_->surface_count(), world_->num_domains(), rng);
  EXPECT_THROW(gru.train_conversation(Conversation{}), Error);
}

TEST_F(SelectorWorld, ConversationGeneratorProperties) {
  Rng rng(19);
  // switch_prob 0: single topic throughout.
  const Conversation stable = generate_conversation(*world_, 12, 0.0, rng);
  ASSERT_EQ(stable.messages.size(), 12u);
  for (const auto& m : stable.messages) {
    EXPECT_EQ(m.domain, stable.messages[0].domain);
  }
  // switch_prob 1: every message changes domain.
  const Conversation jumpy = generate_conversation(*world_, 12, 1.0, rng);
  for (std::size_t i = 1; i < jumpy.messages.size(); ++i) {
    EXPECT_NE(jumpy.messages[i].domain, jumpy.messages[i - 1].domain);
  }
}

TEST_F(SelectorWorld, SelectorNamesDistinct) {
  Rng rng(20);
  NaiveBayesSelector nb(10, 2);
  LogisticSelector lr(10, 2, rng);
  GruClassifier gru(10, 2, rng);
  auto base = std::make_unique<NaiveBayesSelector>(10, 2);
  ContextSelector ctx(std::move(base), 2);
  EXPECT_EQ(nb.name(), "naive_bayes");
  EXPECT_EQ(lr.name(), "logistic");
  EXPECT_EQ(gru.name(), "gru");
  EXPECT_EQ(ctx.name(), "context(naive_bayes)");
}

// Sweep: context advantage grows as conversations get stickier (lower
// switch probability).
class StickinessSweep : public ::testing::TestWithParam<double> {};

TEST_P(StickinessSweep, ContextNeverMuchWorse) {
  Rng rng(61);
  text::WorldConfig cfg;
  cfg.num_domains = 3;
  cfg.concepts_per_domain = 12;
  cfg.num_polysemous = 8;
  cfg.sentence_length = 5;
  text::World world = text::World::generate(cfg, rng);

  auto make_nb = [&] {
    auto nb = std::make_unique<NaiveBayesSelector>(world.surface_count(), 3);
    Rng trng(62);
    for (int i = 0; i < 500; ++i) {
      const auto d = static_cast<std::size_t>(trng.uniform_int(0, 2));
      const auto s = world.sample_sentence(d, trng);
      nb->observe(s.surface, d);
    }
    return nb;
  };

  auto run = [&](DomainSelector& sel) {
    Rng crng(63);
    std::size_t correct = 0, total = 0;
    for (int c = 0; c < 30; ++c) {
      const Conversation conv =
          generate_conversation(world, 14, GetParam(), crng);
      sel.reset_context();
      for (const auto& m : conv.messages) {
        if (sel.select(m.surface) == m.domain) ++correct;
        ++total;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };

  auto plain = make_nb();
  ContextSelector ctx(make_nb(), 3);
  // Context should never lose more than a little, even when topics jump.
  EXPECT_GE(run(ctx), run(*plain) - 0.05) << "switch " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, StickinessSweep,
                         ::testing::Values(0.02, 0.1, 0.3));

}  // namespace
}  // namespace semcache::select
