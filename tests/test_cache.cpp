// Unit tests for semcache::cache — eviction policy behaviours, byte-capacity
// accounting, and the cloud model registry.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/policy.hpp"
#include "cache/registry.hpp"
#include "common/check.hpp"
#include "text/zipf.hpp"

namespace semcache::cache {
namespace {

using StringCache = Cache<std::string>;

std::shared_ptr<std::string> val(const std::string& s) {
  return std::make_shared<std::string>(s);
}

EntryInfo info(std::size_t size, double cost = 1.0) {
  EntryInfo e;
  e.size_bytes = size;
  e.fetch_cost = cost;
  return e;
}

TEST(CacheBasics, HitAndMissAccounting) {
  StringCache c(100, make_lru_policy());
  EXPECT_EQ(c.get("a"), nullptr);
  c.put("a", val("A"), info(10));
  const auto hit = c.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "A");
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST(CacheBasics, PeekDoesNotTouchStats) {
  StringCache c(100, make_lru_policy());
  c.put("a", val("A"), info(10));
  EXPECT_NE(c.peek("a"), nullptr);
  EXPECT_EQ(c.peek("b"), nullptr);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(CacheBasics, CapacityNeverExceeded) {
  StringCache c(30, make_lru_policy());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 15));
    c.put("k" + std::to_string(i), val("v"), info(size));
    EXPECT_LE(c.used_bytes(), c.capacity_bytes());
  }
}

TEST(CacheBasics, OversizedEntryRejected) {
  StringCache c(10, make_lru_policy());
  const auto result = c.put("big", val("B"), info(11));
  EXPECT_FALSE(result.inserted);
  EXPECT_EQ(c.stats().rejected, 1u);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(CacheBasics, ReplaceUpdatesBytes) {
  StringCache c(100, make_lru_policy());
  c.put("a", val("A1"), info(10));
  c.put("a", val("A2"), info(30));
  EXPECT_EQ(c.used_bytes(), 30u);
  EXPECT_EQ(*c.peek("a"), "A2");
  EXPECT_EQ(c.entry_count(), 1u);
}

TEST(CacheBasics, EraseFreesBytes) {
  StringCache c(100, make_lru_policy());
  c.put("a", val("A"), info(40));
  EXPECT_TRUE(c.erase("a"));
  EXPECT_FALSE(c.erase("a"));
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_EQ(c.stats().evictions, 0u);  // erase is not an eviction
}

TEST(CacheBasics, EvictedValueSurvivesViaSharedPtr) {
  StringCache c(20, make_lru_policy());
  c.put("a", val("A"), info(15));
  const auto held = c.get("a");
  c.put("b", val("B"), info(15));  // evicts "a"
  EXPECT_FALSE(c.contains("a"));
  EXPECT_EQ(*held, "A");  // still usable by the holder
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  StringCache c(30, make_lru_policy());
  c.put("a", val("A"), info(10));
  c.put("b", val("B"), info(10));
  c.put("c", val("C"), info(10));
  c.get("a");  // freshen a
  const auto result = c.put("d", val("D"), info(10));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "b");
  EXPECT_TRUE(c.contains("a"));
}

TEST(Lru, MultiEvictionForLargeEntry) {
  StringCache c(30, make_lru_policy());
  c.put("a", val("A"), info(10));
  c.put("b", val("B"), info(10));
  c.put("c", val("C"), info(10));
  const auto result = c.put("big", val("D"), info(25));
  EXPECT_EQ(result.evicted.size(), 3u);
  EXPECT_EQ(c.entry_count(), 1u);
}

TEST(Fifo, EvictsInsertionOrderRegardlessOfAccess) {
  StringCache c(30, make_fifo_policy());
  c.put("a", val("A"), info(10));
  c.put("b", val("B"), info(10));
  c.put("c", val("C"), info(10));
  c.get("a");
  c.get("a");
  const auto result = c.put("d", val("D"), info(10));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "a");  // accessed but still first in
}

TEST(Lfu, EvictsLeastFrequent) {
  StringCache c(30, make_lfu_policy());
  c.put("a", val("A"), info(10));
  c.put("b", val("B"), info(10));
  c.put("c", val("C"), info(10));
  c.get("a");
  c.get("a");
  c.get("c");
  const auto result = c.put("d", val("D"), info(10));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "b");
}

TEST(Lfu, TieBreaksByInsertionOrder) {
  StringCache c(30, make_lfu_policy());
  c.put("a", val("A"), info(10));
  c.put("b", val("B"), info(10));
  c.put("c", val("C"), info(10));
  const auto result = c.put("d", val("D"), info(10));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "a");
}

TEST(Gdsf, PrefersEvictingCheapLargeEntries) {
  StringCache c(100, make_gdsf_policy());
  // "cheap_big": large and cheap to refetch; "dear_small": small and
  // expensive. GDSF evicts cheap_big first.
  c.put("cheap_big", val("X"), info(60, 0.1));
  c.put("dear_small", val("Y"), info(10, 5.0));
  const auto result = c.put("new", val("Z"), info(50, 1.0));
  ASSERT_GE(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "cheap_big");
  EXPECT_TRUE(c.contains("dear_small"));
}

TEST(Gdsf, FrequencyProtects) {
  StringCache c(20, make_gdsf_policy());
  c.put("a", val("A"), info(10, 1.0));
  c.put("b", val("B"), info(10, 1.0));
  for (int i = 0; i < 5; ++i) c.get("a");
  const auto result = c.put("c", val("C"), info(10, 1.0));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "b");
}

TEST(SemPop, RecencyBeatsStaleFrequency) {
  // "old" gets many hits early, then "hot" gets a few recent ones. With
  // decay, the recent entry wins.
  StringCache c(20, make_sempop_policy(0.5));
  c.put("old", val("O"), info(10, 1.0));
  for (int i = 0; i < 10; ++i) c.get("old");
  c.put("hot", val("H"), info(10, 1.0));
  for (int i = 0; i < 3; ++i) c.get("hot");
  const auto result = c.put("new", val("N"), info(10, 1.0));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], "old");
}

TEST(PolicyFactory, ByName) {
  for (const auto* name : {"fifo", "lru", "lfu", "gdsf", "sempop"}) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("arc"), Error);
}

TEST(PolicyFactory, SemPopValidation) {
  EXPECT_THROW(make_sempop_policy(0.0), Error);
  EXPECT_THROW(make_sempop_policy(1.5), Error);
}

TEST(CacheStats, ToStringContainsFields) {
  StringCache c(10, make_lru_policy());
  c.get("x");
  const std::string s = c.stats().to_string();
  EXPECT_NE(s.find("hit_rate"), std::string::npos);
  EXPECT_NE(s.find("misses=1"), std::string::npos);
}

TEST(Registry, RegisterAndSize) {
  ModelRegistry reg;
  reg.register_model("m1", 1000);
  EXPECT_TRUE(reg.contains("m1"));
  EXPECT_EQ(reg.model_size("m1"), 1000u);
  EXPECT_THROW(reg.register_model("m1", 5), Error);  // duplicate
  EXPECT_THROW(reg.model_size("nope"), Error);
  EXPECT_THROW(reg.register_model("zero", 0), Error);
}

TEST(Registry, FetchChargesLinkAndSchedules) {
  edge::Simulator sim;
  edge::Network net;
  const auto cloud = net.add_node("cloud", edge::NodeKind::kCloud, 1e12);
  const auto server = net.add_node("edge", edge::NodeKind::kEdgeServer, 1e11);
  net.connect(cloud, server, 8e6, 0.05);

  ModelRegistry reg;
  reg.register_model("m", 1000);  // 1 ms serialization at 8 Mbit/s
  double done = -1.0;
  reg.fetch(sim, net.link(cloud, server), "m", [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 0.051, 1e-9);
  EXPECT_EQ(reg.fetches(), 1u);
  EXPECT_EQ(reg.bytes_fetched(), 1000u);
  EXPECT_NEAR(reg.fetch_latency(net.link(cloud, server), "m"), 0.051, 1e-9);
}

// Property sweep: under a hot-set workload every policy beats random-size
// expectations — and hit rate grows with capacity.
class PolicyCapacitySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyCapacitySweep, HitRateMonotoneInCapacity) {
  double prev_rate = -1.0;
  for (const std::size_t capacity : {20u, 40u, 80u}) {
    StringCache c(capacity, make_policy(GetParam()));
    Rng rng(7);
    text::ZipfSampler zipf(20, 1.2);
    for (int i = 0; i < 3000; ++i) {
      const std::string key = "k" + std::to_string(zipf.sample(rng));
      if (c.get(key) == nullptr) {
        c.put(key, val("v"), info(10));
      }
    }
    const double rate = c.stats().hit_rate();
    EXPECT_GT(rate, prev_rate - 0.02)
        << GetParam() << " capacity " << capacity;
    prev_rate = rate;
  }
  EXPECT_GT(prev_rate, 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyCapacitySweep,
                         ::testing::Values("fifo", "lru", "lfu", "gdsf",
                                           "sempop"));

}  // namespace
}  // namespace semcache::cache
