// Threads-vs-sequential determinism for the worker-pool data plane.
//
// Four systems are built from the same seed with num_threads 0 (the
// sequential reference), 1, 2, and 4, and driven in lockstep through the
// same case matrix as test_transmit_batch: cross-edge batches with
// mid-batch fine-tunes, mixed-domain grouping, the intra-edge no-channel
// path, and a hostile uncoded 0 dB channel. Every per-message
// TransmitReport field (mismatch losses and latencies compared as exact
// doubles), the aggregate SystemStats, the sender-side buffer state, and
// the decoder replica weights must be BYTE-IDENTICAL across all thread
// counts — the pool is a wall-clock lever only, never a semantic change,
// and the result must not depend on worker count or scheduling.
//
// Note on SEMCACHE_THREADS: build() lets the env fill in a default-0
// config (that is how the TSan CI job threads every suite), so this suite
// clears the variable up front — its "threads = 0" reference must really
// be the sequential path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

constexpr std::size_t kThreadCounts[] = {0, 1, 2, 4};
constexpr std::size_t kVariants = std::size(kThreadCounts);

SystemConfig variant_config(std::uint64_t seed, std::size_t num_threads) {
  SystemConfig config = test::tiny_system_config(seed);
  // Determinism needs lightly trained codecs, not accurate ones (the same
  // tier-1 budget test_transmit_batch uses).
  config.pretrain.steps = 150;
  config.buffer_trigger = 4;  // updates fire mid-batch
  config.buffer_capacity = 32;
  config.finetune_epochs = 2;
  config.num_edges = 2;
  config.num_threads = num_threads;
  return config;
}

void expect_reports_equal(const TransmitReport& ref, const TransmitReport& got,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.domain_true, got.domain_true);
  EXPECT_EQ(ref.domain_selected, got.domain_selected);
  EXPECT_EQ(ref.selection_correct, got.selection_correct);
  EXPECT_EQ(ref.decoded_meanings, got.decoded_meanings);
  EXPECT_EQ(ref.token_accuracy, got.token_accuracy);  // exact doubles
  EXPECT_EQ(ref.exact, got.exact);
  EXPECT_EQ(ref.mismatch, got.mismatch);
  EXPECT_EQ(ref.payload_bytes, got.payload_bytes);
  EXPECT_EQ(ref.airtime_bits, got.airtime_bits);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.triggered_update, got.triggered_update);
  EXPECT_EQ(ref.established_user_model, got.established_user_model);
  EXPECT_EQ(ref.general_cache_hit, got.general_cache_hit);
  EXPECT_EQ(ref.latency_s, got.latency_s);
}

void expect_stats_equal(const SystemStats& ref, const SystemStats& got) {
  EXPECT_EQ(ref.messages, got.messages);
  EXPECT_EQ(ref.feature_bytes, got.feature_bytes);
  EXPECT_EQ(ref.uplink_bytes, got.uplink_bytes);
  EXPECT_EQ(ref.downlink_bytes, got.downlink_bytes);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.updates, got.updates);
  EXPECT_EQ(ref.selection_errors, got.selection_errors);
  EXPECT_EQ(ref.sync_drops, got.sync_drops);
  EXPECT_EQ(ref.full_resyncs, got.full_resyncs);
  EXPECT_EQ(ref.resync_bytes, got.resync_bytes);
}

/// Sender-side buffer + slot + replica state of (user, domain) must match
/// the reference system byte-for-byte after every scenario.
void expect_slot_state_equal(SemanticEdgeSystem& ref, SemanticEdgeSystem& got,
                             const std::string& user, std::size_t domain,
                             std::size_t sender_edge,
                             std::size_t receiver_edge) {
  UserModelSlot* rs = ref.edge_state(sender_edge).find_slot(user, domain);
  UserModelSlot* gs = got.edge_state(sender_edge).find_slot(user, domain);
  ASSERT_EQ(rs == nullptr, gs == nullptr);
  if (rs == nullptr) return;
  EXPECT_EQ(rs->send_version, gs->send_version);
  ASSERT_NE(rs->buffer, nullptr);
  ASSERT_NE(gs->buffer, nullptr);
  EXPECT_EQ(rs->buffer->size(), gs->buffer->size());
  EXPECT_EQ(rs->buffer->total_added(), gs->buffer->total_added());
  EXPECT_EQ(rs->buffer->adds_until_ready(), gs->buffer->adds_until_ready());
  EXPECT_EQ(rs->buffer->mean_mismatch(), gs->buffer->mean_mismatch());
  // Sender-side user model weights are byte-identical across systems...
  nn::ParameterSet rp = rs->model->parameters();
  nn::ParameterSet gp = gs->model->parameters();
  EXPECT_TRUE(rp.values_equal(gp));
  // ...and each system's replica-sync verdict agrees with the reference.
  EXPECT_EQ(ref.replicas_in_sync(user, domain, sender_edge, receiver_edge),
            got.replicas_in_sync(user, domain, sender_edge, receiver_edge));
}

// Systems are shared across the suite and driven through the SAME
// operation sequence, so the lockstep invariant (identical state, RNG
// streams, and message draws) holds from test to test.
class TransmitParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The threads=0 reference must be genuinely sequential even when the
    // environment (e.g. the TSan CI job) threads default-0 configs.
    unsetenv("SEMCACHE_THREADS");
    for (std::size_t v = 0; v < kVariants; ++v) {
      systems_[v] =
          SemanticEdgeSystem::build(variant_config(1443, kThreadCounts[v]))
              .release();
      systems_[v]->register_user("a", 0, nullptr);
      systems_[v]->register_user("b", 1, nullptr);
      systems_[v]->register_user("c", 0, nullptr);  // same edge as "a"
    }
    ASSERT_EQ(systems_[0]->thread_pool(), nullptr);
    ASSERT_NE(systems_[3]->thread_pool(), nullptr);
    ASSERT_EQ(systems_[3]->thread_pool()->worker_count(), 4u);
  }
  static void TearDownTestSuite() {
    for (auto*& system : systems_) {
      delete system;
      system = nullptr;
    }
  }

  /// Draw the same message stream from every system (their rng_ streams
  /// advance in lockstep); domains[i] picks each message's true domain.
  static std::vector<std::vector<text::Sentence>> sample_lockstep_messages(
      const std::string& user, const std::vector<std::size_t>& domains) {
    std::vector<std::vector<text::Sentence>> drawn(kVariants);
    for (const std::size_t d : domains) {
      for (std::size_t v = 0; v < kVariants; ++v) {
        drawn[v].push_back(systems_[v]->sample_message(user, d));
        EXPECT_EQ(drawn[v].back().surface, drawn[0].back().surface);
        EXPECT_EQ(drawn[v].back().meanings, drawn[0].back().meanings);
      }
    }
    return drawn;
  }

  /// Run the same batch through every system's transmit_many and demand
  /// reports, stats, and (user, domain) slot state identical to the
  /// threads = 0 reference.
  static void run_and_compare(const std::string& sender,
                              const std::string& receiver,
                              std::vector<std::vector<text::Sentence>> drawn,
                              std::size_t domain) {
    const std::size_t n = drawn[0].size();
    std::vector<std::vector<TransmitReport>> reports(
        kVariants, std::vector<TransmitReport>(n));
    for (std::size_t v = 0; v < kVariants; ++v) {
      std::vector<int> seen(n, 0);
      systems_[v]->transmit_many(
          sender, receiver, std::move(drawn[v]),
          [&, v](std::size_t i, TransmitReport r) {
            reports[v][i] = std::move(r);
            ++seen[i];
          });
      systems_[v]->simulator().run();
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i], 1) << "threads " << kThreadCounts[v]
                              << " completion " << i;
      }
    }
    const std::size_t sender_edge = systems_[0]->user(sender).edge_index;
    const std::size_t receiver_edge = systems_[0]->user(receiver).edge_index;
    for (std::size_t v = 1; v < kVariants; ++v) {
      const std::string label = "threads " + std::to_string(kThreadCounts[v]);
      for (std::size_t i = 0; i < n; ++i) {
        expect_reports_equal(reports[0][i], reports[v][i],
                             label + " message " + std::to_string(i));
      }
      expect_stats_equal(systems_[0]->stats(), systems_[v]->stats());
      expect_slot_state_equal(*systems_[0], *systems_[v], sender, domain,
                              sender_edge, receiver_edge);
    }
  }

  static SemanticEdgeSystem* systems_[kVariants];
};

SemanticEdgeSystem* TransmitParallelTest::systems_[kVariants] = {};

TEST_F(TransmitParallelTest, CrossEdgeBatchWithMidBatchUpdates) {
  // 9 same-domain messages with trigger 4: at least two fine-tunes fire
  // mid-batch, so the pooled path must reproduce chunk splits, update
  // weights, and post-update encodes exactly.
  const auto before_updates = systems_[0]->stats().updates;
  run_and_compare("a", "b",
                  sample_lockstep_messages("a", {0, 0, 0, 0, 0, 0, 0, 0, 0}),
                  /*domain=*/0);
  EXPECT_GT(systems_[0]->stats().updates, before_updates);
}

TEST_F(TransmitParallelTest, MixedDomainGrouping) {
  run_and_compare("a", "b",
                  sample_lockstep_messages("a", {0, 1, 0, 1, 1, 0, 1, 0}),
                  /*domain=*/1);
  for (std::size_t v = 1; v < kVariants; ++v) {
    EXPECT_EQ(systems_[0]->edge_state(0).slot_count(),
              systems_[v]->edge_state(0).slot_count());
  }
}

TEST_F(TransmitParallelTest, IntraEdgeSkipsChannel) {
  // Sender and receiver share edge 0: the channel pool section is never
  // entered, but the quantizer's pooled row passes still run.
  run_and_compare("a", "c", sample_lockstep_messages("a", {0, 0, 0, 0, 0, 0}),
                  /*domain=*/0);
}

TEST(TransmitParallelNoisy, CorruptedPayloadsStayBitIdentical) {
  // Uncoded at 0 dB flips ~8% of payload bits: essentially every message
  // arrives corrupted, driving the mismatch-reuse fallback (a per-message
  // decoder-copy pass) while the pool carries the noisy channel passes.
  // The heavy per-message noise draws make this the strongest RNG-stream
  // isolation case: any cross-worker draw would scramble the bits.
  unsetenv("SEMCACHE_THREADS");
  const std::size_t n = 7;  // crosses the trigger: updates fire mid-batch
  std::vector<std::unique_ptr<SemanticEdgeSystem>> systems;
  std::vector<std::vector<text::Sentence>> drawn(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    SystemConfig config = variant_config(1443, kThreadCounts[v]);
    config.channel.code = "uncoded";
    config.channel.snr_db = 0.0;
    systems.push_back(SemanticEdgeSystem::build(config));
    systems[v]->register_user("a", 0, nullptr);
    systems[v]->register_user("b", 1, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      drawn[v].push_back(systems[v]->sample_message("a", 0));
      ASSERT_EQ(drawn[v].back().surface, drawn[0][i].surface);
    }
  }
  std::vector<std::vector<TransmitReport>> reports(
      kVariants, std::vector<TransmitReport>(n));
  for (std::size_t v = 0; v < kVariants; ++v) {
    systems[v]->transmit_many("a", "b", std::move(drawn[v]),
                              [&, v](std::size_t i, TransmitReport r) {
                                reports[v][i] = std::move(r);
                              });
    systems[v]->simulator().run();
  }
  bool saw_decode_error = false;
  for (std::size_t v = 1; v < kVariants; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      expect_reports_equal(reports[0][i], reports[v][i],
                           "threads " + std::to_string(kThreadCounts[v]) +
                               " noisy message " + std::to_string(i));
    }
    expect_stats_equal(systems[0]->stats(), systems[v]->stats());
  }
  for (std::size_t i = 0; i < n; ++i) {
    saw_decode_error = saw_decode_error || !reports[0][i].exact;
  }
  EXPECT_TRUE(saw_decode_error);               // the channel really bit
  EXPECT_GT(systems[0]->stats().updates, 0u);  // fine-tunes exercised
}

TEST_F(TransmitParallelTest, SingleMessageRunsInlineAndMatches) {
  // N = 1 short-circuits every parallel section (count <= 1 runs on the
  // calling thread) yet must keep the lockstep mirror intact.
  auto drawn = sample_lockstep_messages("a", {1});
  std::vector<TransmitReport> reports(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    systems_[v]->transmit_many("a", "b", {drawn[v][0]},
                               [&, v](std::size_t i, TransmitReport r) {
                                 EXPECT_EQ(i, 0u);
                                 reports[v] = std::move(r);
                               });
    systems_[v]->simulator().run();
  }
  for (std::size_t v = 1; v < kVariants; ++v) {
    expect_reports_equal(reports[0], reports[v],
                         "threads " + std::to_string(kThreadCounts[v]));
    expect_stats_equal(systems_[0]->stats(), systems_[v]->stats());
  }
}

}  // namespace
}  // namespace semcache::core
