// Golden-vector tests for the channel codecs. Unlike test_channel.cpp,
// which exercises the stack statistically, every expectation here is a
// known value computed independently of the implementation: the CRC-32
// standard check value, the textbook Hamming(7,4) codeword table, and the
// classic impulse response of the K=3 (7,5) convolutional code. These
// pin the wire format — a refactor that changes any emitted bit fails
// loudly even if round-trips still succeed.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "channel/convolutional.hpp"
#include "channel/crc.hpp"
#include "channel/hamming.hpp"
#include "channel/repetition.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace semcache::channel {
namespace {

// --- CRC-32 ------------------------------------------------------------

TEST(CrcGolden, StandardCheckValue) {
  // The universal CRC-32/ISO-HDLC check value: crc32("123456789").
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

TEST(CrcGolden, KnownSingleByteAndEmpty) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0x00000000u);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(crc32(a), 0xE8B7BE43u);  // zlib crc32("a")
}

TEST(CrcGolden, AppendVerifyRoundTripAndTamperDetection) {
  BitVec payload = bytes_to_bits(std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE});
  const BitVec framed = crc_append(payload);
  ASSERT_EQ(framed.size(), payload.size() + 32);

  const CrcCheckResult ok = crc_verify(framed);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.payload, payload);

  // Any single flipped bit — payload or CRC field — must be detected.
  for (std::size_t i = 0; i < framed.size(); ++i) {
    BitVec tampered = framed;
    tampered[i] ^= 1;
    EXPECT_FALSE(crc_verify(tampered).ok) << "flip at bit " << i;
  }
}

TEST(CrcGolden, ShortInputRejected) {
  EXPECT_FALSE(crc_verify(BitVec(31, 0)).ok);
}

// --- Hamming(7,4) ------------------------------------------------------

// Textbook codeword table for the p1 p2 d1 p3 d2 d3 d4 layout (bit i of
// the byte = position i+1), indexed by the data nibble d4 d3 d2 d1.
constexpr std::uint8_t kHammingCodewords[16] = {
    0x00, 0x07, 0x19, 0x1E, 0x2A, 0x2D, 0x33, 0x34,
    0x4B, 0x4C, 0x52, 0x55, 0x61, 0x66, 0x78, 0x7F};

TEST(HammingGolden, EncodeMatchesTextbookTable) {
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    EXPECT_EQ(HammingCode::encode_nibble(nibble), kHammingCodewords[nibble])
        << "nibble " << int(nibble);
  }
}

TEST(HammingGolden, MinimumDistanceIsThree) {
  std::size_t min_distance = 7;
  for (int i = 0; i < 16; ++i) {
    for (int j = i + 1; j < 16; ++j) {
      const auto diff = static_cast<std::uint8_t>(kHammingCodewords[i] ^
                                                  kHammingCodewords[j]);
      min_distance = std::min<std::size_t>(
          min_distance,
          static_cast<std::size_t>(std::popcount(diff)));
    }
  }
  EXPECT_EQ(min_distance, 3u);
}

TEST(HammingGolden, CorrectsEverySingleBitErrorInEveryNibble) {
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    const std::uint8_t codeword = HammingCode::encode_nibble(nibble);
    EXPECT_EQ(HammingCode::decode_block(codeword), nibble);
    for (int flip = 0; flip < 7; ++flip) {
      const auto corrupted =
          static_cast<std::uint8_t>(codeword ^ (1u << flip));
      EXPECT_EQ(HammingCode::decode_block(corrupted), nibble)
          << "nibble " << int(nibble) << " flip position " << flip;
    }
  }
}

// Stream-level and Viterbi error-correction tests share the seeded-RNG
// fixture; each test gets a fresh deterministic stream.
class ChannelGoldenRng : public test::SeededRngTest {
 protected:
  ChannelGoldenRng() : SeededRngTest(7) {}
};

TEST_F(ChannelGoldenRng, HammingStreamLevelSingleErrorPerBlock) {
  HammingCode code;
  BitVec info = test::random_bits(24, rng_);
  BitVec coded = code.encode(info);
  ASSERT_EQ(coded.size(), code.encoded_length(info.size()));
  // One flipped bit in each 7-bit block is always repaired.
  for (std::size_t block = 0; block < coded.size() / 7; ++block) {
    coded[block * 7 + block % 7] ^= 1;
  }
  EXPECT_EQ(code.decode(coded), info);
}

// --- Convolutional K=3 (7,5) with Viterbi ------------------------------

TEST(ConvolutionalGolden, ImpulseResponseMatchesGenerators) {
  // The classic result for generators (7, 5): input [1] with a zero tail
  // encodes to 11 10 11.
  ConvolutionalCode code;
  const BitVec encoded = code.encode(BitVec{1});
  EXPECT_EQ(encoded, (BitVec{1, 1, 1, 0, 1, 1}));
}

TEST(ConvolutionalGolden, AllZeroInputStaysOnZeroPath) {
  ConvolutionalCode code;
  const BitVec encoded = code.encode(BitVec(5, 0));
  EXPECT_EQ(encoded, BitVec(code.encoded_length(5), 0));
}

TEST(ConvolutionalGolden, ViterbiRoundTripAtSeveralLengths) {
  ConvolutionalCode code;
  for (const std::size_t len : {1u, 4u, 9u, 32u, 100u}) {
    Rng rng(40 + len);
    const BitVec info = test::random_bits(len, rng);
    EXPECT_EQ(code.decode(code.encode(info)), info) << "length " << len;
  }
}

TEST_F(ChannelGoldenRng, ViterbiCorrectsIsolatedBitErrors) {
  // A K=3 code has free distance 5: any single coded-bit error (and well
  // separated pairs) must be corrected exactly.
  ConvolutionalCode code;
  const BitVec info = test::random_bits(20, rng_);
  const BitVec coded = code.encode(info);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    BitVec corrupted = coded;
    corrupted[i] ^= 1;
    EXPECT_EQ(code.decode(corrupted), info) << "flip at coded bit " << i;
  }
}

// --- Channel-fork RNG discipline ---------------------------------------

// The transmit data plane forks the system RNG once per message with tag
// 0xC4A2 ^ (message_index * 2654435761), where message_index is the
// system-wide message counter — whether the message rides transmit_async
// or a transmit_many batch. These goldens pin (a) the tag formula, (b) the
// derived fork seeds, and (c) the first raw mt19937_64 outputs of each
// fork (fully specified by the standard, so the expectations are
// implementation-independent). A refactor that reorders or re-keys the
// per-message forks inside the batch loop shifts every downstream
// experiment; it must fail here loudly instead of silently.

constexpr std::uint64_t channel_fork_tag(std::uint64_t index) {
  return 0xC4A2 ^ (index * 2654435761ULL);
}

TEST(ChannelForkGolden, TagFormulaPinned) {
  EXPECT_EQ(channel_fork_tag(0), 0xC4A2ULL);
  EXPECT_EQ(channel_fork_tag(1), 0x9E37BD13ULL);
  EXPECT_EQ(channel_fork_tag(2), 0x13C6E37C0ULL);
  EXPECT_EQ(channel_fork_tag(3), 0x1DAA6A9B1ULL);
}

TEST(ChannelForkGolden, ForkStreamsPinnedForDefaultSystemSeed) {
  // seed 42 = SystemConfig's default seed.
  const Rng parent(42);
  constexpr std::uint64_t expect_seed[4] = {
      0x9FEEE877C530868CULL, 0x4456973479A19DBBULL, 0x737CADD5285C2974ULL,
      0xC8F90DAFAF5DC54AULL};
  constexpr std::uint64_t expect_out[4][2] = {
      {0x57EFE68E9B6B96C2ULL, 0x4F53630619108FA7ULL},
      {0xCFC075C00A5BCD15ULL, 0x20E086FEAC881CA3ULL},
      {0x085C2487AFF6747EULL, 0xAC38D883D5509D9AULL},
      {0x4B2551853097D90AULL, 0x336590C1D527F846ULL}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    Rng fork = parent.fork(channel_fork_tag(i));
    EXPECT_EQ(fork.seed(), expect_seed[i]) << "message index " << i;
    EXPECT_EQ(fork.engine()(), expect_out[i][0]) << "message index " << i;
    EXPECT_EQ(fork.engine()(), expect_out[i][1]) << "message index " << i;
  }
}

TEST(ChannelForkGolden, ForkStreamsPinnedForGoldenSuiteSeed) {
  const Rng parent(7);
  constexpr std::uint64_t expect_seed[4] = {
      0x215EF22BC66D3D54ULL, 0x0EA15DDA3B24A004ULL, 0x2E6791162CF02BF8ULL,
      0xA976593491421AD3ULL};
  constexpr std::uint64_t expect_out0[4] = {
      0x617283F428EC03E3ULL, 0x4C48055CCFC313A4ULL, 0xD60711E95216B657ULL,
      0x0FE739223B1FF703ULL};
  for (std::uint64_t i = 0; i < 4; ++i) {
    Rng fork = parent.fork(channel_fork_tag(i));
    EXPECT_EQ(fork.seed(), expect_seed[i]) << "message index " << i;
    EXPECT_EQ(fork.engine()(), expect_out0[i]) << "message index " << i;
  }
}

TEST(ChannelForkGolden, ForkIsConstAndOrderIndependent) {
  // fork() derives the child purely from (parent seed, tag): it must not
  // advance the parent stream, and fork order must not matter — the batch
  // loop relies on both to reproduce the sequential per-message streams.
  Rng a(42), b(42);
  (void)a.fork(channel_fork_tag(3));
  (void)a.fork(channel_fork_tag(1));
  const std::uint64_t after_forks = a.engine()();
  const std::uint64_t untouched = b.engine()();
  EXPECT_EQ(after_forks, untouched);
  EXPECT_EQ(a.fork(channel_fork_tag(2)).seed(),
            b.fork(channel_fork_tag(2)).seed());
}

// --- Repetition at several rates ---------------------------------------

TEST(RepetitionGolden, MajorityVoteAcrossRates) {
  for (const std::size_t repeats : {3u, 5u, 7u}) {
    RepetitionCode code(repeats);
    EXPECT_DOUBLE_EQ(code.rate(), 1.0 / static_cast<double>(repeats));
    BitVec info{1, 0, 1, 1, 0};
    BitVec coded = code.encode(info);
    ASSERT_EQ(coded.size(), info.size() * repeats);
    // Flip floor(repeats/2) copies of every bit: majority still wins.
    for (std::size_t bit = 0; bit < info.size(); ++bit) {
      for (std::size_t r = 0; r < repeats / 2; ++r) {
        coded[bit * repeats + r] ^= 1;
      }
    }
    EXPECT_EQ(code.decode(coded), info) << "repeats " << repeats;
  }
}

}  // namespace
}  // namespace semcache::channel
