// Unit tests for semcache::common — RNG determinism, serialization
// round-trips, bit helpers, and contract checking.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/grouping.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace semcache {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    SEMCACHE_CHECK(false, "the message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(SEMCACHE_CHECK(1 + 1 == 2, "never"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, AdjacentSeedsUncorrelated) {
  // splitmix mixing: seeds 0 and 1 should produce unrelated streams.
  Rng a(0), b(1);
  double corr = 0.0;
  for (int i = 0; i < 1000; ++i) {
    corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_LT(std::abs(corr / 1000.0), 0.02);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(42);
  Rng f1 = root.fork(7);
  Rng f2 = Rng(42).fork(7);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(f1.uniform(), f2.uniform());
  // Different tags give different streams.
  Rng g = root.fork(8);
  Rng h = root.fork(7);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (g.uniform() != h.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(3.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
  EXPECT_THROW(rng.bernoulli(-0.1), Error);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, CategoricalRejectsDegenerate) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW(rng.categorical(empty), Error);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), Error);
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.categorical(negative), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0xBEEF);
  w.write_u32(0xDEADBEEFu);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i32(-42);
  w.write_i64(-1234567890123ll);
  w.write_f32(3.25f);
  w.write_f64(-2.5e-8);
  w.write_string("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), -1234567890123ll);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5e-8);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, FloatVectorRoundTrip) {
  ByteWriter w;
  const std::vector<float> v = {1.0f, -2.5f, 0.0f, 1e-20f};
  w.write_f32_vector(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), v);
}

TEST(Serialize, SpecialFloatValues) {
  ByteWriter w;
  w.write_f32(std::numeric_limits<float>::infinity());
  w.write_f64(-std::numeric_limits<double>::infinity());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.read_f32()));
  EXPECT_TRUE(std::isinf(r.read_f64()));
}

TEST(Serialize, UnderrunThrows) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_THROW(r.read_u32(), Error);
}

TEST(Serialize, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bits, BytesToBitsRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0xA5, 0x3C};
  const BitVec bits = bytes_to_bits(bytes);
  EXPECT_EQ(bits.size(), 32u);
  EXPECT_EQ(bits_to_bytes(bits), bytes);
}

TEST(Bits, LsbFirstOrder) {
  const std::vector<std::uint8_t> bytes = {0x01};
  const BitVec bits = bytes_to_bits(bytes);
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bits, PartialBytePadsWithZeros) {
  BitVec bits = {1, 0, 1};  // 3 bits
  const auto bytes = bits_to_bytes(bits);
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x05);
}

TEST(Bits, HammingDistanceCountsLengthMismatch) {
  EXPECT_EQ(hamming_distance({1, 0, 1}, {1, 0, 1}), 0u);
  EXPECT_EQ(hamming_distance({1, 0, 1}, {1, 1, 1}), 1u);
  EXPECT_EQ(hamming_distance({1, 0}, {1, 0, 1, 1}), 2u);
}

TEST(Bits, AppendReadRoundTrip) {
  BitVec bits;
  append_bits(bits, 0x2B, 6);
  append_bits(bits, 0x01, 1);
  append_bits(bits, 0xFFFF, 16);
  std::size_t pos = 0;
  EXPECT_EQ(read_bits(bits, pos, 6), 0x2Bu);
  EXPECT_EQ(read_bits(bits, pos, 1), 1u);
  EXPECT_EQ(read_bits(bits, pos, 16), 0xFFFFu);
  EXPECT_EQ(pos, bits.size());
}

TEST(Bits, ReadPastEndThrows) {
  BitVec bits = {1, 0};
  std::size_t pos = 0;
  EXPECT_THROW(read_bits(bits, pos, 3), Error);
}

class BitsRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsRoundTrip, RandomPayloads) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> bytes(GetParam() % 64 + 1);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 31, 63, 64));

// The tests assert on log_once's RETURN VALUE (did the line go out?), not
// on captured stderr — the counter is the contract.
TEST(LogOnce, DeduplicatesByKey) {
  unsetenv("SEMCACHE_LOG_LEVEL");
  common::log_reset_for_tests();
  EXPECT_TRUE(common::log_once("test-key-a", "first emission"));
  EXPECT_FALSE(common::log_once("test-key-a", "suppressed duplicate"));
  EXPECT_FALSE(common::log_once("test-key-a", "still suppressed"));
  EXPECT_TRUE(common::log_once("test-key-b", "distinct key emits"));
  common::log_reset_for_tests();
  EXPECT_TRUE(common::log_once("test-key-a", "reset re-arms the key"));
  common::log_reset_for_tests();
}

TEST(LogOnce, SilentLevelSuppressesEverything) {
  setenv("SEMCACHE_LOG_LEVEL", "silent", 1);
  common::log_reset_for_tests();  // also re-reads the level
  EXPECT_EQ(common::log_level(), common::LogLevel::kSilent);
  EXPECT_FALSE(common::log_once("test-silent", "must not emit"));
  unsetenv("SEMCACHE_LOG_LEVEL");
  common::log_reset_for_tests();
}

TEST(LogOnce, InfoMessagesGatedByWarnDefault) {
  unsetenv("SEMCACHE_LOG_LEVEL");
  common::log_reset_for_tests();
  EXPECT_EQ(common::log_level(), common::LogLevel::kWarn);
  EXPECT_FALSE(common::log_once("test-info", "info below default level",
                                common::LogLevel::kInfo));
  setenv("SEMCACHE_LOG_LEVEL", "info", 1);
  common::log_reset_for_tests();
  EXPECT_TRUE(common::log_once("test-info", "info now visible",
                               common::LogLevel::kInfo));
  unsetenv("SEMCACHE_LOG_LEVEL");
  common::log_reset_for_tests();
}

// Reference implementation of first-appearance grouping: the plain
// linear scan the hash-indexed fast path must match bit for bit.
template <typename KeyFn>
auto naive_group(std::size_t count, const KeyFn& key_of) {
  using Key = std::decay_t<decltype(key_of(std::size_t{0}))>;
  common::Grouped<Key> out;
  for (std::size_t i = 0; i < count; ++i) {
    const Key key = key_of(i);
    std::size_t g = 0;
    while (g < out.keys.size() && !(out.keys[g] == key)) ++g;
    if (g == out.keys.size()) {
      out.keys.push_back(key);
      out.groups.emplace_back();
    }
    out.groups[g].push_back(i);
  }
  return out;
}

TEST(Grouping, HashIndexedPathMatchesLinearScanAtScale) {
  // Regression: the linear scan was O(n * k) — quadratic in distinct-lane
  // count for city-scale waves. ~10^4 distinct keys with a duplicate-key
  // shuffle must produce the identical partition through the indexed path
  // (first-appearance key order, original index order within groups).
  const std::size_t n = 30000;
  const auto key_of = [](std::size_t i) -> std::uint64_t {
    return (i * 7919u) % 10007u;  // ~10^4 distinct keys, shuffled order
  };
  const auto fast = common::group_by_first_appearance(n, key_of);
  const auto slow = naive_group(n, key_of);
  ASSERT_EQ(fast.keys.size(), 10007u);
  EXPECT_EQ(fast.keys, slow.keys);
  EXPECT_EQ(fast.groups, slow.groups);
}

TEST(Grouping, StringKeysMatchAcrossTheCutoff) {
  // String keys, sized to straddle kGroupingLinearCutoff so the mid-run
  // handover from the scan to the index is covered, with every key
  // recurring after the handover (duplicate-key shuffle).
  for (const std::size_t distinct : {3u, 32u, 33u, 200u}) {
    const auto key_of = [distinct](std::size_t i) {
      return "lane-" + std::to_string((i * 13) % distinct);
    };
    const std::size_t n = distinct * 4;
    const auto fast = common::group_by_first_appearance(n, key_of);
    const auto slow = naive_group(n, key_of);
    ASSERT_EQ(fast.keys.size(), distinct);
    EXPECT_EQ(fast.keys, slow.keys);
    EXPECT_EQ(fast.groups, slow.groups);
  }
}

TEST(Grouping, UnhashableKeysKeepTheLinearPath) {
  // Keys without a std::hash specialization must still group correctly
  // (the indexed path is compiled out for them).
  struct RawKey {
    int v;
    bool operator==(const RawKey& o) const { return v == o.v; }
  };
  const auto key_of = [](std::size_t i) { return RawKey{static_cast<int>(i % 7)}; };
  const auto grouped = common::group_by_first_appearance(100, key_of);
  ASSERT_EQ(grouped.keys.size(), 7u);
  for (std::size_t g = 0; g < grouped.groups.size(); ++g) {
    EXPECT_EQ(grouped.keys[g].v, static_cast<int>(g));
    for (const std::size_t i : grouped.groups[g]) EXPECT_EQ(i % 7, g);
  }
}

}  // namespace
}  // namespace semcache
