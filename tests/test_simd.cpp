// Twin suite for the AVX2/FMA dispatch layer (common/cpu.hpp).
//
// Every vectorized kernel in the tensor and channel planes promises
// bit-identical output to the retained scalar reference. This suite pins
// that promise the direct way: flip the process tier with set_simd_tier,
// run the same inputs through both families in one binary, and memcmp.
// On a host without AVX2+FMA both runs take the scalar path and the
// twins pass trivially — the engagement tests below skip rather than
// silently vouch for kernels that never ran.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "channel/convolutional.hpp"
#include "channel/modulation.hpp"
#include "channel/physical.hpp"
#include "channel/puncture.hpp"
#include "channel/repetition.hpp"
#include "channel/simd.hpp"
#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "test_util.hpp"

namespace semcache {
namespace {

using channel::Modulation;
using channel::Symbol;
using tensor::Tensor;

/// RAII tier override: restores the prior tier even when an assertion
/// bails out of the test body early.
class TierGuard {
 public:
  explicit TierGuard(common::SimdTier tier)
      : prev_(common::set_simd_tier(tier)) {}
  ~TierGuard() { common::set_simd_tier(prev_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  common::SimdTier prev_;
};

bool avx2_host() {
  const common::CpuFeatures& f = common::cpu_features();
  return f.avx2 && f.fma;
}

::testing::AssertionResult BitEqual(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "first diff at flat index " << i << ": " << a.data()[i]
             << " vs " << b.data()[i];
    }
  }
  return ::testing::AssertionFailure() << "memcmp/elementwise disagree";
}

Tensor random_tensor(std::size_t rows, std::size_t cols, Rng& rng) {
  return Tensor::uniform({rows, cols}, 1.0f, rng);
}

// ---------------------------------------------------------------------------
// Dispatch policy and engagement.

TEST(SimdDispatch, ResolvePolicyTable) {
  const common::CpuFeatures none{};
  const common::CpuFeatures full{true, true};
  const common::CpuFeatures avx2_only{true, false};
  using common::SimdTier;

  // Unset / auto: best the hardware offers.
  EXPECT_EQ(common::resolve_simd_tier(nullptr, full), SimdTier::kAvx2);
  EXPECT_EQ(common::resolve_simd_tier(nullptr, none), SimdTier::kScalar);
  EXPECT_EQ(common::resolve_simd_tier("auto", full), SimdTier::kAvx2);
  EXPECT_EQ(common::resolve_simd_tier("auto", none), SimdTier::kScalar);
  // kAvx2 requires FMA too: the kernels assume both.
  EXPECT_EQ(common::resolve_simd_tier(nullptr, avx2_only), SimdTier::kScalar);
  // Explicit pins.
  EXPECT_EQ(common::resolve_simd_tier("scalar", full), SimdTier::kScalar);
  EXPECT_EQ(common::resolve_simd_tier("avx2", full), SimdTier::kAvx2);
  // An explicit avx2 request the hardware cannot honor clamps to scalar.
  EXPECT_EQ(common::resolve_simd_tier("avx2", none), SimdTier::kScalar);
  // Garbage degrades to auto (with a one-time warning), never to UB.
  EXPECT_EQ(common::resolve_simd_tier("sse9", full), SimdTier::kAvx2);
  EXPECT_EQ(common::resolve_simd_tier("", none), SimdTier::kScalar);
}

TEST(SimdDispatch, SetTierRoundTripAndClamp) {
  const common::SimdTier entry = common::active_simd_tier();
  const common::SimdTier prev = common::set_simd_tier(common::SimdTier::kScalar);
  EXPECT_EQ(prev, entry);
  EXPECT_EQ(common::active_simd_tier(), common::SimdTier::kScalar);
  common::set_simd_tier(common::SimdTier::kAvx2);
  // On a capable host the request sticks; elsewhere it clamps to scalar
  // exactly like the env path would.
  EXPECT_EQ(common::active_simd_tier(), avx2_host()
                                            ? common::SimdTier::kAvx2
                                            : common::SimdTier::kScalar);
  common::set_simd_tier(entry);
  EXPECT_EQ(common::active_simd_tier(), entry);
}

TEST(SimdDispatch, TensorPathEngagesOnCapableHost) {
  if (!avx2_host()) {
    GTEST_SKIP() << "host lacks AVX2+FMA; nothing to engage";
  }
  {
    TierGuard guard(common::SimdTier::kAvx2);
    const std::string path = tensor::active_matmul_path();
    // The runtime probe picks whichever flavor matches the as-built scalar
    // kernel; either way a capable host must not fall back to scalar.
    EXPECT_TRUE(path == "avx2-fma" || path == "avx2-muladd") << path;
  }
  {
    TierGuard guard(common::SimdTier::kScalar);
    EXPECT_STREQ(tensor::active_matmul_path(), "scalar");
  }
}

TEST(SimdDispatch, ChannelKernelsEngageOnCapableHost) {
  if (!avx2_host()) {
    GTEST_SKIP() << "host lacks AVX2+FMA; nothing to engage";
  }
  {
    TierGuard guard(common::SimdTier::kAvx2);
    EXPECT_NE(channel::detail::engaged_channel_kernels(), nullptr);
  }
  {
    TierGuard guard(common::SimdTier::kScalar);
    EXPECT_EQ(channel::detail::engaged_channel_kernels(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Tensor plane: the matmul family twins bit-for-bit across the tail grid.

// The micro-kernel tiles 6 rows x 16 columns with k-panels of 256, so the
// grid straddles every remainder class: rows 1..7 (full tile + every row
// remainder), columns through 8-wide and scalar tails, k through short
// panels. Tails 1..7 appear in every dimension.
struct Shape {
  std::size_t m, k, n;
};

const std::vector<std::size_t>& tail_rows() {
  static const std::vector<std::size_t> v = {1, 2, 3, 4, 5, 6, 7, 13};
  return v;
}
const std::vector<std::size_t>& tail_depths() {
  static const std::vector<std::size_t> v = {1, 3, 4, 7, 9};
  return v;
}
const std::vector<std::size_t>& tail_cols() {
  static const std::vector<std::size_t> v = {1, 2, 3, 5, 7,
                                             8, 15, 16, 17, 24, 31};
  return v;
}

void expect_matmul_family_twin(const Shape& sh) {
  Rng rng(900 + sh.m * 4096 + sh.k * 64 + sh.n);
  const Tensor a = random_tensor(sh.m, sh.k, rng);
  const Tensor b = random_tensor(sh.k, sh.n, rng);
  const Tensor at = random_tensor(sh.k, sh.m, rng);
  const Tensor bt = random_tensor(sh.n, sh.k, rng);
  const Tensor bias = Tensor::uniform({sh.n}, 1.0f, rng);
  const Tensor warm = random_tensor(sh.m, sh.n, rng);

  struct Outputs {
    Tensor nn, acc, tn, nt, aff, aff_relu;
  };
  auto run = [&](common::SimdTier tier) {
    TierGuard guard(tier);
    Outputs o;
    tensor::matmul_into(o.nn, a, b);
    o.acc = warm;
    tensor::matmul_acc(o.acc, a, b);
    tensor::matmul_tn_into(o.tn, at, b);
    tensor::matmul_nt_into(o.nt, a, bt);
    tensor::affine_into(o.aff, a, b, bias);
    tensor::affine_relu_into(o.aff_relu, a, b, bias);
    return o;
  };

  const Outputs scalar = run(common::SimdTier::kScalar);
  const Outputs simd = run(common::SimdTier::kAvx2);
  const std::string label = std::to_string(sh.m) + "x" + std::to_string(sh.k) +
                            "x" + std::to_string(sh.n);
  EXPECT_TRUE(BitEqual(simd.nn, scalar.nn)) << "matmul_into " << label;
  EXPECT_TRUE(BitEqual(simd.acc, scalar.acc)) << "matmul_acc " << label;
  EXPECT_TRUE(BitEqual(simd.tn, scalar.tn)) << "matmul_tn " << label;
  EXPECT_TRUE(BitEqual(simd.nt, scalar.nt)) << "matmul_nt " << label;
  EXPECT_TRUE(BitEqual(simd.aff, scalar.aff)) << "affine " << label;
  EXPECT_TRUE(BitEqual(simd.aff_relu, scalar.aff_relu))
      << "affine_relu " << label;
  // And the scalar run itself is the naive reference, same sum order.
  EXPECT_TRUE(BitEqual(scalar.nn, tensor::matmul_reference(a, b)))
      << "reference " << label;
}

TEST(SimdKernels, MatmulFamilyTierTwinAcrossTailGrid) {
  for (const std::size_t m : tail_rows()) {
    for (const std::size_t k : tail_depths()) {
      for (const std::size_t n : tail_cols()) {
        expect_matmul_family_twin({m, k, n});
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(SimdKernels, KPanelBoundaryShapesTwin) {
  // The gemm walks k in panels of 256; straddle the panel boundary so the
  // multi-panel accumulate path (C re-read between panels) is exercised.
  for (const std::size_t k : {255u, 256u, 257u, 511u, 513u}) {
    expect_matmul_family_twin({7, k, 17});
  }
}

TEST(SimdKernels, NonFiniteInputsTwinBitwise) {
  // The AVX2 kernels must not skip or reorder around zeros: 0 * Inf and
  // NaN propagation have to match the scalar kernel bit-for-bit.
  Rng rng(17);
  Tensor a = random_tensor(13, 9, rng);  // two row tiles + remainder
  a.at(0, 2) = 0.0f;
  a.at(12, 2) = 0.0f;
  Tensor b = random_tensor(9, 19, rng);  // 16-wide tile + scalar tail
  b.at(2, 3) = std::numeric_limits<float>::infinity();
  b.at(2, 17) = std::numeric_limits<float>::quiet_NaN();
  Tensor scalar_out, simd_out;
  {
    TierGuard guard(common::SimdTier::kScalar);
    tensor::matmul_into(scalar_out, a, b);
  }
  {
    TierGuard guard(common::SimdTier::kAvx2);
    tensor::matmul_into(simd_out, a, b);
  }
  EXPECT_TRUE(BitEqual(simd_out, scalar_out));
}

TEST(SimdKernels, TierTwinComposesWithThreadPool) {
  // Row-partitioned pooled execution must hand each partition to the same
  // kernel family: every worker count, both tiers, one bit pattern.
  const std::vector<Shape> pooled_shapes = {
      {256, 48, 200},  // serving decoder shape: fans out, 16-wide tiles
      {261, 40, 64},   // prime-ish rows: partition cuts off the 6-row tile
      {64, 256, 33},   // full k-panel plus odd columns
  };
  for (const Shape& sh : pooled_shapes) {
    Rng rng(600 + sh.m);
    const Tensor a = random_tensor(sh.m, sh.k, rng);
    const Tensor b = random_tensor(sh.k, sh.n, rng);
    const Tensor bias = Tensor::uniform({sh.n}, 1.0f, rng);
    Tensor baseline;  // scalar, sequential: the reference bit pattern
    {
      TierGuard guard(common::SimdTier::kScalar);
      tensor::affine_relu_into(baseline, a, b, bias);
    }
    for (const std::size_t workers : {0u, 2u, 4u}) {
      std::unique_ptr<common::ThreadPool> pool;
      if (workers > 0) pool = std::make_unique<common::ThreadPool>(workers);
      for (const common::SimdTier tier :
           {common::SimdTier::kScalar, common::SimdTier::kAvx2}) {
        TierGuard guard(tier);
        Tensor out;
        tensor::affine_relu_into(out, a, b, bias, pool.get());
        EXPECT_TRUE(BitEqual(out, baseline))
            << sh.m << "x" << sh.k << "x" << sh.n << " workers " << workers
            << " tier " << common::simd_tier_name(tier);
      }
    }
  }
}

TEST(SimdKernels, AffineReluMatchesSeparateReluIncludingEdgeValues) {
  // The fused epilogue clamps with max(0, v), the scalar one with
  // v < 0 ? 0 : v — identical for -0.0 (kept) and NaN (propagated).
  // Build an affine whose outputs include both.
  Tensor x({2, 2});
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = -1.0f;
  x.at(1, 0) = 0.0f;
  x.at(1, 1) = 0.0f;
  Tensor w({2, 3});
  w.at(0, 0) = 1.0f;
  w.at(1, 0) = 1.0f;  // row 0 col 0: 1 - 1 = 0
  w.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  w.at(1, 1) = 0.0f;  // row 0 col 1: NaN
  w.at(0, 2) = -2.0f;
  w.at(1, 2) = 0.5f;  // row 0 col 2: negative -> clamped
  Tensor bias({3});
  bias.at(0) = -0.0f;  // 0 + -0.0 = +0.0 in both epilogues
  bias.at(1) = 0.0f;
  bias.at(2) = 0.0f;

  for (const common::SimdTier tier :
       {common::SimdTier::kScalar, common::SimdTier::kAvx2}) {
    TierGuard guard(tier);
    Tensor fused, plain;
    tensor::affine_relu_into(fused, x, w, bias);
    tensor::affine_into(plain, x, w, bias);
    ASSERT_TRUE(fused.same_shape(plain));
    for (std::size_t i = 0; i < plain.size(); ++i) {
      const float v = plain.data()[i];
      const float expect = v < 0.0f ? 0.0f : v;
      EXPECT_EQ(std::memcmp(&fused.data()[i], &expect, sizeof(float)), 0)
          << "tier " << common::simd_tier_name(tier) << " flat " << i
          << ": " << fused.data()[i] << " vs relu(" << v << ")";
    }
    EXPECT_TRUE(std::isnan(fused.at(0, 1)));  // NaN propagates, not clamped
  }
}

// ---------------------------------------------------------------------------
// LinearReLU: the fused layer twins Linear+ReLU and gradchecks.

TEST(SimdKernels, LinearReluLayerTwinsLinearPlusRelu) {
  for (const common::SimdTier tier :
       {common::SimdTier::kScalar, common::SimdTier::kAvx2}) {
    TierGuard guard(tier);
    // Same seed => identical parameter draws (the fused ctor consumes the
    // RNG exactly like Linear's), so forward outputs must twin bitwise.
    Rng rng_fused(4242), rng_pair(4242);
    nn::LinearReLU fused(9, 7, rng_fused);
    nn::Linear lin(9, 7, rng_pair);
    nn::ReLU relu;
    Rng xr(7);
    const Tensor x = Tensor::uniform({5, 9}, 1.0f, xr);
    const Tensor& yf = fused.forward(x);
    const Tensor& yp = relu.forward(lin.forward(x));
    EXPECT_TRUE(BitEqual(yf, yp))
        << "tier " << common::simd_tier_name(tier);
  }
}

TEST(SimdKernels, LinearReluGradcheckAcrossShapes) {
  struct LShape {
    std::size_t in, out, rows;
  };
  const std::vector<LShape> shapes = {{1, 1, 1}, {2, 5, 3}, {6, 2, 4}};
  for (const LShape& sh : shapes) {
    Rng rng(5000 + sh.in * 100 + sh.out * 10 + sh.rows);
    nn::LinearReLU layer(sh.in, sh.out, rng);
    const Tensor x = Tensor::uniform({sh.rows, sh.in}, 1.0f, rng);
    const Tensor w = Tensor::uniform({sh.rows, sh.out}, 1.0f, rng);
    auto loss_fn = [&]() -> double {
      return static_cast<double>(tensor::dot(layer.forward(x), w));
    };
    nn::Optimizer::zero_grad(layer.parameters());
    layer.forward(x);
    layer.backward(w);
    const auto result = nn::gradcheck(loss_fn, layer.parameters(), 1e-3, 0);
    // Central differences straddle the ReLU kink for a few elements; the
    // robust acceptance from test_nn applies here too.
    EXPECT_TRUE(result.mostly_ok(2, 2e-2))
        << "linear_relu " << sh.in << "x" << sh.out << " rows " << sh.rows
        << ": rel " << result.max_rel_error << " abs "
        << result.max_abs_error << " above_tol " << result.above_tol;
  }
}

// ---------------------------------------------------------------------------
// Channel plane twins.

// Reference 16-QAM slicer: the pre-SIMD linear distance scan over the PAM
// levels with strict `<` (ties keep the lower index, NaN lands on 0).
// Within half an ulp above a decision boundary the scan's ROUNDED
// distances tie even though the true distances differ; the threshold
// slicer resolves those by true magnitude (picks the upper level), so the
// reference also reports whether such a rounded tie occurred and the test
// accepts either tied level there — and only there.
struct SliceRef {
  std::size_t index;      // what the old scan picked (lowest tied level)
  bool tied[4] = {};      // levels whose rounded distance equals the best
};

SliceRef reference_qam16_scan(double v) {
  static constexpr double kPam4[4] = {-3.0, -1.0, 1.0, 3.0};
  SliceRef ref{0, {}};
  double best_d = std::abs(v - kPam4[0]);
  for (std::size_t i = 1; i < 4; ++i) {
    const double d = std::abs(v - kPam4[i]);
    if (d < best_d) {
      best_d = d;
      ref.index = i;
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ref.tied[i] = std::abs(v - kPam4[i]) == best_d;
  }
  // NaN distances fail every compare: the scan kept index 0 and nothing
  // reads as tied, so only level 0 is acceptable — same as the slicer.
  if (std::isnan(v)) ref.tied[0] = true;
  return ref;
}

std::size_t gray_bits_to_index(std::uint8_t b0, std::uint8_t b1) {
  static constexpr std::size_t kInverse[4] = {0, 1, 3, 2};  // 00 01 10 11
  return kInverse[(static_cast<std::size_t>(b0) << 1) | b1];
}

::testing::AssertionResult slice_matches(double v, std::uint8_t b0,
                                         std::uint8_t b1) {
  const SliceRef ref = reference_qam16_scan(v);
  const std::size_t got = gray_bits_to_index(b0, b1);
  if (got == ref.index) return ::testing::AssertionSuccess();
  if (ref.tied[got]) {
    return ::testing::AssertionSuccess();  // rounded-tie: either is nearest
  }
  return ::testing::AssertionFailure()
         << "v " << v << ": got level " << got << ", scan picked "
         << ref.index;
}

std::vector<Symbol> adversarial_symbols(std::size_t count, Rng& rng) {
  const double scale = 1.0 / std::sqrt(10.0);  // kQam16Scale
  std::vector<Symbol> sym(count);
  for (std::size_t i = 0; i < count; ++i) {
    sym[i] = Symbol(rng.gaussian(0.0, 2.0), rng.gaussian(0.0, 2.0));
  }
  // Salt with decision-boundary and non-finite values: the slicers must
  // agree on ties, signed zero, NaN, and infinities too.
  const double specials[] = {0.0,
                             -0.0,
                             2.0 * scale,
                             -2.0 * scale,
                             1e-300,
                             -1e-300,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
  std::size_t slot = 0;
  for (const double s : specials) {
    if (slot + 1 >= count) break;
    sym[slot] = Symbol(s, -s);
    sym[slot + 1] = Symbol(-s, s);
    slot += 2;
  }
  return sym;
}

TEST(SimdChannel, DemapTierTwinAllModulations) {
  Rng rng(31337);
  // Odd counts exercise every vector-loop tail (BPSK/QPSK run 2 symbols
  // per vector, 16-QAM emits 8 bits per pair).
  for (const std::size_t count : {0u, 1u, 2u, 3u, 5u, 7u, 64u, 257u}) {
    const std::vector<Symbol> sym = adversarial_symbols(count, rng);
    for (const Modulation m :
         {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
      BitVec scalar_bits, simd_bits;
      {
        TierGuard guard(common::SimdTier::kScalar);
        channel::demap_into(scalar_bits, sym.data(), count, m);
      }
      {
        TierGuard guard(common::SimdTier::kAvx2);
        channel::demap_into(simd_bits, sym.data(), count, m);
      }
      EXPECT_EQ(scalar_bits, simd_bits)
          << channel::modulation_name(m) << " count " << count;
    }
  }
}

TEST(SimdChannel, Qam16SlicerMatchesReferenceScanSweep) {
  // Dense sweep across the decision boundaries (-2, 0, 2 in PAM space)
  // plus the salted specials: branchless threshold slicing — scalar and
  // vector alike — must reproduce the old linear distance scan bit by bit.
  const double scale = 1.0 / std::sqrt(10.0);
  std::vector<Symbol> sym;
  for (int i = -2500; i <= 2500; ++i) {
    sym.emplace_back((i / 500.0) * scale, ((2500 - i) / 500.0 - 2.5) * scale);
  }
  Rng rng(99);
  const std::vector<Symbol> salted = adversarial_symbols(64, rng);
  sym.insert(sym.end(), salted.begin(), salted.end());

  for (const common::SimdTier tier :
       {common::SimdTier::kScalar, common::SimdTier::kAvx2}) {
    TierGuard guard(tier);
    BitVec got;
    channel::demap_into(got, sym.data(), sym.size(), Modulation::kQam16);
    ASSERT_EQ(got.size(), 4 * sym.size());
    for (std::size_t i = 0; i < sym.size(); ++i) {
      EXPECT_TRUE(slice_matches(sym[i].real() / scale, got[4 * i],
                                got[4 * i + 1]))
          << "re, symbol " << i;
      EXPECT_TRUE(slice_matches(sym[i].imag() / scale, got[4 * i + 2],
                                got[4 * i + 3]))
          << "im, symbol " << i;
      if (HasFailure()) {
        FAIL() << "slicer mismatch under tier "
               << common::simd_tier_name(tier) << " at symbol " << i;
      }
    }
  }
}

TEST(SimdChannel, AwgnApplyTierTwin) {
  // The vectorized noise add buffers the gaussian draws in the original
  // per-symbol order, so both the symbol bits AND the RNG stream position
  // must twin exactly.
  Rng bits_rng(555);
  for (const std::size_t count : {1u, 2u, 3u, 31u, 500u}) {
    std::vector<Symbol> base(count);
    for (auto& s : base) {
      s = Symbol(bits_rng.gaussian(0.0, 1.0), bits_rng.gaussian(0.0, 1.0));
    }
    auto run = [&](common::SimdTier tier, std::vector<Symbol> sym) {
      TierGuard guard(tier);
      channel::AwgnChannel ch(4.0);
      Rng noise_rng(2718);
      ch.apply(sym, noise_rng);
      sym.push_back(Symbol(noise_rng.gaussian(), 0.0));  // stream position
      return sym;
    };
    const std::vector<Symbol> a = run(common::SimdTier::kScalar, base);
    const std::vector<Symbol> b = run(common::SimdTier::kAvx2, base);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Symbol)), 0)
        << "count " << count;
  }
}

TEST(SimdChannel, ModulatedTransmitTierTwin) {
  // End-to-end transmit (modulate -> AWGN -> demap) under both tiers:
  // same seed, same bits out. This is the bit pattern the golden suites
  // pin, so a twin break here means the byte-identity gate would trip.
  Rng payload_rng(808);
  const BitVec payload = test::random_bits(4093, payload_rng);
  for (const Modulation m :
       {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
    auto run = [&](common::SimdTier tier) {
      TierGuard guard(tier);
      channel::ModulatedChannel ch(
          m, std::make_unique<channel::AwgnChannel>(6.0));
      Rng rng(1234);
      return ch.transmit(payload, rng);
    };
    EXPECT_EQ(run(common::SimdTier::kScalar), run(common::SimdTier::kAvx2))
        << channel::modulation_name(m);
  }
}

TEST(SimdChannel, RepetitionVoteTierTwin) {
  channel::RepetitionCode code(3);
  Rng rng(64206);
  // Lengths straddle the 5-outputs-per-iteration vote kernel and its
  // guard (needs 6 decodable bits in flight), including the pure-tail
  // sizes 0..5.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 20u, 129u}) {
    const BitVec info = test::random_bits(n, rng);
    BitVec coded = code.encode(info);
    // Corrupt one vote per bit: majority still recovers the payload.
    for (std::size_t i = 0; i < n; ++i) {
      coded[3 * i + static_cast<std::size_t>(rng.uniform_int(0, 2))] ^= 1;
    }
    BitVec scalar_out, simd_out;
    {
      TierGuard guard(common::SimdTier::kScalar);
      scalar_out = code.decode(coded);
    }
    {
      TierGuard guard(common::SimdTier::kAvx2);
      simd_out = code.decode(coded);
    }
    EXPECT_EQ(scalar_out, simd_out) << "n " << n;
    EXPECT_EQ(simd_out, info) << "n " << n;
  }
  // Non-vectorized repeat count: same decode either tier.
  channel::RepetitionCode five(5);
  const BitVec info = test::random_bits(33, rng);
  TierGuard guard(common::SimdTier::kAvx2);
  EXPECT_EQ(five.decode(five.encode(info)), info);
}

TEST(SimdChannel, ViterbiDecodeTierTwin) {
  channel::ConvolutionalCode code;
  Rng rng(2023);
  for (const std::size_t info_len : {1u, 2u, 5u, 64u, 1000u, 4097u}) {
    const BitVec info = test::random_bits(info_len, rng);
    BitVec coded = code.encode(info);
    // ~2% random channel errors: enough to force nontrivial ACS
    // decisions (including ties) without guaranteeing correction.
    for (auto& b : coded) {
      if (rng.bernoulli(0.02)) b ^= 1;
    }
    BitVec scalar_out, simd_out;
    {
      TierGuard guard(common::SimdTier::kScalar);
      scalar_out = code.decode(coded);
    }
    {
      TierGuard guard(common::SimdTier::kAvx2);
      simd_out = code.decode(coded);
    }
    // The SSE ACS must make the identical survivor choice at every step,
    // so even uncorrected decodes twin exactly.
    EXPECT_EQ(scalar_out, simd_out) << "info_len " << info_len;
  }
}

TEST(SimdChannel, SoftDemapTierTwinBitwise) {
  // The soft demaps are float producers, so the twin is checked on BIT
  // PATTERNS, not values: NaN payloads, signed zeros, and every rounding
  // decision must match between the scalar loop and the AVX2 kernel
  // (every op in both is individually IEEE-exact; no FMA contraction).
  Rng rng(60601);
  for (const std::size_t count : {0u, 1u, 2u, 3u, 5u, 7u, 64u, 257u}) {
    const std::vector<Symbol> sym = adversarial_symbols(count, rng);
    for (const Modulation m :
         {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
      std::vector<float> scalar_llrs, simd_llrs;
      {
        TierGuard guard(common::SimdTier::kScalar);
        channel::demap_soft_into(scalar_llrs, sym.data(), count, m);
      }
      {
        TierGuard guard(common::SimdTier::kAvx2);
        channel::demap_soft_into(simd_llrs, sym.data(), count, m);
      }
      ASSERT_EQ(scalar_llrs.size(), simd_llrs.size());
      ASSERT_EQ(scalar_llrs.size(), count * channel::bits_per_symbol(m));
      EXPECT_EQ(0, std::memcmp(scalar_llrs.data(), simd_llrs.data(),
                               scalar_llrs.size() * sizeof(float)))
          << channel::modulation_name(m) << " count " << count;
    }
  }
}

TEST(SimdChannel, SoftViterbiDecodeTierTwin) {
  // Weighted ACS twin: LLRs from genuinely noisy symbols (non-uniform
  // quantized weights), through the plain and both punctured codes —
  // every survivor choice, including weight-tie-breaks, must match.
  channel::ConvolutionalCode conv;
  channel::PuncturedConvolutionalCode r23(channel::PunctureRate::kR23);
  channel::PuncturedConvolutionalCode r34(channel::PunctureRate::kR34);
  Rng rng(71717);
  for (const std::size_t info_len : {1u, 2u, 5u, 64u, 1000u}) {
    const BitVec info = test::random_bits(info_len, rng);
    for (const channel::ChannelCode* code :
         {static_cast<const channel::ChannelCode*>(&conv),
          static_cast<const channel::ChannelCode*>(&r23),
          static_cast<const channel::ChannelCode*>(&r34)}) {
      const BitVec coded = code->encode(info);
      std::vector<float> llrs(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        // Signed confidence around the hard decision, noisy enough to
        // cross zero sometimes (wrong-sign LLRs force real ACS work).
        llrs[i] = static_cast<float>((coded[i] != 0 ? 1.0 : -1.0) +
                                     rng.gaussian(0.0, 0.9));
      }
      BitVec scalar_out, simd_out;
      {
        TierGuard guard(common::SimdTier::kScalar);
        scalar_out = code->decode_soft(llrs);
      }
      {
        TierGuard guard(common::SimdTier::kAvx2);
        simd_out = code->decode_soft(llrs);
      }
      EXPECT_EQ(scalar_out, simd_out)
          << code->name() << " info_len " << info_len;
    }
  }
}

TEST(SimdChannel, ViterbiLongFrameMetricsNeverWrap) {
  // Regression pin for the saturating metric add: the pre-SIMD decoder
  // seeded dead states with a huge sentinel and kept adding branch
  // metrics to it, which on a long enough frame could wrap and beat a
  // real path. Metrics now saturate at kViterbiInf, so frame length can
  // never corrupt the winner. Pin with a frame orders of magnitude
  // longer than anything the stack transmits, with sparse correctable
  // errors, under both tiers.
  channel::ConvolutionalCode code;
  Rng rng(424242);
  const std::size_t info_len = 100000;
  const BitVec info = test::random_bits(info_len, rng);
  BitVec coded = code.encode(info);
  for (std::size_t i = 0; i < coded.size(); i += 997) {
    coded[i] ^= 1;  // isolated single-bit errors: always correctable at K=3
  }
  for (const common::SimdTier tier :
       {common::SimdTier::kScalar, common::SimdTier::kAvx2}) {
    TierGuard guard(tier);
    EXPECT_EQ(code.decode(coded), info)
        << "tier " << common::simd_tier_name(tier);
  }
}

}  // namespace
}  // namespace semcache
