// Pretrained-fixture cache (src/semantic/fixture_cache.hpp): a cache hit
// must be indistinguishable from having trained — bit-identical weights,
// identical stats, and an RNG fast-forwarded to the same state, so every
// downstream draw matches. Uses a tiny codec (tens of steps) so the suite
// stays tier-1 fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "semantic/fixture_cache.hpp"
#include "semantic/trainer.hpp"
#include "test_util.hpp"

namespace semcache::semantic {
namespace {

class FixtureCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("semcache-fixture-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    ::setenv("SEMCACHE_FIXTURE_DIR", dir_.c_str(), 1);
  }

  void TearDown() override {
    ::unsetenv("SEMCACHE_FIXTURE_DIR");
    std::filesystem::remove_all(dir_);
  }

  static text::World tiny_world(Rng& rng) {
    text::WorldConfig wc;
    wc.num_domains = 2;
    wc.concepts_per_domain = 8;
    wc.num_polysemous = 3;
    wc.sentence_length = 4;
    return text::World::generate(wc, rng);
  }

  static CodecConfig tiny_codec(const text::World& world) {
    CodecConfig cc;
    cc.surface_vocab = world.surface_count();
    cc.meaning_vocab = world.meaning_count();
    cc.sentence_length = world.config().sentence_length;
    cc.embed_dim = 6;
    cc.feature_dim = 4;
    cc.hidden_dim = 8;
    return cc;
  }

  std::filesystem::path dir_;
};

TEST_F(FixtureCacheTest, DisabledWithoutEnvVar) {
  ::unsetenv("SEMCACHE_FIXTURE_DIR");
  EXPECT_FALSE(FixtureCache::enabled());
  ::setenv("SEMCACHE_FIXTURE_DIR", "", 1);
  EXPECT_FALSE(FixtureCache::enabled());
}

TEST_F(FixtureCacheTest, HitIsBitIdenticalToTraining) {
  ASSERT_TRUE(FixtureCache::enabled());
  Rng world_rng(7);
  const text::World world = tiny_world(world_rng);
  const CodecConfig cc = tiny_codec(world);
  TrainConfig tc;
  tc.steps = 40;

  // First run: trains and stores the fixture.
  Rng init_a(11);
  SemanticCodec a(cc, init_a);
  Rng train_a(22);
  const TrainStats stats_a =
      CodecTrainer::pretrain_domain(a, world, 0, tc, train_a);
  EXPECT_FALSE(std::filesystem::is_empty(dir_));

  // Second run, identical inputs: must hit and reproduce everything.
  Rng init_b(11);
  SemanticCodec b(cc, init_b);
  Rng train_b(22);
  const TrainStats stats_b =
      CodecTrainer::pretrain_domain(b, world, 0, tc, train_b);

  EXPECT_EQ(stats_a.steps, stats_b.steps);
  EXPECT_DOUBLE_EQ(stats_a.final_loss, stats_b.final_loss);
  EXPECT_TRUE(a.parameters().values_equal(b.parameters()));
  // The trainer RNG was fast-forwarded: post-run streams must agree.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(train_a.uniform_int(0, 1 << 20), train_b.uniform_int(0, 1 << 20));
  }
}

TEST_F(FixtureCacheTest, DifferentInputsMiss) {
  Rng world_rng(7);
  const text::World world = tiny_world(world_rng);
  const CodecConfig cc = tiny_codec(world);
  TrainConfig tc;
  tc.steps = 20;

  Rng init_a(11);
  SemanticCodec a(cc, init_a);
  Rng train_a(22);
  CodecTrainer::pretrain_domain(a, world, 0, tc, train_a);
  const auto files_after_first =
      std::distance(std::filesystem::directory_iterator(dir_),
                    std::filesystem::directory_iterator{});

  // Different domain, different trainer seed, different step count: each
  // must produce a distinct fixture rather than a false hit.
  Rng init_b(11);
  SemanticCodec b(cc, init_b);
  Rng train_b(22);
  CodecTrainer::pretrain_domain(b, world, 1, tc, train_b);

  Rng init_c(11);
  SemanticCodec c(cc, init_c);
  Rng train_c(23);
  CodecTrainer::pretrain_domain(c, world, 0, tc, train_c);

  TrainConfig longer = tc;
  longer.steps = 21;
  Rng init_d(11);
  SemanticCodec d(cc, init_d);
  Rng train_d(22);
  CodecTrainer::pretrain_domain(d, world, 0, longer, train_d);

  const auto files_after_all =
      std::distance(std::filesystem::directory_iterator(dir_),
                    std::filesystem::directory_iterator{});
  EXPECT_EQ(files_after_all, files_after_first + 3);
  EXPECT_FALSE(a.parameters().values_equal(b.parameters()));
}

TEST_F(FixtureCacheTest, CorruptFileFallsBackToTraining) {
  Rng world_rng(7);
  const text::World world = tiny_world(world_rng);
  const CodecConfig cc = tiny_codec(world);
  TrainConfig tc;
  tc.steps = 20;

  Rng init_a(11);
  SemanticCodec a(cc, init_a);
  Rng train_a(22);
  CodecTrainer::pretrain_domain(a, world, 0, tc, train_a);

  // Truncate every fixture file mid-parameter-block: magic, version,
  // stats, and the RNG state all parse, so the loader reaches (and must
  // survive) a failing weight deserialize without clobbering the codec.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::filesystem::resize_file(entry.path(),
                                 std::filesystem::file_size(entry.path()) - 16);
  }

  Rng init_b(11);
  SemanticCodec b(cc, init_b);
  Rng train_b(22);
  const TrainStats stats =
      CodecTrainer::pretrain_domain(b, world, 0, tc, train_b);
  EXPECT_EQ(stats.steps, tc.steps);  // really trained, not a bogus hit
  EXPECT_TRUE(a.parameters().values_equal(b.parameters()));
}

}  // namespace
}  // namespace semcache::semantic
