// Batch-vs-sequential equivalence for the transmit_many data plane.
//
// Two systems are built from the same seed (bit-identical weights, worlds,
// and RNG streams) and driven in lockstep: the SEQUENTIAL system gets N
// transmit_async calls, the BATCHED system one transmit_many of the same N
// messages, then both run their simulators to idle. Every per-message
// TransmitReport field (including mismatch losses and event-driven
// latencies, compared as exact doubles) and the aggregate SystemStats must
// match — the batched path is a pure kernel-amortization of the sequential
// one, never a semantic change. Covers the N = 1 bit-identity case,
// updates firing mid-batch (chunk splitting), mixed-domain batches
// (grouping), and the intra-edge no-channel path.
#include <gtest/gtest.h>

#include <vector>

#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

SystemConfig twin_config() {
  SystemConfig config = test::tiny_system_config(977);
  // Equivalence needs determinism, not accuracy: a lightly trained codec
  // keeps this suite tier1-fast while exercising the identical kernels.
  config.pretrain.steps = 150;
  config.buffer_trigger = 4;  // updates fire mid-batch
  config.buffer_capacity = 32;
  config.finetune_epochs = 2;
  config.num_edges = 2;
  return config;
}

void expect_reports_equal(const TransmitReport& seq, const TransmitReport& bat,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(seq.domain_true, bat.domain_true);
  EXPECT_EQ(seq.domain_selected, bat.domain_selected);
  EXPECT_EQ(seq.selection_correct, bat.selection_correct);
  EXPECT_EQ(seq.decoded_meanings, bat.decoded_meanings);
  EXPECT_EQ(seq.token_accuracy, bat.token_accuracy);  // exact doubles
  EXPECT_EQ(seq.exact, bat.exact);
  EXPECT_EQ(seq.mismatch, bat.mismatch);
  EXPECT_EQ(seq.payload_bytes, bat.payload_bytes);
  EXPECT_EQ(seq.airtime_bits, bat.airtime_bits);
  EXPECT_EQ(seq.sync_bytes, bat.sync_bytes);
  EXPECT_EQ(seq.output_return_bytes, bat.output_return_bytes);
  EXPECT_EQ(seq.triggered_update, bat.triggered_update);
  EXPECT_EQ(seq.established_user_model, bat.established_user_model);
  EXPECT_EQ(seq.general_cache_hit, bat.general_cache_hit);
  EXPECT_EQ(seq.latency_s, bat.latency_s);
}

void expect_stats_equal(const SystemStats& seq, const SystemStats& bat) {
  EXPECT_EQ(seq.messages, bat.messages);
  EXPECT_EQ(seq.feature_bytes, bat.feature_bytes);
  EXPECT_EQ(seq.uplink_bytes, bat.uplink_bytes);
  EXPECT_EQ(seq.downlink_bytes, bat.downlink_bytes);
  EXPECT_EQ(seq.sync_bytes, bat.sync_bytes);
  EXPECT_EQ(seq.output_return_bytes, bat.output_return_bytes);
  EXPECT_EQ(seq.updates, bat.updates);
  EXPECT_EQ(seq.selection_errors, bat.selection_errors);
  EXPECT_EQ(seq.sync_drops, bat.sync_drops);
  EXPECT_EQ(seq.full_resyncs, bat.full_resyncs);
  EXPECT_EQ(seq.resync_bytes, bat.resync_bytes);
}

// The twin systems are shared across the suite; every test performs the
// SAME operation sequence on both (one sequentially, one batched), so the
// mirror invariant — identical state, identical RNG streams — holds from
// test to test.
class TransmitBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    seq_ = SemanticEdgeSystem::build(twin_config()).release();
    bat_ = SemanticEdgeSystem::build(twin_config()).release();
    for (auto* system : {seq_, bat_}) {
      system->register_user("a", 0, nullptr);
      system->register_user("b", 1, nullptr);
      system->register_user("c", 0, nullptr);  // same edge as "a"
    }
  }
  static void TearDownTestSuite() {
    delete seq_;
    delete bat_;
    seq_ = bat_ = nullptr;
  }

  /// Draw the same message stream from both systems (their rng_ streams
  /// advance in lockstep); domains[i] picks each message's true domain.
  static std::vector<std::vector<text::Sentence>> sample_twin_messages(
      const std::string& user, const std::vector<std::size_t>& domains) {
    std::vector<std::vector<text::Sentence>> twin(2);
    for (const std::size_t d : domains) {
      twin[0].push_back(seq_->sample_message(user, d));
      twin[1].push_back(bat_->sample_message(user, d));
      EXPECT_EQ(twin[0].back().surface, twin[1].back().surface);
      EXPECT_EQ(twin[0].back().meanings, twin[1].back().meanings);
    }
    return twin;
  }

  /// Run the same N messages sequentially on seq_ and as one batch on
  /// bat_, then compare reports (per arrival index) and stats.
  static void run_and_compare(const std::string& sender,
                              const std::string& receiver,
                              std::vector<std::vector<text::Sentence>> twin) {
    const std::size_t n = twin[0].size();
    std::vector<TransmitReport> seq_reports(n), bat_reports(n);
    std::vector<int> seq_seen(n, 0), bat_seen(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      seq_->transmit_async(sender, receiver, twin[0][i],
                           [&seq_reports, &seq_seen, i](TransmitReport r) {
                             seq_reports[i] = std::move(r);
                             ++seq_seen[i];
                           });
    }
    seq_->simulator().run();
    bat_->transmit_many(sender, receiver, std::move(twin[1]),
                        [&bat_reports, &bat_seen](std::size_t i,
                                                  TransmitReport r) {
                          bat_reports[i] = std::move(r);
                          ++bat_seen[i];
                        });
    bat_->simulator().run();

    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(seq_seen[i], 1) << "sequential completion " << i;
      EXPECT_EQ(bat_seen[i], 1) << "batch completion " << i;
      expect_reports_equal(seq_reports[i], bat_reports[i],
                           "message " + std::to_string(i));
    }
    expect_stats_equal(seq_->stats(), bat_->stats());
  }

  static SemanticEdgeSystem* seq_;
  static SemanticEdgeSystem* bat_;
};

SemanticEdgeSystem* TransmitBatchTest::seq_ = nullptr;
SemanticEdgeSystem* TransmitBatchTest::bat_ = nullptr;

TEST_F(TransmitBatchTest, SingleMessageBitIdenticalToTransmitAsync) {
  // N = 1 across enough messages that one trips the fine-tune trigger:
  // transmit_many of one message must be indistinguishable from
  // transmit_async — reports, stats, and (via the shared system state
  // carried into the later tests) the RNG discipline.
  bool saw_update = false;
  for (int k = 0; k < 5; ++k) {
    auto twin = sample_twin_messages("a", {0});
    TransmitReport seq_report, bat_report;
    seq_->transmit_async("a", "b", twin[0][0],
                         [&](TransmitReport r) { seq_report = std::move(r); });
    seq_->simulator().run();
    bat_->transmit_many("a", "b", {twin[1][0]},
                        [&](std::size_t i, TransmitReport r) {
                          EXPECT_EQ(i, 0u);
                          bat_report = std::move(r);
                        });
    bat_->simulator().run();
    expect_reports_equal(seq_report, bat_report,
                         "single message " + std::to_string(k));
    saw_update = saw_update || bat_report.triggered_update;
    expect_stats_equal(seq_->stats(), bat_->stats());
  }
  EXPECT_GT(seq_->stats().messages, 0u);
  EXPECT_EQ(saw_update, seq_->stats().updates > 0);
}

TEST_F(TransmitBatchTest, BatchMatchesSequentialCrossEdge) {
  // 9 same-domain messages with trigger 4: at least two updates fire
  // mid-batch, so the batched path must split its encode chunks exactly
  // where the sequential path fine-tunes.
  const auto before_updates = seq_->stats().updates;
  run_and_compare("a", "b",
                  sample_twin_messages("a", {0, 0, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_GT(seq_->stats().updates, before_updates);  // chunking exercised
  // After the simulators drain, both systems' decoder replicas agree.
  EXPECT_EQ(seq_->replicas_in_sync("a", 0, 0, 1),
            bat_->replicas_in_sync("a", 0, 0, 1));
  EXPECT_TRUE(bat_->replicas_in_sync("a", 0, 0, 1));
}

TEST_F(TransmitBatchTest, BatchMatchesSequentialMixedDomains) {
  // Interleaved domains: the batch groups messages per selected domain but
  // must keep every per-message outcome (channel fork, buffer position,
  // update trigger) tied to the original arrival order.
  run_and_compare("a", "b",
                  sample_twin_messages("a", {0, 1, 0, 1, 1, 0, 1, 0}));
  EXPECT_EQ(seq_->edge_state(0).slot_count(), bat_->edge_state(0).slot_count());
}

TEST_F(TransmitBatchTest, IntraEdgeBatchSkipsChannelAndMatches) {
  // Sender and receiver share edge 0: no channel (airtime must stay 0) and
  // updates apply to the receiver replica synchronously mid-batch.
  auto twin = sample_twin_messages("a", {0, 0, 0, 0, 0, 0});
  run_and_compare("a", "c", std::move(twin));
  // Spot-check the no-channel invariant on a fresh pair of reports.
  auto check = sample_twin_messages("a", {0});
  TransmitReport seq_report, bat_report;
  seq_->transmit_async("a", "c", check[0][0],
                       [&](TransmitReport r) { seq_report = std::move(r); });
  seq_->simulator().run();
  bat_->transmit_many("a", "c", {check[1][0]},
                      [&](std::size_t, TransmitReport r) {
                        bat_report = std::move(r);
                      });
  bat_->simulator().run();
  EXPECT_EQ(seq_report.airtime_bits, 0u);
  EXPECT_EQ(bat_report.airtime_bits, 0u);
  expect_reports_equal(seq_report, bat_report, "intra-edge single");
}

TEST(MismatchReuse, FastPathBitIdenticalToFullDecoderCopyPass) {
  // The §II-C fast path (receiver logits reused as decoder-copy logits
  // when the payload crossed intact and the replicas are at the same sync
  // version) must be a pure shortcut: a system with mismatch_reuse
  // disabled computes every mismatch through the full decoder-copy
  // forward, and all reports — mismatch doubles included — must agree
  // exactly, across fine-tune updates and on the intra-edge path.
  SystemConfig on_cfg = twin_config();
  SystemConfig off_cfg = twin_config();
  off_cfg.mismatch_reuse = false;
  auto with_reuse = SemanticEdgeSystem::build(on_cfg);
  auto without_reuse = SemanticEdgeSystem::build(off_cfg);
  for (auto* system : {with_reuse.get(), without_reuse.get()}) {
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
    system->register_user("c", 0, nullptr);
  }
  for (int k = 0; k < 10; ++k) {
    const std::string receiver = (k % 3 == 2) ? "c" : "b";  // mix in intra-edge
    const auto msg_on = with_reuse->sample_message("a", 0);
    const auto msg_off = without_reuse->sample_message("a", 0);
    ASSERT_EQ(msg_on.surface, msg_off.surface);
    const TransmitReport r_on = with_reuse->transmit("a", receiver, msg_on);
    const TransmitReport r_off =
        without_reuse->transmit("a", receiver, msg_off);
    expect_reports_equal(r_off, r_on, "message " + std::to_string(k));
  }
  EXPECT_GT(with_reuse->stats().updates, 0u);  // fine-tunes exercised
}

TEST(MismatchReuseNoisy, CorruptedPayloadFallbackBitIdenticalAcrossPaths) {
  // Force the channel-corrupted fallback: uncoded at 0 dB flips ~8% of
  // payload bits, so essentially every message arrives corrupted
  // (P(all clean) < e^-50 for this run) and the reuse path must take its
  // single-row decoder-copy fallback instead of slicing receiver logits.
  // Three lockstep systems pin both contracts at once: the batched path
  // equals the sequential path, and the reuse fallback equals the full
  // decoder-copy pass, bit-exactly, with fine-tune updates firing on
  // garbage-mismatch buffers along the way.
  SystemConfig noisy = twin_config();
  noisy.channel.code = "uncoded";
  noisy.channel.snr_db = 0.0;
  SystemConfig noisy_off = noisy;
  noisy_off.mismatch_reuse = false;
  auto seq = SemanticEdgeSystem::build(noisy);
  auto bat = SemanticEdgeSystem::build(noisy);
  auto full = SemanticEdgeSystem::build(noisy_off);
  for (auto* system : {seq.get(), bat.get(), full.get()}) {
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
  }

  const std::size_t n = 7;  // crosses the trigger: updates fire mid-batch
  std::vector<text::Sentence> msgs_seq, msgs_bat, msgs_full;
  for (std::size_t i = 0; i < n; ++i) {
    msgs_seq.push_back(seq->sample_message("a", 0));
    msgs_bat.push_back(bat->sample_message("a", 0));
    msgs_full.push_back(full->sample_message("a", 0));
    ASSERT_EQ(msgs_seq.back().surface, msgs_bat.back().surface);
    ASSERT_EQ(msgs_seq.back().surface, msgs_full.back().surface);
  }
  std::vector<TransmitReport> r_seq(n), r_bat(n), r_full(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq->transmit_async("a", "b", msgs_seq[i],
                        [&r_seq, i](TransmitReport r) { r_seq[i] = std::move(r); });
    full->transmit_async("a", "b", msgs_full[i],
                         [&r_full, i](TransmitReport r) { r_full[i] = std::move(r); });
  }
  seq->simulator().run();
  full->simulator().run();
  bat->transmit_many("a", "b", std::move(msgs_bat),
                     [&r_bat](std::size_t i, TransmitReport r) {
                       r_bat[i] = std::move(r);
                     });
  bat->simulator().run();

  bool saw_decode_error = false;
  for (std::size_t i = 0; i < n; ++i) {
    expect_reports_equal(r_seq[i], r_bat[i], "batch msg " + std::to_string(i));
    expect_reports_equal(r_full[i], r_bat[i],
                         "reuse-off msg " + std::to_string(i));
    saw_decode_error = saw_decode_error || !r_bat[i].exact;
  }
  expect_stats_equal(seq->stats(), bat->stats());
  // The channel really was hostile (decode errors observed) and the
  // adaptation loop still ran on the corrupted-mismatch buffers.
  EXPECT_TRUE(saw_decode_error);
  EXPECT_GT(bat->stats().updates, 0u);
}

TEST_F(TransmitBatchTest, ValidationErrors) {
  // Failed validation must not mutate state — these run against both twins
  // symmetrically (i.e. not at all).
  auto noop = [](std::size_t, TransmitReport) {};
  EXPECT_THROW(bat_->transmit_many("a", "b", {}, noop), Error);
  text::Sentence bad;
  bad.domain = 0;
  bad.surface = {1, 2, 3};
  bad.meanings = {1, 2, 3};
  EXPECT_THROW(bat_->transmit_many("a", "b", {bad}, noop), Error);
  const auto msg = bat_->sample_message("a", 0);
  EXPECT_THROW(bat_->transmit_many("a", "b", {msg}, nullptr), Error);
  EXPECT_THROW(bat_->transmit_many("a", "nobody", {msg}, noop), Error);
  // Re-mirror the twins: bat_ consumed one sample_message draw above.
  (void)seq_->sample_message("a", 0);
  expect_stats_equal(seq_->stats(), bat_->stats());
}

}  // namespace
}  // namespace semcache::core
