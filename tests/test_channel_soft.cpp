// Channel realism plane: punctured rate matching, soft-decision Viterbi,
// Gilbert–Elliott bursts, and the per-link adaptive code rate.
//
// Contracts pinned here:
//  * PUNCTURE GOLDENS — exact encoded bit patterns for both rates (the
//    osmocom-style periodic keep masks are a wire format, not an
//    implementation detail), plus noiseless round trips at every length.
//  * SOFT = HARD AT UNIT CONFIDENCE — decode_soft over ±1 LLRs is
//    bit-identical to hard decode (uniform weights scale every path
//    metric by the same factor, preserving comparisons AND ties), and a
//    noise-free soft pipeline agrees with the hard one exactly.
//  * SOFT BEATS HARD — at low SNR, with byte-identical noise, the LLR
//    trellis strictly reduces residual bit errors over hard slicing.
//  * BURST DETERMINISM — Gilbert–Elliott weather is keyed by (seed,
//    slot), never by RNG draw order: batches match sequential transmits
//    under a pool, and a full system twin (threads {0,4} x shards {1,2})
//    stays byte-identical.
//  * ADAPTIVE DETERMINISM — the EWMA/hysteresis controller is a pure
//    function of its observation sequence; AdaptiveRatePipeline stats are
//    byte-comparable across identical runs and actually switch rates when
//    the weather turns.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "channel/adaptive.hpp"
#include "channel/pipeline.hpp"
#include "channel/puncture.hpp"
#include "common/thread_pool.hpp"
#include "core/dispatcher.hpp"
#include "core/sharded.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache {
namespace {

using channel::AdaptiveRateConfig;
using channel::AdaptiveRateController;
using channel::AdaptiveRatePipeline;
using channel::CodeRate;
using channel::GilbertElliottChannel;
using channel::GilbertElliottConfig;
using channel::Modulation;
using channel::PunctureRate;
using channel::PuncturedConvolutionalCode;

// ---------------------------------------------------------------- puncture

TEST(Puncture, GoldenVectorR23) {
  // info = 1011, mother pairs (G1,G2) over 6 steps (2 tail zeros):
  // (1,1)(1,0)(0,0)(0,1)(0,1)(1,1); period-2 mask [11, 01] keeps both
  // outputs on even steps and only G1 on odd steps.
  const PuncturedConvolutionalCode code(PunctureRate::kR23);
  EXPECT_EQ(code.name(), "conv_k3_r23");
  EXPECT_EQ(code.period(), 2u);
  const BitVec info = {1, 0, 1, 1};
  const BitVec expected = {1, 1, 1, 0, 0, 0, 0, 1, 1};
  EXPECT_EQ(code.encode(info), expected);
  EXPECT_EQ(code.encoded_length(info.size()), expected.size());
  EXPECT_EQ(code.decode(expected), info);
}

TEST(Puncture, GoldenVectorR34) {
  // Same mother stream, period-3 mask [11, 01, 10]: both, G1 only, G2 only.
  const PuncturedConvolutionalCode code(PunctureRate::kR34);
  EXPECT_EQ(code.name(), "conv_k3_r34");
  EXPECT_EQ(code.period(), 3u);
  const BitVec info = {1, 0, 1, 1};
  const BitVec expected = {1, 1, 1, 0, 0, 1, 0, 1};
  EXPECT_EQ(code.encode(info), expected);
  EXPECT_EQ(code.encoded_length(info.size()), expected.size());
  EXPECT_EQ(code.decode(expected), info);
}

TEST(Puncture, RoundTripsAtEveryLength) {
  Rng rng(7);
  for (const PunctureRate rate : {PunctureRate::kR23, PunctureRate::kR34}) {
    const PuncturedConvolutionalCode code(rate);
    for (std::size_t n = 1; n <= 48; ++n) {
      const BitVec info = test::random_bits(n, rng);
      const BitVec coded = code.encode(info);
      ASSERT_EQ(coded.size(), code.encoded_length(n));
      ASSERT_EQ(code.decode(coded), info) << code.name() << " n=" << n;
    }
  }
}

TEST(Puncture, R23CorrectsIsolatedFlips) {
  // The punctured 2/3 code keeps a free distance > 2, so a single flipped
  // bit anywhere in a frame must still decode clean.
  const PuncturedConvolutionalCode code(PunctureRate::kR23);
  Rng rng(11);
  const BitVec info = test::random_bits(32, rng);
  const BitVec coded = code.encode(info);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    BitVec corrupted = coded;
    corrupted[i] ^= 1;
    EXPECT_EQ(code.decode(corrupted), info) << "flip at " << i;
  }
}

TEST(Puncture, FactoryNamesResolve) {
  EXPECT_EQ(channel::make_code("conv_k3_r23")->name(), "conv_k3_r23");
  EXPECT_EQ(channel::make_code("conv_k3_r34")->name(), "conv_k3_r34");
  EXPECT_NEAR(channel::make_code("conv_k3_r23")->rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(channel::make_code("conv_k3_r34")->rate(), 3.0 / 4.0, 1e-12);
}

// ------------------------------------------------------------ soft Viterbi

TEST(SoftViterbi, UnitLlrsMatchHardDecodeExactly) {
  // |llr| = 1 everywhere quantizes to a uniform weight, which scales every
  // path metric by the same constant: argmin, tie-breaks, and traceback
  // are bit-identical to the hard decoder — even on corrupted streams
  // where the decode is wrong for both.
  const channel::ConvolutionalCode conv;
  const PuncturedConvolutionalCode r23(PunctureRate::kR23);
  const PuncturedConvolutionalCode r34(PunctureRate::kR34);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec info = test::random_bits(40, rng);
    for (const channel::ChannelCode* code :
         {static_cast<const channel::ChannelCode*>(&conv),
          static_cast<const channel::ChannelCode*>(&r23),
          static_cast<const channel::ChannelCode*>(&r34)}) {
      BitVec coded = code->encode(info);
      // Corrupt a few positions so the equivalence is exercised off the
      // zero-error happy path too.
      for (int f = 0; f < 3; ++f) {
        coded[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(coded.size()) - 1))] ^= 1;
      }
      std::vector<float> llrs(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        llrs[i] = coded[i] != 0 ? 1.0f : -1.0f;
      }
      EXPECT_EQ(code->decode_soft(llrs), code->decode(coded)) << code->name();
    }
  }
}

TEST(SoftViterbi, NoiseFreePipelineTwinAgrees) {
  // At a noise floor of essentially zero both receive paths must return
  // the payload exactly, for every code x modulation combination.
  Rng rng(17);
  for (const char* code : {"conv_k3_r12", "conv_k3_r23", "conv_k3_r34"}) {
    for (const Modulation mod :
         {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
      auto hard = channel::make_awgn_pipeline(channel::make_code(code), mod,
                                              /*snr_db=*/90.0);
      auto soft = channel::make_awgn_pipeline(channel::make_code(code), mod,
                                              /*snr_db=*/90.0);
      soft->set_soft_decision(true);
      const BitVec payload = test::random_bits(96, rng);
      Rng hard_rng(2300);
      Rng soft_rng(2300);
      EXPECT_EQ(hard->transmit(payload, hard_rng), payload);
      EXPECT_EQ(soft->transmit(payload, soft_rng), payload);
    }
  }
}

TEST(SoftViterbi, BeatsHardSlicingAtLowSnr) {
  // Identical noise (same per-message RNG seeds), identical code and
  // modulation — the only difference is slicing to bits before the
  // trellis vs feeding it LLRs. Soft decisions are worth ~2 dB on AWGN,
  // which at this operating point must show up as strictly fewer residual
  // payload bit errors.
  auto hard = channel::make_awgn_pipeline(channel::make_code("conv_k3_r12"),
                                          Modulation::kQpsk, /*snr_db=*/3.0);
  auto soft = channel::make_awgn_pipeline(channel::make_code("conv_k3_r12"),
                                          Modulation::kQpsk, /*snr_db=*/3.0);
  soft->set_soft_decision(true);
  Rng payload_rng(19);
  std::size_t hard_errors = 0;
  std::size_t soft_errors = 0;
  for (int msg = 0; msg < 200; ++msg) {
    const BitVec payload = test::random_bits(64, payload_rng);
    Rng hard_rng(5000 + msg);
    Rng soft_rng(5000 + msg);
    const BitVec hard_rx = hard->transmit(payload, hard_rng);
    const BitVec soft_rx = soft->transmit(payload, soft_rng);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      hard_errors += hard_rx[i] != payload[i];
      soft_errors += soft_rx[i] != payload[i];
    }
  }
  EXPECT_GT(hard_errors, 0u) << "operating point too benign to discriminate";
  EXPECT_LT(soft_errors, hard_errors);
}

TEST(SoftViterbi, EnvResolution) {
  // resolve_soft_decision: unset keeps the configured value, on/off force.
  if (channel::soft_forced_off()) {
    EXPECT_FALSE(channel::resolve_soft_decision(true));
    EXPECT_FALSE(channel::resolve_soft_decision(false));
  } else if (std::getenv("SEMCACHE_SOFT") == nullptr) {
    EXPECT_TRUE(channel::resolve_soft_decision(true));
    EXPECT_FALSE(channel::resolve_soft_decision(false));
  }
}

// --------------------------------------------------------- Gilbert–Elliott

GilbertElliottConfig test_burst_config() {
  GilbertElliottConfig burst;
  burst.snr_good_db = 12.0;
  burst.snr_bad_db = 2.0;
  burst.p_good_to_bad = 0.02;
  burst.p_bad_to_good = 0.10;
  burst.bad_weather_prob = 0.4;
  burst.dwell_messages = 4;
  burst.seed = 99;
  return burst;
}

TEST(GilbertElliott, WeatherIsSlotKeyed) {
  const GilbertElliottChannel a(test_burst_config());
  const GilbertElliottChannel b(test_burst_config());
  std::size_t bad = 0;
  for (std::uint64_t slot = 0; slot < 4000; ++slot) {
    ASSERT_EQ(a.starts_bad(slot), b.starts_bad(slot)) << slot;
    // One epoch = dwell_messages consecutive slots sharing the weather.
    ASSERT_EQ(a.starts_bad(slot), a.starts_bad(slot - slot % 4));
    bad += a.starts_bad(slot) ? 1 : 0;
  }
  // 1000 epochs at p(bad) = 0.4: the observed rate must be in the
  // neighborhood (binomial sigma ~ 0.015).
  EXPECT_NEAR(static_cast<double>(bad) / 4000.0, 0.4, 0.08);
}

TEST(GilbertElliott, BatchMatchesSequentialUnderPool) {
  const auto make = [] {
    return channel::make_burst_pipeline(channel::make_code("conv_k3_r12"),
                                        Modulation::kQpsk,
                                        test_burst_config(),
                                        /*interleave_depth=*/8);
  };
  Rng rng(23);
  std::vector<BitVec> payloads;
  std::vector<std::uint64_t> slots;
  for (std::size_t i = 0; i < 24; ++i) {
    payloads.push_back(test::random_bits(64, rng));
    slots.push_back(100 + i);
  }
  const auto fork_rngs = [] {
    std::vector<Rng> rngs;
    Rng base(31);
    for (std::size_t i = 0; i < 24; ++i) rngs.push_back(base.fork(100 + i));
    return rngs;
  };

  auto sequential = make();
  std::vector<BitVec> expected;
  {
    std::vector<Rng> rngs = fork_rngs();
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      expected.push_back(sequential->transmit_at(payloads[i], rngs[i],
                                                 slots[i]));
    }
  }
  for (const bool soft : {false, true}) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " soft=" + std::to_string(soft));
      auto batch = make();
      batch->set_soft_decision(soft);
      std::unique_ptr<common::ThreadPool> pool;
      if (threads > 0) {
        pool = std::make_unique<common::ThreadPool>(threads);
        batch->set_thread_pool(pool.get());
      }
      std::vector<Rng> rngs = fork_rngs();
      const std::vector<BitVec> got =
          batch->transmit_batch(payloads, rngs, slots);
      if (soft) {
        // Soft vs hard may legitimately differ (that is the point); the
        // pinned property is pool-invariance, checked against threads=0.
        auto ref = make();
        ref->set_soft_decision(true);
        std::vector<Rng> ref_rngs = fork_rngs();
        EXPECT_EQ(got, ref->transmit_batch(payloads, ref_rngs, slots));
      } else {
        EXPECT_EQ(got, expected);
      }
      EXPECT_EQ(batch->stats().messages, payloads.size());
      EXPECT_EQ(batch->stats().airtime_bits, sequential->stats().airtime_bits);
    }
  }
}

// System twin: Gilbert–Elliott medium end to end, threads {0,4} x shards
// {1,2} byte-identical to the sequential single-system reference.
core::SystemConfig burst_system_config(std::uint64_t seed,
                                       std::size_t num_threads) {
  core::SystemConfig config = test::tiny_system_config(seed);
  config.pretrain.steps = 150;
  config.num_edges = 2;
  config.num_threads = num_threads;
  config.channel.medium = "gilbert_elliott";
  config.channel.burst = test_burst_config();
  config.channel.burst.seed = 0;  // defaults to the system seed at build
  return config;
}

TEST(GilbertElliottSystem, TwinAcrossThreadsAndShards) {
  unsetenv("SEMCACHE_THREADS");
  unsetenv("SEMCACHE_SHARDS");
  auto reference = core::SemanticEdgeSystem::build(burst_system_config(303, 0));
  const std::vector<std::pair<std::string, std::size_t>> users = {
      {"a", 0}, {"b", 1}, {"c", 0}, {"d", 1}};
  for (const auto& [name, edge] : users) {
    reference->register_user(name, edge, nullptr);
  }
  // Two waves so burst weather spans several dwell epochs mid-run.
  const std::vector<std::vector<std::pair<std::string, std::string>>> waves = {
      {{"a", "b"}, {"c", "d"}, {"d", "c"}},
      {{"a", "b"}, {"c", "a"}, {"d", "b"}},
  };
  std::vector<std::vector<std::vector<text::Sentence>>> sentences(waves.size());
  Rng domain_rng(5);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    sentences[w].resize(waves[w].size());
    for (std::size_t p = 0; p < waves[w].size(); ++p) {
      for (int m = 0; m < 3; ++m) {
        sentences[w][p].push_back(reference->sample_message(
            waves[w][p].first,
            static_cast<std::size_t>(domain_rng.uniform_int(0, 1))));
      }
    }
  }

  using Served = std::vector<std::vector<std::vector<core::TransmitReport>>>;
  // The sharded front door drains its shards' simulators inside flush; the
  // plain single-system reference needs its simulator run explicitly.
  const auto drive = [&](core::ParallelDispatcher& dispatcher,
                         edge::Simulator* run_after_flush) {
    Served served(waves.size());
    for (std::size_t w = 0; w < waves.size(); ++w) {
      for (std::size_t p = 0; p < waves[w].size(); ++p) {
        dispatcher.enqueue(waves[w][p].first, waves[w][p].second,
                           sentences[w][p]);
      }
      served[w].resize(dispatcher.queued_pairs());
      dispatcher.flush([&served, w](std::size_t pair, std::size_t index,
                                    core::TransmitReport report) {
        auto& list = served[w][pair];
        if (list.size() <= index) list.resize(index + 1);
        list[index] = std::move(report);
      });
      if (run_after_flush != nullptr) run_after_flush->run();
    }
    return served;
  };

  core::ParallelDispatcher ref_dispatcher(*reference);
  const Served ref_served = drive(ref_dispatcher, &reference->simulator());

  const std::vector<std::pair<std::size_t, std::size_t>> variants = {
      {1, 4}, {2, 0}, {2, 4}};  // (shards, threads per shard)
  for (const auto& [num_shards, threads] : variants) {
    SCOPED_TRACE("K=" + std::to_string(num_shards) +
                 " threads=" + std::to_string(threads));
    auto sharded = core::ShardedEdgeServing::build(
        burst_system_config(303, threads), num_shards);
    for (const auto& [name, edge] : users) {
      sharded->register_user(name, edge, nullptr);
    }
    core::ParallelDispatcher dispatcher(*sharded);
    const Served served = drive(dispatcher, nullptr);
    ASSERT_EQ(served.size(), ref_served.size());
    for (std::size_t w = 0; w < served.size(); ++w) {
      ASSERT_EQ(served[w].size(), ref_served[w].size());
      for (std::size_t p = 0; p < served[w].size(); ++p) {
        ASSERT_EQ(served[w][p].size(), ref_served[w][p].size());
        for (std::size_t i = 0; i < served[w][p].size(); ++i) {
          const core::TransmitReport& ref = ref_served[w][p][i];
          const core::TransmitReport& got = served[w][p][i];
          SCOPED_TRACE("wave " + std::to_string(w) + " pair " +
                       std::to_string(p) + " msg " + std::to_string(i));
          EXPECT_EQ(ref.decoded_meanings, got.decoded_meanings);
          EXPECT_EQ(ref.token_accuracy, got.token_accuracy);
          EXPECT_EQ(ref.mismatch, got.mismatch);
          EXPECT_EQ(ref.airtime_bits, got.airtime_bits);
          EXPECT_EQ(ref.exact, got.exact);
        }
      }
    }
    EXPECT_EQ(sharded->stats().messages, reference->stats().messages);
    EXPECT_EQ(sharded->stats().uplink_bytes, reference->stats().uplink_bytes);
  }
}

// ----------------------------------------------------------- adaptive rate

TEST(AdaptiveRate, ControllerFollowsSnrWithHysteresis) {
  AdaptiveRateConfig cfg;  // thresholds 6 / 10 dB, hysteresis 1 dB
  cfg.ewma_alpha = 1.0;    // no smoothing: decisions track inputs directly
  AdaptiveRateController ctl(cfg);
  EXPECT_EQ(ctl.current(), CodeRate::kR12);
  // Below the first threshold: stays at 1/2.
  EXPECT_EQ(ctl.observe(5.0), CodeRate::kR12);
  // Inside the dead band above the threshold: still holds.
  EXPECT_EQ(ctl.observe(6.5), CodeRate::kR12);
  // Clearly above: one rung per observation, never two.
  EXPECT_EQ(ctl.observe(15.0), CodeRate::kR23);
  EXPECT_EQ(ctl.observe(15.0), CodeRate::kR34);
  // Dead band below the upper threshold: holds 3/4.
  EXPECT_EQ(ctl.observe(9.5), CodeRate::kR34);
  // Collapse: steps down one rung at a time.
  EXPECT_EQ(ctl.observe(1.0), CodeRate::kR23);
  EXPECT_EQ(ctl.observe(1.0), CodeRate::kR12);
}

TEST(AdaptiveRate, ControllerIsDeterministic) {
  AdaptiveRateConfig cfg;
  AdaptiveRateController a(cfg);
  AdaptiveRateController b(cfg);
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    const double snr = 16.0 * rng.uniform();
    ASSERT_EQ(a.observe(snr), b.observe(snr));
    ASSERT_EQ(a.ewma_snr_db(), b.ewma_snr_db());
  }
}

TEST(AdaptiveRate, PipelineSwitchesAndStatsAreReproducible) {
  if (channel::soft_forced_off()) {
    GTEST_SKIP() << "SEMCACHE_SOFT=off: adaptive link runs hard decisions "
                    "and never observes";
  }
  GilbertElliottConfig burst = test_burst_config();
  burst.snr_good_db = 14.0;
  burst.snr_bad_db = 1.0;
  burst.dwell_messages = 8;
  burst.bad_weather_prob = 0.5;
  AdaptiveRateConfig cfg;

  const auto run = [&] {
    AdaptiveRatePipeline link(Modulation::kQpsk, burst, cfg,
                              /*interleave_depth=*/8);
    Rng payload_rng(43);
    Rng base(47);
    std::vector<BitVec> decoded;
    for (std::uint64_t slot = 0; slot < 120; ++slot) {
      const BitVec payload = test::random_bits(64, payload_rng);
      Rng rng = base.fork(slot);
      decoded.push_back(link.transmit_at(payload, rng, slot));
    }
    return std::make_pair(std::move(decoded), link.stats());
  };

  const auto [decoded_a, stats_a] = run();
  const auto [decoded_b, stats_b] = run();
  EXPECT_EQ(decoded_a, decoded_b);
  EXPECT_EQ(stats_a.messages, stats_b.messages);
  EXPECT_EQ(stats_a.switches, stats_b.switches);
  EXPECT_EQ(stats_a.rate_messages, stats_b.rate_messages);
  EXPECT_EQ(stats_a.payload_bits, stats_b.payload_bits);
  EXPECT_EQ(stats_a.airtime_bits, stats_b.airtime_bits);
  EXPECT_EQ(stats_a.ewma_snr_db, stats_b.ewma_snr_db);

  EXPECT_EQ(stats_a.messages, 120u);
  EXPECT_EQ(stats_a.rate_messages[0] + stats_a.rate_messages[1] +
                stats_a.rate_messages[2],
            120u);
  // The weather swings between 14 dB and 1 dB epochs; a controller that
  // never leaves its initial rung is not adapting.
  EXPECT_GT(stats_a.switches, 0u);
  EXPECT_GT(stats_a.rate_messages[1] + stats_a.rate_messages[2], 0u);
}

}  // namespace
}  // namespace semcache
