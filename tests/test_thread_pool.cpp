// common::ThreadPool contract tests: full index coverage, determinism of
// results across worker counts (the property the threaded data plane's
// bit-identity rests on), index-ordered commit equivalence, lowest-index
// exception propagation, nested-call rejection, and the inline fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace semcache::common {
namespace {

/// An arbitrary index-determined value: if every worker-count produces the
/// same vector, scheduling never leaked into the results.
std::uint64_t value_for(std::size_t i) {
  std::uint64_t s = 0x9E3779B97F4A7C15ULL * (i + 1);
  return splitmix64(s);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, std::size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ResultsBitIdenticalAcrossWorkerCounts) {
  // Disjoint-writes bodies must produce the same output vector for any
  // worker count, including the 0-worker inline pool; and an index-ordered
  // reduction AFTER the join (the "commit in index order" discipline the
  // pipeline stats use) must equal the plain sequential reduction.
  const std::size_t n = 257;  // not a multiple of any worker count
  std::vector<std::uint64_t> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = value_for(i);
  const std::uint64_t reference_sum =
      std::accumulate(reference.begin(), reference.end(), std::uint64_t{0});

  for (const std::size_t workers : {0u, 1u, 2u, 4u, 7u}) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(n, 0);
    pool.parallel_for(n,
                      [&](std::size_t i, std::size_t) { out[i] = value_for(i); });
    EXPECT_EQ(out, reference) << workers << " workers";
    std::uint64_t committed = 0;
    for (std::size_t i = 0; i < n; ++i) committed += out[i];
    EXPECT_EQ(committed, reference_sum) << workers << " workers";
  }
}

TEST(ThreadPool, WorkerSlotsStayInRange) {
  for (const std::size_t workers : {0u, 1u, 3u}) {
    ThreadPool pool(workers);
    const std::size_t slot_limit = std::max<std::size_t>(1, workers);
    std::vector<std::size_t> slot_of(64, slot_limit);
    pool.parallel_for(slot_of.size(), [&](std::size_t i, std::size_t slot) {
      slot_of[i] = slot;
    });
    for (std::size_t i = 0; i < slot_of.size(); ++i) {
      EXPECT_LT(slot_of[i], slot_limit) << "index " << i;
    }
  }
}

TEST(ThreadPool, InlineFallbackRunsOnCallerThread) {
  // 0 workers: no threads exist, so the body must run on the caller with
  // worker_slot 0 — the num_threads = 0 "compiles out to sequential" path.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(16);
  pool.parallel_for(ran_on.size(), [&](std::size_t i, std::size_t slot) {
    EXPECT_EQ(slot, 0u);
    ran_on[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, SingleIndexRunsInlineEvenWithWorkers) {
  // count <= 1 short-circuits to the caller: a one-message chunk must not
  // pay a pool round trip.
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t i, std::size_t slot) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(slot, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, LowestIndexExceptionWinsAndPoolSurvives) {
  ThreadPool pool(4);
  const std::size_t n = 64;
  for (int round = 0; round < 3; ++round) {  // pool stays usable after throws
    std::vector<std::atomic<int>> ran(n);
    try {
      pool.parallel_for(n, [&](std::size_t i, std::size_t) {
        ran[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 7 || i == 3 || i == 50) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 3");  // lowest index, any scheduling
    }
    // No short-circuit: every index still ran, so side-effect-free bodies
    // leave deterministic state even on the error path.
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ran[i].load(), 1);
  }
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, NestedFanOutFromWorkerIsRejected) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> rejected{0};
  outer.parallel_for(8, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    try {
      inner.parallel_for(4, [](std::size_t, std::size_t) {});
    } catch (const Error&) {
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(rejected.load(), 8);  // every body's nested attempt threw
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  // A top-level call on the inner pool still works afterwards.
  std::atomic<int> ok{0};
  inner.parallel_for(4, [&](std::size_t, std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ResolveThreadCountEnvOverridesDefaultOnly) {
  ASSERT_EQ(unsetenv("SEMCACHE_THREADS"), 0);
  EXPECT_EQ(resolve_thread_count(0), 0u);
  EXPECT_EQ(resolve_thread_count(3), 3u);
  ASSERT_EQ(setenv("SEMCACHE_THREADS", "4", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 4u);   // env fills in the default
  EXPECT_EQ(resolve_thread_count(2), 2u);   // explicit config wins
  ASSERT_EQ(setenv("SEMCACHE_THREADS", "garbage", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 0u);   // unparseable: ignored
  ASSERT_EQ(setenv("SEMCACHE_THREADS", "", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 0u);
  // strtoul would sign-wrap "-1" to 2^64-1; digits-only parsing must
  // reject it (and absurd counts) instead of spawning a thread herd.
  ASSERT_EQ(setenv("SEMCACHE_THREADS", "-1", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 0u);
  ASSERT_EQ(setenv("SEMCACHE_THREADS", "100000", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 0u);  // > kMaxEnvThreads: ignored
  ASSERT_EQ(setenv("SEMCACHE_THREADS",
                   std::to_string(kMaxEnvThreads).c_str(), 1), 0);
  EXPECT_EQ(resolve_thread_count(0), kMaxEnvThreads);
  ASSERT_EQ(unsetenv("SEMCACHE_THREADS"), 0);
}

}  // namespace
}  // namespace semcache::common
