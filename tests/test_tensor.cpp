// Unit tests for semcache::tensor — shape discipline, op correctness
// against hand-computed values and naive references, and serialization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace semcache::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 5});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.dim(0), 4u);
  Tensor v({7});
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 7u);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), Error);
}

TEST(Tensor, RowColIndexing) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t.at(5), 9.0f);
}

TEST(Tensor, BoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(4), Error);
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 2), Error);
  EXPECT_THROW(t.dim(2), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t.at(2), 2.5f);
  t.zero();
  EXPECT_EQ(t.at(0), 0.0f);
}

TEST(Tensor, EqualsAndMaxAbsDiff) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.5f});
  EXPECT_FALSE(a.equals(b));
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 0.5f);
  EXPECT_TRUE(a.equals(a));
  Tensor c({1, 2});
  EXPECT_THROW(a.max_abs_diff(c), Error);
}

TEST(Tensor, UniformInitWithinLimit) {
  Rng rng(3);
  Tensor t = Tensor::uniform({50, 50}, 0.2f, rng);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -0.2f);
    EXPECT_LE(t.at(i), 0.2f);
  }
}

TEST(Tensor, XavierShapeAndScale) {
  Rng rng(3);
  Tensor t = Tensor::xavier(30, 20, rng);
  EXPECT_EQ(t.dim(0), 30u);
  EXPECT_EQ(t.dim(1), 20u);
  const float limit = std::sqrt(6.0f / 50.0f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.at(i)), limit);
  }
}

TEST(Tensor, SerializeRoundTrip) {
  Rng rng(9);
  Tensor t = Tensor::uniform({3, 7}, 1.0f, rng);
  ByteWriter w;
  t.serialize(w);
  EXPECT_EQ(w.size(), t.byte_size());
  ByteReader r(w.bytes());
  const Tensor u = Tensor::deserialize(r);
  EXPECT_TRUE(t.equals(u));
}

TEST(Ops, AddSubMulScale) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  EXPECT_TRUE(add(a, b).equals(Tensor({2}, {11, 22})));
  EXPECT_TRUE(sub(b, a).equals(Tensor({2}, {9, 18})));
  EXPECT_TRUE(mul(a, b).equals(Tensor({2}, {10, 40})));
  EXPECT_TRUE(scale(a, -2.0f).equals(Tensor({2}, {-2, -4})));
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(mul(a, b), Error);
}

TEST(Ops, InplaceVariants) {
  Tensor a({2}, {1, 1});
  Tensor b({2}, {2, 3});
  add_inplace(a, b);
  EXPECT_TRUE(a.equals(Tensor({2}, {3, 4})));
  axpy_inplace(a, b, -1.0f);
  EXPECT_TRUE(a.equals(Tensor({2}, {1, 1})));
}

TEST(Ops, MatmulHandComputed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(Ops, MatmulAgainstNaiveReference) {
  Rng rng(7);
  const Tensor a = Tensor::uniform({9, 13}, 1.0f, rng);
  const Tensor b = Tensor::uniform({13, 5}, 1.0f, rng);
  const Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 13; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

TEST(Ops, MatmulInnerDimMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(5);
  const Tensor a = Tensor::uniform({4, 6}, 1.0f, rng);
  const Tensor t = transpose(a);
  EXPECT_EQ(t.dim(0), 6u);
  EXPECT_EQ(t.at(2, 3), a.at(3, 2));
  EXPECT_TRUE(transpose(t).equals(a));
}

TEST(Ops, AffineAddsBiasPerRow) {
  Tensor x({2, 2}, {1, 0, 0, 1});
  Tensor w({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias({3}, {10, 20, 30});
  const Tensor y = affine(x, w, bias);
  EXPECT_TRUE(y.equals(Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(Ops, RowSoftmaxNormalizes) {
  Tensor logits({2, 3}, {1, 1, 1, 0, 1, 2});
  const Tensor p = row_softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_NEAR(p.at(0, 0), 1.0f / 3.0f, 1e-6f);
  EXPECT_GT(p.at(1, 2), p.at(1, 1));
}

TEST(Ops, RowSoftmaxNumericallyStable) {
  Tensor logits({1, 2}, {1000.0f, 1001.0f});
  const Tensor p = row_softmax(logits);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0f, 1e-6f);
}

TEST(Ops, RowArgmax) {
  Tensor t({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = row_argmax(t);
  EXPECT_EQ(idx, (std::vector<std::int32_t>{1, 0}));
}

TEST(Ops, Reductions) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(sum(t), 10.0f);
  EXPECT_FLOAT_EQ(mean(t), 2.5f);
  EXPECT_FLOAT_EQ(dot(t, t), 30.0f);
  EXPECT_FLOAT_EQ(l2_norm(t), std::sqrt(30.0f));
}

TEST(Ops, ColumnSums) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(column_sums(t).equals(Tensor({3}, {5, 7, 9})));
}

TEST(Ops, MapAppliesElementwise) {
  Tensor t({2}, {-1, 4});
  const Tensor m = map(t, [](float x) { return x * x; });
  EXPECT_TRUE(m.equals(Tensor({2}, {1, 16})));
}

// Property sweep: (A*B)^T == B^T * A^T over random shapes.
class MatmulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatmulProperty, TransposeIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const auto k = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const Tensor a = Tensor::uniform({m, k}, 1.0f, rng);
  const Tensor b = Tensor::uniform({k, n}, 1.0f, rng);
  const Tensor lhs = transpose(matmul(a, b));
  const Tensor rhs = matmul(transpose(b), transpose(a));
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace semcache::tensor
