// Gradient regression sweep for the training hot path. test_nn.cpp
// gradchecks each layer once at a single shape; this suite sweeps the GRU
// and dense (Linear) backward passes across several small dimension
// combinations and seeds, checking every parameter scalar. Its job is to
// be the fast canary that catches a silently-broken gradient when
// src/nn or src/tensor is rewritten for speed (SIMD, blocking, fusion):
// a shape-dependent indexing bug that happens to pass at one shape still
// fails at another.
#include <gtest/gtest.h>

#include <vector>

#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace semcache::nn {
namespace {

using tensor::Tensor;

constexpr double kTol = 2e-2;  // float32 forward + central differences

struct Shape {
  std::size_t in;
  std::size_t out;
  std::size_t steps;  // sequence length (GRU) or batch rows (Linear)
};

const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = {
      {1, 1, 1},  // degenerate dims catch off-by-one strides
      {2, 5, 3},  // in < out
      {6, 2, 4},  // in > out
      {4, 4, 7},  // square, longer sequence
  };
  return s;
}

TEST(GradRegression, DenseLayerAcrossShapes) {
  for (const Shape& sh : shapes()) {
    Rng rng(1000 + sh.in * 100 + sh.out * 10 + sh.steps);
    Linear layer(sh.in, sh.out, rng);
    const Tensor x = Tensor::uniform({sh.steps, sh.in}, 1.0f, rng);
    const Tensor w = Tensor::uniform({sh.steps, sh.out}, 1.0f, rng);
    auto loss_fn = [&]() -> double {
      return static_cast<double>(tensor::dot(layer.forward(x), w));
    };
    Optimizer::zero_grad(layer.parameters());
    layer.forward(x);
    layer.backward(w);  // dL/dy = w for loss = sum(w ⊙ y)
    const auto result = gradcheck(loss_fn, layer.parameters(), 1e-3, 0);
    EXPECT_TRUE(result.ok(kTol))
        << "linear " << sh.in << "x" << sh.out << " rows " << sh.steps
        << ": rel err " << result.max_rel_error;
    EXPECT_EQ(result.checked, sh.in * sh.out + sh.out);  // W plus b
  }
}

TEST(GradRegression, GruBpttAcrossShapes) {
  for (const Shape& sh : shapes()) {
    Rng rng(2000 + sh.in * 100 + sh.out * 10 + sh.steps);
    Gru gru(sh.in, sh.out, rng);
    const Tensor xs = Tensor::uniform({sh.steps, sh.in}, 1.0f, rng);
    const Tensor w = Tensor::uniform({sh.steps, sh.out}, 1.0f, rng);
    auto loss_fn = [&]() -> double {
      return static_cast<double>(tensor::dot(gru.forward(xs), w));
    };
    Optimizer::zero_grad(gru.parameters());
    gru.forward(xs);
    gru.backward(w);
    const auto result = gradcheck(loss_fn, gru.parameters(), 1e-3, 0);
    EXPECT_TRUE(result.ok(kTol))
        << "gru " << sh.in << "->" << sh.out << " T=" << sh.steps
        << ": rel err " << result.max_rel_error;
    // 3 gates x (W + U + b).
    EXPECT_EQ(result.checked,
              3 * (sh.in * sh.out + sh.out * sh.out + sh.out));
  }
}

TEST(GradRegression, GruInputGradientAcrossShapes) {
  for (const Shape& sh : shapes()) {
    Rng rng(3000 + sh.in * 100 + sh.out * 10 + sh.steps);
    Gru gru(sh.in, sh.out, rng);
    Parameter px("xs", Tensor::uniform({sh.steps, sh.in}, 1.0f, rng));
    const Tensor w = Tensor::uniform({sh.steps, sh.out}, 1.0f, rng);
    auto loss_fn = [&]() -> double {
      return static_cast<double>(tensor::dot(gru.forward(px.value), w));
    };
    gru.forward(px.value);
    px.grad = gru.backward(w);
    Parameter* params[] = {&px};
    const auto result = gradcheck(loss_fn, params, 1e-3, 0);
    EXPECT_TRUE(result.ok(kTol))
        << "gru input " << sh.in << "->" << sh.out << " T=" << sh.steps
        << ": rel err " << result.max_rel_error;
  }
}

// Determinism guard for the sweep itself: two identically-seeded layers
// must produce bit-identical gradients, otherwise the comparisons above
// are chasing noise. Uses the shared AllNear comparator at tolerance 0.
TEST(GradRegression, BackwardIsDeterministic) {
  auto grads = [] {
    Rng rng(77);
    Gru gru(3, 4, rng);
    const Tensor xs = Tensor::uniform({5, 3}, 1.0f, rng);
    const Tensor w = Tensor::uniform({5, 4}, 1.0f, rng);
    Optimizer::zero_grad(gru.parameters());
    gru.forward(xs);
    gru.backward(w);
    std::vector<Tensor> out;
    for (Parameter* p : gru.parameters()) out.push_back(p->grad);
    return out;
  };
  const auto a = grads();
  const auto b = grads();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(test::AllNear(a[i], b[i], 0.0)) << "parameter " << i;
  }
}

}  // namespace
}  // namespace semcache::nn
