// Randomized equivalence fuzz: the timing-wheel Simulator against a
// reference reimplementation of the pre-wheel binary-heap event queue
// (std::priority_queue ordered by (time, seq), the exact code the wheel
// replaced). Random schedules mix ordinary and concurrent events,
// duplicate timestamps, sub-tick spacings, far-horizon and clamp-region
// times, re-entrant scheduling from handlers, and run_until boundaries
// including the past-target clamp — asserting identical execution order
// (the full phase trace) and identical processed()/pending() counts at
// every checkpoint. Inline-only on purpose: pooled-vs-inline identity is
// pinned separately in test_edge.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "common/grouping.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "edge/sim.hpp"
#include "test_util.hpp"

namespace semcache {
namespace {

// The pre-wheel event queue, verbatim semantics: non-destructive
// priority_queue top (events COPY out — shared_ptr ConcurrentParts),
// (t, seq) ordering, identical wave formation and three-phase run.
class ReferenceSimulator {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }

  void schedule_at(double t, Handler fn) {
    Event ev;
    ev.t = t;
    ev.seq = next_seq_++;
    ev.fn = std::move(fn);
    queue_.push(std::move(ev));
  }

  void schedule_after(double dt, Handler fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  void schedule_concurrent_at(double t, std::uint64_t lane, Handler prepare,
                              Handler compute, Handler commit) {
    Event ev;
    ev.t = t;
    ev.seq = next_seq_++;
    ev.fn = std::move(commit);
    ev.conc = std::make_shared<ConcurrentParts>();
    ev.conc->prepare = std::move(prepare);
    ev.conc->compute = std::move(compute);
    ev.conc->lane = lane;
    queue_.push(std::move(ev));
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(double t) {
    while (!queue_.empty() && queue_.top().t <= t) step();
    if (t > now_) now_ = t;
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    if (ev.conc == nullptr) {
      ++processed_;
      ev.fn();
      return true;
    }
    std::vector<Event> wave;
    wave.push_back(std::move(ev));
    while (!queue_.empty() && queue_.top().conc != nullptr &&
           queue_.top().t == wave.front().t) {
      wave.push_back(queue_.top());
      queue_.pop();
    }
    run_wave(wave);
    return true;
  }

  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct ConcurrentParts {
    Handler prepare;
    Handler compute;
    std::uint64_t lane = 0;
  };
  struct Event {
    double t;
    std::uint64_t seq;
    Handler fn;
    std::shared_ptr<ConcurrentParts> conc;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void run_wave(std::vector<Event>& wave) {
    processed_ += wave.size();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (wave[i].conc->prepare) wave[i].conc->prepare();
    }
    const auto lanes = common::group_by_first_appearance(
        wave.size(), [&](std::size_t i) { return wave[i].conc->lane; });
    common::parallel_for_or_inline(
        nullptr, lanes.groups.size(), [&](std::size_t lane, std::size_t) {
          for (const std::size_t i : lanes.groups[lane]) {
            wave[i].conc->compute();
          }
        });
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (wave[i].fn) wave[i].fn();
    }
  }

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

struct Entry {
  char tag;  // 'o' ordinary, 'p' prepare, 'x' compute, 'c' commit, 'C'/'P'
  long long id;
  double at;
  bool operator==(const Entry&) const = default;
};

// Drives one random program against either simulator and returns the full
// trace. All child-spawn decisions derive from splitmix64 of the PARENT
// EVENT ID (not a shared stream), so the decisions are a pure function of
// the event — any order divergence between the two simulators surfaces as
// a trace mismatch instead of silently re-synchronizing.
template <typename Sim>
class Driver {
 public:
  std::vector<Entry> drive(std::uint64_t seed) {
    seed_ = seed;
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t r = rng();
      schedule_op(i, root_time(r), (r >> 40) % 2 != 0,
                  (r >> 42) % 4, 0);
    }
    checkpoint();
    sim_.run_until(0.5e-3);
    checkpoint();
    sim_.run_until(0.2e-3);  // past target: clamp, nothing may run or move
    checkpoint();
    sim_.run_until(2.0);
    checkpoint();
    for (int i = 100; i < 108; ++i) {  // late arrivals, relative to now
      const std::uint64_t r = rng();
      schedule_op(i, sim_.now() + root_time(r), (r >> 40) % 2 != 0,
                  (r >> 42) % 4, 0);
    }
    sim_.run_until(1.5);  // past target again, now with a repopulated queue
    checkpoint();
    sim_.run();
    checkpoint();
    return std::move(trace_);
  }

 private:
  static double root_time(std::uint64_t r) {
    const std::uint64_t v = (r >> 8) % 5;
    switch (r % 7) {
      case 0:  // sub-tick spacing inside tick 0
        return static_cast<double>(v) * 1e-7;
      case 1:  // duplicate-heavy msec grid
        return static_cast<double>(v) * 1e-3;
      case 2:  // one shared instant
        return 0.25e-3;
      case 3:  // far beyond the wheel horizon (tick ~1e15 > 64^8)
        return 1e9 + static_cast<double>(v);
      case 4:  // clamp region (tick >= 2^62)
        return 5e12 + static_cast<double>(v) * 1e11;
      case 5:  // last tick of consecutive level-0 slots (tick 63 mod 64):
               // draining one makes `cursor_ = tick + 1` CARRY into a new
               // higher-level slot, the hole the cascade pre-pass plugs
        return 63e-6 + static_cast<double>(v) * 64e-6;
      default:
        return static_cast<double>(v) * 0.37e-4;
    }
  }

  void schedule_op(long long id, double t, bool conc, std::uint64_t lane,
                   int depth) {
    if (!conc) {
      sim_.schedule_at(t, [this, id, depth] {
        trace_.push_back({'o', id, sim_.now()});
        spawn_children(id, depth);
      });
      return;
    }
    sim_.schedule_concurrent_at(
        t, lane,
        [this, id, depth] {  // prepare may schedule re-entrantly
          trace_.push_back({'p', id, sim_.now()});
          spawn_children(id, depth);
        },
        [this, id] {  // compute must not touch the simulator
          trace_.push_back({'x', id, 0.0});
        },
        [this, id, depth] {
          trace_.push_back({'c', id, sim_.now()});
          spawn_children(id, depth);
        });
  }

  void spawn_children(long long parent, int depth) {
    if (depth >= 2) return;
    std::uint64_t s =
        seed_ ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(parent + 1));
    const int n = static_cast<int>(splitmix64(s) % 3);
    for (int c = 0; c < n; ++c) {
      const std::uint64_t r = splitmix64(s);
      // 27e-6 from a tick-63-mod-64 parent lands a fresh level-0 event in
      // the slot window the carry just entered, ahead of anything still
      // parked at higher levels — the re-entrant shape of the carry bug.
      static constexpr double kDts[] = {0.0,  1e-7, 2.5e-7, 27e-6,
                                        1e-3, 0.05, 1.0};
      const long long id = next_child_++;
      schedule_op(id, sim_.now() + kDts[r % 7], (r >> 3) % 2 != 0,
                  (r >> 4) % 4, depth + 1);
    }
  }

  void checkpoint() {
    trace_.push_back(
        {'C', static_cast<long long>(sim_.processed()), sim_.now()});
    trace_.push_back(
        {'P', static_cast<long long>(sim_.pending()), sim_.now()});
  }

  Sim sim_;
  std::vector<Entry> trace_;
  std::uint64_t seed_ = 0;
  long long next_child_ = 1000000;
};

TEST(SimWheelFuzz, MatchesHeapReferenceAcrossSeeds) {
  // Nightly CI rotates the base (SEMCACHE_FUZZ_SEED_BASE = UTC date) so
  // the differential fuzz walks a fresh seed window every night; the base
  // is echoed into the log for reproduction.
  const std::uint64_t base = test::fuzz_seed_base();
  for (std::uint64_t seed = base + 1; seed <= base + 50; ++seed) {
    const auto wheel = Driver<edge::Simulator>{}.drive(seed);
    const auto heap = Driver<ReferenceSimulator>{}.drive(seed);
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_TRUE(wheel[i] == heap[i])
          << "seed " << seed << " diverges at trace index " << i << ": wheel {"
          << wheel[i].tag << " " << wheel[i].id << " @" << wheel[i].at
          << "} vs heap {" << heap[i].tag << " " << heap[i].id << " @"
          << heap[i].at << "}";
    }
  }
}

// The wheel must also be exactly self-consistent under a dense many-timer
// load that spans every level: 20k timers at random times over 11 orders
// of magnitude execute in nondecreasing time order with ties in
// scheduling order, and every one runs exactly once.
TEST(SimWheelFuzz, DenseRandomScheduleRunsInOrder) {
  edge::Simulator sim;
  std::mt19937_64 rng(7);
  const int n = 20000;
  std::vector<double> times(n);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t r = rng();
    const double mag = static_cast<double>(r % 12);  // 1e-6 .. 1e5 seconds
    times[i] = static_cast<double>((r >> 8) % 1000) * 1e-9 *
               std::pow(10.0, mag);
  }
  std::vector<int> order;
  order.reserve(n);
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(times[i], [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(sim.processed(), static_cast<std::size_t>(n));
  ASSERT_EQ(sim.pending(), 0u);
  for (int k = 1; k < n; ++k) {
    const int a = order[k - 1];
    const int b = order[k];
    ASSERT_TRUE(times[a] < times[b] || (times[a] == times[b] && a < b))
        << "out of order at position " << k;
  }
}

// Regression for the level-0 carry hole: draining tick 63 sets the cursor
// to 64 — entering a new level-1 slot — without passing through the
// cascade path, so an event already parked in that slot (A@74 ticks,
// inserted while the cursor was still in the previous window) stayed at
// level 1. An event the tick-63 handler then schedules into the new
// window (B@90 ticks, level 0 relative to cursor 64) must not overtake
// it; pre-fix the wheel ran B before A, then re-bucketed stale A below
// the cursor and aborted with "pending count out of sync". Handler-driven
// rescheduling is exactly Link's delivery-chain shape, so this ordering
// is load-bearing, not a corner case.
TEST(SimWheelFuzz, CarryIntoOccupiedHigherSlotCascadesBeforeLevel0) {
  edge::Simulator sim;
  std::vector<char> order;
  sim.schedule_at(74e-6, [&] { order.push_back('A'); });
  sim.schedule_at(63.5e-6, [&] {
    order.push_back('X');
    sim.schedule_at(90e-6, [&] { order.push_back('B'); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'X', 'A', 'B'}));
  EXPECT_EQ(sim.processed(), 3u);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace semcache
