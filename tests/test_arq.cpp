// Tests for the stop-and-wait ARQ extension (§III-C reliability): delivery
// semantics, retry accounting, airtime cost, and the semantic-vs-ARQ
// trade-off the E8 family measures.
#include <gtest/gtest.h>

#include "channel/arq.hpp"
#include "channel/convolutional.hpp"
#include "common/check.hpp"
#include "test_util.hpp"

namespace semcache::channel {
namespace {

using test::random_bits;

TEST(Arq, CleanChannelSingleAttempt) {
  Rng rng(1);
  ArqPipeline arq(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.0), 4);
  const BitVec payload = random_bits(64, rng);
  const ArqResult r = arq.transmit(payload, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.payload, payload);
  EXPECT_EQ(r.airtime_bits, payload.size() + 32);  // + CRC trailer
}

TEST(Arq, RetriesUntilDelivered) {
  // At BER 0.5% over 112 framed bits, p(clean attempt) ~ 0.57, so eight
  // tries deliver with probability ~0.999 — and retries genuinely happen.
  Rng rng(2);
  std::size_t delivered = 0;
  std::size_t attempts_sum = 0;
  for (int i = 0; i < 50; ++i) {
    ArqPipeline arq(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.005),
                    8);
    const BitVec payload = random_bits(80, rng);
    const ArqResult r = arq.transmit(payload, rng);
    if (r.delivered) {
      ++delivered;
      EXPECT_EQ(r.payload, payload);  // CRC-verified => exact
    }
    attempts_sum += r.attempts;
  }
  EXPECT_GE(delivered, 45u);
  EXPECT_GT(attempts_sum, 55u);  // retransmissions actually happened
}

TEST(Arq, GivesUpAfterBudget) {
  Rng rng(3);
  // Half the bits flip: CRC can never pass.
  ArqPipeline arq(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.5), 3);
  const BitVec payload = random_bits(64, rng);
  const ArqResult r = arq.transmit(payload, rng);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.payload.size(), payload.size());  // still surfaces a payload
}

TEST(Arq, AirtimeAccumulatesAcrossAttempts) {
  Rng rng(4);
  ArqPipeline arq(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.5), 5);
  const BitVec payload = random_bits(40, rng);
  const ArqResult r = arq.transmit(payload, rng);
  EXPECT_EQ(r.attempts, 5u);
  EXPECT_EQ(r.airtime_bits, 5u * (payload.size() + 32));
}

TEST(Arq, CodedArqNeedsFewerRetries) {
  Rng rng_a(5), rng_b(5);
  std::size_t uncoded_attempts = 0, coded_attempts = 0;
  for (int i = 0; i < 40; ++i) {
    Rng prng(static_cast<std::uint64_t>(i));
    const BitVec payload = random_bits(96, prng);
    ArqPipeline uncoded(
        make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.02), 16);
    ArqPipeline coded(
        make_bsc_pipeline(std::make_unique<ConvolutionalCode>(), 0.02), 16);
    uncoded_attempts += uncoded.transmit(payload, rng_a).attempts;
    coded_attempts += coded.transmit(payload, rng_b).attempts;
  }
  EXPECT_LT(coded_attempts, uncoded_attempts);
}

TEST(Arq, ValidatesArguments) {
  EXPECT_THROW(
      ArqPipeline(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.0), 0),
      Error);
  EXPECT_THROW(ArqPipeline(nullptr, 3), Error);
}

// Retry budget sweep: delivery probability is monotone in the budget.
class ArqBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArqBudgetSweep, DeliveryRateGrowsWithBudget) {
  Rng rng(6);
  std::size_t delivered = 0;
  for (int i = 0; i < 60; ++i) {
    ArqPipeline arq(make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.03),
                    GetParam());
    const BitVec payload = random_bits(64, rng);
    if (arq.transmit(payload, rng).delivered) ++delivered;
  }
  // Rough analytic floor: p_clean ≈ 0.97^96 ≈ 0.053 per attempt.
  if (GetParam() >= 16) {
    EXPECT_GE(delivered, 30u);
  }
  // Stash for cross-parameter monotonicity via recorded property.
  RecordProperty("delivered", static_cast<int>(delivered));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArqBudgetSweep,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace semcache::channel
